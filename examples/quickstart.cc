/**
 * @file
 * Quickstart: synthesize a comprehensive litmus test suite for x86-TSO.
 *
 * This is the paper's headline flow in ~40 lines of user code:
 *   1. pick a memory model from the registry,
 *   2. synthesize all minimal tests per axiom up to a size bound,
 *   3. print the union suite, ready to feed into a testing harness.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--max-size=4]
 */

#include <cstdio>

#include "common/flags.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

int
main(int argc, char **argv)
{
    lts::Flags flags;
    flags.declare("model", "tso", "memory model (sc|tso|power|armv7|scc|c11)");
    flags.declare("max-size", "4", "largest test size in instructions");
    if (!flags.parse(argc, argv))
        return 1;

    // 1. A memory model is a vocabulary of relations, a set of named
    //    axioms, and the instruction relaxations that apply to it.
    auto model = lts::mm::makeModel(flags.get("model"));
    std::printf("model '%s': %zu axioms, %zu relaxations\n",
                model->name().c_str(), model->axioms().size(),
                model->relaxations().size());

    // 2. Synthesize per-axiom suites and their deduplicated union.
    lts::synth::SynthOptions options;
    options.minSize = 2;
    options.maxSize = flags.getInt("max-size");
    auto suites = lts::synth::synthesizeAll(*model, options);

    // 3. Every test in the union satisfies the minimality criterion for
    //    at least one axiom: weakening any instruction in any way the
    //    model permits makes the printed outcome observable.
    const lts::synth::Suite &united = suites.back();
    std::printf("synthesized %zu minimal tests (bound %d) in %.2fs:\n\n",
                united.tests.size(), options.maxSize,
                united.totalSeconds());
    for (const auto &test : united.tests)
        std::printf("%s\n", lts::litmus::toString(test).c_str());

    for (const auto &suite : suites) {
        std::printf("axiom %-24s -> %3zu tests\n", suite.axiom.c_str(),
                    suite.tests.size());
    }
    return 0;
}
