/**
 * @file
 * Auditing an existing litmus test suite for redundancy.
 *
 * The Figure 1 / Figure 2 workflow: given a hand-maintained suite, flag
 * every test that is *not* minimally synchronized — either its outcome
 * is actually allowed (a broken test), or some instruction can be
 * weakened without unlocking new behavior (a redundant test), in which
 * case the report says which weakenings are free.
 *
 * The audited suite here is SCC message-passing in all four
 * release/acquire strength combinations plus the Owens x86-TSO suite.
 */

#include <cstdio>

#include "litmus/print.hh"
#include "mm/registry.hh"
#include "suites/owens.hh"
#include "synth/executor.hh"
#include "synth/minimality.hh"

using namespace lts;

namespace
{

litmus::LitmusTest
mpVariant(bool relax_first_store, bool relax_second_load)
{
    using litmus::MemOrder;
    litmus::TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x",
            relax_first_store ? MemOrder::Plain : MemOrder::Release);
    int wf = b.write(t0, "y", MemOrder::Release);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", MemOrder::Acquire);
    int rd = b.read(t1, "x",
                    relax_second_load ? MemOrder::Plain : MemOrder::Acquire);
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    std::string name = "MP";
    name += relax_first_store ? "+st" : "+st.rel";
    name += relax_second_load ? "+ld" : "+ld.acq";
    return b.build(name);
}

void
audit(const mm::Model &model, const litmus::LitmusTest &test)
{
    bool legal = synth::isLegal(model, test, test.forbidden);
    auto axioms = synth::minimalAxioms(model, test);
    std::printf("%-22s ", test.name.c_str());
    if (legal) {
        std::printf("BROKEN: outcome is allowed by %s\n",
                    model.name().c_str());
        return;
    }
    if (axioms.empty()) {
        std::printf("REDUNDANT: forbidden, but over-synchronized "
                    "(some weakening keeps it forbidden)\n");
        return;
    }
    std::printf("MINIMAL for:");
    for (const auto &a : axioms)
        std::printf(" %s", a.c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Auditing MP strength variants under SCC "
                "(Figures 1 and 2) ===\n");
    auto scc = mm::makeModel("scc");
    // Figure 2's over-synchronized MP, the two single-extra variants,
    // and Figure 1's minimal MP.
    for (bool relax_store : {false, true}) {
        for (bool relax_load : {false, true})
            audit(*scc, mpVariant(relax_store, relax_load));
    }

    std::printf("\n=== Auditing the Owens x86-TSO suite under TSO ===\n");
    auto tso = mm::makeModel("tso");
    int broken = 0, redundant = 0, minimal = 0;
    for (const auto &entry : suites::owensSuite()) {
        audit(*tso, entry.test);
        bool legal = synth::isLegal(*tso, entry.test, entry.test.forbidden);
        if (legal)
            broken++; // for allowed-outcome entries this is expected
        else if (synth::minimalAxioms(*tso, entry.test).empty())
            redundant++;
        else
            minimal++;
    }
    std::printf("\nsummary: %d minimal, %d redundant, %d with allowed "
                "outcomes (the suite's documented 'allowed' entries)\n",
                minimal, redundant, broken);
    std::printf("A synthesized suite (see bench/table4_owens) keeps the "
                "%d minimal cores and replaces the rest.\n", minimal);
    return 0;
}
