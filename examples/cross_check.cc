/**
 * @file
 * Cross-checking an axiomatic model against an operational machine.
 *
 * Synthesizes the TSO union suite, then for every test compares the
 * axiomatic model's legal outcome set against exhaustive exploration of
 * the x86-TSO store-buffer machine (and the SC suite against the
 * interleaving machine). Any disagreement would mean one of the two
 * formulations of TSO is wrong — this is the classic use a litmus suite
 * is generated *for*, run here end-to-end in-process.
 */

#include <cstdio>
#include <set>

#include "common/flags.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "sim/opsim.hh"
#include "synth/executor.hh"
#include "synth/synthesizer.hh"

using namespace lts;

namespace
{

int
crossCheck(const mm::Model &model, const std::vector<litmus::LitmusTest> &tests,
           bool tso_machine)
{
    int mismatches = 0;
    for (const auto &test : tests) {
        std::set<sim::Signature> axiomatic;
        for (const auto &o : synth::legalOutcomes(model, test))
            axiomatic.insert(sim::observableSignature(test, o));
        auto operational =
            tso_machine ? sim::tsoOutcomes(test) : sim::scOutcomes(test);
        bool ok = axiomatic == operational;
        bool forbidden_hidden =
            !operational.count(sim::observableSignature(test, test.forbidden));
        std::printf("%-28s axiomatic=%2zu operational=%2zu  %s%s\n",
                    test.name.c_str(), axiomatic.size(), operational.size(),
                    ok ? "agree" : "DISAGREE",
                    forbidden_hidden ? "" : "  [forbidden outcome observed!]");
        if (!ok || !forbidden_hidden) {
            mismatches++;
            std::printf("%s\n", litmus::toString(test).c_str());
        }
    }
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "5", "largest synthesized test size");
    if (!flags.parse(argc, argv))
        return 1;

    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = flags.getInt("max-size");

    std::printf("=== axiomatic TSO vs x86-TSO store-buffer machine ===\n");
    auto tso = mm::makeModel("tso");
    auto tso_suites = synth::synthesizeAll(*tso, opt);
    int bad = crossCheck(*tso, tso_suites.back().tests, true);

    std::printf("\n=== axiomatic SC vs interleaving machine ===\n");
    auto sc = mm::makeModel("sc");
    auto sc_suites = synth::synthesizeAll(*sc, opt);
    bad += crossCheck(*sc, sc_suites.back().tests, false);

    std::printf("\n%s\n", bad == 0
                              ? "All tests agree: the declarative and "
                                "operational formulations coincide."
                              : "DISAGREEMENTS FOUND — model bug!");
    return bad == 0 ? 0 : 1;
}
