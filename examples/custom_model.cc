/**
 * @file
 * Defining your own memory model against the public API.
 *
 * The paper's pitch is that the synthesis flow works for *any*
 * axiomatically specified model. This example builds one from scratch —
 * "PSO-like": TSO with the write-to-write ordering also relaxed, so both
 * W->R and W->W program order are ignored unless a fence intervenes —
 * then synthesizes its suite and diffs it against TSO's.
 *
 * The interesting, paper-style observation falls out automatically: MP
 * stops being a minimal test for PSO (its outcome is now *allowed*), and
 * the fenced variant MP+fence takes its place in the suite.
 */

#include <cstdio>
#include <set>

#include "common/flags.hh"
#include "litmus/canon.hh"
#include "litmus/print.hh"
#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

using namespace lts;
using namespace lts::rel;

namespace
{

/** A PSO-flavored model: relaxes W->R and W->W, keeps R->R and R->W. */
std::unique_ptr<mm::Model>
makePso()
{
    mm::ModelFeatures feats;
    feats.fences = true;
    feats.rmw = true;
    auto model = std::make_unique<mm::Model>("pso", feats);

    model->addAxiom(mm::Axiom{
        "sc_per_loc",
        [](const mm::Model &, const mm::Env &env, size_t) {
            return mkAcyclic(mm::com(env) + mm::poLoc(env));
        },
        nullptr,
    });
    model->addAxiom(mm::Axiom{
        "rmw_atomicity",
        [](const mm::Model &, const mm::Env &env, size_t) {
            return mkNo(mkJoin(mm::fre(env), mm::coe(env)) &
                        env.get(mm::kRmw));
        },
        nullptr,
    });
    model->addAxiom(mm::Axiom{
        "causality",
        [](const mm::Model &, const mm::Env &env, size_t) {
            // ppo drops all write-sourced ordering: only reads order
            // later events.
            ExprPtr ppo = mkDomRestrict(env.get(mm::kR), env.get(mm::kPo));
            ExprPtr fence = mm::fenceOrder(env, env.get(mm::kF));
            return mkAcyclic(mm::rfe(env) + env.get(mm::kCo) +
                             mm::fr(env) + ppo + fence);
        },
        nullptr,
    });
    model->addRelaxation(mm::makeRI());
    model->addRelaxation(mm::makeDRMW());
    return model;
}

std::set<std::string>
keys(const std::vector<litmus::LitmusTest> &tests)
{
    std::set<std::string> out;
    for (const auto &t : tests) {
        out.insert(litmus::staticSerialize(
            litmus::canonicalize(t, litmus::CanonMode::Exact)));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "5", "largest test size");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");

    auto pso = makePso();
    auto tso = mm::makeModel("tso");

    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;
    auto pso_suites = synth::synthesizeAll(*pso, opt);
    auto tso_suites = synth::synthesizeAll(*tso, opt);
    const auto &pso_union = pso_suites.back();
    const auto &tso_union = tso_suites.back();

    std::printf("pso-union: %zu tests, tso-union: %zu tests (bound %d)\n\n",
                pso_union.tests.size(), tso_union.tests.size(), max_size);

    auto pso_keys = keys(pso_union.tests);
    auto tso_keys = keys(tso_union.tests);

    std::printf("--- tests minimal for TSO but not for PSO "
                "(now-allowed or now-needing-fences) ---\n");
    for (const auto &t : tso_union.tests) {
        if (!pso_keys.count(litmus::staticSerialize(
                litmus::canonicalize(t, litmus::CanonMode::Exact))))
            std::printf("%s\n", litmus::toString(t).c_str());
    }

    std::printf("--- tests minimal for PSO but not for TSO "
                "(typically fenced variants) ---\n");
    for (const auto &t : pso_union.tests) {
        if (!tso_keys.count(litmus::staticSerialize(
                litmus::canonicalize(t, litmus::CanonMode::Exact))))
            std::printf("%s\n", litmus::toString(t).c_str());
    }
    return 0;
}
