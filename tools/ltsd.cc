/**
 * @file
 * ltsd — the long-running synthesis daemon.
 *
 * Listens on a unix-domain socket, keeps hot per-(model, size) base
 * encodings resident, and answers repeat SuiteRequests from the
 * content-addressed suite store (synth/service.hh). Clients are
 * `ltsgen query --socket=...` or anything speaking the frame protocol
 * of store/wire.hh.
 *
 *   ltsd --socket=/tmp/ltsd.sock --store=~/.lts-store   # serve
 *   ltsd --socket=/tmp/ltsd.sock --ping                 # liveness probe
 *   ltsd --socket=/tmp/ltsd.sock --shutdown             # stop a daemon
 */

#include <atomic>
#include <csignal>
#include <cstdio>

#include "common/flags.hh"
#include "synth/daemon.hh"

using namespace lts;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("socket", "ltsd.sock", "unix-domain socket path");
    flags.declare("store", ".lts-store",
                  "suite store directory ('' = in-memory only)");
    flags.declare("cache-mb", "64",
                  "in-memory page cache budget in MiB");
    flags.declare("verbose", "false", "log one line per request");
    flags.declare("ping", "false",
                  "probe a running daemon and exit (0 = alive)");
    flags.declare("shutdown", "false",
                  "ask a running daemon to exit cleanly");
    if (!flags.parse(argc, argv))
        return 1;

    const std::string socket_path = flags.get("socket");
    if (flags.getBool("ping")) {
        bool alive = synth::pingDaemon(socket_path);
        std::printf("%s\n", alive ? "alive" : "no daemon");
        return alive ? 0 : 1;
    }
    if (flags.getBool("shutdown")) {
        bool ok = synth::shutdownDaemon(socket_path);
        std::printf("%s\n", ok ? "stopped" : "no daemon");
        return ok ? 0 : 1;
    }

    synth::DaemonConfig config;
    config.socketPath = socket_path;
    config.storeDir = flags.get("store");
    config.cacheBudget =
        static_cast<size_t>(flags.getUint64("cache-mb")) << 20;
    config.verbose = flags.getBool("verbose");

    // SIGINT/SIGTERM request a clean shutdown: the accept loop polls
    // g_stop between connections and removes the socket file on exit.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    return runDaemon(config, &g_stop);
}
