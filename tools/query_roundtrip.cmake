# Cold-vs-warm query through the suite store: the second query of the
# same (model, bound, options) must be answered entirely from the store
# (cache: hit) with a byte-identical suite (same digest), and the store
# itself must pass a read-only fsck and a compaction.
set(STORE ${WORKDIR}/query-store)
file(REMOVE_RECURSE ${STORE})

execute_process(
    COMMAND ${LTSGEN} query --model=tso --max-size=3 --store=${STORE}
            --out=${WORKDIR}/query-cold.litmus
    OUTPUT_VARIABLE cold_output
    RESULT_VARIABLE cold_result)
if(NOT cold_result EQUAL 0)
    message(FATAL_ERROR "cold query failed: ${cold_result}\n${cold_output}")
endif()
if(NOT cold_output MATCHES "cache: miss")
    message(FATAL_ERROR "cold query was not a miss:\n${cold_output}")
endif()
string(REGEX MATCH "suite: [^\n]+" cold_digest "${cold_output}")

execute_process(
    COMMAND ${LTSGEN} query --model=tso --max-size=3 --store=${STORE}
            --out=${WORKDIR}/query-warm.litmus
    OUTPUT_VARIABLE warm_output
    RESULT_VARIABLE warm_result)
if(NOT warm_result EQUAL 0)
    message(FATAL_ERROR "warm query failed: ${warm_result}\n${warm_output}")
endif()
if(NOT warm_output MATCHES "cache: hit")
    message(FATAL_ERROR "warm query was not a hit:\n${warm_output}")
endif()
string(REGEX MATCH "suite: [^\n]+" warm_digest "${warm_output}")

if(NOT cold_digest STREQUAL warm_digest)
    message(FATAL_ERROR
            "warm digest differs from cold:\n"
            "cold: ${cold_digest}\nwarm: ${warm_digest}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/query-cold.litmus ${WORKDIR}/query-warm.litmus
    RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
    message(FATAL_ERROR "warm suite bytes differ from cold suite bytes")
endif()

# The store the queries left behind must be internally consistent...
execute_process(
    COMMAND ${LTSSTORE} fsck ${STORE}
    OUTPUT_VARIABLE fsck_output
    RESULT_VARIABLE fsck_result)
if(NOT fsck_result EQUAL 0)
    message(FATAL_ERROR "lts-store fsck failed:\n${fsck_output}")
endif()

# ...and still answer hits after a compaction.
execute_process(
    COMMAND ${LTSSTORE} compact ${STORE}
    RESULT_VARIABLE compact_result)
if(NOT compact_result EQUAL 0)
    message(FATAL_ERROR "lts-store compact failed: ${compact_result}")
endif()
execute_process(
    COMMAND ${LTSGEN} query --model=tso --max-size=3 --store=${STORE}
    OUTPUT_VARIABLE post_output
    RESULT_VARIABLE post_result)
if(NOT post_result EQUAL 0)
    message(FATAL_ERROR "post-compact query failed: ${post_result}")
endif()
if(NOT post_output MATCHES "cache: hit")
    message(FATAL_ERROR "post-compact query was not a hit:\n${post_output}")
endif()
string(REGEX MATCH "suite: [^\n]+" post_digest "${post_output}")
if(NOT post_digest STREQUAL cold_digest)
    message(FATAL_ERROR
            "post-compact digest differs:\n"
            "cold: ${cold_digest}\npost: ${post_digest}")
endif()
