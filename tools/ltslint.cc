/**
 * @file
 * ltslint — static analyzer for memory-model specifications.
 *
 * Checks a registered model (or every registered model) before any
 * synthesis is attempted: relational bounding-type inference catches
 * arity mismatches and provably-empty subexpressions, the dead-code
 * pass flags declared-but-unreachable relations, and bounded solver
 * probes detect unsatisfiable or tautological facts and axioms.
 *
 *   ltslint --model=power                 # lint one model
 *   ltslint --all                         # lint every registered model
 *   ltslint --all --json                  # machine-readable findings
 *   ltslint --all --Werror                # warnings fail the run (CI)
 *   ltslint --model=c11 --size=5          # larger probe universe
 *
 * Exit status: 0 when the report is clean (no errors; no warnings under
 * --Werror), 1 otherwise, 2 on usage errors.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "common/flags.hh"
#include "mm/registry.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "",
                  "memory model to lint: sc|tso|power|armv7|scc|c11|...");
    flags.declare("all", "false", "lint every registered model");
    flags.declare("json", "false", "emit findings as JSON on stdout");
    flags.declare("Werror", "false", "treat warnings as errors");
    flags.declare("size", "4",
                  "universe size for fact instantiation and probes");
    flags.declare("probes", "true",
                  "run bounded solver satisfiability probes");
    flags.declare("fact-probes", "true",
                  "probe each well-formedness fact for redundancy");
    flags.declare("budget", "200000",
                  "SAT conflict budget per solver probe (0 = unlimited)");
    if (!flags.parse(argc, argv))
        return 2;

    std::vector<std::string> names;
    if (flags.getBool("all")) {
        names = mm::allModelNames();
    } else if (!flags.get("model").empty()) {
        names.push_back(flags.get("model"));
    } else {
        std::fprintf(stderr, "ltslint: pass --model=<name> or --all\n");
        return 2;
    }

    analysis::AnalysisOptions opt;
    opt.size = static_cast<size_t>(flags.getInt("size"));
    opt.probes = flags.getBool("probes");
    opt.probe.conflictBudget = flags.getUint64("budget");
    opt.probe.factProbes = flags.getBool("fact-probes");
    if (opt.size < 2) {
        std::fprintf(stderr, "ltslint: --size must be at least 2\n");
        return 2;
    }

    analysis::Report report;
    for (const auto &name : names) {
        std::unique_ptr<mm::Model> model;
        try {
            model = mm::makeModel(name);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltslint: %s\n", e.what());
            return 2;
        }
        analysis::analyzeModel(*model, opt, report);
    }

    const bool werror = flags.getBool("Werror");
    if (flags.getBool("json")) {
        std::fputs(report.json().c_str(), stdout);
    } else {
        std::fputs(report.text().c_str(), stdout);
        std::printf("%zu model%s checked: %zu error%s, %zu warning%s, "
                    "%zu note%s\n",
                    names.size(), names.size() == 1 ? "" : "s",
                    report.count(analysis::Severity::Error),
                    report.count(analysis::Severity::Error) == 1 ? "" : "s",
                    report.count(analysis::Severity::Warning),
                    report.count(analysis::Severity::Warning) == 1 ? ""
                                                                   : "s",
                    report.count(analysis::Severity::Note),
                    report.count(analysis::Severity::Note) == 1 ? "" : "s");
    }
    return report.clean(werror) ? 0 : 1;
}
