# Interop round trip: synthesize a suite, export it as herd7 .litmus
# files, re-import the directory, and demand the interchange forms agree
# byte for byte. Then compile one emitted C++11 stress harness and run
# it: the forbidden outcome must not be observed (exit 0).

execute_process(
    COMMAND ${LTSGEN} --model=tso --max-size=4
            --out=${WORKDIR}/interop_orig.litmus
            --emit-litmus=${WORKDIR}/interop_lit
            --emit-cxx=${WORKDIR}/interop_cxx
    RESULT_VARIABLE gen_result)
if(NOT gen_result EQUAL 0)
    message(FATAL_ERROR "ltsgen emission failed: ${gen_result}")
endif()
if(NOT EXISTS ${WORKDIR}/interop_lit/@all)
    message(FATAL_ERROR "--emit-litmus wrote no @all index")
endif()

execute_process(
    COMMAND ${LTSGEN} --import-litmus=${WORKDIR}/interop_lit
            --out=${WORKDIR}/interop_back.litmus
    RESULT_VARIABLE import_result)
if(NOT import_result EQUAL 0)
    message(FATAL_ERROR "ltsgen import failed: ${import_result}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/interop_orig.litmus ${WORKDIR}/interop_back.litmus
    RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
    message(FATAL_ERROR
            "export -> import round trip is not byte-identical")
endif()

# The exported .litmus directory must also audit clean as-is (format
# auto-detection: herd files, not interchange).
execute_process(
    COMMAND ${LTSGEN} --model=tso --audit=${WORKDIR}/interop_lit
            --strict-audit
    OUTPUT_QUIET
    RESULT_VARIABLE audit_result)
if(NOT audit_result EQUAL 0)
    message(FATAL_ERROR
            "strict audit of exported .litmus files exited ${audit_result}")
endif()

# Build and run one harness. Any test works; pick the first index entry.
file(STRINGS ${WORKDIR}/interop_cxx/@all harness_files LIMIT_COUNT 1)
execute_process(
    COMMAND ${CXX} -std=c++11 -O2 -pthread
            -o ${WORKDIR}/interop_harness
            ${WORKDIR}/interop_cxx/${harness_files}
    RESULT_VARIABLE cc_result
    ERROR_VARIABLE cc_errors)
if(NOT cc_result EQUAL 0)
    message(FATAL_ERROR "harness compilation failed:\n${cc_errors}")
endif()
execute_process(
    COMMAND ${WORKDIR}/interop_harness 2000
    OUTPUT_QUIET
    RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
    message(FATAL_ERROR
            "harness observed the forbidden outcome (exit ${run_result})")
endif()
