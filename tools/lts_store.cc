/**
 * @file
 * lts-store — inspect and maintain a suite store directory.
 *
 *   lts-store stats <dir>        # live keys, segment size, cache stats
 *   lts-store fsck <dir>         # read-only integrity scan (exit 1 if bad)
 *   lts-store compact <dir>      # drop superseded records, atomic swap
 *   lts-store keys <dir>         # list live keys
 *   lts-store get <dir> <key>    # dump one value to stdout
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "store/store.hh"

using namespace lts;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: lts-store stats|fsck|compact|keys <dir>\n"
                 "       lts-store get <dir> <key>\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string verb = argv[1];
    const std::string dir = argv[2];
    try {
        if (verb == "fsck") {
            // Read-only on purpose: opening a SuiteStore would repair
            // (truncate) a torn tail before we could report it.
            store::FsckReport report =
                store::fsckSegment(dir + "/segment.log");
            std::printf("%s\n", report.summary().c_str());
            return report.clean() ? 0 : 1;
        }
        store::SuiteStore suite_store(dir);
        if (verb == "stats") {
            store::StoreStats s = suite_store.stats();
            std::printf("live keys:    %llu\n"
                        "records:      %llu\n"
                        "segment:      %llu bytes (%llu live, %llu dead)\n"
                        "torn dropped: %llu bytes\n",
                        static_cast<unsigned long long>(s.liveKeys),
                        static_cast<unsigned long long>(s.records),
                        static_cast<unsigned long long>(s.fileBytes),
                        static_cast<unsigned long long>(s.liveBytes),
                        static_cast<unsigned long long>(s.deadBytes),
                        static_cast<unsigned long long>(s.tornBytesDropped));
            return 0;
        }
        if (verb == "compact") {
            unsigned long long reclaimed = suite_store.compact();
            std::printf("reclaimed %llu bytes\n", reclaimed);
            return 0;
        }
        if (verb == "keys") {
            for (const auto &key : suite_store.keys())
                std::printf("%s\n", key.c_str());
            return 0;
        }
        if (verb == "get") {
            if (argc < 4)
                return usage();
            auto value = suite_store.get(argv[3]);
            if (!value) {
                std::fprintf(stderr, "lts-store: no such key\n");
                return 1;
            }
            std::fwrite(value->data(), 1, value->size(), stdout);
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lts-store: %s\n", e.what());
        return 1;
    }
    return usage();
}
