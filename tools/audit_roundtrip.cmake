# Generate a suite to a file, then audit it: every synthesized test must
# report as minimal (0 not-minimal).
execute_process(
    COMMAND ${LTSGEN} --model=tso --max-size=4
            --out=${WORKDIR}/roundtrip.litmus
    RESULT_VARIABLE gen_result)
if(NOT gen_result EQUAL 0)
    message(FATAL_ERROR "ltsgen generation failed: ${gen_result}")
endif()
execute_process(
    COMMAND ${LTSGEN} --model=tso --audit=${WORKDIR}/roundtrip.litmus
    OUTPUT_VARIABLE audit_output
    RESULT_VARIABLE audit_result)
if(NOT audit_result EQUAL 0)
    message(FATAL_ERROR "ltsgen audit failed: ${audit_result}")
endif()
if(NOT audit_output MATCHES "0/[0-9]+ tests are not minimally")
    message(FATAL_ERROR "audit found non-minimal tests:\n${audit_output}")
endif()
