# Generate a suite to a file, then audit it: every synthesized test must
# report as minimal (0 not-minimal).
execute_process(
    COMMAND ${LTSGEN} --model=tso --max-size=4
            --out=${WORKDIR}/roundtrip.litmus
    RESULT_VARIABLE gen_result)
if(NOT gen_result EQUAL 0)
    message(FATAL_ERROR "ltsgen generation failed: ${gen_result}")
endif()
execute_process(
    COMMAND ${LTSGEN} --model=tso --audit=${WORKDIR}/roundtrip.litmus
    OUTPUT_VARIABLE audit_output
    RESULT_VARIABLE audit_result)
if(NOT audit_result EQUAL 0)
    message(FATAL_ERROR "ltsgen audit failed: ${audit_result}")
endif()
if(NOT audit_output MATCHES "0/[0-9]+ tests are not minimally")
    message(FATAL_ERROR "audit found non-minimal tests:\n${audit_output}")
endif()

# The same audit under --strict-audit must still exit 0 (all minimal)...
execute_process(
    COMMAND ${LTSGEN} --model=tso --audit=${WORKDIR}/roundtrip.litmus
            --strict-audit
    OUTPUT_VARIABLE strict_output
    RESULT_VARIABLE strict_result)
if(NOT strict_result EQUAL 0)
    message(FATAL_ERROR
            "strict audit of a minimal suite exited ${strict_result}:\n"
            "${strict_output}")
endif()

# ...while a test whose fence is redundant must exit 2 (not-minimal),
# and one with three SC fences must exit 3 (unsupported, which takes
# precedence over any not-minimal verdict in the same suite).
file(WRITE ${WORKDIR}/notminimal.litmus
"LTS redundant-fence
thread 0: St [m0] ; Fence ; Ld r0 = [m0]
forbidden: init 2
end
")
execute_process(
    COMMAND ${LTSGEN} --model=tso --audit=${WORKDIR}/notminimal.litmus
            --strict-audit
    OUTPUT_QUIET
    RESULT_VARIABLE notmin_result)
if(NOT notmin_result EQUAL 2)
    message(FATAL_ERROR
            "strict audit of a not-minimal test exited ${notmin_result}, "
            "expected 2")
endif()
file(WRITE ${WORKDIR}/unsupported.litmus
"LTS redundant-fence
thread 0: St [m0] ; Fence ; Ld r0 = [m0]
forbidden: init 2
end

LTS three-sc
thread 0: Fence.sc ; Ld r0 = [m0] ; Fence.sc
thread 1: St [m0] ; Fence.sc
forbidden: init 1
end
")
execute_process(
    COMMAND ${LTSGEN} --model=scc --audit=${WORKDIR}/unsupported.litmus
            --strict-audit
    OUTPUT_QUIET
    RESULT_VARIABLE unsup_result)
if(NOT unsup_result EQUAL 3)
    message(FATAL_ERROR
            "strict audit of an unsupported test exited ${unsup_result}, "
            "expected 3")
endif()
