/**
 * @file
 * ltsgen — the command-line front end to the synthesis library.
 *
 * Generates a comprehensive, minimal-by-construction litmus test suite
 * for a chosen memory model and emits it in the textual interchange
 * format (litmus/format.hh) on stdout or into a file, ready to feed
 * into an external testing harness.
 *
 *   ltsgen --model=tso --max-size=5                  # union suite
 *   ltsgen --model=power --axiom=observation         # one axiom
 *   ltsgen --model=scc --out=scc.litmus --stats
 *   ltsgen --model=power --max-size=5 --jobs=8       # sharded synthesis
 *   ltsgen --audit=suite.litmus --model=tso          # minimality audit
 *   ltsgen --model=tso --emit-litmus=out/            # herd7 .litmus files
 *   ltsgen --model=c11 --emit-cxx=out/               # C++11 harnesses
 *   ltsgen --import-litmus=out/ --out=suite.txt      # .litmus -> interchange
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/strings.hh"
#include "common/timer.hh"
#include "litmus/cxx.hh"
#include "litmus/format.hh"
#include "litmus/herd.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/minimality.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

using namespace lts;

namespace
{

// Distinct --strict-audit exit codes so CI can tell verdicts apart.
constexpr int kExitNotMinimal = 2;
constexpr int kExitUnsupported = 3;

/** True iff @p text is our interchange format (vs a herd7 .litmus file). */
bool
looksLikeInterchange(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        return startsWith(s, "LTS ");
    }
    return false;
}

/**
 * Load tests from @p path: an interchange suite, a single .litmus file
 * (format auto-detected), or a directory of .litmus files (sorted by
 * name, so the NNN_ prefixes --emit-litmus writes preserve suite order).
 */
bool
loadTests(const std::string &path, std::vector<litmus::LitmusTest> &out)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (entry.path().extension() == ".litmus")
                files.push_back(entry.path());
        }
        if (files.empty()) {
            std::fprintf(stderr, "ltsgen: no .litmus files in %s\n",
                         path.c_str());
            return false;
        }
        std::sort(files.begin(), files.end());
    } else {
        files.emplace_back(path);
    }
    for (const auto &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "ltsgen: cannot open %s\n",
                         file.string().c_str());
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();
        try {
            if (looksLikeInterchange(text)) {
                std::istringstream suite_in(text);
                auto suite = litmus::parseLitmusSuite(suite_in);
                out.insert(out.end(), suite.begin(), suite.end());
            } else {
                out.push_back(litmus::parseHerd(text));
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltsgen: %s: %s\n",
                         file.string().c_str(), e.what());
            return false;
        }
    }
    return true;
}

/**
 * Write one file per test into @p dir (NNN_name.litmus or .cc) plus an
 * @all index listing them in suite order.
 */
bool
emitSuiteFiles(const std::vector<litmus::LitmusTest> &tests,
               const std::string &dir, bool cxx_mode,
               const std::string &model_name)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "ltsgen: cannot create %s: %s\n", dir.c_str(),
                     ec.message().c_str());
        return false;
    }
    std::ofstream index(dir + "/@all");
    if (!index) {
        std::fprintf(stderr, "ltsgen: cannot write %s/@all\n", dir.c_str());
        return false;
    }
    // Index prefixes must sort lexically in suite order, so pad them to
    // a uniform width (≥3) covering the largest index.
    int width = 3;
    for (size_t n = tests.size(); n > 1000; n = (n + 9) / 10)
        width++;
    for (size_t i = 0; i < tests.size(); i++) {
        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "%0*u", width,
                      static_cast<unsigned>(i));
        std::string fname = std::string(prefix) + "_" +
                            litmus::sanitizeTestName(tests[i].name) +
                            (cxx_mode ? ".cc" : ".litmus");
        std::ofstream f(dir + "/" + fname);
        if (!f) {
            std::fprintf(stderr, "ltsgen: cannot write %s/%s\n",
                         dir.c_str(), fname.c_str());
            return false;
        }
        if (cxx_mode) {
            litmus::CxxOptions opt;
            opt.modelName = model_name;
            f << litmus::writeCxxHarness(tests[i], opt);
        } else {
            litmus::HerdOptions opt;
            opt.modelName = model_name;
            f << litmus::writeHerd(tests[i], opt);
        }
        index << fname << "\n";
    }
    return true;
}

int
runAudit(const mm::Model &model, const std::string &path, bool strict)
{
    std::vector<litmus::LitmusTest> tests;
    if (!loadTests(path, tests))
        return 1;
    int redundant = 0;
    int unsupported = 0;
    for (const auto &t : tests) {
        synth::AuditStatus status;
        std::vector<std::string> axioms;
        try {
            axioms = synth::minimalAxioms(model, t, &status);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltsgen: %s: %s\n", t.name.c_str(),
                         e.what());
            return 1;
        }
        if (status == synth::AuditStatus::Unsupported) {
            // Not a minimality verdict: the lone-sc workaround cannot
            // audit tests with more than two SC fences.
            std::printf("%-24s UNSUPPORTED (more than two SC fences)\n",
                        t.name.c_str());
            unsupported++;
            continue;
        }
        std::printf("%-24s %s", t.name.c_str(),
                    axioms.empty() ? "NOT-MINIMAL" : "minimal:");
        for (const auto &a : axioms)
            std::printf(" %s", a.c_str());
        std::printf("\n");
        if (axioms.empty())
            redundant++;
    }
    std::printf("%d/%zu tests are not minimally synchronized under %s\n",
                redundant, tests.size(), model.name().c_str());
    if (unsupported) {
        std::printf("%d tests could not be audited (unsupported SC-fence "
                    "configuration)\n",
                    unsupported);
    }
    if (strict) {
        // Unsupported outranks not-minimal: "could not check" must never
        // read as a (failed or passed) minimality verdict.
        if (unsupported)
            return kExitUnsupported;
        if (redundant)
            return kExitNotMinimal;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso",
                  "memory model: sc|tso|power|armv7|scc|c11");
    flags.declare("axiom", "union",
                  "axiom to target, or 'union' for all");
    synth::declareSynthFlags(flags);
    flags.declare("out", "-", "output file ('-' = stdout)");
    flags.declare("stats", "false", "print per-size counts and runtimes");
    flags.declare("pretty", "false",
                  "print human-readable tables instead of .litmus text");
    flags.declare("audit", "",
                  "audit an existing suite for minimality instead of "
                  "synthesizing (interchange or herd7 format, "
                  "auto-detected; a directory audits its *.litmus files)");
    flags.declare("strict-audit", "false",
                  "with --audit: exit 2 if any test is not minimally "
                  "synchronized, 3 if any test could not be audited");
    flags.declare("emit-litmus", "",
                  "also write each test as a herd7 NNN_name.litmus file "
                  "into this directory (plus an @all index)");
    flags.declare("emit-cxx", "",
                  "also write each test as a self-contained C++11 stress "
                  "harness NNN_name.cc into this directory");
    flags.declare("import-litmus", "",
                  "skip synthesis; load tests from this file or directory "
                  "of .litmus files and re-emit them (--out, --emit-*)");
    flags.declare("bench-json", "",
                  "write a BENCH_*.json baseline for this run ('' = skip); "
                  "emitted even when no tests are found, so sweeps always "
                  "get a schema-complete file");
    if (!flags.parse(argc, argv))
        return 1;

    std::unique_ptr<mm::Model> model;
    try {
        model = mm::makeModel(flags.get("model"));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }

    if (!flags.get("audit").empty()) {
        return runAudit(*model, flags.get("audit"),
                        flags.getBool("strict-audit"));
    }

    if (!flags.get("import-litmus").empty()) {
        std::vector<litmus::LitmusTest> tests;
        if (!loadTests(flags.get("import-litmus"), tests))
            return 1;
        bool emitted = false;
        if (!flags.get("emit-litmus").empty()) {
            if (!emitSuiteFiles(tests, flags.get("emit-litmus"), false,
                                model->name()))
                return 1;
            emitted = true;
        }
        if (!flags.get("emit-cxx").empty()) {
            if (!emitSuiteFiles(tests, flags.get("emit-cxx"), true,
                                model->name()))
                return 1;
            emitted = true;
        }
        // Emitting per-test files makes a stdout suite dump noise, but an
        // explicit --out still gets the interchange form.
        if (emitted && flags.get("out") == "-")
            return 0;
        std::ofstream file;
        std::ostream *out = &std::cout;
        if (flags.get("out") != "-") {
            file.open(flags.get("out"));
            if (!file) {
                std::fprintf(stderr, "ltsgen: cannot write %s\n",
                             flags.get("out").c_str());
                return 1;
            }
            out = &file;
        }
        if (flags.getBool("pretty")) {
            for (const auto &t : tests)
                *out << litmus::toString(t) << "\n";
        } else {
            litmus::writeLitmusSuite(*out, tests);
        }
        return 0;
    }

    synth::SynthOptions opt;
    try {
        opt = synth::synthOptionsFromFlags(flags);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }
    synth::SynthProgress progress;
    opt.progress = &progress;

    Timer wall;
    synth::Suite suite;
    const std::string axiom = flags.get("axiom");
    if (axiom == "union") {
        auto suites = synth::synthesizeAll(*model, opt);
        suite = suites.back();
    } else {
        try {
            model->axiom(axiom);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltsgen: %s\n", e.what());
            return 1;
        }
        suite = synth::synthesizeAxiom(*model, axiom, opt);
    }

    bool emitted = false;
    if (!flags.get("emit-litmus").empty()) {
        if (!emitSuiteFiles(suite.tests, flags.get("emit-litmus"), false,
                            model->name()))
            return 1;
        emitted = true;
    }
    if (!flags.get("emit-cxx").empty()) {
        if (!emitSuiteFiles(suite.tests, flags.get("emit-cxx"), true,
                            model->name()))
            return 1;
        emitted = true;
    }

    // Per-test emission replaces the stdout dump unless --out was given
    // explicitly; stats and bench-json below still run either way.
    if (!emitted || flags.get("out") != "-") {
        std::ofstream file;
        std::ostream *out = &std::cout;
        if (flags.get("out") != "-") {
            file.open(flags.get("out"));
            if (!file) {
                std::fprintf(stderr, "ltsgen: cannot write %s\n",
                             flags.get("out").c_str());
                return 1;
            }
            out = &file;
        }

        if (flags.getBool("pretty")) {
            for (const auto &t : suite.tests)
                *out << litmus::toString(t) << "\n";
        } else {
            litmus::writeLitmusSuite(*out, suite.tests);
        }
    }

    if (flags.getBool("stats")) {
        std::fprintf(stderr,
                     "model=%s axiom=%s: %zu tests, wall %.2fs, "
                     "cpu %.2fs\n",
                     model->name().c_str(), suite.axiom.c_str(),
                     suite.tests.size(), wall.seconds(),
                     suite.totalSeconds());
        for (auto [size, count] : suite.testsBySize) {
            std::fprintf(stderr, "  size %d: %d tests (%.3fs)%s\n", size,
                         count, suite.secondsBySize[size],
                         suite.truncated ? " [truncated]" : "");
        }
        std::fprintf(stderr,
                     "  jobs: %llu done of %llu queued; "
                     "%llu SAT conflicts, %llu instances enumerated\n",
                     static_cast<unsigned long long>(
                         progress.jobsDone.load()),
                     static_cast<unsigned long long>(
                         progress.jobsQueued.load()),
                     static_cast<unsigned long long>(
                         progress.conflicts.load()),
                     static_cast<unsigned long long>(
                         progress.instances.load()));
        std::fprintf(stderr,
                     "  solver: %llu restarts; simplify removed %llu vars, "
                     "%llu clauses; shared %llu out / %llu in\n",
                     static_cast<unsigned long long>(
                         progress.restarts.load()),
                     static_cast<unsigned long long>(
                         progress.eliminatedVars.load()),
                     static_cast<unsigned long long>(
                         progress.subsumedClauses.load()),
                     static_cast<unsigned long long>(
                         progress.exportedClauses.load()),
                     static_cast<unsigned long long>(
                         progress.importedClauses.load()));
    }

    if (!flags.get("bench-json").empty()) {
        // Baseline record for the run that just happened — one ModeRun
        // built from the same progress counters the figure benches use.
        bench::ModeRun run;
        run.mode = std::string(opt.incremental ? "incremental"
                                               : "from-scratch");
        if (!opt.symmetryBreaking)
            run.mode += "-nosbp";
        if (!opt.simplify)
            run.mode += "-nosimp";
        if (!opt.shareClauses)
            run.mode += "-noshare";
        run.sbp = opt.symmetryBreaking;
        run.simplify = opt.simplify;
        run.shareClauses = opt.shareClauses;
        run.wallSeconds = wall.seconds();
        run.cpuSeconds = suite.totalSeconds();
        run.jobsQueued = progress.jobsQueued.load();
        run.jobsDone = progress.jobsDone.load();
        run.conflicts = progress.conflicts.load();
        run.restarts = progress.restarts.load();
        run.instances = progress.instances.load();
        run.sbpClauses = progress.sbpClauses.load();
        run.eliminatedVars = progress.eliminatedVars.load();
        run.subsumedClauses = progress.subsumedClauses.load();
        run.importedClauses = progress.importedClauses.load();
        run.exportedClauses = progress.exportedClauses.load();
        run.instancesBySize = suite.instancesBySize;
        run.keptBySize = suite.testsBySize;
        run.sbpClausesBySize = suite.sbpClausesBySize;
        run.suiteDigest = bench::suiteDigest(suite);
        bench::writeBenchJson(flags.get("bench-json"),
                              "ltsgen-" + model->name() + "-" + axiom,
                              model->name(), opt.minSize, opt.maxSize,
                              {run});
    }
    return 0;
}
