/**
 * @file
 * ltsgen — the command-line front end to the synthesis service.
 *
 * Subcommand surface (every path goes through synth::Service, so the
 * store and daemon answer the same bytes the engines produce):
 *
 *   ltsgen synth  --model=tso --max-size=5 [--store=DIR]   # synthesize
 *   ltsgen query  --model=tso [--store=DIR | --socket=S]   # cached query
 *   ltsgen export --in=suite.txt --litmus=out/ [--cxx=out/]
 *   ltsgen import --in=out/ --out=suite.txt                # .litmus -> text
 *   ltsgen audit  --model=tso --in=suite.litmus [--strict]
 *   ltsgen bench  --model=tso --json=BENCH_tso.json
 *
 * The pre-subcommand flag spelling (`ltsgen --model=... --audit=...`)
 * still works through a deprecation shim that maps each flag bundle to
 * the verb above and says so on stderr.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include <unistd.h>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/strings.hh"
#include "common/timer.hh"
#include "litmus/cxx.hh"
#include "litmus/digest.hh"
#include "litmus/format.hh"
#include "litmus/herd.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "sat/drat.hh"
#include "synth/daemon.hh"
#include "synth/minimality.hh"
#include "synth/options.hh"
#include "synth/service.hh"
#include "synth/synthesizer.hh"

using namespace lts;

namespace
{

// Distinct --strict-audit exit codes so CI can tell verdicts apart.
constexpr int kExitNotMinimal = 2;
constexpr int kExitUnsupported = 3;

/** True iff @p text is our interchange format (vs a herd7 .litmus file). */
bool
looksLikeInterchange(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        return startsWith(s, "LTS ");
    }
    return false;
}

/**
 * Load tests from @p path: an interchange suite, a single .litmus file
 * (format auto-detected), or a directory of .litmus files (sorted by
 * name, so the NNN_ prefixes `ltsgen export` writes preserve order).
 */
bool
loadTests(const std::string &path, std::vector<litmus::LitmusTest> &out)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (entry.path().extension() == ".litmus")
                files.push_back(entry.path());
        }
        if (files.empty()) {
            std::fprintf(stderr, "ltsgen: no .litmus files in %s\n",
                         path.c_str());
            return false;
        }
        std::sort(files.begin(), files.end());
    } else {
        files.emplace_back(path);
    }
    for (const auto &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "ltsgen: cannot open %s\n",
                         file.string().c_str());
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();
        try {
            if (looksLikeInterchange(text)) {
                std::istringstream suite_in(text);
                auto suite = litmus::parseLitmusSuite(suite_in);
                out.insert(out.end(), suite.begin(), suite.end());
            } else {
                out.push_back(litmus::parseHerd(text));
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltsgen: %s: %s\n",
                         file.string().c_str(), e.what());
            return false;
        }
    }
    return true;
}

/**
 * Write one file per test into @p dir (NNN_name.litmus or .cc) plus an
 * @all index listing them in suite order.
 */
bool
emitSuiteFiles(const std::vector<litmus::LitmusTest> &tests,
               const std::string &dir, bool cxx_mode,
               const std::string &model_name)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "ltsgen: cannot create %s: %s\n", dir.c_str(),
                     ec.message().c_str());
        return false;
    }
    std::ofstream index(dir + "/@all");
    if (!index) {
        std::fprintf(stderr, "ltsgen: cannot write %s/@all\n", dir.c_str());
        return false;
    }
    // Index prefixes must sort lexically in suite order, so pad them to
    // a uniform width (≥3) covering the largest index.
    int width = 3;
    for (size_t n = tests.size(); n > 1000; n = (n + 9) / 10)
        width++;
    for (size_t i = 0; i < tests.size(); i++) {
        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "%0*u", width,
                      static_cast<unsigned>(i));
        std::string fname = std::string(prefix) + "_" +
                            litmus::sanitizeTestName(tests[i].name) +
                            (cxx_mode ? ".cc" : ".litmus");
        std::ofstream f(dir + "/" + fname);
        if (!f) {
            std::fprintf(stderr, "ltsgen: cannot write %s/%s\n",
                         dir.c_str(), fname.c_str());
            return false;
        }
        if (cxx_mode) {
            litmus::CxxOptions opt;
            opt.modelName = model_name;
            f << litmus::writeCxxHarness(tests[i], opt);
        } else {
            litmus::HerdOptions opt;
            opt.modelName = model_name;
            f << litmus::writeHerd(tests[i], opt);
        }
        index << fname << "\n";
    }
    return true;
}

/** Dump tests to --out (or stdout) as interchange or pretty tables. */
bool
writeSuiteText(const std::vector<litmus::LitmusTest> &tests,
               const std::string &out_path, bool pretty)
{
    std::ofstream file;
    std::ostream *out = &std::cout;
    if (out_path != "-") {
        file.open(out_path);
        if (!file) {
            std::fprintf(stderr, "ltsgen: cannot write %s\n",
                         out_path.c_str());
            return false;
        }
        out = &file;
    }
    if (pretty) {
        for (const auto &t : tests)
            *out << litmus::toString(t) << "\n";
    } else {
        litmus::writeLitmusSuite(*out, tests);
    }
    return true;
}

// --- shared verb cores -------------------------------------------------------

struct EmitSpec
{
    std::string out = "-";
    std::string litmusDir;
    std::string cxxDir;
    bool pretty = false;
};

/** Emit @p tests per the spec; per-file emission mutes the stdout dump
 *  unless --out was set explicitly (the historical behavior). */
int
emitTests(const std::vector<litmus::LitmusTest> &tests,
          const std::string &model_name, const EmitSpec &spec)
{
    bool emitted = false;
    if (!spec.litmusDir.empty()) {
        if (!emitSuiteFiles(tests, spec.litmusDir, false, model_name))
            return 1;
        emitted = true;
    }
    if (!spec.cxxDir.empty()) {
        if (!emitSuiteFiles(tests, spec.cxxDir, true, model_name))
            return 1;
        emitted = true;
    }
    if (emitted && spec.out == "-")
        return 0;
    return writeSuiteText(tests, spec.out, spec.pretty) ? 0 : 1;
}

int
doAudit(const std::string &model_name, const std::string &path, bool strict)
{
    std::unique_ptr<mm::Model> model;
    try {
        model = mm::makeModel(model_name);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }
    std::vector<litmus::LitmusTest> tests;
    if (!loadTests(path, tests))
        return 1;
    int redundant = 0;
    int unsupported = 0;
    for (const auto &t : tests) {
        synth::AuditStatus status;
        std::vector<std::string> axioms;
        try {
            axioms = synth::minimalAxioms(*model, t, &status);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltsgen: %s: %s\n", t.name.c_str(),
                         e.what());
            return 1;
        }
        if (status == synth::AuditStatus::Unsupported) {
            // Not a minimality verdict: the lone-sc workaround cannot
            // audit tests with more than two SC fences.
            std::printf("%-24s UNSUPPORTED (more than two SC fences)\n",
                        t.name.c_str());
            unsupported++;
            continue;
        }
        std::printf("%-24s %s", t.name.c_str(),
                    axioms.empty() ? "NOT-MINIMAL" : "minimal:");
        for (const auto &a : axioms)
            std::printf(" %s", a.c_str());
        std::printf("\n");
        if (axioms.empty())
            redundant++;
    }
    std::printf("%d/%zu tests are not minimally synchronized under %s\n",
                redundant, tests.size(), model->name().c_str());
    if (unsupported) {
        std::printf("%d tests could not be audited (unsupported SC-fence "
                    "configuration)\n",
                    unsupported);
    }
    if (strict) {
        // Unsupported outranks not-minimal: "could not check" must never
        // read as a (failed or passed) minimality verdict.
        if (unsupported)
            return kExitUnsupported;
        if (redundant)
            return kExitNotMinimal;
    }
    return 0;
}

int
doImport(const std::string &in_path, const EmitSpec &spec,
         const std::string &model_name)
{
    std::vector<litmus::LitmusTest> tests;
    if (!loadTests(in_path, tests))
        return 1;
    return emitTests(tests, model_name, spec);
}

/** Summarize a service result on stderr (the --stats surface). */
void
printResultStats(const synth::SuiteResult &result, double wall_seconds)
{
    const synth::Suite &suite = result.unionSuite();
    std::fprintf(stderr,
                 "model=%s axiom=%s: %zu tests, wall %.2fs, cpu %.2fs\n",
                 suite.model.c_str(), suite.axiom.c_str(),
                 suite.tests.size(), wall_seconds, suite.totalSeconds());
    for (auto [size, count] : suite.testsBySize) {
        std::fprintf(stderr, "  size %d: %d tests (%.3fs)%s\n", size, count,
                     suite.secondsBySize.count(size)
                         ? suite.secondsBySize.at(size)
                         : 0.0,
                     suite.truncated ? " [truncated]" : "");
    }
    const synth::SynthProgressSnapshot &p = result.progress;
    std::fprintf(stderr,
                 "  jobs: %llu done of %llu queued; "
                 "%llu SAT conflicts, %llu instances enumerated\n",
                 static_cast<unsigned long long>(p.jobsDone),
                 static_cast<unsigned long long>(p.jobsQueued),
                 static_cast<unsigned long long>(p.conflicts),
                 static_cast<unsigned long long>(p.instances));
    std::fprintf(stderr,
                 "  solver: %llu restarts; simplify removed %llu vars, "
                 "%llu clauses; shared %llu out / %llu in\n",
                 static_cast<unsigned long long>(p.restarts),
                 static_cast<unsigned long long>(p.eliminatedVars),
                 static_cast<unsigned long long>(p.subsumedClauses),
                 static_cast<unsigned long long>(p.exportedClauses),
                 static_cast<unsigned long long>(p.importedClauses));
    std::fprintf(stderr, "  suite: %s\n", result.suiteDigest.c_str());
    std::fprintf(stderr, "  cache: %s (%llu shards cached, %llu synthesized)\n",
                 synth::toString(result.cache).c_str(),
                 static_cast<unsigned long long>(result.shardsCached),
                 static_cast<unsigned long long>(result.shardsSynthesized));
}

void
writeBenchRecord(const std::string &path, const synth::SuiteRequest &request,
                 const synth::SuiteResult &result, double wall_seconds)
{
    const synth::Suite &suite = result.unionSuite();
    const synth::SynthProgressSnapshot &p = result.progress;
    const synth::SynthOptions &opt = request.options;
    bench::ModeRun run;
    run.mode =
        std::string(opt.incremental ? "incremental" : "from-scratch");
    if (!opt.symmetryBreaking)
        run.mode += "-nosbp";
    if (!opt.simplify)
        run.mode += "-nosimp";
    if (!opt.shareClauses)
        run.mode += "-noshare";
    run.sbp = opt.symmetryBreaking;
    run.simplify = opt.simplify;
    run.shareClauses = opt.shareClauses;
    run.wallSeconds = wall_seconds;
    run.cpuSeconds = suite.totalSeconds();
    run.jobsQueued = p.jobsQueued;
    run.jobsDone = p.jobsDone;
    run.conflicts = p.conflicts;
    run.restarts = p.restarts;
    run.instances = p.instances;
    run.sbpClauses = p.sbpClauses;
    run.eliminatedVars = p.eliminatedVars;
    run.subsumedClauses = p.subsumedClauses;
    run.importedClauses = p.importedClauses;
    run.exportedClauses = p.exportedClauses;
    run.instancesBySize = suite.instancesBySize;
    run.keptBySize = suite.testsBySize;
    run.sbpClausesBySize = suite.sbpClausesBySize;
    run.suiteDigest = bench::suiteDigest(suite);
    std::string axiom = request.axiom.empty() ? "union" : request.axiom;
    bench::writeBenchJson(path, "ltsgen-" + request.model + "-" + axiom,
                          request.model, opt.minSize, opt.maxSize, {run});
}

/** Build a SuiteRequest from parsed flags (model/axiom/synth knobs). */
bool
requestFromFlags(const Flags &flags, synth::SuiteRequest &request)
{
    request.model = flags.get("model");
    request.axiom = flags.get("axiom");
    if (request.axiom == "union")
        request.axiom.clear();
    try {
        request.options = synth::synthOptionsFromFlags(flags);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return false;
    }
    request.maxSize = request.options.maxSize;
    return true;
}

/**
 * Check every *.drat under @p dir with the independent checker. A trace
 * without a conclusion is reported and skipped — a budget-truncated
 * shard never concludes, so its file claims nothing — while any other
 * failure is fatal. Returns the number of bad proofs.
 */
int
checkProofDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".drat")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "ltsgen: no proofs found under %s\n",
                     dir.c_str());
        return 1;
    }
    int bad = 0;
    for (const auto &path : files) {
        sat::DratCheckResult res = sat::checkDratFile(path.string());
        if (res.ok) {
            std::fprintf(stderr,
                         "  proof %s: ok (%zu conclusions, %zu steps, "
                         "core %zu steps / %zu inputs)\n",
                         path.filename().c_str(), res.conclusions,
                         res.steps, res.coreSteps, res.coreInputs);
        } else if (res.error.find("no conclusion") != std::string::npos) {
            std::fprintf(stderr, "  proof %s: skipped (%s)\n",
                         path.filename().c_str(), res.error.c_str());
        } else {
            std::fprintf(stderr, "  proof %s: FAILED: %s\n",
                         path.filename().c_str(), res.error.c_str());
            bad++;
        }
    }
    return bad;
}

/** The synth verb core, shared with the legacy spelling. */
int
doSynth(const Flags &flags)
{
    synth::SuiteRequest request;
    if (!requestFromFlags(flags, request))
        return 1;

    bool proof_check = flags.getBool("proof-check");
    std::filesystem::path temp_proof_dir;
    if (proof_check && request.options.proofDir.empty()) {
        temp_proof_dir = std::filesystem::temp_directory_path() /
                         ("ltsgen-proof-" + std::to_string(::getpid()));
        request.options.proofDir = temp_proof_dir.string();
    }
    std::error_code mk_ec;
    if (!request.options.proofDir.empty())
        std::filesystem::create_directories(request.options.proofDir, mk_ec);
    if (!request.options.dumpDimacsDir.empty()) {
        std::filesystem::create_directories(request.options.dumpDimacsDir,
                                            mk_ec);
    }

    synth::ServiceConfig config;
    config.storeDir = flags.get("store");
    synth::Service service(config);

    Timer wall;
    synth::SuiteResult result;
    try {
        result = service.query(request);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }
    const synth::Suite &suite = result.unionSuite();

    EmitSpec spec;
    spec.out = flags.get("out");
    spec.litmusDir = flags.get("emit-litmus");
    spec.cxxDir = flags.get("emit-cxx");
    spec.pretty = flags.getBool("pretty");
    int rc = emitTests(suite.tests, request.model, spec);
    if (rc != 0)
        return rc;

    if (flags.getBool("stats"))
        printResultStats(result, wall.seconds());
    if (!flags.get("bench-json").empty()) {
        writeBenchRecord(flags.get("bench-json"), request, result,
                         wall.seconds());
    }

    if (proof_check) {
        std::fprintf(stderr, "ltsgen: checking proofs under %s\n",
                     request.options.proofDir.c_str());
        // Cache hits ran no solver and wrote no proof: there is nothing
        // to check, but silently passing would overstate what was
        // verified, so say so and fail.
        int bad = checkProofDir(request.options.proofDir);
        if (!temp_proof_dir.empty()) {
            std::error_code rm_ec;
            std::filesystem::remove_all(temp_proof_dir, rm_ec);
        }
        if (bad != 0) {
            std::fprintf(stderr, "ltsgen: %d bad proof(s)\n", bad);
            return 1;
        }
    }
    return 0;
}

// --- subcommands -------------------------------------------------------------

void
declareSynthVerbFlags(Flags &flags)
{
    flags.declare("model", "tso", "memory model: sc|tso|power|armv7|scc|c11");
    flags.declare("axiom", "union", "axiom to target, or 'union' for all");
    synth::declareSynthFlags(flags);
    flags.declare("out", "-", "output file ('-' = stdout)");
    flags.declare("stats", "false", "print per-size counts and runtimes");
    flags.declare("pretty", "false",
                  "print human-readable tables instead of .litmus text");
    flags.declare("emit-litmus", "",
                  "also write each test as a herd7 NNN_name.litmus file "
                  "into this directory (plus an @all index)");
    flags.declare("emit-cxx", "",
                  "also write each test as a self-contained C++11 stress "
                  "harness NNN_name.cc into this directory");
    flags.declare("store", "",
                  "content-addressed suite store directory; repeat "
                  "queries are answered from it byte-identically");
    flags.declare("bench-json", "",
                  "write a BENCH_*.json baseline for this run ('' = skip)");
    flags.declare("proof-check", "false",
                  "after synthesis, run the independent DRAT checker over "
                  "every proof in the --proof directory (a temporary "
                  "directory when --proof is unset) and fail on any bad "
                  "proof");
}

int
cmdSynth(int argc, char **argv)
{
    Flags flags;
    declareSynthVerbFlags(flags);
    if (!flags.parse(argc, argv))
        return 1;
    return doSynth(flags);
}

int
cmdQuery(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso", "memory model: sc|tso|power|armv7|scc|c11");
    flags.declare("axiom", "union", "axiom to target, or 'union' for all");
    synth::declareSynthFlags(flags);
    flags.declare("store", "",
                  "suite store directory (local mode; '' = no store)");
    flags.declare("socket", "",
                  "query a running ltsd on this socket instead of "
                  "synthesizing locally");
    flags.declare("out", "", "also write the suite here ('-' = stdout)");
    flags.declare("progress", "false", "stream progress lines to stderr");
    if (!flags.parse(argc, argv))
        return 1;

    synth::SuiteRequest request;
    if (!requestFromFlags(flags, request))
        return 1;

    synth::QueryProgressFn on_progress;
    if (flags.getBool("progress")) {
        on_progress = [](const std::string &line) {
            std::fprintf(stderr, "ltsgen: %s\n", line.c_str());
        };
    }

    Timer wall;
    synth::SuiteResult result;
    try {
        if (!flags.get("socket").empty()) {
            result = synth::queryDaemon(flags.get("socket"), request,
                                        on_progress);
        } else {
            synth::ServiceConfig config;
            config.storeDir = flags.get("store");
            synth::Service service(config);
            result = service.query(request, on_progress);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }

    // One key per line, grep-friendly: the CI smoke job asserts on
    // "suite:" (digest equality) and "cache: hit".
    std::printf("model: %s\n", request.model.c_str());
    std::printf("bound: %d\n", request.maxSize);
    std::printf("suite: %s\n", result.suiteDigest.c_str());
    std::printf("cache: %s\n", synth::toString(result.cache).c_str());
    std::printf("shards: %llu cached, %llu synthesized\n",
                static_cast<unsigned long long>(result.shardsCached),
                static_cast<unsigned long long>(result.shardsSynthesized));
    std::printf("tests: %zu\n", result.unionSuite().tests.size());
    std::printf("wall: %.6f\n", wall.seconds());

    if (!flags.get("out").empty()) {
        if (!writeSuiteText(result.unionSuite().tests, flags.get("out"),
                            false)) {
            return 1;
        }
    }
    return 0;
}

int
cmdExport(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso", "model name stamped into file headers");
    flags.declare("in", "", "interchange suite (or .litmus file/dir) to read");
    flags.declare("litmus", "", "write herd7 .litmus files into this dir");
    flags.declare("cxx", "", "write C++11 stress harnesses into this dir");
    if (!flags.parse(argc, argv))
        return 1;
    if (flags.get("in").empty() ||
        (flags.get("litmus").empty() && flags.get("cxx").empty())) {
        std::fprintf(stderr,
                     "ltsgen export: need --in and --litmus or --cxx\n");
        return 1;
    }
    EmitSpec spec;
    spec.litmusDir = flags.get("litmus");
    spec.cxxDir = flags.get("cxx");
    return doImport(flags.get("in"), spec, flags.get("model"));
}

int
cmdImport(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso", "model name stamped into emitted headers");
    flags.declare("in", "", "file or directory of .litmus files to load");
    flags.declare("out", "-", "interchange output ('-' = stdout)");
    flags.declare("pretty", "false", "human-readable tables instead");
    flags.declare("emit-litmus", "", "re-emit herd7 files into this dir");
    flags.declare("emit-cxx", "", "re-emit C++11 harnesses into this dir");
    if (!flags.parse(argc, argv))
        return 1;
    if (flags.get("in").empty()) {
        std::fprintf(stderr, "ltsgen import: need --in\n");
        return 1;
    }
    EmitSpec spec;
    spec.out = flags.get("out");
    spec.litmusDir = flags.get("emit-litmus");
    spec.cxxDir = flags.get("emit-cxx");
    spec.pretty = flags.getBool("pretty");
    return doImport(flags.get("in"), spec, flags.get("model"));
}

int
cmdAudit(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso", "model to audit against");
    flags.declare("in", "", "suite to audit (interchange or herd7)");
    flags.declare("strict", "false",
                  "exit 2 if any test is not minimally synchronized, "
                  "3 if any test could not be audited");
    if (!flags.parse(argc, argv))
        return 1;
    if (flags.get("in").empty()) {
        std::fprintf(stderr, "ltsgen audit: need --in\n");
        return 1;
    }
    return doAudit(flags.get("model"), flags.get("in"),
                   flags.getBool("strict"));
}

int
cmdBench(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso", "memory model to measure");
    flags.declare("axiom", "union", "axiom to target, or 'union' for all");
    synth::declareSynthFlags(flags);
    flags.declare("store", "", "suite store directory ('' = no store)");
    flags.declare("json", "", "BENCH_*.json output path (required)");
    if (!flags.parse(argc, argv))
        return 1;
    if (flags.get("json").empty()) {
        std::fprintf(stderr, "ltsgen bench: need --json\n");
        return 1;
    }
    synth::SuiteRequest request;
    if (!requestFromFlags(flags, request))
        return 1;
    synth::ServiceConfig config;
    config.storeDir = flags.get("store");
    synth::Service service(config);
    Timer wall;
    synth::SuiteResult result;
    try {
        result = service.query(request);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }
    writeBenchRecord(flags.get("json"), request, result, wall.seconds());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ltsgen <verb> [flags]   (ltsgen <verb> --help for flags)\n"
        "  synth   synthesize a suite (optionally store-backed)\n"
        "  query   answer a suite request from store/daemon/synthesis\n"
        "  export  interchange suite -> herd7 .litmus / C++11 harnesses\n"
        "  import  .litmus files -> interchange suite\n"
        "  audit   check an existing suite for minimality\n"
        "  bench   measure one synthesis run into BENCH_*.json\n");
    return 1;
}

/**
 * The pre-verb flag surface, kept alive for scripts: parse the union of
 * the historical flags, say which verb now owns the request, and run
 * the same cores the verbs run.
 */
int
runLegacy(int argc, char **argv)
{
    Flags flags;
    declareSynthVerbFlags(flags);
    flags.declare("audit", "",
                  "audit an existing suite for minimality instead of "
                  "synthesizing (interchange or herd7 format, "
                  "auto-detected; a directory audits its *.litmus files)");
    flags.declare("strict-audit", "false",
                  "with --audit: exit 2 if any test is not minimally "
                  "synchronized, 3 if any test could not be audited");
    flags.declare("import-litmus", "",
                  "skip synthesis; load tests from this file or directory "
                  "of .litmus files and re-emit them (--out, --emit-*)");
    if (!flags.parse(argc, argv))
        return 1;

    if (!flags.get("audit").empty()) {
        std::fprintf(stderr,
                     "ltsgen: note: --audit is deprecated; use "
                     "`ltsgen audit --model=%s --in=%s`\n",
                     flags.get("model").c_str(), flags.get("audit").c_str());
        return doAudit(flags.get("model"), flags.get("audit"),
                       flags.getBool("strict-audit"));
    }
    if (!flags.get("import-litmus").empty()) {
        std::fprintf(stderr,
                     "ltsgen: note: --import-litmus is deprecated; use "
                     "`ltsgen import --in=%s`\n",
                     flags.get("import-litmus").c_str());
        EmitSpec spec;
        spec.out = flags.get("out");
        spec.litmusDir = flags.get("emit-litmus");
        spec.cxxDir = flags.get("emit-cxx");
        spec.pretty = flags.getBool("pretty");
        return doImport(flags.get("import-litmus"), spec,
                        flags.get("model"));
    }
    std::fprintf(stderr,
                 "ltsgen: note: flag-only invocation is deprecated; use "
                 "`ltsgen synth` (or query/export/import/audit/bench)\n");
    return doSynth(flags);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && argv[1][0] != '-') {
        const std::string verb = argv[1];
        // Shift the verb out so each subcommand parses its own flags.
        if (verb == "synth")
            return cmdSynth(argc - 1, argv + 1);
        if (verb == "query")
            return cmdQuery(argc - 1, argv + 1);
        if (verb == "export")
            return cmdExport(argc - 1, argv + 1);
        if (verb == "import")
            return cmdImport(argc - 1, argv + 1);
        if (verb == "audit")
            return cmdAudit(argc - 1, argv + 1);
        if (verb == "bench")
            return cmdBench(argc - 1, argv + 1);
        std::fprintf(stderr, "ltsgen: unknown verb '%s'\n", verb.c_str());
        return usage();
    }
    if (argc < 2)
        return usage();
    return runLegacy(argc, argv);
}
