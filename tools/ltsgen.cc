/**
 * @file
 * ltsgen — the command-line front end to the synthesis library.
 *
 * Generates a comprehensive, minimal-by-construction litmus test suite
 * for a chosen memory model and emits it in the textual interchange
 * format (litmus/format.hh) on stdout or into a file, ready to feed
 * into an external testing harness.
 *
 *   ltsgen --model=tso --max-size=5                  # union suite
 *   ltsgen --model=power --axiom=observation         # one axiom
 *   ltsgen --model=scc --out=scc.litmus --stats
 *   ltsgen --model=power --max-size=5 --jobs=8       # sharded synthesis
 *   ltsgen --audit=suite.litmus --model=tso          # minimality audit
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/timer.hh"
#include "litmus/format.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/minimality.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

using namespace lts;

namespace
{

int
runAudit(const mm::Model &model, const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "ltsgen: cannot open %s\n", path.c_str());
        return 1;
    }
    std::vector<litmus::LitmusTest> tests;
    try {
        tests = litmus::parseLitmusSuite(in);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }
    int redundant = 0;
    int unsupported = 0;
    for (const auto &t : tests) {
        synth::AuditStatus status;
        auto axioms = synth::minimalAxioms(model, t, &status);
        if (status == synth::AuditStatus::Unsupported) {
            // Not a minimality verdict: the lone-sc workaround cannot
            // audit tests with more than two SC fences.
            std::printf("%-24s UNSUPPORTED (more than two SC fences)\n",
                        t.name.c_str());
            unsupported++;
            continue;
        }
        std::printf("%-24s %s", t.name.c_str(),
                    axioms.empty() ? "NOT-MINIMAL" : "minimal:");
        for (const auto &a : axioms)
            std::printf(" %s", a.c_str());
        std::printf("\n");
        if (axioms.empty())
            redundant++;
    }
    std::printf("%d/%zu tests are not minimally synchronized under %s\n",
                redundant, tests.size(), model.name().c_str());
    if (unsupported) {
        std::printf("%d tests could not be audited (unsupported SC-fence "
                    "configuration)\n",
                    unsupported);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("model", "tso",
                  "memory model: sc|tso|power|armv7|scc|c11");
    flags.declare("axiom", "union",
                  "axiom to target, or 'union' for all");
    synth::declareSynthFlags(flags);
    flags.declare("out", "-", "output file ('-' = stdout)");
    flags.declare("stats", "false", "print per-size counts and runtimes");
    flags.declare("pretty", "false",
                  "print human-readable tables instead of .litmus text");
    flags.declare("audit", "",
                  "audit an existing .litmus suite for minimality "
                  "instead of synthesizing");
    flags.declare("bench-json", "",
                  "write a BENCH_*.json baseline for this run ('' = skip); "
                  "emitted even when no tests are found, so sweeps always "
                  "get a schema-complete file");
    if (!flags.parse(argc, argv))
        return 1;

    std::unique_ptr<mm::Model> model;
    try {
        model = mm::makeModel(flags.get("model"));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }

    if (!flags.get("audit").empty())
        return runAudit(*model, flags.get("audit"));

    synth::SynthOptions opt;
    try {
        opt = synth::synthOptionsFromFlags(flags);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ltsgen: %s\n", e.what());
        return 1;
    }
    synth::SynthProgress progress;
    opt.progress = &progress;

    Timer wall;
    synth::Suite suite;
    const std::string axiom = flags.get("axiom");
    if (axiom == "union") {
        auto suites = synth::synthesizeAll(*model, opt);
        suite = suites.back();
    } else {
        try {
            model->axiom(axiom);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ltsgen: %s\n", e.what());
            return 1;
        }
        suite = synth::synthesizeAxiom(*model, axiom, opt);
    }

    std::ofstream file;
    std::ostream *out = &std::cout;
    if (flags.get("out") != "-") {
        file.open(flags.get("out"));
        if (!file) {
            std::fprintf(stderr, "ltsgen: cannot write %s\n",
                         flags.get("out").c_str());
            return 1;
        }
        out = &file;
    }

    if (flags.getBool("pretty")) {
        for (const auto &t : suite.tests)
            *out << litmus::toString(t) << "\n";
    } else {
        litmus::writeLitmusSuite(*out, suite.tests);
    }

    if (flags.getBool("stats")) {
        std::fprintf(stderr,
                     "model=%s axiom=%s: %zu tests, wall %.2fs, "
                     "cpu %.2fs\n",
                     model->name().c_str(), suite.axiom.c_str(),
                     suite.tests.size(), wall.seconds(),
                     suite.totalSeconds());
        for (auto [size, count] : suite.testsBySize) {
            std::fprintf(stderr, "  size %d: %d tests (%.3fs)%s\n", size,
                         count, suite.secondsBySize[size],
                         suite.truncated ? " [truncated]" : "");
        }
        std::fprintf(stderr,
                     "  jobs: %llu done of %llu queued; "
                     "%llu SAT conflicts, %llu instances enumerated\n",
                     static_cast<unsigned long long>(
                         progress.jobsDone.load()),
                     static_cast<unsigned long long>(
                         progress.jobsQueued.load()),
                     static_cast<unsigned long long>(
                         progress.conflicts.load()),
                     static_cast<unsigned long long>(
                         progress.instances.load()));
        std::fprintf(stderr,
                     "  solver: %llu restarts; simplify removed %llu vars, "
                     "%llu clauses; shared %llu out / %llu in\n",
                     static_cast<unsigned long long>(
                         progress.restarts.load()),
                     static_cast<unsigned long long>(
                         progress.eliminatedVars.load()),
                     static_cast<unsigned long long>(
                         progress.subsumedClauses.load()),
                     static_cast<unsigned long long>(
                         progress.exportedClauses.load()),
                     static_cast<unsigned long long>(
                         progress.importedClauses.load()));
    }

    if (!flags.get("bench-json").empty()) {
        // Baseline record for the run that just happened — one ModeRun
        // built from the same progress counters the figure benches use.
        bench::ModeRun run;
        run.mode = std::string(opt.incremental ? "incremental"
                                               : "from-scratch");
        if (!opt.symmetryBreaking)
            run.mode += "-nosbp";
        if (!opt.simplify)
            run.mode += "-nosimp";
        if (!opt.shareClauses)
            run.mode += "-noshare";
        run.sbp = opt.symmetryBreaking;
        run.simplify = opt.simplify;
        run.shareClauses = opt.shareClauses;
        run.wallSeconds = wall.seconds();
        run.cpuSeconds = suite.totalSeconds();
        run.jobsQueued = progress.jobsQueued.load();
        run.jobsDone = progress.jobsDone.load();
        run.conflicts = progress.conflicts.load();
        run.restarts = progress.restarts.load();
        run.instances = progress.instances.load();
        run.sbpClauses = progress.sbpClauses.load();
        run.eliminatedVars = progress.eliminatedVars.load();
        run.subsumedClauses = progress.subsumedClauses.load();
        run.importedClauses = progress.importedClauses.load();
        run.exportedClauses = progress.exportedClauses.load();
        run.instancesBySize = suite.instancesBySize;
        run.keptBySize = suite.testsBySize;
        run.sbpClausesBySize = suite.sbpClausesBySize;
        run.suiteDigest = bench::suiteDigest(suite);
        bench::writeBenchJson(flags.get("bench-json"),
                              "ltsgen-" + model->name() + "-" + axiom,
                              model->name(), opt.minSize, opt.maxSize,
                              {run});
    }
    return 0;
}
