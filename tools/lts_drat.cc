/**
 * @file
 * lts-drat-check — independent DRAT proof checker.
 *
 * Verifies the self-contained proof traces the synthesizer writes under
 * `ltsgen synth --proof=DIR` (see sat/drat.hh for the format and trust
 * model). The checker shares no state with the solver: it replays the
 * trace with its own unit propagation, verifying each conclusion
 * backward and extracting the unsat core as a side effect.
 *
 *   lts-drat-check proofs/tso.n4.drat          # check one trace
 *   lts-drat-check --verify-all proofs/*.drat  # check every derivation
 *
 * Exit code 0 when every file checks, 1 when any fails (the diagnostic
 * names the offending step), 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sat/drat.hh"

using namespace lts;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: lts-drat-check [--verify-all] [--quiet] FILE...\n"
        "\n"
        "  --verify-all  check every derived clause, not only the\n"
        "                conclusions' antecedent cone\n"
        "  --quiet       print nothing for proofs that check\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool verify_all = false;
    bool quiet = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--verify-all") == 0) {
            verify_all = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage();
            return 0;
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            std::fprintf(stderr, "lts-drat-check: unknown flag %s\n",
                         argv[i]);
            usage();
            return 2;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty()) {
        usage();
        return 2;
    }

    int bad = 0;
    for (const std::string &path : files) {
        sat::DratCheckResult res = sat::checkDratFile(path, verify_all);
        if (!res.ok) {
            std::fprintf(stderr, "%s: FAILED: %s\n", path.c_str(),
                         res.error.c_str());
            bad++;
            continue;
        }
        if (!quiet) {
            std::printf("%s: ok\n", path.c_str());
            std::printf(
                "  steps %zu (inputs %zu, derived %zu, deletions %zu, "
                "conclusions %zu)\n",
                res.steps, res.inputs, res.derived, res.deletions,
                res.conclusions);
            std::printf("  verified %zu derivations (%zu via RAT)\n",
                        res.verified, res.ratSteps);
            std::printf("  core: %zu steps, %zu of %zu inputs\n",
                        res.coreSteps, res.coreInputs, res.inputs);
        }
    }
    return bad == 0 ? 0 : 1;
}
