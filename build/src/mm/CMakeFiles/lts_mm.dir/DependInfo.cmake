
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/convert.cc" "src/mm/CMakeFiles/lts_mm.dir/convert.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/convert.cc.o.d"
  "/root/repo/src/mm/exprs.cc" "src/mm/CMakeFiles/lts_mm.dir/exprs.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/exprs.cc.o.d"
  "/root/repo/src/mm/model.cc" "src/mm/CMakeFiles/lts_mm.dir/model.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/model.cc.o.d"
  "/root/repo/src/mm/models/c11.cc" "src/mm/CMakeFiles/lts_mm.dir/models/c11.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/models/c11.cc.o.d"
  "/root/repo/src/mm/models/power.cc" "src/mm/CMakeFiles/lts_mm.dir/models/power.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/models/power.cc.o.d"
  "/root/repo/src/mm/models/sc.cc" "src/mm/CMakeFiles/lts_mm.dir/models/sc.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/models/sc.cc.o.d"
  "/root/repo/src/mm/models/scc.cc" "src/mm/CMakeFiles/lts_mm.dir/models/scc.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/models/scc.cc.o.d"
  "/root/repo/src/mm/models/sscc.cc" "src/mm/CMakeFiles/lts_mm.dir/models/sscc.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/models/sscc.cc.o.d"
  "/root/repo/src/mm/models/tso.cc" "src/mm/CMakeFiles/lts_mm.dir/models/tso.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/models/tso.cc.o.d"
  "/root/repo/src/mm/registry.cc" "src/mm/CMakeFiles/lts_mm.dir/registry.cc.o" "gcc" "src/mm/CMakeFiles/lts_mm.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rel/CMakeFiles/lts_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/lts_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lts_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
