file(REMOVE_RECURSE
  "CMakeFiles/lts_mm.dir/convert.cc.o"
  "CMakeFiles/lts_mm.dir/convert.cc.o.d"
  "CMakeFiles/lts_mm.dir/exprs.cc.o"
  "CMakeFiles/lts_mm.dir/exprs.cc.o.d"
  "CMakeFiles/lts_mm.dir/model.cc.o"
  "CMakeFiles/lts_mm.dir/model.cc.o.d"
  "CMakeFiles/lts_mm.dir/models/c11.cc.o"
  "CMakeFiles/lts_mm.dir/models/c11.cc.o.d"
  "CMakeFiles/lts_mm.dir/models/power.cc.o"
  "CMakeFiles/lts_mm.dir/models/power.cc.o.d"
  "CMakeFiles/lts_mm.dir/models/sc.cc.o"
  "CMakeFiles/lts_mm.dir/models/sc.cc.o.d"
  "CMakeFiles/lts_mm.dir/models/scc.cc.o"
  "CMakeFiles/lts_mm.dir/models/scc.cc.o.d"
  "CMakeFiles/lts_mm.dir/models/sscc.cc.o"
  "CMakeFiles/lts_mm.dir/models/sscc.cc.o.d"
  "CMakeFiles/lts_mm.dir/models/tso.cc.o"
  "CMakeFiles/lts_mm.dir/models/tso.cc.o.d"
  "CMakeFiles/lts_mm.dir/registry.cc.o"
  "CMakeFiles/lts_mm.dir/registry.cc.o.d"
  "liblts_mm.a"
  "liblts_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
