# Empty compiler generated dependencies file for lts_mm.
# This may be replaced when dependencies are built.
