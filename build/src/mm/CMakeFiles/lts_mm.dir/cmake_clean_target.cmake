file(REMOVE_RECURSE
  "liblts_mm.a"
)
