file(REMOVE_RECURSE
  "liblts_litmus.a"
)
