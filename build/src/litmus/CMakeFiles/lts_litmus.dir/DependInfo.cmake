
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litmus/canon.cc" "src/litmus/CMakeFiles/lts_litmus.dir/canon.cc.o" "gcc" "src/litmus/CMakeFiles/lts_litmus.dir/canon.cc.o.d"
  "/root/repo/src/litmus/event.cc" "src/litmus/CMakeFiles/lts_litmus.dir/event.cc.o" "gcc" "src/litmus/CMakeFiles/lts_litmus.dir/event.cc.o.d"
  "/root/repo/src/litmus/format.cc" "src/litmus/CMakeFiles/lts_litmus.dir/format.cc.o" "gcc" "src/litmus/CMakeFiles/lts_litmus.dir/format.cc.o.d"
  "/root/repo/src/litmus/print.cc" "src/litmus/CMakeFiles/lts_litmus.dir/print.cc.o" "gcc" "src/litmus/CMakeFiles/lts_litmus.dir/print.cc.o.d"
  "/root/repo/src/litmus/test.cc" "src/litmus/CMakeFiles/lts_litmus.dir/test.cc.o" "gcc" "src/litmus/CMakeFiles/lts_litmus.dir/test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
