# Empty compiler generated dependencies file for lts_litmus.
# This may be replaced when dependencies are built.
