file(REMOVE_RECURSE
  "CMakeFiles/lts_litmus.dir/canon.cc.o"
  "CMakeFiles/lts_litmus.dir/canon.cc.o.d"
  "CMakeFiles/lts_litmus.dir/event.cc.o"
  "CMakeFiles/lts_litmus.dir/event.cc.o.d"
  "CMakeFiles/lts_litmus.dir/format.cc.o"
  "CMakeFiles/lts_litmus.dir/format.cc.o.d"
  "CMakeFiles/lts_litmus.dir/print.cc.o"
  "CMakeFiles/lts_litmus.dir/print.cc.o.d"
  "CMakeFiles/lts_litmus.dir/test.cc.o"
  "CMakeFiles/lts_litmus.dir/test.cc.o.d"
  "liblts_litmus.a"
  "liblts_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
