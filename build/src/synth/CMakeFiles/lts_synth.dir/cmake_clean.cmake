file(REMOVE_RECURSE
  "CMakeFiles/lts_synth.dir/compare.cc.o"
  "CMakeFiles/lts_synth.dir/compare.cc.o.d"
  "CMakeFiles/lts_synth.dir/executor.cc.o"
  "CMakeFiles/lts_synth.dir/executor.cc.o.d"
  "CMakeFiles/lts_synth.dir/explicit.cc.o"
  "CMakeFiles/lts_synth.dir/explicit.cc.o.d"
  "CMakeFiles/lts_synth.dir/minimality.cc.o"
  "CMakeFiles/lts_synth.dir/minimality.cc.o.d"
  "CMakeFiles/lts_synth.dir/sound.cc.o"
  "CMakeFiles/lts_synth.dir/sound.cc.o.d"
  "CMakeFiles/lts_synth.dir/synthesizer.cc.o"
  "CMakeFiles/lts_synth.dir/synthesizer.cc.o.d"
  "liblts_synth.a"
  "liblts_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
