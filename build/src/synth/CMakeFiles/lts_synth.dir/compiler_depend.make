# Empty compiler generated dependencies file for lts_synth.
# This may be replaced when dependencies are built.
