file(REMOVE_RECURSE
  "liblts_synth.a"
)
