file(REMOVE_RECURSE
  "liblts_rel.a"
)
