# Empty compiler generated dependencies file for lts_rel.
# This may be replaced when dependencies are built.
