file(REMOVE_RECURSE
  "CMakeFiles/lts_rel.dir/encoder.cc.o"
  "CMakeFiles/lts_rel.dir/encoder.cc.o.d"
  "CMakeFiles/lts_rel.dir/eval.cc.o"
  "CMakeFiles/lts_rel.dir/eval.cc.o.d"
  "CMakeFiles/lts_rel.dir/expr.cc.o"
  "CMakeFiles/lts_rel.dir/expr.cc.o.d"
  "CMakeFiles/lts_rel.dir/formula.cc.o"
  "CMakeFiles/lts_rel.dir/formula.cc.o.d"
  "CMakeFiles/lts_rel.dir/gates.cc.o"
  "CMakeFiles/lts_rel.dir/gates.cc.o.d"
  "liblts_rel.a"
  "liblts_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
