
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/encoder.cc" "src/rel/CMakeFiles/lts_rel.dir/encoder.cc.o" "gcc" "src/rel/CMakeFiles/lts_rel.dir/encoder.cc.o.d"
  "/root/repo/src/rel/eval.cc" "src/rel/CMakeFiles/lts_rel.dir/eval.cc.o" "gcc" "src/rel/CMakeFiles/lts_rel.dir/eval.cc.o.d"
  "/root/repo/src/rel/expr.cc" "src/rel/CMakeFiles/lts_rel.dir/expr.cc.o" "gcc" "src/rel/CMakeFiles/lts_rel.dir/expr.cc.o.d"
  "/root/repo/src/rel/formula.cc" "src/rel/CMakeFiles/lts_rel.dir/formula.cc.o" "gcc" "src/rel/CMakeFiles/lts_rel.dir/formula.cc.o.d"
  "/root/repo/src/rel/gates.cc" "src/rel/CMakeFiles/lts_rel.dir/gates.cc.o" "gcc" "src/rel/CMakeFiles/lts_rel.dir/gates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lts_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
