file(REMOVE_RECURSE
  "liblts_sat.a"
)
