# Empty dependencies file for lts_sat.
# This may be replaced when dependencies are built.
