file(REMOVE_RECURSE
  "CMakeFiles/lts_sat.dir/dimacs.cc.o"
  "CMakeFiles/lts_sat.dir/dimacs.cc.o.d"
  "CMakeFiles/lts_sat.dir/solver.cc.o"
  "CMakeFiles/lts_sat.dir/solver.cc.o.d"
  "liblts_sat.a"
  "liblts_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
