file(REMOVE_RECURSE
  "CMakeFiles/lts_common.dir/bitset.cc.o"
  "CMakeFiles/lts_common.dir/bitset.cc.o.d"
  "CMakeFiles/lts_common.dir/flags.cc.o"
  "CMakeFiles/lts_common.dir/flags.cc.o.d"
  "CMakeFiles/lts_common.dir/strings.cc.o"
  "CMakeFiles/lts_common.dir/strings.cc.o.d"
  "liblts_common.a"
  "liblts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
