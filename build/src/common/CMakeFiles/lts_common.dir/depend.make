# Empty dependencies file for lts_common.
# This may be replaced when dependencies are built.
