file(REMOVE_RECURSE
  "liblts_common.a"
)
