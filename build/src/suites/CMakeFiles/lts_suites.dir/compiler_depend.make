# Empty compiler generated dependencies file for lts_suites.
# This may be replaced when dependencies are built.
