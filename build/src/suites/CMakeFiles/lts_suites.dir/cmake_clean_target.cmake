file(REMOVE_RECURSE
  "liblts_suites.a"
)
