file(REMOVE_RECURSE
  "CMakeFiles/lts_suites.dir/cambridge.cc.o"
  "CMakeFiles/lts_suites.dir/cambridge.cc.o.d"
  "CMakeFiles/lts_suites.dir/owens.cc.o"
  "CMakeFiles/lts_suites.dir/owens.cc.o.d"
  "liblts_suites.a"
  "liblts_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
