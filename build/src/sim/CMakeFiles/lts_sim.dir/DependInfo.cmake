
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/opsim.cc" "src/sim/CMakeFiles/lts_sim.dir/opsim.cc.o" "gcc" "src/sim/CMakeFiles/lts_sim.dir/opsim.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/lts_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/lts_sim.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litmus/CMakeFiles/lts_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
