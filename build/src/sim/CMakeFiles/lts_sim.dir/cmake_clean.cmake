file(REMOVE_RECURSE
  "CMakeFiles/lts_sim.dir/opsim.cc.o"
  "CMakeFiles/lts_sim.dir/opsim.cc.o.d"
  "CMakeFiles/lts_sim.dir/runner.cc.o"
  "CMakeFiles/lts_sim.dir/runner.cc.o.d"
  "liblts_sim.a"
  "liblts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
