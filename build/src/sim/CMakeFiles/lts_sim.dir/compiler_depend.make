# Empty compiler generated dependencies file for lts_sim.
# This may be replaced when dependencies are built.
