file(REMOVE_RECURSE
  "liblts_sim.a"
)
