file(REMOVE_RECURSE
  "CMakeFiles/cross_check.dir/cross_check.cc.o"
  "CMakeFiles/cross_check.dir/cross_check.cc.o.d"
  "cross_check"
  "cross_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
