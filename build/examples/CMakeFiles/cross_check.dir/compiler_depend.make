# Empty compiler generated dependencies file for cross_check.
# This may be replaced when dependencies are built.
