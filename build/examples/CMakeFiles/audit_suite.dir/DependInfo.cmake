
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/audit_suite.cc" "examples/CMakeFiles/audit_suite.dir/audit_suite.cc.o" "gcc" "examples/CMakeFiles/audit_suite.dir/audit_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/lts_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/suites/CMakeFiles/lts_suites.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/lts_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/lts_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lts_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/lts_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
