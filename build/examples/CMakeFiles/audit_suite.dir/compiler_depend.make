# Empty compiler generated dependencies file for audit_suite.
# This may be replaced when dependencies are built.
