file(REMOVE_RECURSE
  "CMakeFiles/audit_suite.dir/audit_suite.cc.o"
  "CMakeFiles/audit_suite.dir/audit_suite.cc.o.d"
  "audit_suite"
  "audit_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
