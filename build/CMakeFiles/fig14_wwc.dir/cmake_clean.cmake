file(REMOVE_RECURSE
  "CMakeFiles/fig14_wwc.dir/bench/fig14_wwc.cc.o"
  "CMakeFiles/fig14_wwc.dir/bench/fig14_wwc.cc.o.d"
  "bench/fig14_wwc"
  "bench/fig14_wwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_wwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
