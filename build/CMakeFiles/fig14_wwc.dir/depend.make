# Empty dependencies file for fig14_wwc.
# This may be replaced when dependencies are built.
