file(REMOVE_RECURSE
  "CMakeFiles/ext_random_runner.dir/bench/ext_random_runner.cc.o"
  "CMakeFiles/ext_random_runner.dir/bench/ext_random_runner.cc.o.d"
  "bench/ext_random_runner"
  "bench/ext_random_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_random_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
