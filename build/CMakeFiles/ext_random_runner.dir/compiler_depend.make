# Empty compiler generated dependencies file for ext_random_runner.
# This may be replaced when dependencies are built.
