# Empty dependencies file for ablation_synth.
# This may be replaced when dependencies are built.
