file(REMOVE_RECURSE
  "CMakeFiles/ablation_synth.dir/bench/ablation_synth.cc.o"
  "CMakeFiles/ablation_synth.dir/bench/ablation_synth.cc.o.d"
  "bench/ablation_synth"
  "bench/ablation_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
