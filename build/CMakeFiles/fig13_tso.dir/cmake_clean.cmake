file(REMOVE_RECURSE
  "CMakeFiles/fig13_tso.dir/bench/fig13_tso.cc.o"
  "CMakeFiles/fig13_tso.dir/bench/fig13_tso.cc.o.d"
  "bench/fig13_tso"
  "bench/fig13_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
