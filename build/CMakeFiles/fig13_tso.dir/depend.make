# Empty dependencies file for fig13_tso.
# This may be replaced when dependencies are built.
