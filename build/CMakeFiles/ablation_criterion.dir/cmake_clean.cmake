file(REMOVE_RECURSE
  "CMakeFiles/ablation_criterion.dir/bench/ablation_criterion.cc.o"
  "CMakeFiles/ablation_criterion.dir/bench/ablation_criterion.cc.o.d"
  "bench/ablation_criterion"
  "bench/ablation_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
