file(REMOVE_RECURSE
  "CMakeFiles/ext_scoped_ds.dir/bench/ext_scoped_ds.cc.o"
  "CMakeFiles/ext_scoped_ds.dir/bench/ext_scoped_ds.cc.o.d"
  "bench/ext_scoped_ds"
  "bench/ext_scoped_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scoped_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
