# Empty dependencies file for ext_scoped_ds.
# This may be replaced when dependencies are built.
