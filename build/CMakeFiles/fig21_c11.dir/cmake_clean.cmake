file(REMOVE_RECURSE
  "CMakeFiles/fig21_c11.dir/bench/fig21_c11.cc.o"
  "CMakeFiles/fig21_c11.dir/bench/fig21_c11.cc.o.d"
  "bench/fig21_c11"
  "bench/fig21_c11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_c11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
