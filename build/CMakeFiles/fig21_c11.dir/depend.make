# Empty dependencies file for fig21_c11.
# This may be replaced when dependencies are built.
