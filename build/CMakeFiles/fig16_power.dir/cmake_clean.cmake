file(REMOVE_RECURSE
  "CMakeFiles/fig16_power.dir/bench/fig16_power.cc.o"
  "CMakeFiles/fig16_power.dir/bench/fig16_power.cc.o.d"
  "bench/fig16_power"
  "bench/fig16_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
