file(REMOVE_RECURSE
  "CMakeFiles/micro_rel.dir/bench/micro_rel.cc.o"
  "CMakeFiles/micro_rel.dir/bench/micro_rel.cc.o.d"
  "bench/micro_rel"
  "bench/micro_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
