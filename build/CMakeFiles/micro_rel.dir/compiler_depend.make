# Empty compiler generated dependencies file for micro_rel.
# This may be replaced when dependencies are built.
