file(REMOVE_RECURSE
  "CMakeFiles/table2_applicability.dir/bench/table2_applicability.cc.o"
  "CMakeFiles/table2_applicability.dir/bench/table2_applicability.cc.o.d"
  "bench/table2_applicability"
  "bench/table2_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
