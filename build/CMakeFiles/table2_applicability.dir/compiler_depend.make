# Empty compiler generated dependencies file for table2_applicability.
# This may be replaced when dependencies are built.
