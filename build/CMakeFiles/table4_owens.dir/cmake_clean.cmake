file(REMOVE_RECURSE
  "CMakeFiles/table4_owens.dir/bench/table4_owens.cc.o"
  "CMakeFiles/table4_owens.dir/bench/table4_owens.cc.o.d"
  "bench/table4_owens"
  "bench/table4_owens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_owens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
