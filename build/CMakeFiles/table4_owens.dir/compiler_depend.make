# Empty compiler generated dependencies file for table4_owens.
# This may be replaced when dependencies are built.
