file(REMOVE_RECURSE
  "CMakeFiles/fig20_scc.dir/bench/fig20_scc.cc.o"
  "CMakeFiles/fig20_scc.dir/bench/fig20_scc.cc.o.d"
  "bench/fig20_scc"
  "bench/fig20_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
