# Empty dependencies file for fig20_scc.
# This may be replaced when dependencies are built.
