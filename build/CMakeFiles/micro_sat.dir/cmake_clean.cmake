file(REMOVE_RECURSE
  "CMakeFiles/micro_sat.dir/bench/micro_sat.cc.o"
  "CMakeFiles/micro_sat.dir/bench/micro_sat.cc.o.d"
  "bench/micro_sat"
  "bench/micro_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
