file(REMOVE_RECURSE
  "CMakeFiles/ltsgen.dir/ltsgen.cc.o"
  "CMakeFiles/ltsgen.dir/ltsgen.cc.o.d"
  "ltsgen"
  "ltsgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltsgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
