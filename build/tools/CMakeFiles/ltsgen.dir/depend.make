# Empty dependencies file for ltsgen.
# This may be replaced when dependencies are built.
