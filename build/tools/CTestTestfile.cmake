# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ltsgen_generate "/root/repo/build/tools/ltsgen" "--model=sc" "--max-size=3" "--stats")
set_tests_properties(ltsgen_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ltsgen_pretty "/root/repo/build/tools/ltsgen" "--model=tso" "--max-size=3" "--pretty")
set_tests_properties(ltsgen_pretty PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ltsgen_axiom "/root/repo/build/tools/ltsgen" "--model=tso" "--axiom=sc_per_loc" "--max-size=3")
set_tests_properties(ltsgen_axiom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ltsgen_scoped "/root/repo/build/tools/ltsgen" "--model=sscc" "--max-size=3" "--canon=exact")
set_tests_properties(ltsgen_scoped PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ltsgen_bad_model "/root/repo/build/tools/ltsgen" "--model=itanium")
set_tests_properties(ltsgen_bad_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ltsgen_bad_axiom "/root/repo/build/tools/ltsgen" "--model=tso" "--axiom=zap")
set_tests_properties(ltsgen_bad_axiom PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ltsgen_audit_roundtrip "/usr/bin/cmake" "-DLTSGEN=/root/repo/build/tools/ltsgen" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/audit_roundtrip.cmake")
set_tests_properties(ltsgen_audit_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
