file(REMOVE_RECURSE
  "CMakeFiles/test_rel.dir/algebra_test.cc.o"
  "CMakeFiles/test_rel.dir/algebra_test.cc.o.d"
  "CMakeFiles/test_rel.dir/encoder_test.cc.o"
  "CMakeFiles/test_rel.dir/encoder_test.cc.o.d"
  "CMakeFiles/test_rel.dir/eval_test.cc.o"
  "CMakeFiles/test_rel.dir/eval_test.cc.o.d"
  "test_rel"
  "test_rel.pdb"
  "test_rel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
