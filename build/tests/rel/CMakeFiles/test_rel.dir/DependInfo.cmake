
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rel/algebra_test.cc" "tests/rel/CMakeFiles/test_rel.dir/algebra_test.cc.o" "gcc" "tests/rel/CMakeFiles/test_rel.dir/algebra_test.cc.o.d"
  "/root/repo/tests/rel/encoder_test.cc" "tests/rel/CMakeFiles/test_rel.dir/encoder_test.cc.o" "gcc" "tests/rel/CMakeFiles/test_rel.dir/encoder_test.cc.o.d"
  "/root/repo/tests/rel/eval_test.cc" "tests/rel/CMakeFiles/test_rel.dir/eval_test.cc.o" "gcc" "tests/rel/CMakeFiles/test_rel.dir/eval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rel/CMakeFiles/lts_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lts_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
