# CMake generated Testfile for 
# Source directory: /root/repo/tests/rel
# Build directory: /root/repo/build/tests/rel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rel/test_rel[1]_include.cmake")
