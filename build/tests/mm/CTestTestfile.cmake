# CMake generated Testfile for 
# Source directory: /root/repo/tests/mm
# Build directory: /root/repo/build/tests/mm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mm/test_mm[1]_include.cmake")
