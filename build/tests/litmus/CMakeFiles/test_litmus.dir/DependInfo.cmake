
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/litmus/canon_property_test.cc" "tests/litmus/CMakeFiles/test_litmus.dir/canon_property_test.cc.o" "gcc" "tests/litmus/CMakeFiles/test_litmus.dir/canon_property_test.cc.o.d"
  "/root/repo/tests/litmus/canon_test.cc" "tests/litmus/CMakeFiles/test_litmus.dir/canon_test.cc.o" "gcc" "tests/litmus/CMakeFiles/test_litmus.dir/canon_test.cc.o.d"
  "/root/repo/tests/litmus/format_test.cc" "tests/litmus/CMakeFiles/test_litmus.dir/format_test.cc.o" "gcc" "tests/litmus/CMakeFiles/test_litmus.dir/format_test.cc.o.d"
  "/root/repo/tests/litmus/test_ir_test.cc" "tests/litmus/CMakeFiles/test_litmus.dir/test_ir_test.cc.o" "gcc" "tests/litmus/CMakeFiles/test_litmus.dir/test_ir_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litmus/CMakeFiles/lts_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
