file(REMOVE_RECURSE
  "CMakeFiles/test_litmus.dir/canon_property_test.cc.o"
  "CMakeFiles/test_litmus.dir/canon_property_test.cc.o.d"
  "CMakeFiles/test_litmus.dir/canon_test.cc.o"
  "CMakeFiles/test_litmus.dir/canon_test.cc.o.d"
  "CMakeFiles/test_litmus.dir/format_test.cc.o"
  "CMakeFiles/test_litmus.dir/format_test.cc.o.d"
  "CMakeFiles/test_litmus.dir/test_ir_test.cc.o"
  "CMakeFiles/test_litmus.dir/test_ir_test.cc.o.d"
  "test_litmus"
  "test_litmus.pdb"
  "test_litmus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
