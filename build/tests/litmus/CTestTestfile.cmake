# CMake generated Testfile for 
# Source directory: /root/repo/tests/litmus
# Build directory: /root/repo/build/tests/litmus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/litmus/test_litmus[1]_include.cmake")
