
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bitset_test.cc" "tests/common/CMakeFiles/test_common.dir/bitset_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/bitset_test.cc.o.d"
  "/root/repo/tests/common/hash_timer_test.cc" "tests/common/CMakeFiles/test_common.dir/hash_timer_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/hash_timer_test.cc.o.d"
  "/root/repo/tests/common/strings_test.cc" "tests/common/CMakeFiles/test_common.dir/strings_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/strings_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
