file(REMOVE_RECURSE
  "CMakeFiles/test_sat.dir/dimacs_test.cc.o"
  "CMakeFiles/test_sat.dir/dimacs_test.cc.o.d"
  "CMakeFiles/test_sat.dir/solver_test.cc.o"
  "CMakeFiles/test_sat.dir/solver_test.cc.o.d"
  "test_sat"
  "test_sat.pdb"
  "test_sat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
