# CMake generated Testfile for 
# Source directory: /root/repo/tests/sat
# Build directory: /root/repo/build/tests/sat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sat/test_sat[1]_include.cmake")
