# CMake generated Testfile for 
# Source directory: /root/repo/tests/suites
# Build directory: /root/repo/build/tests/suites
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/suites/test_suites[1]_include.cmake")
