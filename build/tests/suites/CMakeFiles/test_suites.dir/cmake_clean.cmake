file(REMOVE_RECURSE
  "CMakeFiles/test_suites.dir/catalog_roundtrip_test.cc.o"
  "CMakeFiles/test_suites.dir/catalog_roundtrip_test.cc.o.d"
  "CMakeFiles/test_suites.dir/suites_test.cc.o"
  "CMakeFiles/test_suites.dir/suites_test.cc.o.d"
  "test_suites"
  "test_suites.pdb"
  "test_suites[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
