file(REMOVE_RECURSE
  "CMakeFiles/test_synth.dir/compare_test.cc.o"
  "CMakeFiles/test_synth.dir/compare_test.cc.o.d"
  "CMakeFiles/test_synth.dir/minimality_test.cc.o"
  "CMakeFiles/test_synth.dir/minimality_test.cc.o.d"
  "CMakeFiles/test_synth.dir/sound_test.cc.o"
  "CMakeFiles/test_synth.dir/sound_test.cc.o.d"
  "CMakeFiles/test_synth.dir/synthesizer_test.cc.o"
  "CMakeFiles/test_synth.dir/synthesizer_test.cc.o.d"
  "test_synth"
  "test_synth.pdb"
  "test_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
