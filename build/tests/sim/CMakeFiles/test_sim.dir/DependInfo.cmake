
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/opsim_test.cc" "tests/sim/CMakeFiles/test_sim.dir/opsim_test.cc.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/opsim_test.cc.o.d"
  "/root/repo/tests/sim/runner_test.cc" "tests/sim/CMakeFiles/test_sim.dir/runner_test.cc.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/runner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/lts_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
