/**
 * @file
 * Reproduces Figure 14: the WWC symmetry the paper's canonicalizer
 * misses. Runs TSO causality synthesis at size 5 under both the paper's
 * thread-hash canonicalizer and the exact (permutation-minimizing)
 * canonicalizer, reports the redundancy, and prints the WWC pair that
 * fails to merge in paper mode.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "litmus/canon.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("size", "5", "test size to synthesize at");
    if (!flags.parse(argc, argv))
        return 1;
    int size = flags.getInt("size");

    bench::banner("Figure 14: WWC variants the paper-mode canonicalizer "
                  "cannot merge");

    auto tso = mm::makeModel("tso");
    synth::SynthOptions paper_opt;
    paper_opt.minSize = size;
    paper_opt.maxSize = size;
    paper_opt.canonMode = litmus::CanonMode::Paper;
    synth::SynthOptions exact_opt = paper_opt;
    exact_opt.canonMode = litmus::CanonMode::Exact;

    synth::Suite paper_suite =
        synth::synthesizeAxiom(*tso, "causality", paper_opt);
    synth::Suite exact_suite =
        synth::synthesizeAxiom(*tso, "causality", exact_opt);

    std::printf("causality @ n=%d: paper canonicalizer -> %zu tests, "
                "exact -> %zu tests (redundancy: %zu)\n\n",
                size, paper_suite.tests.size(), exact_suite.tests.size(),
                paper_suite.tests.size() - exact_suite.tests.size());

    // Group the paper-mode output by exact canonical key; groups with
    // more than one member are the symmetry classes paper mode split.
    std::map<std::string, std::vector<const litmus::LitmusTest *>> groups;
    for (const auto &t : paper_suite.tests) {
        groups[litmus::staticSerialize(
                   litmus::canonicalize(t, litmus::CanonMode::Exact))]
            .push_back(&t);
    }
    for (const auto &[key, members] : groups) {
        if (members.size() < 2)
            continue;
        std::printf("unmerged symmetry class (%zu variants):\n",
                    members.size());
        for (const auto *t : members)
            std::printf("%s\n", litmus::toString(*t).c_str());
    }
    if (paper_suite.tests.size() == exact_suite.tests.size())
        std::printf("(no unmerged classes at this bound)\n");
    return 0;
}
