/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: aligned
 * table printing and suite-summary rows so every bench emits the same
 * format EXPERIMENTS.md references.
 */

#ifndef LTS_BENCH_BENCH_UTIL_HH
#define LTS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "common/pool.hh"
#include "common/strings.hh"
#include "common/timer.hh"
#include "litmus/canon.hh"
#include "litmus/digest.hh"
#include "synth/service.hh"
#include "synth/synthesizer.hh"

namespace lts::bench
{

/** Print a row of cells with fixed column widths. */
inline void
printRow(const std::vector<std::string> &cells,
         const std::vector<int> &widths)
{
    std::string line;
    for (size_t i = 0; i < cells.size(); i++) {
        int w = i < widths.size() ? widths[i] : 12;
        line += padRight(cells[i], static_cast<size_t>(w)) + " ";
    }
    std::printf("%s\n", line.c_str());
}

/** Print a horizontal rule sized to the given widths. */
inline void
printRule(const std::vector<int> &widths)
{
    size_t total = 0;
    for (int w : widths)
        total += static_cast<size_t>(w) + 1;
    std::printf("%s\n", std::string(total, '-').c_str());
}

/** Header banner naming the paper artifact a binary reproduces. */
inline void
banner(const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("(Lustig et al., \"Automated Synthesis of Comprehensive Memory\n");
    std::printf(" Model Litmus Test Suites\", ASPLOS 2017 — reproduction)\n");
    std::printf("==============================================================\n");
}

/** Per-size test-count/runtime rows for a set of suites. */
inline void
printSuiteTable(const std::vector<synth::Suite> &suites, int min_size,
                int max_size)
{
    std::vector<int> widths = {16};
    std::vector<std::string> header = {"axiom"};
    for (int s = min_size; s <= max_size; s++) {
        header.push_back("n=" + std::to_string(s));
        widths.push_back(8);
    }
    header.push_back("total");
    widths.push_back(8);
    header.push_back("time(s)");
    widths.push_back(10);
    printRow(header, widths);
    printRule(widths);
    for (const auto &suite : suites) {
        std::vector<std::string> row = {suite.axiom};
        for (int s = min_size; s <= max_size; s++) {
            auto it = suite.testsBySize.find(s);
            row.push_back(it == suite.testsBySize.end()
                              ? "-"
                              : std::to_string(it->second));
        }
        row.push_back(std::to_string(suite.tests.size()) +
                      (suite.truncated ? "*" : ""));
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", suite.totalSeconds());
        row.push_back(buf);
        printRow(row, widths);
    }
}

/** Per-size runtime rows (the Figure 13c/16c/20b runtime series). */
inline void
printRuntimeTable(const std::vector<synth::Suite> &suites, int min_size,
                  int max_size)
{
    std::vector<int> widths = {16};
    std::vector<std::string> header = {"axiom"};
    for (int s = min_size; s <= max_size; s++) {
        header.push_back("n=" + std::to_string(s));
        widths.push_back(10);
    }
    printRow(header, widths);
    printRule(widths);
    for (const auto &suite : suites) {
        std::vector<std::string> row = {suite.axiom};
        for (int s = min_size; s <= max_size; s++) {
            auto it = suite.secondsBySize.find(s);
            if (it == suite.secondsBySize.end()) {
                row.push_back("-");
            } else {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.3f", it->second);
                row.push_back(buf);
            }
        }
        printRow(row, widths);
    }
}

/**
 * Scheduling and solver-work summary for a sharded synthesis run: job
 * counts, aggregate SAT work, and wall-clock vs. aggregate CPU time so
 * the runtime figures (13c/16c/20b) can report both.
 */
inline void
printParallelStats(const synth::SynthProgress &progress, int jobs,
                   double wall_seconds, double cpu_seconds)
{
    std::printf("parallel synthesis: %u worker(s); %llu/%llu jobs done; "
                "%llu SAT conflicts; %llu instances enumerated\n",
                ThreadPool::resolveThreads(jobs),
                static_cast<unsigned long long>(progress.jobsDone.load()),
                static_cast<unsigned long long>(progress.jobsQueued.load()),
                static_cast<unsigned long long>(progress.conflicts.load()),
                static_cast<unsigned long long>(progress.instances.load()));
    std::printf("wall-clock %.2fs, aggregate CPU %.2fs (%.2fx)\n",
                wall_seconds, cpu_seconds,
                wall_seconds > 0 ? cpu_seconds / wall_seconds : 0.0);
}

/** Aggregate CPU seconds over per-axiom suites (excluding the union,
 *  whose per-size seconds are already the sum of its parts). */
inline double
aggregateCpuSeconds(const std::vector<synth::Suite> &suites)
{
    double s = 0;
    for (const auto &suite : suites) {
        if (suite.axiom != "union")
            s += suite.totalSeconds();
    }
    return s;
}

/** One engine-mode measurement for the BENCH_*.json comparison. */
struct ModeRun
{
    std::string mode; ///< "incremental"/"from-scratch"; "-nosbp",
                      ///< "-nosimp", "-noshare" suffixed when disabled
    bool sbp = true;  ///< symmetry breaking was enabled for this run
    bool simplify = true;     ///< SatELite-style preprocessing was enabled
    bool shareClauses = true; ///< cross-shard learnt-clause sharing enabled
    double wallSeconds = 0;
    double cpuSeconds = 0;
    uint64_t jobsQueued = 0;
    uint64_t jobsDone = 0;
    uint64_t conflicts = 0;
    uint64_t restarts = 0;
    uint64_t instances = 0;     ///< SAT models enumerated (rawInstances)
    uint64_t sbpClauses = 0;    ///< SBP clauses emitted, all solvers
    uint64_t eliminatedVars = 0;  ///< vars removed by simplify, all solvers
    uint64_t subsumedClauses = 0; ///< clauses removed by simplify
    uint64_t importedClauses = 0; ///< learnt clauses adopted from siblings
    uint64_t exportedClauses = 0; ///< learnt clauses published to siblings
    std::map<int, uint64_t> instancesBySize;  ///< union suite, size -> models
    std::map<int, int> keptBySize;            ///< union suite, size -> tests
    std::map<int, uint64_t> sbpClausesBySize; ///< union suite, size -> clauses
    std::string suiteDigest; ///< hash of the union suite's serialized tests
};

/**
 * Stable digest of a suite's content, in the versioned
 * litmus::suiteDigest format ("lts-suite-v1:<16 hex>"). Two runs
 * produce the same digest iff their suites are byte-identical, which is
 * how the bench smoke job asserts SBP on/off equivalence without
 * shipping suites — and how these digests stay comparable with the ones
 * the suite store and ltsd report.
 */
inline std::string
suiteDigest(const synth::Suite &suite)
{
    return litmus::suiteDigest(suite.tests);
}

/**
 * Synthesize every per-axiom suite (plus the union) for @p model
 * through the service layer — the one front door into synthesis. A
 * store-less Service degenerates to a plain engine run honoring every
 * knob in @p opt, so benches measure exactly what they always measured.
 */
inline std::vector<synth::Suite>
querySuites(const mm::Model &model, const synth::SynthOptions &opt,
            synth::SuiteResult *result_out = nullptr)
{
    synth::SuiteRequest request;
    request.model = model.name();
    request.maxSize = opt.maxSize;
    request.options = opt;
    synth::Service service;
    synth::SuiteResult result = service.query(model, request);
    if (result_out) {
        *result_out = std::move(result);
        return result_out->suites;
    }
    return std::move(result.suites);
}

/**
 * Run one full synthesis under one engine mode and record the
 * solver-work and runtime numbers the BENCH_*.json files report. Counts
 * come from the SuiteResult's SynthProgress snapshot, not live atomics.
 * The suites go to *out when the caller also wants the figure tables.
 */
inline ModeRun
measureMode(const mm::Model &model, synth::SynthOptions opt, bool incremental,
            bool sbp = true, std::vector<synth::Suite> *out = nullptr)
{
    opt.incremental = incremental;
    opt.symmetryBreaking = sbp;
    Timer wall;
    synth::SuiteResult result;
    querySuites(model, opt, &result);
    const synth::SynthProgressSnapshot &progress = result.progress;
    ModeRun run;
    run.mode = incremental ? "incremental" : "from-scratch";
    if (!sbp)
        run.mode += "-nosbp";
    if (!opt.simplify)
        run.mode += "-nosimp";
    if (!opt.shareClauses)
        run.mode += "-noshare";
    run.sbp = sbp;
    run.simplify = opt.simplify;
    run.shareClauses = opt.shareClauses;
    run.wallSeconds = wall.seconds();
    run.cpuSeconds = aggregateCpuSeconds(result.suites);
    run.jobsQueued = progress.jobsQueued;
    run.jobsDone = progress.jobsDone;
    run.conflicts = progress.conflicts;
    run.restarts = progress.restarts;
    run.instances = progress.instances;
    run.sbpClauses = progress.sbpClauses;
    run.eliminatedVars = progress.eliminatedVars;
    run.subsumedClauses = progress.subsumedClauses;
    run.importedClauses = progress.importedClauses;
    run.exportedClauses = progress.exportedClauses;
    run.instancesBySize = result.unionSuite().instancesBySize;
    run.keptBySize = result.unionSuite().testsBySize;
    run.sbpClausesBySize = result.unionSuite().sbpClausesBySize;
    run.suiteDigest = result.suiteDigest;
    if (out)
        *out = std::move(result.suites);
    return run;
}

/** One-line scheduling/solver-work summary for an engine-mode run. */
inline void
printModeRun(const ModeRun &run, int jobs)
{
    std::printf("%s engine: %u worker(s); %llu/%llu jobs done; "
                "%llu SAT conflicts; %llu instances enumerated\n",
                run.mode.c_str(), ThreadPool::resolveThreads(jobs),
                static_cast<unsigned long long>(run.jobsDone),
                static_cast<unsigned long long>(run.jobsQueued),
                static_cast<unsigned long long>(run.conflicts),
                static_cast<unsigned long long>(run.instances));
    std::printf("wall-clock %.2fs, aggregate CPU %.2fs (%.2fx)\n",
                run.wallSeconds, run.cpuSeconds,
                run.wallSeconds > 0 ? run.cpuSeconds / run.wallSeconds : 0.0);
}

/**
 * Write the machine-readable results file (BENCH_<name>.json) consumed
 * by sweep scripts: one entry per engine mode with wall/CPU seconds,
 * SAT conflicts, and union-suite instance counts per size.
 */
inline void
writeBenchJson(const std::string &path, const std::string &bench,
               const std::string &model, int min_size, int max_size,
               const std::vector<ModeRun> &runs)
{
    // Write to a temp file and rename into place so a sweep script (or a
    // concurrent reader tailing results) never observes a half-written
    // file; rename(2) within a directory is atomic.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"model\": \"%s\",\n"
                 "  \"minSize\": %d,\n"
                 "  \"maxSize\": %d,\n"
                 "  \"modes\": [\n",
                 bench.c_str(), model.c_str(), min_size, max_size);
    for (size_t i = 0; i < runs.size(); i++) {
        const ModeRun &run = runs[i];
        std::fprintf(f,
                     "    {\n"
                     "      \"mode\": \"%s\",\n"
                     "      \"sbp\": %s,\n"
                     "      \"simplify\": %s,\n"
                     "      \"shareClauses\": %s,\n"
                     "      \"wallSeconds\": %.6f,\n"
                     "      \"cpuSeconds\": %.6f,\n"
                     "      \"jobsQueued\": %llu,\n"
                     "      \"conflicts\": %llu,\n"
                     "      \"restarts\": %llu,\n"
                     "      \"rawInstances\": %llu,\n"
                     "      \"sbpClauses\": %llu,\n"
                     "      \"eliminatedVars\": %llu,\n"
                     "      \"subsumedClauses\": %llu,\n"
                     "      \"importedClauses\": %llu,\n"
                     "      \"exportedClauses\": %llu,\n"
                     "      \"suiteDigest\": \"%s\",\n",
                     run.mode.c_str(), run.sbp ? "true" : "false",
                     run.simplify ? "true" : "false",
                     run.shareClauses ? "true" : "false",
                     run.wallSeconds, run.cpuSeconds,
                     static_cast<unsigned long long>(run.jobsQueued),
                     static_cast<unsigned long long>(run.conflicts),
                     static_cast<unsigned long long>(run.restarts),
                     static_cast<unsigned long long>(run.instances),
                     static_cast<unsigned long long>(run.sbpClauses),
                     static_cast<unsigned long long>(run.eliminatedVars),
                     static_cast<unsigned long long>(run.subsumedClauses),
                     static_cast<unsigned long long>(run.importedClauses),
                     static_cast<unsigned long long>(run.exportedClauses),
                     run.suiteDigest.c_str());
        // Every size in [min, max] is emitted with a 0 default, so a
        // baseline file from an empty trajectory still fixes the schema
        // sweep scripts key on.
        auto emitSizes = [&](const char *name, auto lookup) {
            std::fprintf(f, "      \"%s\": {", name);
            for (int s = min_size; s <= max_size; s++) {
                std::fprintf(f, "%s\"%d\": %llu", s > min_size ? ", " : "", s,
                             static_cast<unsigned long long>(lookup(s)));
            }
            std::fprintf(f, "}%s\n", name == std::string("sbpClausesBySize")
                                         ? ""
                                         : ",");
        };
        emitSizes("rawInstancesBySize", [&](int s) -> uint64_t {
            auto it = run.instancesBySize.find(s);
            return it == run.instancesBySize.end() ? 0 : it->second;
        });
        emitSizes("testsBySize", [&](int s) -> uint64_t {
            auto it = run.keptBySize.find(s);
            return it == run.keptBySize.end()
                       ? 0
                       : static_cast<uint64_t>(it->second);
        });
        emitSizes("sbpClausesBySize", [&](int s) -> uint64_t {
            auto it = run.sbpClausesBySize.find(s);
            return it == run.sbpClausesBySize.end() ? 0 : it->second;
        });
        std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    bool write_ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0)
        write_ok = false;
    if (!write_ok) {
        std::fprintf(stderr, "error writing %s\n", tmp.c_str());
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(),
                     path.c_str());
        std::remove(tmp.c_str());
        return;
    }
    std::printf("wrote %s\n", path.c_str());
}

/**
 * One SAT-level ablation measurement (bench/micro_sat.cc): a named
 * scenario solved with a feature on and off, plus the solver-work
 * counters that explain the delta.
 */
struct MicroRun
{
    std::string scenario; ///< e.g. "simplify-on", "share-off"
    double wallSeconds = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    uint64_t eliminatedVars = 0;
    uint64_t subsumedClauses = 0;
    uint64_t importedClauses = 0;
    uint64_t exportedClauses = 0;
    uint64_t problemClauses = 0; ///< live problem clauses after setup
};

/** Write BENCH_micro_sat.json (same tmp+rename discipline as above). */
inline void
writeMicroSatJson(const std::string &path, const std::vector<MicroRun> &runs)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_sat\",\n"
                 "  \"scenarios\": [\n");
    for (size_t i = 0; i < runs.size(); i++) {
        const MicroRun &r = runs[i];
        std::fprintf(f,
                     "    {\n"
                     "      \"scenario\": \"%s\",\n"
                     "      \"wallSeconds\": %.6f,\n"
                     "      \"conflicts\": %llu,\n"
                     "      \"propagations\": %llu,\n"
                     "      \"eliminatedVars\": %llu,\n"
                     "      \"subsumedClauses\": %llu,\n"
                     "      \"importedClauses\": %llu,\n"
                     "      \"exportedClauses\": %llu,\n"
                     "      \"problemClauses\": %llu\n"
                     "    }%s\n",
                     r.scenario.c_str(), r.wallSeconds,
                     static_cast<unsigned long long>(r.conflicts),
                     static_cast<unsigned long long>(r.propagations),
                     static_cast<unsigned long long>(r.eliminatedVars),
                     static_cast<unsigned long long>(r.subsumedClauses),
                     static_cast<unsigned long long>(r.importedClauses),
                     static_cast<unsigned long long>(r.exportedClauses),
                     static_cast<unsigned long long>(r.problemClauses),
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    bool write_ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0)
        write_ok = false;
    if (!write_ok) {
        std::fprintf(stderr, "error writing %s\n", tmp.c_str());
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(),
                     path.c_str());
        std::remove(tmp.c_str());
        return;
    }
    std::printf("wrote %s\n", path.c_str());
}

} // namespace lts::bench

#endif // LTS_BENCH_BENCH_UTIL_HH
