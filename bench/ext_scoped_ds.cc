/**
 * @file
 * Extension case study: the DS (demote scope) relaxation on a scoped
 * model.
 *
 * The paper's Table 2 marks DS as applicable to the scoped models (HSA,
 * OpenCL) but its case studies stop at unscoped ones. This binary runs
 * the full synthesis flow on "sscc" — SCC extended with OpenCL-style
 * workgroup/system scopes — so every relaxation family of Section 3.2,
 * DS included, is exercised end to end:
 *
 *  - per-axiom suite sizes and runtimes (the Figure 20 analogue);
 *  - the scoped-MP panel: cross-workgroup MP needs system scope on both
 *    ends (minimal), same-workgroup MP with system scopes is
 *    over-synchronized (DS demotes it for free), and the workgroup-
 *    scoped same-group variant is the minimal form;
 *  - a scoped observation the criterion exposes: workgroup *grouping*
 *    is not a synchronization mechanism, so scope-independent axioms
 *    (coherence, rmw) legitimately appear once per grouping class.
 *
 * Flags: --max-size (default 3; causality at 4 yields thousands of
 * tests in ~30 s).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/minimality.hh"
#include "synth/synthesizer.hh"

using namespace lts;

namespace
{

litmus::LitmusTest
scopedMp(bool same_wg, litmus::Scope rel_scope, litmus::Scope acq_scope,
         const std::string &name)
{
    litmus::TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y", litmus::MemOrder::Release);
    b.setScope(wf, rel_scope);
    int t1 = b.newThread();
    int rf = b.read(t1, "y", litmus::MemOrder::Acquire);
    b.setScope(rf, acq_scope);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    if (same_wg) {
        b.setWorkgroup(t0, 0);
        b.setWorkgroup(t1, 0);
    }
    return b.build(name);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "3", "largest synthesized test size");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");

    bench::banner("Extension: DS (demote scope) on scoped SCC");

    auto sscc = mm::makeModel("sscc");
    std::printf("relaxations:");
    for (const auto &r : sscc->relaxations())
        std::printf(" %s", r.name.c_str());
    std::printf("\n");

    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;
    auto suites = bench::querySuites(*sscc, opt);
    std::printf("\nTests per axiom per size bound\n");
    bench::printSuiteTable(suites, 2, max_size);
    std::printf("\nSuite generation runtime (seconds)\n");
    bench::printRuntimeTable(suites, 2, max_size);

    std::printf("\nScoped-MP minimality panel:\n");
    using litmus::Scope;
    struct Row
    {
        litmus::LitmusTest test;
        const char *expect;
    };
    Row rows[] = {
        {scopedMp(false, Scope::System, Scope::System, "MP x-wg sys/sys"),
         "minimal: cross-workgroup needs system scope on both ends"},
        {scopedMp(true, Scope::System, Scope::System, "MP same-wg sys/sys"),
         "NOT minimal: DS can narrow either scope for free"},
        {scopedMp(true, Scope::WorkGroup, Scope::WorkGroup,
                  "MP same-wg wg/wg"),
         "minimal: narrowest sufficient scopes"},
    };
    for (const auto &row : rows) {
        auto axioms = synth::minimalAxioms(*sscc, row.test);
        std::printf("  %-22s minimal=%-3s (%s)\n", row.test.name.c_str(),
                    axioms.empty() ? "no" : "yes", row.expect);
    }

    // Show one synthesized scoped test with workgroups in the output.
    std::printf("\nSample synthesized scoped tests (size %d):\n", max_size);
    int shown = 0;
    for (const auto &t : suites.back().tests) {
        if (t.hasWorkgroups() && static_cast<int>(t.size()) == max_size) {
            std::printf("%s\n", litmus::toString(t).c_str());
            if (++shown == 2)
                break;
        }
    }
    if (shown == 0)
        std::printf("(none with shared workgroups at this bound)\n");
    return 0;
}
