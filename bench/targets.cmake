# Bench targets are defined from the top-level scope (included, not
# add_subdirectory'd) and emit their binaries into ${CMAKE_BINARY_DIR}/bench
# so that directory contains nothing but runnable benchmarks:
#     for b in build/bench/*; do $b; done

function(lts_add_bench name)
    add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cc)
    target_link_libraries(${name} PRIVATE lts_synth lts_sim lts_suites)
    target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR})
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

lts_add_bench(table2_applicability)
lts_add_bench(fig13_tso)
lts_add_bench(table4_owens)
lts_add_bench(fig14_wwc)
lts_add_bench(fig16_power)
lts_add_bench(fig20_scc)
lts_add_bench(fig21_c11)
lts_add_bench(ablation_synth)
lts_add_bench(ablation_criterion)
lts_add_bench(ext_scoped_ds)
lts_add_bench(ext_random_runner)

add_executable(micro_sat ${PROJECT_SOURCE_DIR}/bench/micro_sat.cc)
target_link_libraries(micro_sat PRIVATE lts_synth benchmark::benchmark)
target_include_directories(micro_sat PRIVATE ${PROJECT_SOURCE_DIR})
set_target_properties(micro_sat PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
add_executable(micro_rel ${PROJECT_SOURCE_DIR}/bench/micro_rel.cc)
target_link_libraries(micro_rel PRIVATE lts_synth benchmark::benchmark)
target_include_directories(micro_rel PRIVATE ${PROJECT_SOURCE_DIR})
set_target_properties(micro_rel PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
