/**
 * @file
 * Reproduces Table 2: applicability of the instruction relaxations (RI,
 * DRMW, DF, DMO, RD, DS) to each of the ten memory models the paper
 * surveys, with the paper's two footnote states. Also cross-checks the
 * table against the actual relaxation lists of the implemented models.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "mm/registry.hh"

using namespace lts;

int
main()
{
    bench::banner("Table 2: instruction-relaxation applicability");

    std::vector<int> widths = {36, 5, 5, 5, 5, 5, 5, 12};
    bench::printRow({"model", "RI", "DRMW", "DF", "DMO", "RD", "DS",
                     "implemented"},
                    widths);
    bench::printRule(widths);
    for (const auto &row : mm::applicabilityTable()) {
        bench::printRow({row.model, toString(row.ri), toString(row.drmw),
                         toString(row.df), toString(row.dmo),
                         toString(row.rd), toString(row.ds),
                         row.synthesizable ? "yes" : "table-only"},
                        widths);
    }
    std::printf("\nY = applicable and exercised; - = not applicable\n");
    std::printf("Y*1 = would apply if formalizations filled in missing "
                "features (footnote 1)\n");
    std::printf("Y*2 = dependencies not used for synchronization; RD "
                "applies to no-thin-air axioms only (footnote 2)\n");

    // Cross-check the table against the implemented models' relaxations.
    std::printf("\nImplemented relaxations per model:\n");
    for (const auto &name : mm::modelNames()) {
        auto model = mm::makeModel(name);
        std::printf("  %-8s:", name.c_str());
        for (const auto &r : model->relaxations())
            std::printf(" %s", r.name.c_str());
        std::printf("\n");
    }
    return 0;
}
