/**
 * @file
 * Extension: running a synthesized suite the way suites are consumed.
 *
 * Synthesizes the TSO union suite, then runs every test on the
 * store-buffer machine under random schedules (the black-box testing
 * regime of Section 2.1) at several stress levels, reporting:
 *
 *  - that no forbidden outcome is ever observed (the machine is correct),
 *  - how many of each test's reachable outcomes random running covers,
 *  - how the stressor knob changes the hit rate of each test's most
 *    relaxed outcome — the effect external stressors have on real
 *    hardware (Sorensen & Donaldson 2016), demonstrated in-process.
 *
 * Flags: --max-size (default 4), --schedules (default 4000).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "mm/registry.hh"
#include "sim/runner.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "4", "largest synthesized test size");
    flags.declare("schedules", "4000", "random schedules per test");
    if (!flags.parse(argc, argv))
        return 1;

    bench::banner("Extension: randomized running of a synthesized suite");

    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = flags.getInt("max-size");
    auto suites = bench::querySuites(*tso, opt);
    const auto &tests = suites.back().tests;

    sim::RunnerOptions calm;
    calm.schedules = static_cast<uint64_t>(flags.getInt("schedules"));
    calm.seed = 2017;
    sim::RunnerOptions stressed = calm;
    stressed.stress = 95;

    std::vector<int> widths = {24, 10, 12, 14, 16};
    bench::printRow({"test", "outcomes", "covered", "forbidden-hits",
                     "rarest calm->stress"},
                    widths);
    bench::printRule(widths);

    int violations = 0;
    for (const auto &t : tests) {
        auto reachable = sim::tsoOutcomes(t);
        auto forbidden_sig = sim::observableSignature(t, t.forbidden);
        sim::RunStats calm_stats = sim::runRandom(t, calm);
        sim::RunStats stress_stats = sim::runRandom(t, stressed);

        uint64_t forbidden_hits = calm_stats.count(forbidden_sig) +
                                  stress_stats.count(forbidden_sig);
        if (forbidden_hits)
            violations++;

        // The rarest reachable outcome under the calm scheduler, and its
        // frequency under stress.
        uint64_t rare_calm = UINT64_MAX;
        sim::Signature rare_sig;
        for (const auto &sig : reachable) {
            uint64_t c = calm_stats.count(sig);
            if (c < rare_calm) {
                rare_calm = c;
                rare_sig = sig;
            }
        }
        uint64_t rare_stress = stress_stats.count(rare_sig);

        char rare_buf[48];
        std::snprintf(rare_buf, sizeof(rare_buf), "%llu -> %llu",
                      static_cast<unsigned long long>(rare_calm),
                      static_cast<unsigned long long>(rare_stress));
        bench::printRow({t.name, std::to_string(reachable.size()),
                         std::to_string(calm_stats.distinct()) + "/" +
                             std::to_string(reachable.size()),
                         std::to_string(forbidden_hits), rare_buf},
                        widths);
    }
    std::printf("\n%s (%d forbidden-outcome observations across the "
                "whole suite)\n",
                violations == 0 ? "PASS: the store-buffer machine never "
                                  "produced a forbidden outcome"
                                : "FAIL",
                violations);
    return violations == 0 ? 0 : 1;
}
