/**
 * @file
 * Reproduces the Power results of Section 6.2 / Figure 16:
 *
 *  - per-axiom suite sizes and runtimes (16b/16c), showing the large
 *    no_thin_air counts driven by dependency-type variety and the much
 *    larger runtime constants than TSO;
 *  - the Cambridge-suite comparison (16a): every forbidden Cambridge
 *    test is reproduced or subsumed, with the PPOAA sync-vs-lwsync
 *    minimality claim and the lb+addrs+ww addr-vs-data distinction
 *    checked explicitly;
 *  - the ARMv7 variant (no lwsync) alongside.
 *
 * Flags: --max-size (default 5; Power is the paper's most expensive
 * model and the same super-exponential growth holds here).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/timer.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "suites/cambridge.hh"
#include "synth/compare.hh"
#include "synth/executor.hh"
#include "synth/minimality.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    synth::declareSynthFlags(flags);
    flags.declare("max-size", "5", "largest synthesized test size");
    flags.declare("arm", "true", "also run the ARMv7 variant");
    flags.declare("bench-json", "BENCH_fig16_power.json",
                  "machine-readable results file ('' = skip)");
    flags.declare("compare-modes", "true",
                  "also run the from-scratch engine and record both in "
                  "the json file");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");

    bench::banner("Figure 16 + Section 6.2: Power (and ARMv7)");

    auto power = mm::makeModel("power");
    synth::SynthOptions opt = synth::synthOptionsFromFlags(flags);
    std::vector<synth::Suite> suites;
    std::vector<bench::ModeRun> runs;
    runs.push_back(bench::measureMode(*power, opt, opt.incremental,
                                      opt.symmetryBreaking, &suites));
    bench::printModeRun(runs.back(), opt.jobs);
    if (flags.getBool("compare-modes")) {
        runs.push_back(bench::measureMode(*power, opt, !opt.incremental,
                                          opt.symmetryBreaking));
        bench::printModeRun(runs.back(), opt.jobs);
    }

    std::printf("\nFigure 16b: tests per axiom per size bound\n");
    bench::printSuiteTable(suites, 2, max_size);
    std::printf("\nFigure 16c: suite generation runtime (seconds)\n");
    bench::printRuntimeTable(suites, 2, max_size);

    // ---- Figure 16a: Cambridge comparison ------------------------------
    std::printf("\nFigure 16a analogue: Cambridge baseline vs "
                "power-union\n");
    const synth::Suite &u = suites.back();
    auto cambridge = suites::cambridgeSuite();
    auto forbidden = suites::cambridgeForbidden();
    auto results = synth::compareSuites(forbidden, u.tests);
    std::vector<int> widths = {18, 6, 10, 10, 24};
    bench::printRow({"Cambridge test", "size", "minimal", "in-suite",
                     "covered-by"},
                    widths);
    bench::printRule(widths);
    for (size_t i = 0; i < forbidden.size(); i++) {
        const auto &t = forbidden[i];
        bool minimal = !synth::minimalAxioms(*power, t).empty();
        bench::printRow({t.name, std::to_string(t.size()),
                         minimal ? "yes" : "no",
                         results[i].inSuite ? "yes" : "no",
                         results[i].inSuite
                             ? "(itself)"
                             : (results[i].subsumed ? results[i].subsumedBy
                                                    : "beyond bound")},
                        widths);
    }

    // ---- The PPOAA claim -------------------------------------------------
    std::printf("\nSection 6.2 claims:\n");
    for (const auto &e : cambridge) {
        if (e.test.name == "PPOAA" || e.test.name == "PPOAA+lwsync") {
            auto axioms = synth::minimalAxioms(*power, e.test);
            std::printf("  %-14s minimal=%s%s\n", e.test.name.c_str(),
                        axioms.empty() ? "no" : "yes",
                        e.test.name == "PPOAA"
                            ? " (published with sync; lwsync suffices)"
                            : "");
        }
        if (e.test.name == "LB+addr+po+ww" ||
            e.test.name == "LB+data+po+ww") {
            bool legal = synth::isLegal(*power, e.test, e.test.forbidden);
            std::printf("  %-14s outcome %s (addr vs data strength)\n",
                        e.test.name.c_str(),
                        legal ? "ALLOWED" : "FORBIDDEN");
        }
    }

    // ---- ARMv7 -----------------------------------------------------------
    if (flags.getBool("arm")) {
        std::printf("\nARMv7 (Power skeleton without lwsync):\n");
        auto arm = mm::makeModel("armv7");
        auto arm_suites = bench::querySuites(*arm, opt);
        bench::printSuiteTable(arm_suites, 2, max_size);
    }

    if (!flags.get("bench-json").empty()) {
        bench::writeBenchJson(flags.get("bench-json"), "fig16_power",
                              "power", opt.minSize, max_size, runs);
    }
    return 0;
}
