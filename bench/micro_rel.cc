/**
 * @file
 * Microbenchmarks for the relational layer (google-benchmark): symbolic
 * encoding cost of the constructs the memory models lean on (transitive
 * closure, join chains, the full TSO/Power minimality formulas) and
 * concrete evaluation throughput.
 */

#include <benchmark/benchmark.h>

#include "mm/exprs.hh"
#include "mm/registry.hh"
#include "rel/encoder.hh"
#include "rel/eval.hh"
#include "synth/minimality.hh"

namespace
{

using namespace lts;
using namespace lts::rel;

void
BM_EncodeClosure(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        Vocabulary vocab;
        ExprPtr r = vocab.declare("r", 2);
        sat::Solver solver;
        GateBuilder builder(solver);
        Encoder enc(vocab, n, builder);
        GLit g = enc.encodeFormula(mkAcyclic(r));
        benchmark::DoNotOptimize(g);
        benchmark::DoNotOptimize(builder.numAnds());
    }
}
BENCHMARK(BM_EncodeClosure)->Arg(4)->Arg(6)->Arg(8);

void
BM_EncodeMinimalityTso(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto tso = mm::makeModel("tso");
    for (auto _ : state) {
        sat::Solver solver;
        GateBuilder builder(solver);
        Encoder enc(tso->vocab(), n, builder);
        GLit g = enc.encodeFormula(
            synth::minimalityFormula(*tso, "causality", n));
        builder.assertTrue(g);
        benchmark::DoNotOptimize(solver.numClauses());
    }
    state.counters["vars"] = 0;
}
BENCHMARK(BM_EncodeMinimalityTso)->Arg(4)->Arg(5)->Arg(6);

void
BM_EncodeMinimalityPower(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto power = mm::makeModel("power");
    for (auto _ : state) {
        sat::Solver solver;
        GateBuilder builder(solver);
        Encoder enc(power->vocab(), n, builder);
        GLit g = enc.encodeFormula(
            synth::minimalityFormula(*power, "observation", n));
        builder.assertTrue(g);
        benchmark::DoNotOptimize(solver.numClauses());
    }
}
BENCHMARK(BM_EncodeMinimalityPower)->Arg(4)->Arg(5);

void
BM_ConcreteEvalPowerAxioms(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto power = mm::makeModel("power");
    Instance inst(power->vocab(), n);
    // A deterministic pseudo-random instance.
    uint64_t x = 0x123456789ULL;
    auto next = [&]() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (size_t id = 0; id < power->vocab().size(); id++) {
        const auto &d = power->vocab().decl(static_cast<int>(id));
        if (d.arity == 1) {
            for (size_t i = 0; i < n; i++) {
                if (next() & 1)
                    inst.set(d.id).set(i);
            }
        } else {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    if (next() % 4 == 0)
                        inst.matrix(d.id).set(i, j);
                }
            }
        }
    }
    FormulaPtr all = power->allAxioms(power->base(), n);
    for (auto _ : state) {
        Evaluator ev(inst);
        bool ok = ev.formula(all);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_ConcreteEvalPowerAxioms)->Arg(4)->Arg(6)->Arg(8);

void
BM_GateHashConsing(benchmark::State &state)
{
    // Measures structural-sharing effectiveness: encoding the same
    // axiom set twice must not double the gate count.
    auto tso = mm::makeModel("tso");
    size_t n = 5;
    for (auto _ : state) {
        sat::Solver solver;
        GateBuilder builder(solver);
        Encoder enc(tso->vocab(), n, builder);
        enc.encodeFormula(tso->allAxioms(tso->base(), n));
        size_t first = builder.numAnds();
        enc.encodeFormula(tso->allAxioms(tso->base(), n));
        size_t second = builder.numAnds();
        if (second != first)
            state.SkipWithError("hash consing failed");
        benchmark::DoNotOptimize(second);
    }
}
BENCHMARK(BM_GateHashConsing);

} // namespace

BENCHMARK_MAIN();
