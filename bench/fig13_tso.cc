/**
 * @file
 * Reproduces the TSO results of Section 6.1:
 *
 *  - Figure 13a: forbidden-test counts per size bound for the Owens
 *    baseline, the synthesized tso-union suite, and the set of all
 *    possible programs;
 *  - Figure 13b: per-axiom suite sizes per bound (sc_per_loc and
 *    rmw_atomicity saturate; causality grows without bound);
 *  - Figure 13c: per-suite generation runtime (super-exponential);
 *  - Figures 11 and 12: the coherence-only and rmw_atomicity test
 *    listings.
 *
 * Flags: --max-size (default 5; the paper ran 6-7 on a Xeon farm),
 * --all-progs-max (explicit-enumeration bound for the "All Progs" line).
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/timer.hh"
#include "litmus/canon.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "suites/owens.hh"
#include "synth/explicit.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    synth::declareSynthFlags(flags);
    flags.declare("max-size", "5", "largest test size to synthesize");
    flags.declare("all-progs-max", "4",
                  "largest size for explicit all-programs counting");
    flags.declare("bench-json", "BENCH_fig13_tso.json",
                  "machine-readable results file ('' = skip)");
    flags.declare("compare-modes", "true",
                  "also run the from-scratch engine and record both in "
                  "the json file");
    flags.declare("compare-sbp", "true",
                  "also run with symmetry breaking disabled and report the "
                  "raw-instance reduction");
    flags.declare("compare-simplify", "true",
                  "also run with simplification and clause sharing disabled "
                  "and report the conflict reduction");
    flags.declare("compare-proof", "true",
                  "also run with DRAT proof logging on and report the "
                  "wall-clock overhead");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");
    int all_max = flags.getInt("all-progs-max");

    bench::banner("Figures 11, 12, 13 + TSO portion of Section 6.1");

    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt = synth::synthOptionsFromFlags(flags);
    std::vector<synth::Suite> suites;
    std::vector<bench::ModeRun> runs;
    runs.push_back(bench::measureMode(*tso, opt, opt.incremental,
                                      opt.symmetryBreaking, &suites));
    bench::printModeRun(runs.back(), opt.jobs);
    if (flags.getBool("compare-modes")) {
        runs.push_back(bench::measureMode(*tso, opt, !opt.incremental,
                                          opt.symmetryBreaking));
        bench::printModeRun(runs.back(), opt.jobs);
    }
    if (flags.getBool("compare-sbp")) {
        runs.push_back(bench::measureMode(*tso, opt, opt.incremental,
                                          !opt.symmetryBreaking));
        bench::printModeRun(runs.back(), opt.jobs);
        const bench::ModeRun &base = runs.front();
        const bench::ModeRun &other = runs.back();
        const bench::ModeRun &with_sbp =
            base.sbp ? base : other;
        const bench::ModeRun &without_sbp =
            base.sbp ? other : base;
        std::printf("\nSBP raw-instance reduction: %llu -> %llu (%.2fx), "
                    "suites %s\n",
                    static_cast<unsigned long long>(without_sbp.instances),
                    static_cast<unsigned long long>(with_sbp.instances),
                    with_sbp.instances
                        ? static_cast<double>(without_sbp.instances) /
                              static_cast<double>(with_sbp.instances)
                        : 0.0,
                    with_sbp.suiteDigest == without_sbp.suiteDigest
                        ? "byte-identical"
                        : "DIFFER (bug!)");
    }
    if (flags.getBool("compare-simplify")) {
        synth::SynthOptions plain = opt;
        plain.simplify = false;
        plain.shareClauses = false;
        runs.push_back(bench::measureMode(*tso, plain, opt.incremental,
                                          opt.symmetryBreaking));
        bench::printModeRun(runs.back(), opt.jobs);
        const bench::ModeRun &with_simp = runs.front();
        const bench::ModeRun &without_simp = runs.back();
        std::printf("\nsimplify+sharing conflict reduction: %llu -> %llu "
                    "(%.2fx), suites %s\n",
                    static_cast<unsigned long long>(without_simp.conflicts),
                    static_cast<unsigned long long>(with_simp.conflicts),
                    with_simp.conflicts
                        ? static_cast<double>(without_simp.conflicts) /
                              static_cast<double>(with_simp.conflicts)
                        : 0.0,
                    with_simp.suiteDigest == without_simp.suiteDigest
                        ? "byte-identical"
                        : "DIFFER (bug!)");
    }
    if (flags.getBool("compare-proof")) {
        synth::SynthOptions proved = opt;
        bool temp_proofs = proved.proofDir.empty();
        if (temp_proofs) {
            proved.proofDir = (std::filesystem::temp_directory_path() /
                               ("fig13-proof-" + std::to_string(::getpid())))
                                  .string();
        }
        std::filesystem::create_directories(proved.proofDir);
        runs.push_back(bench::measureMode(*tso, proved, opt.incremental,
                                          opt.symmetryBreaking));
        runs.back().mode += "-proof";
        bench::printModeRun(runs.back(), opt.jobs);
        const bench::ModeRun &without_proof = runs.front();
        const bench::ModeRun &with_proof = runs.back();
        std::printf("\nproof logging overhead: %.3fs -> %.3fs wall "
                    "(%.2fx), suites %s\n",
                    without_proof.wallSeconds, with_proof.wallSeconds,
                    without_proof.wallSeconds > 0
                        ? with_proof.wallSeconds / without_proof.wallSeconds
                        : 0.0,
                    with_proof.suiteDigest == without_proof.suiteDigest
                        ? "byte-identical"
                        : "DIFFER (bug!)");
        if (temp_proofs)
            std::filesystem::remove_all(proved.proofDir);
    }
    const synth::Suite &u = suites.back();

    // ---- Figure 13b: per-axiom counts ---------------------------------
    std::printf("\nFigure 13b: tests per axiom per size bound\n");
    bench::printSuiteTable(suites, 2, max_size);

    // ---- Figure 13c: runtimes -----------------------------------------
    std::printf("\nFigure 13c: suite generation runtime (seconds)\n");
    bench::printRuntimeTable(suites, 2, max_size);

    // ---- Figure 13a: Owens vs tso-union vs all programs ----------------
    std::printf("\nFigure 13a: forbidden tests per size bound "
                "(cumulative)\n");
    auto owens = suites::owensForbidden();
    auto all_programs =
        synth::countAllPrograms(*tso, 2, all_max, litmus::CanonMode::Paper);
    std::vector<int> widths = {12, 10, 10, 14};
    bench::printRow({"bound", "Owens", "tso-union", "All Progs"}, widths);
    bench::printRule(widths);
    uint64_t union_cum = 0;
    uint64_t all_cum = 0;
    for (int size = 2; size <= max_size; size++) {
        uint64_t owens_cum = 0;
        for (const auto &t : owens) {
            if (static_cast<int>(t.size()) <= size)
                owens_cum++;
        }
        auto it = u.testsBySize.find(size);
        union_cum += it == u.testsBySize.end() ? 0 : it->second;
        std::string all_str = "-";
        if (all_programs.count(size)) {
            all_cum += all_programs.at(size);
            all_str = std::to_string(all_cum);
        }
        bench::printRow({std::to_string(size), std::to_string(owens_cum),
                         std::to_string(union_cum), all_str},
                        widths);
    }
    std::printf("(All Progs = distinct canonical programs; counted by "
                "explicit enumeration up to n=%d)\n", all_max);

    // ---- Figure 11: tests in sc_per_loc but not causality --------------
    std::printf("\nFigure 11: tests in sc_per_loc but not in causality\n");
    std::set<std::string> causality_keys;
    for (const auto &t : suites[2].tests) {
        causality_keys.insert(litmus::staticSerialize(
            litmus::canonicalize(t, litmus::CanonMode::Exact)));
    }
    int only = 0;
    for (const auto &t : suites[0].tests) {
        std::string key = litmus::staticSerialize(
            litmus::canonicalize(t, litmus::CanonMode::Exact));
        if (!causality_keys.count(key)) {
            only++;
            std::printf("%s\n", litmus::toString(t).c_str());
        }
    }
    std::printf("(%d sc_per_loc-only tests; %zu of %zu overlap "
                "causality)\n",
                only, suites[0].tests.size() - only, suites[0].tests.size());

    // ---- Figure 12: the rmw_atomicity tests -----------------------------
    std::printf("\nFigure 12: the rmw_atomicity suite\n");
    for (const auto &t : suites[1].tests)
        std::printf("%s\n", litmus::toString(t).c_str());

    std::printf("\nSummary: union=%zu tests, raw SAT instances=%llu\n",
                u.tests.size(),
                static_cast<unsigned long long>(u.rawInstances));

    if (!flags.get("bench-json").empty()) {
        bench::writeBenchJson(flags.get("bench-json"), "fig13_tso", "tso",
                              opt.minSize, max_size, runs);
    }
    return 0;
}
