/**
 * @file
 * Ablation over the minimality-criterion phrasing (Section 4.2 and
 * Figures 5/18/19):
 *
 *  - Figure 5c (practical): outcomes identified with executions; fast,
 *    SAT-friendly, but under-approximates when auxiliary execution
 *    relations (co beyond finals, sc) exist;
 *  - Figure 5c + the lone-sc workaround (Figure 19): the paper's SCC
 *    patch;
 *  - Figure 5b (sound): exists-forall semantics implemented by explicit
 *    execution search per relaxation application (this repo's extension
 *    of the paper's future work).
 *
 * The binary audits a panel of SCC tests under all three and reports
 * where they disagree — SB + FenceSCs being the paper's own example.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/timer.hh"
#include "mm/models.hh"
#include "synth/minimality.hh"
#include "synth/sound.hh"

using namespace lts;

namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

std::vector<LitmusTest>
panel()
{
    std::vector<LitmusTest> tests;
    {
        TestBuilder b; // MP+rel+acq (Figure 1): no auxiliary trouble
        int t0 = b.newThread();
        b.write(t0, "x");
        int wf = b.write(t0, "y", MemOrder::Release);
        int t1 = b.newThread();
        int rf = b.read(t1, "y", MemOrder::Acquire);
        int rd = b.read(t1, "x");
        b.readsFrom(wf, rf);
        b.readsInitial(rd);
        tests.push_back(b.build("MP+rel+acq"));
    }
    {
        TestBuilder b; // Figure 2: over-synchronized
        int t0 = b.newThread();
        b.write(t0, "x", MemOrder::Release);
        int wf = b.write(t0, "y", MemOrder::Release);
        int t1 = b.newThread();
        int rf = b.read(t1, "y", MemOrder::Acquire);
        int rd = b.read(t1, "x", MemOrder::Acquire);
        b.readsFrom(wf, rf);
        b.readsInitial(rd);
        tests.push_back(b.build("MP+2rel+2acq"));
    }
    {
        TestBuilder b; // SB + FenceSCs (Figure 18)
        int t0 = b.newThread();
        b.write(t0, "x");
        b.fence(t0, MemOrder::SeqCst);
        int r0 = b.read(t0, "y");
        int t1 = b.newThread();
        b.write(t1, "y");
        b.fence(t1, MemOrder::SeqCst);
        int r1 = b.read(t1, "x");
        b.readsInitial(r0);
        b.readsInitial(r1);
        tests.push_back(b.build("SB+FenceSCs"));
    }
    {
        TestBuilder b; // SB with AcqRel fences: genuinely allowed
        int t0 = b.newThread();
        b.write(t0, "x");
        b.fence(t0, MemOrder::AcqRel);
        int r0 = b.read(t0, "y");
        int t1 = b.newThread();
        b.write(t1, "y");
        b.fence(t1, MemOrder::AcqRel);
        int r1 = b.read(t1, "x");
        b.readsInitial(r0);
        b.readsInitial(r1);
        tests.push_back(b.build("SB+FenceARs"));
    }
    return tests;
}

std::string
verdict(const std::vector<std::string> &axioms)
{
    return axioms.empty() ? "no" : "yes(" + axioms[0] + ")";
}

} // namespace

int
main()
{
    bench::banner("Criterion ablation: Figure 5c vs lone-sc workaround "
                  "vs sound Figure 5b");

    auto strict = mm::makeSccStrict();
    auto patched = mm::makeScc();

    std::vector<int> widths = {16, 18, 20, 18, 10};
    bench::printRow({"test", "5c (strict)", "5c + Fig19 patch",
                     "5b (sound)", "time(s)"},
                    widths);
    bench::printRule(widths);
    for (const auto &t : panel()) {
        Timer timer;
        auto fast_strict = synth::minimalAxioms(*strict, t);
        auto fast_patched = synth::minimalAxioms(*patched, t);
        auto sound = synth::soundMinimalAxioms(*strict, t);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", timer.seconds());
        bench::printRow({t.name, verdict(fast_strict),
                         verdict(fast_patched), verdict(sound), buf},
                        widths);
    }
    std::printf(
        "\nExpected disagreement: SB+FenceSCs is rejected by the strict\n"
        "Figure 5c criterion (the paper's false negative), accepted once\n"
        "the Figure 19 lone-sc workaround is applied, and accepted by\n"
        "the sound criterion with no workaround at all.\n");
    return 0;
}
