/**
 * @file
 * Reproduces the C/C++ case study of Section 6.4: per-axiom suite sizes
 * and runtimes for the release/acquire/seq_cst fragment, plus the
 * software-model observations the section makes — out-of-thin-air is not
 * axiomatized (so RD is absent from the relaxation set), and the DMO
 * demotion chains of Table 1 drive the suite contents.
 *
 * Flags: --max-size (default 4).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "4", "largest synthesized test size");
    flags.declare("print-size", "4", "print the tests of this size");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");

    bench::banner("Section 6.4: the C/C++ memory model");

    auto c11 = mm::makeModel("c11");
    std::printf("relaxations (Table 1 demotion chains; no RD since "
                "out-of-thin-air is not axiomatized):\n ");
    for (const auto &r : c11->relaxations())
        std::printf(" %s", r.name.c_str());
    std::printf("\n");

    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;
    auto suites = bench::querySuites(*c11, opt);

    std::printf("\nTests per axiom per size bound\n");
    bench::printSuiteTable(suites, 2, max_size);
    std::printf("\nSuite generation runtime (seconds)\n");
    bench::printRuntimeTable(suites, 2, max_size);

    int print_size = flags.getInt("print-size");
    std::printf("\nSynthesized union tests of size %d:\n", print_size);
    for (const auto &t : suites.back().tests) {
        if (static_cast<int>(t.size()) == print_size)
            std::printf("%s\n", litmus::toString(t).c_str());
    }
    return 0;
}
