/**
 * @file
 * Microbenchmarks for the CDCL SAT substrate (google-benchmark): unit
 * propagation throughput, pigeonhole refutation, random 3-SAT near the
 * phase transition, and incremental model enumeration — the operations
 * the synthesizer stresses.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "sat/solver.hh"

namespace
{

using namespace lts::sat;

void
addPigeonhole(Solver &s, int holes)
{
    int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; p++) {
        for (int h = 0; h < holes; h++)
            at[p][h] = s.newVar();
    }
    for (int p = 0; p < pigeons; p++) {
        Clause c;
        for (int h = 0; h < holes; h++)
            c.push_back(Lit::pos(at[p][h]));
        s.addClause(c);
    }
    for (int h = 0; h < holes; h++) {
        for (int p1 = 0; p1 < pigeons; p1++) {
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                s.addClause({Lit::neg(at[p1][h]), Lit::neg(at[p2][h])});
        }
    }
}

void
BM_PropagationChain(benchmark::State &state)
{
    for (auto _ : state) {
        Solver s;
        int n = static_cast<int>(state.range(0));
        std::vector<Var> v;
        for (int i = 0; i < n; i++)
            v.push_back(s.newVar());
        for (int i = 0; i + 1 < n; i++)
            s.addClause({Lit::neg(v[i]), Lit::pos(v[i + 1])});
        s.addClause({Lit::pos(v[0])});
        bool sat = s.solve() == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PropagationChain)->Arg(1000)->Arg(10000);

void
BM_PigeonholeUnsat(benchmark::State &state)
{
    for (auto _ : state) {
        Solver s;
        addPigeonhole(s, static_cast<int>(state.range(0)));
        bool sat = s.solve() == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
    }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(6)->Arg(7)->Arg(8);

void
BM_Random3Sat(benchmark::State &state)
{
    // 4.2 clauses per variable: near the satisfiability threshold.
    int num_vars = static_cast<int>(state.range(0));
    int num_clauses = static_cast<int>(num_vars * 4.2);
    for (auto _ : state) {
        std::mt19937 rng(42);
        Solver s;
        for (int i = 0; i < num_vars; i++)
            s.newVar();
        for (int c = 0; c < num_clauses; c++) {
            Clause clause;
            for (int l = 0; l < 3; l++) {
                clause.push_back(
                    Lit(static_cast<Var>(rng() % num_vars), rng() & 1));
            }
            if (!s.addClause(clause))
                break;
        }
        bool sat = s.solve() == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
    }
}
BENCHMARK(BM_Random3Sat)->Arg(50)->Arg(100)->Arg(150);

void
BM_ModelEnumeration(benchmark::State &state)
{
    // Enumerate all models over k free variables via blocking clauses —
    // the synthesizer's inner loop shape.
    int k = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Solver s;
        std::vector<Var> vars;
        for (int i = 0; i < k; i++)
            vars.push_back(s.newVar());
        int models = 0;
        while (s.solve() == SolveResult::Sat) {
            models++;
            Clause blocking;
            for (Var v : vars)
                blocking.push_back(Lit(v, s.modelValue(v)));
            if (!s.addClause(blocking))
                break;
        }
        benchmark::DoNotOptimize(models);
    }
}
BENCHMARK(BM_ModelEnumeration)->Arg(8)->Arg(10)->Arg(12);

void
BM_IncrementalAssumptions(benchmark::State &state)
{
    Solver s;
    addPigeonhole(s, 5);
    std::vector<Var> selectors;
    for (int i = 0; i < 8; i++)
        selectors.push_back(s.newVar());
    int i = 0;
    for (auto _ : state) {
        std::vector<Lit> assumptions = {
            Lit(selectors[i % selectors.size()], (i / 8) & 1)};
        bool sat = s.solve(assumptions) == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
        i++;
    }
}
BENCHMARK(BM_IncrementalAssumptions);

} // namespace

BENCHMARK_MAIN();
