/**
 * @file
 * Microbenchmarks for the CDCL SAT substrate (google-benchmark): unit
 * propagation throughput, pigeonhole refutation, random 3-SAT near the
 * phase transition, and incremental model enumeration — the operations
 * the synthesizer stresses.
 *
 * After the google-benchmark suites, main() runs the simplification and
 * clause-sharing ablations and writes BENCH_micro_sat.json: the same
 * scenario solved with the feature on and off, with the solver counters
 * that explain the delta.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.hh"
#include "common/timer.hh"
#include "sat/clausebank.hh"
#include "sat/solver.hh"

namespace
{

using namespace lts::sat;

void
addPigeonhole(Solver &s, int holes)
{
    int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; p++) {
        for (int h = 0; h < holes; h++)
            at[p][h] = s.newVar();
    }
    for (int p = 0; p < pigeons; p++) {
        Clause c;
        for (int h = 0; h < holes; h++)
            c.push_back(Lit::pos(at[p][h]));
        s.addClause(c);
    }
    for (int h = 0; h < holes; h++) {
        for (int p1 = 0; p1 < pigeons; p1++) {
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                s.addClause({Lit::neg(at[p1][h]), Lit::neg(at[p2][h])});
        }
    }
}

void
BM_PropagationChain(benchmark::State &state)
{
    for (auto _ : state) {
        Solver s;
        int n = static_cast<int>(state.range(0));
        std::vector<Var> v;
        for (int i = 0; i < n; i++)
            v.push_back(s.newVar());
        for (int i = 0; i + 1 < n; i++)
            s.addClause({Lit::neg(v[i]), Lit::pos(v[i + 1])});
        s.addClause({Lit::pos(v[0])});
        bool sat = s.solve() == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PropagationChain)->Arg(1000)->Arg(10000);

void
BM_PigeonholeUnsat(benchmark::State &state)
{
    for (auto _ : state) {
        Solver s;
        addPigeonhole(s, static_cast<int>(state.range(0)));
        bool sat = s.solve() == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
    }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(6)->Arg(7)->Arg(8);

void
BM_Random3Sat(benchmark::State &state)
{
    // 4.2 clauses per variable: near the satisfiability threshold.
    int num_vars = static_cast<int>(state.range(0));
    int num_clauses = static_cast<int>(num_vars * 4.2);
    for (auto _ : state) {
        std::mt19937 rng(42);
        Solver s;
        for (int i = 0; i < num_vars; i++)
            s.newVar();
        for (int c = 0; c < num_clauses; c++) {
            Clause clause;
            for (int l = 0; l < 3; l++) {
                clause.push_back(
                    Lit(static_cast<Var>(rng() % num_vars), rng() & 1));
            }
            if (!s.addClause(clause))
                break;
        }
        bool sat = s.solve() == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
    }
}
BENCHMARK(BM_Random3Sat)->Arg(50)->Arg(100)->Arg(150);

void
BM_ModelEnumeration(benchmark::State &state)
{
    // Enumerate all models over k free variables via blocking clauses —
    // the synthesizer's inner loop shape.
    int k = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Solver s;
        std::vector<Var> vars;
        for (int i = 0; i < k; i++)
            vars.push_back(s.newVar());
        int models = 0;
        while (s.solve() == SolveResult::Sat) {
            models++;
            Clause blocking;
            for (Var v : vars)
                blocking.push_back(Lit(v, s.modelValue(v)));
            if (!s.addClause(blocking))
                break;
        }
        benchmark::DoNotOptimize(models);
    }
}
BENCHMARK(BM_ModelEnumeration)->Arg(8)->Arg(10)->Arg(12);

void
BM_IncrementalAssumptions(benchmark::State &state)
{
    Solver s;
    addPigeonhole(s, 5);
    std::vector<Var> selectors;
    for (int i = 0; i < 8; i++)
        selectors.push_back(s.newVar());
    int i = 0;
    for (auto _ : state) {
        std::vector<Lit> assumptions = {
            Lit(selectors[i % selectors.size()], (i / 8) & 1)};
        bool sat = s.solve(assumptions) == SolveResult::Sat;
        benchmark::DoNotOptimize(sat);
        i++;
    }
}
BENCHMARK(BM_IncrementalAssumptions);

/**
 * Tseitin-heavy enumeration workload for the simplification ablation: a
 * sequential at-most-k counter over frozen inputs (the shape the
 * relational encoder's mkAtMostOne lowering produces), every satisfying
 * input assignment enumerated via blocking clauses. The auxiliary chain
 * is pure Tseitin plumbing — exactly what bounded variable elimination
 * removes when the inputs are frozen.
 */
lts::bench::MicroRun
runCounterEnumeration(const char *name, bool simplify)
{
    using lts::bench::MicroRun;
    Solver s;
    const int k = 12, at_most = 3;
    std::vector<Var> inputs;
    for (int i = 0; i < k; i++) {
        Var v = s.newVar();
        s.setFrozen(v);
        inputs.push_back(v);
    }
    // count[i][c] := at least c+1 of inputs[0..i] are true, c in [0, at_most].
    std::vector<Var> prev;
    for (int i = 0; i < k; i++) {
        std::vector<Var> cur;
        for (int c = 0; c <= at_most; c++) {
            Var v = s.newVar();
            cur.push_back(v);
            Lit x = Lit::pos(inputs[i]);
            Lit out = Lit::pos(v);
            if (c == 0) {
                // v <-> x | prev[0]
                if (prev.empty()) {
                    s.addClause({~out, x});
                    s.addClause({out, ~x});
                } else {
                    Lit p = Lit::pos(prev[0]);
                    s.addClause({~out, x, p});
                    s.addClause({out, ~x});
                    s.addClause({out, ~p});
                }
            } else if (prev.empty()) {
                s.addClause({~out}); // c+1 > 1 trues among 1 input
            } else {
                // v <-> prev[c] | (x & prev[c-1])
                Lit pc = Lit::pos(prev[c]);
                Lit pm = Lit::pos(prev[c - 1]);
                s.addClause({~out, pc, x});
                s.addClause({~out, pc, pm});
                s.addClause({out, ~pc});
                s.addClause({out, ~x, ~pm});
            }
        }
        prev = cur;
    }
    // Forbid at_most+1 trues; also assert at least one true so the
    // enumeration is not the full 2^k cube.
    s.addClause({Lit::neg(prev[at_most])});
    s.addClause({Lit::pos(prev[0])});

    MicroRun run;
    run.scenario = name;
    lts::Timer wall;
    if (simplify)
        s.simplify();
    run.problemClauses = static_cast<uint64_t>(s.numClauses());
    int models = 0;
    while (s.solve() == SolveResult::Sat) {
        models++;
        Clause blocking;
        for (Var v : inputs)
            blocking.push_back(Lit(v, s.modelValue(v)));
        if (!s.addClause(blocking))
            break;
    }
    run.wallSeconds = wall.seconds();
    run.conflicts = s.stats().conflicts;
    run.propagations = s.stats().propagations;
    run.eliminatedVars = s.stats().eliminatedVars;
    run.subsumedClauses = s.stats().subsumedClauses;
    return run;
}

/**
 * Clause-sharing ablation: two solvers refute the same pigeonhole
 * instance in sequence. With a bank, the first solver's exports let the
 * second skip already-paid conflicts; without one, both pay full price.
 */
lts::bench::MicroRun
runSharedRefutation(const char *name, bool share)
{
    using lts::bench::MicroRun;
    const int holes = 7;
    ClauseBank bank;
    int family = bank.openFamily("ph");
    MicroRun run;
    run.scenario = name;
    lts::Timer wall;
    uint64_t conflicts = 0, props = 0, imported = 0, exported = 0;
    for (int i = 0; i < 2; i++) {
        Solver s;
        addPigeonhole(s, holes);
        if (share)
            s.connectBank(bank, family, s.numVars());
        s.solve();
        conflicts += s.stats().conflicts;
        props += s.stats().propagations;
        imported += s.stats().importedClauses;
        exported += s.stats().exportedClauses;
        run.problemClauses = static_cast<uint64_t>(s.numClauses());
    }
    run.wallSeconds = wall.seconds();
    run.conflicts = conflicts;
    run.propagations = props;
    run.importedClauses = imported;
    run.exportedClauses = exported;
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<lts::bench::MicroRun> runs = {
        runCounterEnumeration("simplify-on", true),
        runCounterEnumeration("simplify-off", false),
        runSharedRefutation("share-on", true),
        runSharedRefutation("share-off", false),
    };
    for (const auto &r : runs) {
        std::printf("%-14s wall %.3fs conflicts %llu propagations %llu "
                    "elim %llu subsumed %llu shared %llu/%llu\n",
                    r.scenario.c_str(), r.wallSeconds,
                    static_cast<unsigned long long>(r.conflicts),
                    static_cast<unsigned long long>(r.propagations),
                    static_cast<unsigned long long>(r.eliminatedVars),
                    static_cast<unsigned long long>(r.subsumedClauses),
                    static_cast<unsigned long long>(r.exportedClauses),
                    static_cast<unsigned long long>(r.importedClauses));
    }
    lts::bench::writeMicroSatJson("BENCH_micro_sat.json", runs);
    return 0;
}
