/**
 * @file
 * Ablation study over the synthesizer's design choices (DESIGN.md):
 *
 *  1. Symmetry reduction (Section 5.1): raw SAT instances vs emitted
 *     canonical tests, and paper-mode vs exact canonicalization.
 *  2. Static-part blocking vs full-instance blocking: how many SAT
 *     models are enumerated to produce the same suite.
 *  3. The SCC lone-sc workaround (Figure 19): SB-style tests appear only
 *     with the relaxed-variant axioms.
 *
 * Flags: --max-size (default 4), --model (default tso).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/timer.hh"
#include "mm/registry.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "5", "largest synthesized test size");
    flags.declare("model", "tso", "model to ablate");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");
    auto model = mm::makeModel(flags.get("model"));

    bench::banner("Ablations: blocking granularity and symmetry handling");

    const std::string axiom = model->axioms().back().name;
    std::printf("model=%s axiom=%s sizes 2..%d\n\n", model->name().c_str(),
                axiom.c_str(), max_size);

    struct Config
    {
        const char *name;
        bool block_static;
        bool use_canon;
        litmus::CanonMode mode;
    };
    const Config configs[] = {
        {"static-block + paper-canon (default)", true, true,
         litmus::CanonMode::Paper},
        {"static-block + exact-canon", true, true,
         litmus::CanonMode::Exact},
        {"static-block + no-canon", true, false, litmus::CanonMode::Paper},
        {"full-instance-block + paper-canon", false, true,
         litmus::CanonMode::Paper},
    };

    std::vector<int> widths = {40, 10, 12, 10};
    bench::printRow({"configuration", "tests", "sat-models", "time(s)"},
                    widths);
    bench::printRule(widths);
    for (const auto &config : configs) {
        synth::SynthOptions opt;
        opt.minSize = 2;
        opt.maxSize = max_size;
        opt.blockStaticOnly = config.block_static;
        opt.useCanon = config.use_canon;
        opt.canonMode = config.mode;
        Timer timer;
        synth::Suite suite = synth::synthesizeAxiom(*model, axiom, opt);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", timer.seconds());
        bench::printRow({config.name, std::to_string(suite.tests.size()),
                         std::to_string(suite.rawInstances), buf},
                        widths);
    }
    // --- Footnote 4: direct union query vs per-axiom merge -----------
    {
        synth::SynthOptions opt;
        opt.minSize = 2;
        opt.maxSize = max_size;
        Timer merged_timer;
        auto suites = bench::querySuites(*model, opt);
        double merged_s = merged_timer.seconds();
        Timer direct_timer;
        synth::Suite direct = synth::synthesizeUnionDirect(*model, opt);
        double direct_s = direct_timer.seconds();
        std::printf("\nFootnote 4: union generation strategy\n");
        std::printf("  per-axiom + merge : %3zu tests in %.2fs\n",
                    suites.back().tests.size(), merged_s);
        std::printf("  direct union query: %3zu tests in %.2fs\n",
                    direct.tests.size(), direct_s);
    }

    std::printf("\nNotes: full-instance blocking enumerates every "
                "execution of every test, so its SAT-model count is the\n"
                "number of minimal (test, execution) pairs; static "
                "blocking stops at one witness per program. Without\n"
                "canonicalization, symmetric thread/address renamings "
                "are emitted as distinct tests.\n");
    return 0;
}
