/**
 * @file
 * Reproduces Table 4 and Figure 10: compare the Owens et al. x86-TSO
 * baseline against the synthesized tso-union suite. Every forbidden
 * Owens test must either appear in the suite (canonically) or contain a
 * synthesized test as a subtest; the Figure 10 pair (n5/CoLB contains
 * CoRW) is shown explicitly.
 *
 * Flags: --max-size (synthesis bound, default 6 so the size-6 row of
 * Table 4 is populated).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "litmus/print.hh"
#include "mm/registry.hh"
#include "suites/owens.hh"
#include "synth/compare.hh"
#include "synth/minimality.hh"
#include "synth/synthesizer.hh"

using namespace lts;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("max-size", "6", "largest synthesized test size");
    flags.declare("print-tests", "false", "print every synthesized test");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");

    bench::banner("Table 4 + Figure 10: Owens suite vs causality/union");

    auto tso = mm::makeModel("tso");
    synth::SynthOptions opt;
    opt.minSize = 2;
    opt.maxSize = max_size;
    auto suites = bench::querySuites(*tso, opt);
    const synth::Suite &u = suites.back();
    std::printf("synthesized tso-union: %zu tests (bound %d, %.1fs)\n\n",
                u.tests.size(), max_size, u.totalSeconds());

    auto owens = suites::owensSuite();
    std::vector<litmus::LitmusTest> forbidden = suites::owensForbidden();
    auto results = synth::compareSuites(forbidden, u.tests);

    std::vector<int> widths = {18, 6, 10, 10, 10, 24};
    bench::printRow({"Owens test", "size", "forbidden", "minimal",
                     "in-suite", "subsumed-by"},
                    widths);
    bench::printRule(widths);
    std::map<int, std::pair<int, int>> by_size; // size -> (in, only-subsumed)
    for (size_t i = 0; i < forbidden.size(); i++) {
        const auto &t = forbidden[i];
        const auto &r = results[i];
        bool minimal = !synth::minimalAxioms(*tso, t).empty();
        by_size[static_cast<int>(t.size())].first += r.inSuite;
        by_size[static_cast<int>(t.size())].second +=
            (!r.inSuite && r.subsumed);
        bench::printRow(
            {t.name, std::to_string(t.size()), "yes",
             minimal ? "yes" : "no", r.inSuite ? "yes" : "no",
             r.inSuite ? "(itself)"
                       : (r.subsumed ? r.subsumedBy : "NOT COVERED")},
            widths);
    }
    std::printf("\nPer-size summary (Table 4 shape): ");
    for (auto &[size, counts] : by_size) {
        std::printf("n=%d: both=%d owens-only=%d; ", size, counts.first,
                    counts.second);
    }
    std::printf("\n");

    int covered = 0;
    for (const auto &r : results)
        covered += r.subsumed;
    std::printf("\nClaim check: %d/%zu forbidden Owens tests covered "
                "(in suite or containing a suite test)\n",
                covered, results.size());

    // ---- Figure 10 ------------------------------------------------------
    std::printf("\nFigure 10: n5/CoLB is not minimal, but contains CoRW\n");
    for (const auto &e : owens) {
        if (e.test.name != "n5/CoLB")
            continue;
        std::printf("%s\n", litmus::toString(e.test).c_str());
        auto axioms = synth::minimalAxioms(*tso, e.test);
        std::printf("minimal for: %s\n",
                    axioms.empty() ? "(no axiom)" : axioms[0].c_str());
    }
    for (const auto &t : u.tests) {
        if (t.size() == 3 && t.rmw.none() &&
            synth::isSubtest(t, owens[4].test)) {
            std::printf("contained suite test:\n%s\n",
                        litmus::toString(t).c_str());
            break;
        }
    }

    if (flags.getBool("print-tests")) {
        std::printf("\nAll synthesized union tests:\n");
        for (const auto &t : u.tests)
            std::printf("%s\n", litmus::toString(t).c_str());
    }
    return 0;
}
