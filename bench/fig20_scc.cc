/**
 * @file
 * Reproduces the SCC results of Section 6.3 / Figures 18-20:
 *
 *  - Figure 20a: per-axiom suite sizes (coherence/rmw saturate, the
 *    acquire/release-rich axioms grow faster than TSO since SCC offers
 *    more ways to synchronize);
 *  - Figure 20b: runtimes (super-exponential, but far below Power);
 *  - Figures 18/19: SB with two FenceSCs is only admitted thanks to the
 *    lone-sc workaround; verified by locating it in the causality suite
 *    and by checking the strict (workaround-free) criterion rejects it.
 *
 * Flags: --max-size (default 4).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/flags.hh"
#include "common/timer.hh"
#include "litmus/canon.hh"
#include "litmus/print.hh"
#include "mm/convert.hh"
#include "mm/registry.hh"
#include "rel/encoder.hh"
#include "synth/minimality.hh"
#include "synth/options.hh"
#include "synth/synthesizer.hh"

using namespace lts;

namespace
{

litmus::LitmusTest
sbFenceSc()
{
    litmus::TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, litmus::MemOrder::SeqCst);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, litmus::MemOrder::SeqCst);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+FenceSCs");
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    synth::declareSynthFlags(flags);
    flags.declare("sb-size", "6",
                  "size at which to look for SB+FenceSCs (0 = skip)");
    flags.declare("bench-json", "BENCH_fig20_scc.json",
                  "machine-readable results file ('' = skip)");
    flags.declare("compare-modes", "true",
                  "also run the from-scratch engine and record both in "
                  "the json file");
    if (!flags.parse(argc, argv))
        return 1;
    int max_size = flags.getInt("max-size");

    bench::banner("Figures 18-20 + Section 6.3: Streamlined Causal "
                  "Consistency");

    auto scc = mm::makeModel("scc");
    synth::SynthOptions opt = synth::synthOptionsFromFlags(flags);
    std::vector<synth::Suite> suites;
    std::vector<bench::ModeRun> runs;
    runs.push_back(bench::measureMode(*scc, opt, opt.incremental,
                                      opt.symmetryBreaking, &suites));
    bench::printModeRun(runs.back(), opt.jobs);
    if (flags.getBool("compare-modes")) {
        runs.push_back(bench::measureMode(*scc, opt, !opt.incremental,
                                          opt.symmetryBreaking));
        bench::printModeRun(runs.back(), opt.jobs);
    }

    std::printf("\nFigure 20a: tests per axiom per size bound\n");
    bench::printSuiteTable(suites, 2, max_size);
    std::printf("\nFigure 20b: suite generation runtime (seconds)\n");
    bench::printRuntimeTable(suites, 2, max_size);

    // ---- Figures 18/19: the sc workaround --------------------------------
    std::printf("\nFigures 18/19: the SB + FenceSC workaround\n");
    litmus::LitmusTest sb = sbFenceSc();
    std::printf("%s\n", litmus::toString(sb).c_str());
    auto axioms = synth::minimalAxioms(*scc, sb);
    std::printf("with Figure 19 workaround: minimal=%s\n",
                axioms.empty() ? "NO (unexpected!)" : "yes (causality)");

    if (flags.getInt("sb-size") > 0) {
        // Targeted SAT query: pin the static relations to SB+FenceSCs and
        // ask whether the causality minimality formula (with the Figure 19
        // workaround compiled in) admits a witness execution — i.e.
        // whether the size-6 synthesis run would emit the test.
        std::printf("targeted SAT query: would causality@6 emit it?\n");
        size_t n = sb.size();
        rel::RelSolver solver(scc->vocab(), n);
        solver.addFact(synth::minimalityFormula(*scc, "causality", n));
        rel::Instance pin = mm::toInstance(*scc, sb, sb.forbidden);
        for (int id : scc->staticVarIds()) {
            const auto &decl = scc->vocab().decl(id);
            rel::ExprPtr var = scc->vocab().expr(decl.name);
            if (decl.arity == 1)
                solver.addFact(rel::mkEqual(var, rel::mkConst(pin.set(id))));
            else
                solver.addFact(
                    rel::mkEqual(var, rel::mkConst(pin.matrix(id))));
        }
        bool admitted = solver.solve() == sat::SolveResult::Sat;
        std::printf("SB+FenceSCs %s by the synthesis formula at n=6\n",
                    admitted ? "ADMITTED (as the paper reports)"
                             : "REJECTED (unexpected)");
    }

    if (!flags.get("bench-json").empty()) {
        bench::writeBenchJson(flags.get("bench-json"), "fig20_scc", "scc",
                              opt.minSize, max_size, runs);
    }
    return 0;
}
