#include "store/crc32.hh"

#include <array>

namespace lts::store
{

namespace
{

/** The 256-entry lookup table for the reflected IEEE polynomial. */
std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    static const std::array<uint32_t, 256> table = makeTable();
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; i++)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc;
}

} // namespace lts::store
