/**
 * @file
 * Length-prefixed frames for the ltsd wire protocol.
 *
 * Every message on the daemon's unix-domain socket is one frame:
 *
 *   frame := payloadLen u32 LE   (bytes of payload only)
 *            type       u8
 *            payload    bytes
 *
 * The protocol is a strict request/response exchange with streamed
 * progress: the client sends one Request frame, the server replies with
 * zero or more Progress frames followed by exactly one Result or Error
 * frame. Shutdown asks the server to exit after acknowledging with an
 * empty Result. Payloads are the line-oriented texts defined in
 * synth/service.hh (serializeSuiteRequest / serializeSuiteResult);
 * framing is payload-agnostic.
 */

#ifndef LTS_STORE_WIRE_HH
#define LTS_STORE_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace lts::store
{

enum class FrameType : uint8_t
{
    Request = 1,  ///< client -> server: a serialized SuiteRequest
    Progress = 2, ///< server -> client: human-readable progress line
    Result = 3,   ///< server -> client: a serialized SuiteResult
    Error = 4,    ///< server -> client: diagnostic text; ends the exchange
    Ping = 5,     ///< client -> server: liveness probe (empty Result back)
    Shutdown = 6, ///< client -> server: exit after the empty Result ack
};

struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** Refuse frames beyond this size rather than allocating blindly. */
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

/**
 * Write one frame to @p fd, looping over partial writes. Returns false
 * on any write error (EPIPE when the peer vanished included).
 */
bool writeFrame(int fd, FrameType type, std::string_view payload);

/**
 * Read one frame from @p fd. Returns false on clean EOF before any
 * byte, on a truncated frame, or on an oversized length prefix.
 */
bool readFrame(int fd, Frame &out);

} // namespace lts::store

#endif // LTS_STORE_WIRE_HH
