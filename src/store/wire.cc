#include "store/wire.hh"

#include <unistd.h>

#include <cerrno>

namespace lts::store
{

namespace
{

bool
writeAll(int fd, const char *p, size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *p, size_t len)
{
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, FrameType type, std::string_view payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    uint32_t len = static_cast<uint32_t>(payload.size());
    char header[5] = {
        static_cast<char>(len & 0xff),
        static_cast<char>((len >> 8) & 0xff),
        static_cast<char>((len >> 16) & 0xff),
        static_cast<char>((len >> 24) & 0xff),
        static_cast<char>(type),
    };
    // One buffered write keeps frames contiguous even if a signal lands
    // between header and payload on the slow path.
    std::string buf;
    buf.reserve(sizeof header + payload.size());
    buf.append(header, sizeof header);
    buf.append(payload);
    return writeAll(fd, buf.data(), buf.size());
}

bool
readFrame(int fd, Frame &out)
{
    char header[5];
    if (!readAll(fd, header, sizeof header))
        return false;
    uint32_t len = static_cast<uint32_t>(static_cast<unsigned char>(header[0])) |
                   (static_cast<uint32_t>(static_cast<unsigned char>(header[1]))
                    << 8) |
                   (static_cast<uint32_t>(static_cast<unsigned char>(header[2]))
                    << 16) |
                   (static_cast<uint32_t>(static_cast<unsigned char>(header[3]))
                    << 24);
    if (len > kMaxFramePayload)
        return false;
    out.type = static_cast<FrameType>(header[4]);
    out.payload.assign(len, '\0');
    if (len > 0 && !readAll(fd, out.payload.data(), len))
        return false;
    return true;
}

} // namespace lts::store
