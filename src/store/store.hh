/**
 * @file
 * The content-addressed suite store (the persistence layer behind ltsd
 * and `ltsgen query`).
 *
 * A SuiteStore is a single log-structured segment file plus an in-memory
 * index rebuilt by scanning it on open. Values are canonical suite/shard
 * bytes keyed by digest-derived strings (see synth/service.hh for the
 * key scheme: (modelDigest, bound, optionsDigest) manifests pointing at
 * content-addressed shard records). The format is deliberately dumb:
 *
 *   record := magic  u32 LE   ("LTS1", 0x3153544c)
 *             type   u8       (1 = put, 2 = tombstone)
 *             keyLen u32 LE
 *             valLen u32 LE   (0 for tombstones)
 *             key    bytes
 *             value  bytes
 *             crc    u32 LE   (CRC-32 of type..value)
 *
 * Appends are single write(2) calls; a crash can only tear the tail.
 * On open, the scan stops at the first record that is incomplete or
 * fails its CRC and truncates the file there — everything after a torn
 * record is unreachable by construction in an append-only log, so
 * dropping it loses at most the writes that never returned. Updates
 * append a fresh record (the index keeps the newest offset); compact()
 * rewrites only live records into a temp segment and renames it into
 * place, which is atomic within a directory.
 *
 * Reads go through an LRU page cache bounded by a byte budget, so a
 * daemon answering repeat queries serves hot suites from memory without
 * holding the whole store. The class is not thread-safe; ltsd serializes
 * requests onto one thread.
 */

#ifndef LTS_STORE_STORE_HH
#define LTS_STORE_STORE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lts::store
{

/** Counters reported by `lts-store stats` and the daemon's status line. */
struct StoreStats
{
    uint64_t liveKeys = 0;   ///< keys with a current value
    uint64_t records = 0;    ///< records in the segment (incl. superseded)
    uint64_t fileBytes = 0;  ///< segment file size
    uint64_t liveBytes = 0;  ///< bytes of live records
    uint64_t deadBytes = 0;  ///< bytes reclaimable by compact()
    uint64_t tornBytesDropped = 0; ///< tail bytes truncated on open
    uint64_t cacheBytes = 0;     ///< value bytes resident in the LRU cache
    uint64_t cacheHits = 0;      ///< get() answered from cache
    uint64_t cacheMisses = 0;    ///< get() read from the segment
    uint64_t cacheEvictions = 0; ///< values evicted to fit the budget
};

/** Result of a full-segment integrity scan (`lts-store fsck`). */
struct FsckReport
{
    uint64_t records = 0;   ///< intact records scanned
    uint64_t liveKeys = 0;  ///< distinct keys with a live value
    uint64_t badCrc = 0;    ///< records whose checksum failed
    uint64_t tornBytes = 0; ///< trailing bytes not forming a whole record

    bool
    clean() const
    {
        return badCrc == 0 && tornBytes == 0;
    }

    std::string summary() const;
};

/**
 * Read-only integrity scan of a segment file. Unlike opening a
 * SuiteStore (which truncates a torn tail as part of recovery), this
 * never modifies the file — it is what `lts-store fsck` runs. Throws
 * std::runtime_error when the file cannot be opened.
 */
FsckReport fsckSegment(const std::string &segment_path);

class SuiteStore
{
  public:
    static constexpr size_t kDefaultCacheBudget = 64u << 20;

    /**
     * Open (creating if needed) the store rooted at directory @p dir;
     * the segment lives at dir/segment.log. Scans the segment to
     * rebuild the index, truncating a torn tail. Throws
     * std::runtime_error when the directory or segment is unusable.
     */
    explicit SuiteStore(std::string dir,
                        size_t cache_budget = kDefaultCacheBudget);
    ~SuiteStore();

    SuiteStore(const SuiteStore &) = delete;
    SuiteStore &operator=(const SuiteStore &) = delete;

    /** Store @p value under @p key (appends; supersedes prior values). */
    void put(const std::string &key, const std::string &value);

    /** Fetch the live value for @p key, via the LRU cache. */
    std::optional<std::string> get(const std::string &key);

    /** True iff @p key has a live value (no I/O). */
    bool contains(const std::string &key) const;

    /** Tombstone @p key (no-op when absent). */
    void erase(const std::string &key);

    /** Live keys in unspecified order. */
    std::vector<std::string> keys() const;

    StoreStats stats() const;

    /** Re-scan the whole segment, checking every record's CRC. */
    FsckReport fsck() const;

    /**
     * Rewrite live records into a fresh segment (temp file + atomic
     * rename), dropping superseded records and tombstones. Returns the
     * number of bytes reclaimed.
     */
    uint64_t compact();

    /** fsync the segment (appends are otherwise only write(2)-durable). */
    void flush();

    const std::string &directory() const { return dir; }
    std::string segmentPath() const;

  private:
    struct Entry
    {
        uint64_t valueOffset = 0; ///< file offset of the value bytes
        uint32_t valueLen = 0;
        uint64_t recordBytes = 0; ///< whole-record size, for dead-byte math
    };

    void openSegment();
    void scanSegment();
    void appendRecord(uint8_t type, const std::string &key,
                      const std::string &value);
    void cacheInsert(const std::string &key, std::string value);
    void cacheErase(const std::string &key);

    std::string dir;
    int fd = -1;
    uint64_t fileSize = 0;

    std::unordered_map<std::string, Entry> index;
    uint64_t deadBytes = 0;
    uint64_t recordCount = 0;
    uint64_t tornDropped = 0;

    // LRU cache: most-recent at the front; lookup maps key -> list node.
    size_t cacheBudget;
    size_t cacheBytes = 0;
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::
                           iterator>
        cacheMap;
    mutable uint64_t hits = 0, misses = 0, evictions = 0;
};

} // namespace lts::store

#endif // LTS_STORE_STORE_HH
