/**
 * @file
 * CRC-32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320) for the
 * suite store's record checksums. Self-contained — the project does not
 * link zlib — and byte-order independent: the checksum is a function of
 * the byte stream only, so segment files move between machines.
 */

#ifndef LTS_STORE_CRC32_HH
#define LTS_STORE_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lts::store
{

/** Incremental CRC-32: fold @p len bytes at @p data into @p crc.
 *  Start chains from crc32Init() and finish with crc32Final(). */
uint32_t crc32Update(uint32_t crc, const void *data, size_t len);

/** Initial value of an incremental CRC-32 chain. */
inline uint32_t
crc32Init()
{
    return 0xffffffffu;
}

/** Close an incremental chain (final bit inversion). */
inline uint32_t
crc32Final(uint32_t crc)
{
    return crc ^ 0xffffffffu;
}

/** One-shot CRC-32 of a byte string. */
inline uint32_t
crc32(std::string_view bytes)
{
    return crc32Final(crc32Update(crc32Init(), bytes.data(), bytes.size()));
}

} // namespace lts::store

#endif // LTS_STORE_CRC32_HH
