#include "store/store.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "store/crc32.hh"

namespace lts::store
{

namespace
{

constexpr uint32_t kMagic = 0x3153544cu; // "LTS1" little-endian
constexpr uint8_t kTypePut = 1;
constexpr uint8_t kTypeTombstone = 2;
constexpr size_t kHeaderBytes = 4 + 1 + 4 + 4; // magic, type, keyLen, valLen
constexpr size_t kTrailerBytes = 4;            // crc
constexpr uint32_t kMaxPayload = 512u << 20;   // sanity bound per field

void
putU32(std::string &out, uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t
getU32(const unsigned char *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

/** Read exactly @p len bytes at @p offset; false on short read/error. */
bool
preadAll(int fd, void *buf, size_t len, uint64_t offset)
{
    auto *p = static_cast<char *>(buf);
    while (len > 0) {
        ssize_t n = ::pread(fd, p, len, static_cast<off_t>(offset));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        p += n;
        offset += static_cast<uint64_t>(n);
        len -= static_cast<size_t>(n);
    }
    return true;
}

void
writeAll(int fd, const char *p, size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("store: write failed: ") +
                                     std::strerror(errno));
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
}

/**
 * Decode one record at @p offset. Returns false when the bytes from
 * @p offset to EOF do not form an intact record (short, bad magic,
 * oversized length field, or CRC mismatch) — the caller treats that as
 * the torn tail. On success fills key/value/type and the record size.
 */
bool
readRecord(int fd, uint64_t offset, uint64_t file_size, uint8_t &type,
           std::string &key, std::string &value, uint64_t &record_bytes)
{
    if (offset + kHeaderBytes + kTrailerBytes > file_size)
        return false;
    unsigned char hdr[kHeaderBytes];
    if (!preadAll(fd, hdr, sizeof hdr, offset))
        return false;
    if (getU32(hdr) != kMagic)
        return false;
    type = hdr[4];
    uint32_t key_len = getU32(hdr + 5);
    uint32_t val_len = getU32(hdr + 9);
    if (type != kTypePut && type != kTypeTombstone)
        return false;
    if (key_len == 0 || key_len > kMaxPayload || val_len > kMaxPayload)
        return false;
    record_bytes = kHeaderBytes + static_cast<uint64_t>(key_len) + val_len +
                   kTrailerBytes;
    if (offset + record_bytes > file_size)
        return false;
    std::string payload(static_cast<size_t>(key_len) + val_len, '\0');
    if (!payload.empty() &&
        !preadAll(fd, payload.data(), payload.size(), offset + kHeaderBytes))
        return false;
    unsigned char crc_buf[4];
    if (!preadAll(fd, crc_buf, 4,
                  offset + kHeaderBytes + payload.size()))
        return false;
    uint32_t crc = crc32Init();
    crc = crc32Update(crc, hdr + 4, kHeaderBytes - 4); // type..valLen
    crc = crc32Update(crc, payload.data(), payload.size());
    if (crc32Final(crc) != getU32(crc_buf))
        return false;
    key.assign(payload, 0, key_len);
    value.assign(payload, key_len, val_len);
    return true;
}

/** The scan shared by SuiteStore::fsck and fsckSegment. */
FsckReport
scanForFsck(int fd, uint64_t file_size)
{
    FsckReport report;
    std::unordered_map<std::string, bool> live; // key -> last record is put
    uint64_t offset = 0;
    uint8_t type;
    std::string key, value;
    uint64_t record_bytes;
    while (offset < file_size) {
        if (!readRecord(fd, offset, file_size, type, key, value,
                        record_bytes)) {
            // Distinguish a whole corrupt record (header-sized bytes
            // present, crc or framing bad) from a short tail only by
            // whether a header could even fit; both stop the scan,
            // exactly as recovery does on open.
            report.tornBytes = file_size - offset;
            if (offset + kHeaderBytes + kTrailerBytes <= file_size)
                report.badCrc++;
            break;
        }
        report.records++;
        live[key] = type == kTypePut;
        offset += record_bytes;
    }
    for (const auto &[k, is_live] : live) {
        if (is_live)
            report.liveKeys++;
    }
    return report;
}

} // namespace

std::string
FsckReport::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%llu records, %llu live keys, %llu bad crc, "
                  "%llu torn tail bytes: %s",
                  static_cast<unsigned long long>(records),
                  static_cast<unsigned long long>(liveKeys),
                  static_cast<unsigned long long>(badCrc),
                  static_cast<unsigned long long>(tornBytes),
                  clean() ? "clean" : "CORRUPT");
    return buf;
}

SuiteStore::SuiteStore(std::string dir_, size_t cache_budget)
    : dir(std::move(dir_)), cacheBudget(cache_budget)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        throw std::runtime_error("store: cannot create " + dir + ": " +
                                 ec.message());
    }
    openSegment();
    scanSegment();
}

SuiteStore::~SuiteStore()
{
    if (fd >= 0)
        ::close(fd);
}

std::string
SuiteStore::segmentPath() const
{
    return dir + "/segment.log";
}

void
SuiteStore::openSegment()
{
    fd = ::open(segmentPath().c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        throw std::runtime_error("store: cannot open " + segmentPath() +
                                 ": " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        throw std::runtime_error("store: cannot stat " + segmentPath() +
                                 ": " + std::strerror(errno));
    }
    fileSize = static_cast<uint64_t>(st.st_size);
}

void
SuiteStore::scanSegment()
{
    index.clear();
    deadBytes = 0;
    recordCount = 0;
    uint64_t offset = 0;
    uint8_t type;
    std::string key, value;
    uint64_t record_bytes;
    while (offset < fileSize &&
           readRecord(fd, offset, fileSize, type, key, value,
                      record_bytes)) {
        recordCount++;
        auto it = index.find(key);
        if (it != index.end()) {
            deadBytes += it->second.recordBytes;
            index.erase(it);
        }
        if (type == kTypePut) {
            Entry e;
            e.valueOffset = offset + kHeaderBytes + key.size();
            e.valueLen = static_cast<uint32_t>(value.size());
            e.recordBytes = record_bytes;
            index.emplace(key, e);
        } else {
            deadBytes += record_bytes; // the tombstone itself
        }
        offset += record_bytes;
    }
    if (offset < fileSize) {
        // Torn tail: a crash mid-append (or trailing corruption). Drop
        // it so the next append starts at a record boundary.
        tornDropped = fileSize - offset;
        if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
            throw std::runtime_error("store: cannot truncate torn tail of " +
                                     segmentPath() + ": " +
                                     std::strerror(errno));
        }
        fileSize = offset;
    }
}

void
SuiteStore::appendRecord(uint8_t type, const std::string &key,
                         const std::string &value)
{
    std::string rec;
    rec.reserve(kHeaderBytes + key.size() + value.size() + kTrailerBytes);
    putU32(rec, kMagic);
    rec.push_back(static_cast<char>(type));
    putU32(rec, static_cast<uint32_t>(key.size()));
    putU32(rec, static_cast<uint32_t>(value.size()));
    rec += key;
    rec += value;
    uint32_t crc = crc32Init();
    crc = crc32Update(crc, rec.data() + 4, rec.size() - 4);
    putU32(rec, crc32Final(crc));
    writeAll(fd, rec.data(), rec.size());

    auto it = index.find(key);
    if (it != index.end()) {
        deadBytes += it->second.recordBytes;
        index.erase(it);
    }
    if (type == kTypePut) {
        Entry e;
        e.valueOffset = fileSize + kHeaderBytes + key.size();
        e.valueLen = static_cast<uint32_t>(value.size());
        e.recordBytes = rec.size();
        index.emplace(key, e);
    } else {
        deadBytes += rec.size();
    }
    fileSize += rec.size();
    recordCount++;
}

void
SuiteStore::put(const std::string &key, const std::string &value)
{
    if (key.empty())
        throw std::invalid_argument("store: empty key");
    if (key.size() > kMaxPayload || value.size() > kMaxPayload)
        throw std::invalid_argument("store: oversized record");
    auto it = index.find(key);
    if (it != index.end() && it->second.valueLen == value.size()) {
        // Same bytes already live? Skip the append so repeat warm
        // queries don't grow the segment.
        std::string current(value.size(), '\0');
        if ((value.empty() ||
             preadAll(fd, current.data(), current.size(),
                      it->second.valueOffset)) &&
            current == value) {
            return;
        }
    }
    appendRecord(kTypePut, key, value);
    cacheInsert(key, value);
}

std::optional<std::string>
SuiteStore::get(const std::string &key)
{
    auto cached = cacheMap.find(key);
    if (cached != cacheMap.end()) {
        hits++;
        lru.splice(lru.begin(), lru, cached->second); // refresh recency
        return cached->second->second;
    }
    auto it = index.find(key);
    if (it == index.end())
        return std::nullopt;
    misses++;
    std::string value(it->second.valueLen, '\0');
    if (!value.empty() &&
        !preadAll(fd, value.data(), value.size(), it->second.valueOffset)) {
        throw std::runtime_error("store: short read in " + segmentPath());
    }
    cacheInsert(key, value);
    return value;
}

bool
SuiteStore::contains(const std::string &key) const
{
    return index.count(key) != 0;
}

void
SuiteStore::erase(const std::string &key)
{
    if (index.count(key) == 0)
        return;
    appendRecord(kTypeTombstone, key, "");
    cacheErase(key);
}

std::vector<std::string>
SuiteStore::keys() const
{
    std::vector<std::string> out;
    out.reserve(index.size());
    for (const auto &[k, e] : index)
        out.push_back(k);
    return out;
}

StoreStats
SuiteStore::stats() const
{
    StoreStats s;
    s.liveKeys = index.size();
    s.records = recordCount;
    s.fileBytes = fileSize;
    s.deadBytes = deadBytes;
    s.liveBytes = fileSize - deadBytes;
    s.tornBytesDropped = tornDropped;
    s.cacheBytes = cacheBytes;
    s.cacheHits = hits;
    s.cacheMisses = misses;
    s.cacheEvictions = evictions;
    return s;
}

FsckReport
SuiteStore::fsck() const
{
    return scanForFsck(fd, fileSize);
}

FsckReport
fsckSegment(const std::string &segment_path)
{
    int fd = ::open(segment_path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw std::runtime_error("store: cannot open " + segment_path +
                                 ": " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        throw std::runtime_error("store: cannot stat " + segment_path +
                                 ": " + std::strerror(err));
    }
    FsckReport report =
        scanForFsck(fd, static_cast<uint64_t>(st.st_size));
    ::close(fd);
    return report;
}

uint64_t
SuiteStore::compact()
{
    const std::string tmp_path = segmentPath() + ".tmp";
    int tmp = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (tmp < 0) {
        throw std::runtime_error("store: cannot open " + tmp_path + ": " +
                                 std::strerror(errno));
    }
    // Live records are re-read in index order; order inside a segment
    // carries no meaning once every key appears at most once.
    uint64_t before = fileSize;
    std::vector<std::pair<std::string, std::string>> records;
    records.reserve(index.size());
    for (const auto &[key, e] : index) {
        std::string value(e.valueLen, '\0');
        if (!value.empty() &&
            !preadAll(fd, value.data(), value.size(), e.valueOffset)) {
            ::close(tmp);
            ::unlink(tmp_path.c_str());
            throw std::runtime_error("store: short read during compact");
        }
        records.emplace_back(key, std::move(value));
    }
    try {
        for (const auto &[key, value] : records) {
            std::string rec;
            putU32(rec, kMagic);
            rec.push_back(static_cast<char>(kTypePut));
            putU32(rec, static_cast<uint32_t>(key.size()));
            putU32(rec, static_cast<uint32_t>(value.size()));
            rec += key;
            rec += value;
            uint32_t crc = crc32Init();
            crc = crc32Update(crc, rec.data() + 4, rec.size() - 4);
            putU32(rec, crc32Final(crc));
            writeAll(tmp, rec.data(), rec.size());
        }
    } catch (...) {
        ::close(tmp);
        ::unlink(tmp_path.c_str());
        throw;
    }
    if (::fsync(tmp) != 0 ||
        ::rename(tmp_path.c_str(), segmentPath().c_str()) != 0) {
        int err = errno;
        ::close(tmp);
        ::unlink(tmp_path.c_str());
        throw std::runtime_error("store: compact commit failed: " +
                                 std::string(std::strerror(err)));
    }
    // Reopen in append mode and rebuild bookkeeping against the fresh
    // segment (every offset moved).
    ::close(tmp);
    ::close(fd);
    openSegment();
    scanSegment();
    return before > fileSize ? before - fileSize : 0;
}

void
SuiteStore::flush()
{
    if (fd >= 0 && ::fsync(fd) != 0) {
        throw std::runtime_error("store: fsync failed: " +
                                 std::string(std::strerror(errno)));
    }
}

void
SuiteStore::cacheInsert(const std::string &key, std::string value)
{
    cacheErase(key);
    if (value.size() > cacheBudget)
        return; // larger than the whole budget; serve from disk only
    cacheBytes += value.size();
    lru.emplace_front(key, std::move(value));
    cacheMap[key] = lru.begin();
    while (cacheBytes > cacheBudget && !lru.empty()) {
        auto &victim = lru.back();
        cacheBytes -= victim.second.size();
        cacheMap.erase(victim.first);
        lru.pop_back();
        evictions++;
    }
}

void
SuiteStore::cacheErase(const std::string &key)
{
    auto it = cacheMap.find(key);
    if (it == cacheMap.end())
        return;
    cacheBytes -= it->second->second.size();
    lru.erase(it->second);
    cacheMap.erase(it);
}

} // namespace lts::store
