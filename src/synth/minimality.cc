#include "synth/minimality.hh"

#include "mm/exprs.hh"

namespace lts::synth
{

using namespace rel;
using mm::Env;
using mm::Model;

FormulaPtr
relaxationConjunct(const Model &model, size_t n)
{
    std::vector<FormulaPtr> parts;
    for (const auto &relax : model.relaxations()) {
        for (size_t e = 0; e < n; e++) {
            ExprPtr ev = mm::singleton(e, n);
            FormulaPtr applies = relax.applies(model.base(), ev, n);
            Env perturbed = relax.perturb(model.base(), ev, n);
            parts.push_back(
                mkImplies(applies, model.allAxiomsRelaxed(perturbed, n)));
        }
    }
    return mkAndAll(parts);
}

FormulaPtr
minimalityBase(const Model &model, size_t n)
{
    return mkAndAll({
        model.wellFormed(n),
        relaxationConjunct(model, n),
    });
}

FormulaPtr
axiomViolation(const Model &model, const std::string &axiom_name, size_t n)
{
    const mm::Axiom &axiom = model.axiom(axiom_name);
    return mkNot(axiom.pred(model, model.base(), n));
}

FormulaPtr
anyAxiomViolation(const Model &model, size_t n)
{
    std::vector<FormulaPtr> violated;
    for (const auto &axiom : model.axioms())
        violated.push_back(mkNot(axiom.pred(model, model.base(), n)));
    return mkOrAll(violated);
}

FormulaPtr
minimalityFormula(const Model &model, const std::string &axiom_name, size_t n)
{
    return mkAndAll({
        model.wellFormed(n),
        axiomViolation(model, axiom_name, n),
        relaxationConjunct(model, n),
    });
}

FormulaPtr
minimalityFormulaUnion(const Model &model, size_t n)
{
    return mkAndAll({
        model.wellFormed(n),
        anyAxiomViolation(model, n),
        relaxationConjunct(model, n),
    });
}

bool
isMinimalInstance(const Model &model, const std::string &axiom_name,
                  const rel::Instance &inst)
{
    Evaluator ev(inst);
    return ev.formula(minimalityFormula(model, axiom_name, inst.universe()));
}

std::vector<std::string>
minimalAxioms(const Model &model, const litmus::LitmusTest &test,
              AuditStatus *status)
{
    if (status)
        *status = AuditStatus::Audited;
    std::vector<std::string> out;
    if (!test.hasForbidden)
        return out;

    // Candidate sc orders: with no SC fences (or no sc relation at all)
    // just the empty order; with exactly two SC fences, both directions.
    std::vector<std::vector<std::pair<int, int>>> sc_candidates = {{}};
    if (model.features().scOrder) {
        std::vector<int> sc_fences;
        for (const auto &e : test.events) {
            if (e.isFence() && e.order == litmus::MemOrder::SeqCst)
                sc_fences.push_back(e.id);
        }
        if (sc_fences.size() == 2) {
            sc_candidates = {
                {{sc_fences[0], sc_fences[1]}},
                {{sc_fences[1], sc_fences[0]}},
            };
        } else if (sc_fences.size() > 2) {
            // The lone-sc workaround does not scale past two SC fences
            // (Section 6.3); such tests are outside the audited space.
            // Report that explicitly so callers can distinguish it from
            // "audited and minimal for no axiom".
            if (status)
                *status = AuditStatus::Unsupported;
            return out;
        }
    }

    // The instance depends only on the sc candidate, and the criterion
    // factors into a shared base (well-formedness + relaxation conjunct)
    // plus one violation formula per axiom — so build each once instead
    // of per (axiom, sc) pair, and share one Evaluator per instance (its
    // node cache then serves the base and every violation check).
    size_t n = test.size();
    FormulaPtr base_f = minimalityBase(model, n);
    std::vector<FormulaPtr> violations;
    violations.reserve(model.axioms().size());
    for (const auto &axiom : model.axioms())
        violations.push_back(axiomViolation(model, axiom.name, n));

    std::vector<char> minimal(model.axioms().size(), 0);
    for (const auto &sc : sc_candidates) {
        rel::Instance inst = mm::toInstance(model, test, test.forbidden, sc);
        Evaluator ev(inst);
        if (!ev.formula(base_f))
            continue;
        for (size_t a = 0; a < violations.size(); a++) {
            if (!minimal[a] && ev.formula(violations[a]))
                minimal[a] = 1;
        }
    }
    for (size_t a = 0; a < model.axioms().size(); a++) {
        if (minimal[a])
            out.push_back(model.axioms()[a].name);
    }
    return out;
}

} // namespace lts::synth
