/**
 * @file
 * The sound (Figure 5b) minimality criterion.
 *
 * The paper's practical formulation (Figure 5c) identifies outcomes with
 * executions, which removes a higher-order exists-forall quantification
 * at the cost of false negatives: a relaxed test may produce the outcome
 * only through a *different* execution (different co / sc choices), as
 * in the SB + FenceSC discussion of Figure 18. The paper leaves the full
 * resolution as future work and patches SCC with the lone-sc workaround.
 *
 * This module implements the sound semantics directly, in the explicit
 * engine's style: for every applicable (relaxation, instruction) pair it
 * *applies the relaxation to the litmus test itself* and searches the
 * relaxed test's executions for one that (a) the full model deems legal
 * and (b) produces the original forbidden outcome, projected onto the
 * surviving events (reads whose sourcing store was removed are
 * unconstrained, per the Figure 3d / CoRW discussion). Being an
 * execution search per relaxation application, it is exponential in the
 * test size and meant for small bounds and audits — exactly the regime
 * the paper's experiments inhabit.
 */

#ifndef LTS_SYNTH_SOUND_HH
#define LTS_SYNTH_SOUND_HH

#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hh"
#include "mm/model.hh"

namespace lts::synth
{

/** One concrete relaxation application: a transformed litmus test. */
struct RelaxedTest
{
    std::string relaxation; ///< e.g. "RI", "DMO(acq->rlx)"
    int event;              ///< the targeted instruction (original id)
    litmus::LitmusTest test;
    /** Original event id -> id in the relaxed test (-1 if removed). */
    std::vector<int> eventMap;
};

/**
 * All relaxation applications of @p model's relaxation set to @p test,
 * derived structurally (RI deletes the event; DMO/DF demote the
 * annotation along the model's chains; RD strips outgoing dependencies;
 * DRMW unpairs the rmw).
 */
std::vector<RelaxedTest> applyRelaxations(const mm::Model &model,
                                          const litmus::LitmusTest &test);

/**
 * Does some model-legal execution of @p relaxed produce @p test's
 * forbidden outcome (projected onto surviving events)?
 */
bool outcomeObservable(const mm::Model &model,
                       const litmus::LitmusTest &test,
                       const RelaxedTest &relaxed);

/**
 * Sound minimality audit: axioms for which @p test (with its forbidden
 * outcome) is minimal under the exists-forall semantics of Figure 5b.
 * A superset of minimalAxioms() by construction.
 */
std::vector<std::string> soundMinimalAxioms(const mm::Model &model,
                                            const litmus::LitmusTest &test);

} // namespace lts::synth

#endif // LTS_SYNTH_SOUND_HH
