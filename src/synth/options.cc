#include "synth/options.hh"

#include <stdexcept>

namespace lts::synth
{

const std::vector<FlagSpec> &
synthFlagSpecs()
{
    // Defaults match SynthOptions except --jobs: binaries default to all
    // hardware threads, while the library default (1) stays serial so
    // callers that never touch jobs are deterministic by construction.
    static const std::vector<FlagSpec> specs = {
        {"min-size", "2", "smallest test size (instructions)"},
        {"max-size", "4", "largest test size"},
        {"canon", "paper", "canonicalizer: paper|exact|off (Section 5.1)"},
        {"block-static", "true",
         "block only the static part of each model; false blocks full "
         "instances (ablation)"},
        {"conflict-budget", "0",
         "SAT conflict cap per (axiom, size) query family (0 = off)"},
        {"max-tests-per-size", "0",
         "stop each size after this many tests (0 = off)"},
        {"incremental", "true",
         "share one solver per size, sweeping axioms as retractable fact "
         "layers; false rebuilds a solver per (axiom, size)"},
        {"sbp", "true",
         "in-solver symmetry breaking: lex-leader predicates plus orbit "
         "blocking; suites are byte-identical on or off, only rawInstances "
         "and wall time change"},
        {"jobs", "0",
         "parallel synthesis jobs (0 = all hardware threads); output is "
         "byte-identical for any value"},
        {"simplify", "true",
         "preprocess each solver's permanent encoding (subsumption, "
         "self-subsuming resolution, bounded variable elimination); suites "
         "are byte-identical on or off"},
        {"share-clauses", "true",
         "exchange learnt clauses between same-size from-scratch shards; "
         "suites are byte-identical on or off"},
        {"proof", "",
         "write a DRAT proof trace per shard into this directory; each "
         "exhausted shard records its final Unsat as a checkable "
         "conclusion (see lts-drat-check)"},
        {"proof-text", "false",
         "write text-format proofs instead of the compact binary form"},
        {"dump-dimacs", "",
         "dump each exhausted shard's final post-simplify CNF into this "
         "directory as DIMACS"},
    };
    return specs;
}

void
declareSynthFlags(Flags &flags)
{
    flags.declareAll(synthFlagSpecs());
}

SynthOptions
synthOptionsFromFlags(const Flags &flags)
{
    SynthOptions opt;
    opt.minSize = flags.getInt("min-size");
    opt.maxSize = flags.getInt("max-size");
    const std::string &canon = flags.get("canon");
    if (canon != "paper" && canon != "exact" && canon != "off")
        throw std::invalid_argument("unknown --canon value: " + canon);
    opt.useCanon = canon != "off";
    opt.canonMode = canon == "exact" ? litmus::CanonMode::Exact
                                     : litmus::CanonMode::Paper;
    opt.blockStaticOnly = flags.getBool("block-static");
    opt.conflictBudget = flags.getUint64("conflict-budget");
    opt.maxTestsPerSize = flags.getInt("max-tests-per-size");
    opt.incremental = flags.getBool("incremental");
    opt.symmetryBreaking = flags.getBool("sbp");
    opt.jobs = flags.getInt("jobs");
    opt.simplify = flags.getBool("simplify");
    opt.shareClauses = flags.getBool("share-clauses");
    opt.proofDir = flags.get("proof");
    opt.proofText = flags.getBool("proof-text");
    opt.dumpDimacsDir = flags.get("dump-dimacs");
    return opt;
}

} // namespace lts::synth
