#include "synth/synthesizer.hh"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <utility>

#include "common/pool.hh"
#include "common/timer.hh"
#include "litmus/canon.hh"
#include "mm/convert.hh"
#include "rel/encoder.hh"
#include "sat/clausebank.hh"
#include "sat/dimacs.hh"
#include "sat/drat.hh"
#include "synth/minimality.hh"

namespace lts::synth
{

using litmus::LitmusTest;

namespace
{

/**
 * One shard of the workload: a labelled per-size query family.
 * formulaFor is the full criterion (asserted alone by the from-scratch
 * engine); layerFor is only its axiom-dependent part, layered by the
 * incremental engine over the shared base formula.
 */
struct Track
{
    std::string label;
    std::function<rel::FormulaPtr(size_t)> formulaFor;
    std::function<rel::FormulaPtr(size_t)> layerFor;
};

/** The formula shared by every track at a given size (incremental). */
using BaseFormulaFn = std::function<rel::FormulaPtr(size_t)>;

/** Fold one job solver's SAT counters into the shared progress totals. */
void
accumulateSolverStats(SynthProgress *progress, const sat::SolverStats &stats)
{
    if (!progress)
        return;
    progress->conflicts.fetch_add(stats.conflicts, std::memory_order_relaxed);
    progress->restarts.fetch_add(stats.restarts, std::memory_order_relaxed);
    progress->eliminatedVars.fetch_add(stats.eliminatedVars,
                                       std::memory_order_relaxed);
    progress->subsumedClauses.fetch_add(stats.subsumedClauses,
                                        std::memory_order_relaxed);
    progress->importedClauses.fetch_add(stats.importedClauses,
                                        std::memory_order_relaxed);
    progress->exportedClauses.fetch_add(stats.exportedClauses,
                                        std::memory_order_relaxed);
}

/** Is each workgroup a contiguous run of thread ids? permuteThreads
 * relabels workgroups by first use, so contiguity means a label never
 * reappears after a different label took over. Only contiguous
 * assignments satisfy the scopes.swg-convexity well-formedness facts,
 * so only they correspond to encodable instances. */
bool
wgContiguous(const LitmusTest &test)
{
    if (!test.hasWorkgroups())
        return true;
    std::vector<char> seen(static_cast<size_t>(test.numThreads), 0);
    int cur = -1;
    for (int tid = 0; tid < test.numThreads; tid++) {
        int wg = test.workgroupOf(tid);
        if (wg == cur)
            continue;
        if (seen[static_cast<size_t>(wg)])
            return false;
        seen[static_cast<size_t>(wg)] = 1;
        cur = wg;
    }
    return true;
}

/**
 * Every distinct valid image of @p test under thread permutation — the
 * members of its isomorphism class as the encoding sees them. Images
 * that interleave workgroups are dropped (no instance satisfies the
 * well-formedness facts for them); duplicates are collapsed by static
 * key, or by full key when @p by_full_key (full-instance blocking cares
 * about outcome images too). The set depends only on the class, not on
 * which member @p test is, because permuteThreads normalizes thread,
 * location, and workgroup labels by first use.
 */
std::vector<LitmusTest>
validArrangements(const LitmusTest &test, bool by_full_key)
{
    std::vector<int> order(static_cast<size_t>(test.numThreads));
    std::iota(order.begin(), order.end(), 0);
    std::vector<LitmusTest> out;
    std::set<std::string> seen;
    do {
        LitmusTest arr = litmus::permuteThreads(test, order);
        if (!wgContiguous(arr))
            continue;
        std::string key = by_full_key ? litmus::fullSerialize(arr)
                                      : litmus::staticSerialize(arr);
        if (seen.insert(std::move(key)).second)
            out.push_back(std::move(arr));
    } while (std::next_permutation(order.begin(), order.end()));
    return out;
}

/**
 * Enumerate one track at one size on a prepared solver. The track's
 * criterion must already be active: asserted permanently (from-scratch)
 * or as a live fact layer (incremental). Blocking clauses go into a
 * fresh layer owned by this call, so witness-resolution solves — which
 * activate only @p witness_layers on top of the base facts — never see
 * them (a pinned representative's static part is typically itself a
 * blocked image). @p sbp_active says a symmetry-breaking layer is live:
 * enumeration then sees one model per isomorphism class, and this
 * function compensates by inserting every canonical key of the class
 * and blocking every valid image (orbit blocking), keeping the output
 * byte-identical to a run without symmetry breaking.
 */
ShardResult
enumerateTrack(const mm::Model &model, rel::RelSolver &solver,
               const std::string &shard_label,
               const std::vector<int> &block_vars,
               const std::vector<rel::FactHandle> &witness_layers,
               bool sbp_active, const SynthOptions &options)
{
    Timer timer;
    ShardResult result;
    size_t n = solver.encoder().universe();
    bool static_mode = !block_vars.empty();
    bool exact_canon =
        options.useCanon && options.canonMode == litmus::CanonMode::Exact;

    rel::FactHandle block_layer = solver.newLayer();

    auto canonOf = [&](const LitmusTest &t) {
        return options.useCanon ? litmus::canonicalize(t, options.canonMode)
                                : t;
    };

    // Canonical static key -> (full serialization, test). Keyed by map so
    // the final order is the canonical-key order. Static mode resolves
    // each bucket's test by pin-and-minimize (the full string stays
    // empty); full-instance mode keeps the smallest full serialization
    // seen across the enumerated witnesses and their images.
    std::map<std::string, std::pair<std::string, LitmusTest>> byKey;

    auto capped = [&]() {
        if (options.maxTestsPerSize &&
            static_cast<int>(byKey.size()) >= options.maxTestsPerSize) {
            result.truncated = true;
            return true;
        }
        return false;
    };

    bool done = false;
    sat::SolveResult res = solver.solve();
    while (!done && res == sat::SolveResult::Sat) {
        result.rawInstances++;
        LitmusTest found = mm::fromInstance(model, solver.instance());
        // Block first: blockModel reads the solver's last instance, which
        // the witness solves below overwrite.
        solver.blockModel(block_vars, block_layer);

        if (static_mode) {
            // The class members and their bucket keys. Under symmetry
            // breaking every image is blocked and every bucket key the
            // class canonicalizes to is inserted (the Paper canonicalizer
            // can split one class into several buckets — that blind spot
            // is preserved, not fixed). Without it, enumeration visits
            // the members itself, so images are only computed on the
            // first encounter of a new bucket, to resolve its
            // representative.
            std::vector<LitmusTest> arrs;
            std::vector<std::string> arr_static, arr_bucket;
            auto computeArrs = [&]() {
                arrs = validArrangements(found, false);
                std::string exact_key;
                if (exact_canon) {
                    exact_key = litmus::staticSerialize(
                        litmus::canonicalize(found, options.canonMode));
                }
                for (const LitmusTest &arr : arrs) {
                    arr_static.push_back(litmus::staticSerialize(arr));
                    arr_bucket.push_back(
                        exact_canon
                            ? exact_key
                            : litmus::staticSerialize(canonOf(arr)));
                }
            };

            std::set<std::string> keys;
            if (sbp_active) {
                computeArrs();
                for (const LitmusTest &arr : arrs) {
                    solver.blockInstance(
                        mm::toInstance(model, arr, litmus::Outcome(n)),
                        block_vars, block_layer);
                }
                keys.insert(arr_bucket.begin(), arr_bucket.end());
            } else {
                keys.insert(litmus::staticSerialize(canonOf(found)));
            }

            for (const std::string &key : keys) {
                if (byKey.count(key))
                    continue;
                if (arrs.empty())
                    computeArrs();
                // The bucket's representative program: the image with the
                // smallest static serialization among those
                // canonicalizing to this bucket — a pure function of the
                // class, unlike the member enumeration happened to find.
                size_t best = arrs.size();
                for (size_t k = 0; k < arrs.size(); k++) {
                    if (arr_bucket[k] != key)
                        continue;
                    if (best == arrs.size() ||
                        arr_static[k] < arr_static[best])
                        best = k;
                }
                // Every key comes from some image's bucket (fromInstance
                // output is already in permuteThreads normal form, so
                // the identity image covers the found member's key).
                assert(best < arrs.size());
                if (best == arrs.size()) {
                    result.truncated = true;
                    continue;
                }
                rel::Instance pin =
                    mm::toInstance(model, arrs[best], litmus::Outcome(n));
                if (!solver.pinAndMinimize(pin, block_vars,
                                           witness_layers)) {
                    // Only a conflict budget can land here: the pinned
                    // program is an image of a satisfying model, so a
                    // witness exists.
                    result.truncated = true;
                    continue;
                }
                LitmusTest wit =
                    mm::fromInstance(model, solver.instance());
                byKey.emplace(key,
                              std::make_pair(std::string(), canonOf(wit)));
                if (capped()) {
                    done = true;
                    break;
                }
            }
        } else {
            // Full-instance blocking: enumeration visits every witness
            // of every surviving member, so each image (with its
            // outcome) merges by smallest full serialization, exactly
            // as a run without symmetry breaking would over the members
            // it enumerates directly.
            std::vector<LitmusTest> images;
            if (sbp_active)
                images = validArrangements(found, true);
            else
                images.push_back(std::move(found));
            for (LitmusTest &img : images) {
                LitmusTest canon = canonOf(img);
                std::string key = litmus::staticSerialize(canon);
                std::string full = litmus::fullSerialize(canon);
                auto it = byKey.find(key);
                if (it == byKey.end()) {
                    byKey.emplace(std::move(key),
                                  std::make_pair(std::move(full),
                                                 std::move(canon)));
                    if (capped()) {
                        done = true;
                        break;
                    }
                } else if (full < it->second.first) {
                    it->second =
                        std::make_pair(std::move(full), std::move(canon));
                }
            }
        }

        if (!done)
            res = solver.solve();
    }
    if (res == sat::SolveResult::BudgetExhausted)
        result.truncated = true;
    if (res == sat::SolveResult::Unsat) {
        // Enumeration exhausted: this final Unsat — no further instance
        // under the blocks — is the shard's checkable completeness claim.
        // Record it as a proof conclusion (no-op without a writer; probe
        // solves above never conclude) and optionally dump the CNF that
        // poses the query, both before the blocking layer dies.
        solver.satSolver().proofConcludeUnsat();
        if (!options.dumpDimacsDir.empty()) {
            std::string path = options.dumpDimacsDir + "/" + model.name() +
                               "." + shard_label + ".n" + std::to_string(n) +
                               ".cnf";
            std::ofstream out(path);
            sat::writeDimacs(out, solver.exportCnf());
        }
    }
    solver.retract(block_layer);

    result.tests.reserve(byKey.size());
    for (auto &kv : byKey)
        result.tests.push_back(std::move(kv.second.second));

    if (options.progress) {
        options.progress->instances.fetch_add(result.rawInstances,
                                              std::memory_order_relaxed);
    }
    result.seconds = timer.seconds();
    return result;
}

/**
 * Install the model's symmetry-breaking layer when enabled and the model
 * has residual symmetry at this size. Returns whether a layer is live.
 */
bool
installSymmetryBreaking(const mm::Model &model, rel::RelSolver &solver,
                        size_t n, const SynthOptions &options,
                        uint64_t &clauses_out)
{
    if (!options.symmetryBreaking)
        return false;
    rel::SymmetrySpec spec = model.symmetrySpec(n);
    if (spec.empty())
        return false;
    rel::SymmetryStats stats;
    solver.addSymmetryBreaking(spec, &stats);
    clauses_out = stats.clauses;
    if (options.progress) {
        options.progress->sbpClauses.fetch_add(stats.clauses,
                                               std::memory_order_relaxed);
    }
    return true;
}

/**
 * From-scratch engine: enumerate one (track, size) with a private solver.
 * With a clause bank, the axiom-independent base formula is asserted and
 * simplified first — giving every same-size shard a byte-identical
 * variable prefix — the solver joins the size's exchange family, and the
 * track's criterion goes in as a retractable layer on top. Without one,
 * the full criterion is a base fact, which lets simplification work
 * against the whole query. Both shapes activate the same constraint set
 * in every solve, so the enumerated suite is identical.
 */
ShardResult
runSizeJob(const mm::Model &model, const BaseFormulaFn &base,
           const Track &track, int size, const SynthOptions &options,
           sat::ClauseBank *bank)
{
    size_t n = static_cast<size_t>(size);
    // Declared before the solver so the writer outlives it.
    std::unique_ptr<sat::DratWriter> proof;
    rel::RelSolver solver(model.vocab(), n);
    if (!options.proofDir.empty()) {
        proof = std::make_unique<sat::DratWriter>(
            proofFilePath(options, model.name(), track.label, size),
            options.proofText ? sat::DratFormat::Text
                              : sat::DratFormat::Binary);
        solver.setProof(proof.get());
    }
    if (options.conflictBudget)
        solver.satSolver().setConflictBudget(options.conflictBudget);

    std::vector<rel::FactHandle> witness_layers;
    if (bank) {
        solver.addBaseFact(base(n));
        if (options.simplify)
            solver.simplifyBase();
        solver.connectBank(*bank, std::to_string(size));
        witness_layers.push_back(solver.addFact(track.layerFor(n)));
    } else {
        solver.addBaseFact(track.formulaFor(n));
        if (options.simplify)
            solver.simplifyBase();
    }
    uint64_t sbp_clauses = 0;
    bool sbp_active =
        installSymmetryBreaking(model, solver, n, options, sbp_clauses);

    std::vector<int> block_vars;
    if (options.blockStaticOnly)
        block_vars = model.staticVarIds();

    ShardResult result =
        enumerateTrack(model, solver, track.label, block_vars, witness_layers,
                       sbp_active, options);
    result.sbpClauses = sbp_clauses;
    accumulateSolverStats(options.progress, solver.satSolver().stats());
    return result;
}

/**
 * Incremental engine: one solver per size. The base formula is asserted
 * once; each track's violation layer is added as a retractable fact,
 * enumerated with its blocking clauses guarded by the same layer, and
 * retracted before the next track — so learned clauses about the shared
 * encoding persist across the whole sweep while everything
 * track-specific dies with its layer. @p mask, when non-null, selects
 * which tracks to sweep (skipped tracks keep an empty result); each
 * track's result is independent of which others run, because every
 * track-specific clause dies with its layer.
 */
std::vector<ShardResult>
runIncrementalSizeJob(const mm::Model &model, const BaseFormulaFn &base,
                      const std::vector<Track> &tracks, int size,
                      const SynthOptions &options,
                      const std::vector<char> *mask = nullptr)
{
    size_t n = static_cast<size_t>(size);
    std::vector<ShardResult> out(tracks.size());
    auto selected = [&](size_t ti) { return !mask || (*mask)[ti]; };

    // One shared solver per size, so one proof file per size: each swept
    // track contributes its own 'u' conclusion to the shared trace.
    // Declared before the solver so the writer outlives it.
    std::unique_ptr<sat::DratWriter> proof;
    rel::RelSolver solver(model.vocab(), n);
    if (!options.proofDir.empty()) {
        proof = std::make_unique<sat::DratWriter>(
            proofFilePath(options, model.name(), "", size),
            options.proofText ? sat::DratFormat::Text
                              : sat::DratFormat::Binary);
        solver.setProof(proof.get());
    }
    solver.addBaseFact(base(n));
    if (options.simplify)
        solver.simplifyBase();
    uint64_t sbp_clauses = 0;
    bool sbp_active =
        installSymmetryBreaking(model, solver, n, options, sbp_clauses);

    std::vector<int> block_vars;
    if (options.blockStaticOnly)
        block_vars = model.staticVarIds();

    // The SBP layer is shared by every track on this solver; attribute
    // its clauses to the first swept track so per-size sums count them
    // once.
    bool attributed_sbp = false;
    for (size_t ti = 0; ti < tracks.size(); ti++) {
        if (!selected(ti))
            continue;
        rel::FactHandle layer = solver.addFact(tracks[ti].layerFor(n));
        if (options.conflictBudget) {
            // Re-arm: the budget bounds each (axiom, size) query family,
            // not the lifetime of the shared solver.
            solver.satSolver().setConflictBudget(options.conflictBudget);
        }
        out[ti] = enumerateTrack(model, solver, tracks[ti].label, block_vars,
                                 {layer}, sbp_active, options);
        out[ti].sbpClauses = attributed_sbp ? 0 : sbp_clauses;
        attributed_sbp = true;
        solver.retract(layer);
    }

    accumulateSolverStats(options.progress, solver.satSolver().stats());
    return out;
}

/**
 * Run every selected shard job — inline for jobs <= 1, on a thread pool
 * otherwise — returning the raw per-(track, size) results. The
 * incremental engine shards per size (selected tracks swept on one
 * shared solver); the from-scratch engine shards per (track, size).
 * Each job owns its own RelSolver, so no SAT or relational state
 * crosses threads. Deselected shards are skipped entirely: no job is
 * queued and their result slots stay empty — the service layer fills
 * them from the suite store.
 */
std::vector<std::vector<ShardResult>>
runShardTracks(const mm::Model &model, const BaseFormulaFn &base,
               const std::vector<Track> &tracks, const SynthOptions &options,
               const ShardSelector &selector)
{
    int num_sizes = std::max(0, options.maxSize - options.minSize + 1);
    std::vector<std::vector<ShardResult>> results(
        tracks.size(), std::vector<ShardResult>(num_sizes));

    // mask[si][ti]: sweep track ti at size minSize + si.
    std::vector<std::vector<char>> mask(
        static_cast<size_t>(num_sizes),
        std::vector<char>(tracks.size(), 1));
    if (selector) {
        for (int si = 0; si < num_sizes; si++) {
            for (size_t ti = 0; ti < tracks.size(); ti++) {
                mask[si][ti] = selector(tracks[ti].label,
                                        options.minSize + si);
            }
        }
    }
    auto sizeSelected = [&](int si) {
        for (char m : mask[si]) {
            if (m)
                return true;
        }
        return false;
    };

    // Learnt-clause exchange between the from-scratch shards of each size
    // (they assert the same base encoding, so clauses over it transfer).
    // The incremental engine has nothing to pair up: one solver already
    // sweeps every track at a size. The bank must outlive the pool.
    std::unique_ptr<sat::ClauseBank> bank;
    if (!options.incremental && options.shareClauses && tracks.size() > 1)
        bank = std::make_unique<sat::ClauseBank>();

    SynthProgress *progress = options.progress;
    auto wrap = [&](auto &&body) {
        if (progress)
            progress->jobsRunning.fetch_add(1, std::memory_order_relaxed);
        body();
        if (progress) {
            progress->jobsRunning.fetch_sub(1, std::memory_order_relaxed);
            progress->jobsDone.fetch_add(1, std::memory_order_relaxed);
        }
    };
    auto run_scratch = [&](size_t ti, int si) {
        wrap([&] {
            results[ti][si] = runSizeJob(model, base, tracks[ti],
                                         options.minSize + si, options,
                                         bank.get());
        });
    };
    auto run_incremental = [&](int si) {
        wrap([&] {
            std::vector<ShardResult> per_track = runIncrementalSizeJob(
                model, base, tracks, options.minSize + si, options,
                &mask[static_cast<size_t>(si)]);
            for (size_t ti = 0; ti < tracks.size(); ti++) {
                if (mask[static_cast<size_t>(si)][ti])
                    results[ti][si] = std::move(per_track[ti]);
            }
        });
    };

    uint64_t total_jobs = 0;
    for (int si = 0; si < num_sizes; si++) {
        if (options.incremental) {
            total_jobs += sizeSelected(si) ? 1 : 0;
        } else {
            for (size_t ti = 0; ti < tracks.size(); ti++)
                total_jobs += mask[si][ti] ? 1 : 0;
        }
    }
    if (progress)
        progress->jobsQueued.fetch_add(total_jobs,
                                       std::memory_order_relaxed);

    unsigned threads = ThreadPool::resolveThreads(options.jobs);
    bool serial = options.jobs == 1 || threads <= 1 || total_jobs <= 1;
    if (options.incremental) {
        if (serial) {
            for (int si = 0; si < num_sizes; si++) {
                if (sizeSelected(si))
                    run_incremental(si);
            }
        } else {
            ThreadPool pool(threads);
            for (int si = 0; si < num_sizes; si++) {
                if (sizeSelected(si))
                    pool.submit(
                        [&run_incremental, si] { run_incremental(si); });
            }
            pool.wait();
        }
    } else if (serial) {
        for (size_t ti = 0; ti < tracks.size(); ti++) {
            for (int si = 0; si < num_sizes; si++) {
                if (mask[si][ti])
                    run_scratch(ti, si);
            }
        }
    } else {
        ThreadPool pool(threads);
        for (size_t ti = 0; ti < tracks.size(); ti++) {
            for (int si = 0; si < num_sizes; si++) {
                if (mask[si][ti])
                    pool.submit(
                        [&run_scratch, ti, si] { run_scratch(ti, si); });
            }
        }
        pool.wait();
    }
    return results;
}

/** runShardTracks plus the per-track merge into Suites. */
std::vector<Suite>
runSynthesisTracks(const mm::Model &model, const BaseFormulaFn &base,
                   const std::vector<Track> &tracks,
                   const SynthOptions &options)
{
    std::vector<std::vector<ShardResult>> results =
        runShardTracks(model, base, tracks, options, nullptr);
    std::vector<Suite> suites;
    suites.reserve(tracks.size());
    for (size_t ti = 0; ti < tracks.size(); ti++) {
        suites.push_back(assembleShardSuite(model, tracks[ti].label,
                                            results[ti], options.minSize));
    }
    return suites;
}

BaseFormulaFn
baseFormula(const mm::Model &model)
{
    return [&model](size_t n) { return minimalityBase(model, n); };
}

Track
axiomTrack(const mm::Model &model, const std::string &axiom_name)
{
    return Track{axiom_name,
                 [&model, axiom_name](size_t n) {
                     return minimalityFormula(model, axiom_name, n);
                 },
                 [&model, axiom_name](size_t n) {
                     return axiomViolation(model, axiom_name, n);
                 }};
}

} // namespace

Suite
synthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                const SynthOptions &options)
{
    std::vector<Track> tracks = {axiomTrack(model, axiom_name)};
    return runSynthesisTracks(model, baseFormula(model), tracks, options)[0];
}

Suite
synthesizeUnionDirect(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Track> tracks = {
        Track{"union-direct",
              [&model](size_t n) {
                  return minimalityFormulaUnion(model, n);
              },
              [&model](size_t n) { return anyAxiomViolation(model, n); }}};
    return runSynthesisTracks(model, baseFormula(model), tracks, options)[0];
}

Suite
unionSuites(const std::vector<Suite> &suites, const SynthOptions &options)
{
    Suite u;
    u.axiom = "union";
    std::set<std::string> seen;
    for (const auto &s : suites) {
        if (u.model.empty())
            u.model = s.model;
        u.rawInstances += s.rawInstances;
        u.truncated = u.truncated || s.truncated;
        for (const auto &test : s.tests) {
            LitmusTest canon = options.useCanon
                                   ? litmus::canonicalize(test,
                                                          options.canonMode)
                                   : test;
            std::string key = litmus::staticSerialize(canon);
            if (seen.count(key))
                continue;
            seen.insert(key);
            canon.name = u.model + "/union#" +
                         std::to_string(u.tests.size());
            u.testsBySize[static_cast<int>(canon.size())]++;
            u.tests.push_back(std::move(canon));
        }
        for (auto [size, secs] : s.secondsBySize)
            u.secondsBySize[size] += secs;
        for (auto [size, insts] : s.instancesBySize)
            u.instancesBySize[size] += insts;
        for (auto [size, clauses] : s.sbpClausesBySize)
            u.sbpClausesBySize[size] += clauses;
    }
    return u;
}

std::vector<Suite>
synthesizeAll(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Track> tracks;
    tracks.reserve(model.axioms().size());
    for (const auto &axiom : model.axioms())
        tracks.push_back(axiomTrack(model, axiom.name));
    std::vector<Suite> suites =
        runSynthesisTracks(model, baseFormula(model), tracks, options);
    suites.push_back(unionSuites(suites, options));
    return suites;
}

SynthProgressSnapshot
SynthProgress::snapshot() const
{
    SynthProgressSnapshot s;
    s.jobsQueued = jobsQueued.load(std::memory_order_relaxed);
    s.jobsRunning = jobsRunning.load(std::memory_order_relaxed);
    s.jobsDone = jobsDone.load(std::memory_order_relaxed);
    s.conflicts = conflicts.load(std::memory_order_relaxed);
    s.restarts = restarts.load(std::memory_order_relaxed);
    s.instances = instances.load(std::memory_order_relaxed);
    s.sbpClauses = sbpClauses.load(std::memory_order_relaxed);
    s.eliminatedVars = eliminatedVars.load(std::memory_order_relaxed);
    s.subsumedClauses = subsumedClauses.load(std::memory_order_relaxed);
    s.importedClauses = importedClauses.load(std::memory_order_relaxed);
    s.exportedClauses = exportedClauses.load(std::memory_order_relaxed);
    return s;
}

void
SynthProgress::reset()
{
    jobsQueued.store(0, std::memory_order_relaxed);
    jobsRunning.store(0, std::memory_order_relaxed);
    jobsDone.store(0, std::memory_order_relaxed);
    conflicts.store(0, std::memory_order_relaxed);
    restarts.store(0, std::memory_order_relaxed);
    instances.store(0, std::memory_order_relaxed);
    sbpClauses.store(0, std::memory_order_relaxed);
    eliminatedVars.store(0, std::memory_order_relaxed);
    subsumedClauses.store(0, std::memory_order_relaxed);
    importedClauses.store(0, std::memory_order_relaxed);
    exportedClauses.store(0, std::memory_order_relaxed);
}

Suite
assembleShardSuite(const mm::Model &model, const std::string &label,
                   const std::vector<ShardResult> &by_size, int min_size)
{
    Suite suite;
    suite.model = model.name();
    suite.axiom = label;

    std::set<std::string> seen;
    for (size_t si = 0; si < by_size.size(); si++) {
        const ShardResult &r = by_size[si];
        int size = min_size + static_cast<int>(si);
        int kept = 0;
        for (const LitmusTest &test : r.tests) {
            std::string key = litmus::staticSerialize(test);
            if (seen.count(key))
                continue;
            seen.insert(key);
            LitmusTest named = test;
            named.name = model.name() + "/" + label + "#" +
                         std::to_string(suite.tests.size());
            suite.tests.push_back(std::move(named));
            kept++;
        }
        suite.rawInstances += r.rawInstances;
        suite.truncated = suite.truncated || r.truncated;
        suite.testsBySize[size] = kept;
        suite.secondsBySize[size] = r.seconds;
        suite.instancesBySize[size] = r.rawInstances;
        suite.sbpClausesBySize[size] = r.sbpClauses;
    }
    return suite;
}

std::string
proofFilePath(const SynthOptions &options, const std::string &model,
              const std::string &axiom, int size)
{
    if (options.proofDir.empty())
        return std::string();
    std::string name = model;
    if (!axiom.empty())
        name += "." + axiom;
    name += ".n" + std::to_string(size) + ".drat";
    return options.proofDir + "/" + name;
}

std::vector<std::vector<ShardResult>>
synthesizeShards(const mm::Model &model, const SynthOptions &options,
                 const ShardSelector &selector)
{
    std::vector<Track> tracks;
    tracks.reserve(model.axioms().size());
    for (const auto &axiom : model.axioms())
        tracks.push_back(axiomTrack(model, axiom.name));
    return runShardTracks(model, baseFormula(model), tracks, options,
                          selector);
}

// --- BaseEncoding: a resident per-(model, size) encoding -------------------

struct BaseEncoding::Impl
{
    Impl(const mm::Model &model, int size, const SynthOptions &options)
        : size(size), solver(model.vocab(), static_cast<size_t>(size))
    {
        solver.addBaseFact(minimalityBase(model, static_cast<size_t>(size)));
        if (options.simplify)
            solver.simplifyBase();
        sbpActive = installSymmetryBreaking(
            model, solver, static_cast<size_t>(size), options, sbpClauses);
        if (options.blockStaticOnly)
            blockVars = model.staticVarIds();
        lastStats = solver.satSolver().stats();
    }

    int size;
    rel::RelSolver solver;
    bool sbpActive = false;
    uint64_t sbpClauses = 0;
    bool sbpAttributed = false;
    std::vector<int> blockVars;
    sat::SolverStats lastStats;
};

BaseEncoding::BaseEncoding(const mm::Model &model, int size,
                           const SynthOptions &options)
    : impl(std::make_unique<Impl>(model, size, options))
{
}

BaseEncoding::~BaseEncoding() = default;

int
BaseEncoding::size() const
{
    return impl->size;
}

ShardResult
BaseEncoding::synthesizeShard(const mm::Model &model,
                              const std::string &axiom_name,
                              const SynthOptions &options)
{
    size_t n = static_cast<size_t>(impl->size);
    rel::RelSolver &solver = impl->solver;
    rel::FactHandle layer =
        solver.addFact(axiomViolation(model, axiom_name, n));
    if (options.conflictBudget)
        solver.satSolver().setConflictBudget(options.conflictBudget);
    if (options.progress) {
        options.progress->jobsQueued.fetch_add(1, std::memory_order_relaxed);
        options.progress->jobsRunning.fetch_add(1, std::memory_order_relaxed);
    }
    // The resident encoding is proof-less by design (options.proofDir is
    // ignored here): its solver lives across requests, so one file could
    // not delimit a shard's claim. enumerateTrack's conclusion hook
    // no-ops without a writer.
    ShardResult result =
        enumerateTrack(model, solver, axiom_name, impl->blockVars, {layer},
                       impl->sbpActive, options);
    solver.retract(layer);
    // Same attribution rule as the incremental sweep: the resident SBP
    // layer's clauses are counted once, by the first shard swept here.
    result.sbpClauses = impl->sbpAttributed ? 0 : impl->sbpClauses;
    impl->sbpAttributed = true;

    // The resident solver's counters are cumulative across shards (and
    // across requests); report only this sweep's delta.
    sat::SolverStats now = solver.satSolver().stats();
    sat::SolverStats delta = now;
    delta.conflicts -= impl->lastStats.conflicts;
    delta.restarts -= impl->lastStats.restarts;
    delta.eliminatedVars -= impl->lastStats.eliminatedVars;
    delta.subsumedClauses -= impl->lastStats.subsumedClauses;
    delta.importedClauses -= impl->lastStats.importedClauses;
    delta.exportedClauses -= impl->lastStats.exportedClauses;
    impl->lastStats = now;
    accumulateSolverStats(options.progress, delta);
    if (options.progress) {
        options.progress->jobsRunning.fetch_sub(1, std::memory_order_relaxed);
        options.progress->jobsDone.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

} // namespace lts::synth
