#include "synth/synthesizer.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "common/pool.hh"
#include "common/timer.hh"
#include "litmus/canon.hh"
#include "mm/convert.hh"
#include "rel/encoder.hh"
#include "synth/minimality.hh"

namespace lts::synth
{

using litmus::LitmusTest;

namespace
{

/**
 * One shard of the workload: a labelled per-size query family.
 * formulaFor is the full criterion (asserted alone by the from-scratch
 * engine); layerFor is only its axiom-dependent part, layered by the
 * incremental engine over the shared base formula.
 */
struct Track
{
    std::string label;
    std::function<rel::FormulaPtr(size_t)> formulaFor;
    std::function<rel::FormulaPtr(size_t)> layerFor;
};

/** The formula shared by every track at a given size (incremental). */
using BaseFormulaFn = std::function<rel::FormulaPtr(size_t)>;

/**
 * Result of one (track, size) query family: tests are canonicalized
 * (per the options), deduplicated within the job, and sorted by their
 * canonical serialization so merge order never depends on enumeration
 * order.
 */
struct SizeJobResult
{
    std::vector<LitmusTest> tests;
    uint64_t rawInstances = 0;
    bool truncated = false;
    double seconds = 0;
};

/**
 * Enumerate one track at one size on a prepared solver. The track's
 * criterion must already be active: either asserted permanently
 * (from-scratch) or via a fact layer whose blocking clauses go through
 * @p block_under (incremental).
 */
SizeJobResult
enumerateTrack(const mm::Model &model, rel::RelSolver &solver,
               const std::vector<int> &block_vars, rel::FactHandle block_under,
               const SynthOptions &options)
{
    Timer timer;
    SizeJobResult result;
    // Canonical static key -> (full serialization, test). Keyed by map so
    // the final order is the canonical-key order; the stored test is the
    // class representative with the smallest full serialization, which is
    // engine-independent because enumeration visits the entire class.
    std::map<std::string, std::pair<std::string, LitmusTest>> byKey;

    sat::SolveResult res = solver.solve();
    while (res == sat::SolveResult::Sat) {
        result.rawInstances++;
        // A static program can have several minimal witness executions,
        // and which one the solver finds depends on search state — which
        // differs between the engines and across job counts. Lex-minimize
        // the dynamic relations so the emitted witness is a pure function
        // of the static program. (Skipped under full-instance blocking,
        // where enumeration itself visits every witness.)
        if (!block_vars.empty())
            solver.lexMinimizeInstance(block_vars);
        LitmusTest test = mm::fromInstance(model, solver.instance());
        LitmusTest canon =
            options.useCanon ? litmus::canonicalize(test, options.canonMode)
                             : test;
        std::string key = litmus::staticSerialize(canon);
        std::string full = litmus::fullSerialize(canon);
        auto it = byKey.find(key);
        if (it == byKey.end()) {
            byKey.emplace(std::move(key),
                          std::make_pair(std::move(full), std::move(canon)));
            if (options.maxTestsPerSize &&
                static_cast<int>(byKey.size()) >= options.maxTestsPerSize) {
                result.truncated = true;
                break;
            }
        } else if (full < it->second.first) {
            it->second = std::make_pair(std::move(full), std::move(canon));
        }
        solver.blockModel(block_vars, block_under);
        res = solver.solve();
    }
    if (res == sat::SolveResult::BudgetExhausted)
        result.truncated = true;

    result.tests.reserve(byKey.size());
    for (auto &kv : byKey)
        result.tests.push_back(std::move(kv.second.second));

    if (options.progress) {
        options.progress->instances.fetch_add(result.rawInstances,
                                              std::memory_order_relaxed);
    }
    result.seconds = timer.seconds();
    return result;
}

/** From-scratch engine: enumerate one (track, size) with a private solver. */
SizeJobResult
runSizeJob(const mm::Model &model, const Track &track, int size,
           const SynthOptions &options)
{
    rel::RelSolver solver(model.vocab(), static_cast<size_t>(size));
    if (options.conflictBudget)
        solver.satSolver().setConflictBudget(options.conflictBudget);
    solver.addBaseFact(track.formulaFor(static_cast<size_t>(size)));

    std::vector<int> block_vars;
    if (options.blockStaticOnly)
        block_vars = model.staticVarIds();

    SizeJobResult result =
        enumerateTrack(model, solver, block_vars, rel::kNoFact, options);
    if (options.progress) {
        options.progress->conflicts.fetch_add(
            solver.satSolver().stats().conflicts, std::memory_order_relaxed);
    }
    return result;
}

/**
 * Incremental engine: one solver per size. The base formula is asserted
 * once; each track's violation layer is added as a retractable fact,
 * enumerated with its blocking clauses guarded by the same layer, and
 * retracted before the next track — so learned clauses about the shared
 * encoding persist across the whole sweep while everything
 * track-specific dies with its layer.
 */
std::vector<SizeJobResult>
runIncrementalSizeJob(const mm::Model &model, const BaseFormulaFn &base,
                      const std::vector<Track> &tracks, int size,
                      const SynthOptions &options)
{
    size_t n = static_cast<size_t>(size);
    std::vector<SizeJobResult> out(tracks.size());

    rel::RelSolver solver(model.vocab(), n);
    solver.addBaseFact(base(n));

    std::vector<int> block_vars;
    if (options.blockStaticOnly)
        block_vars = model.staticVarIds();

    for (size_t ti = 0; ti < tracks.size(); ti++) {
        rel::FactHandle layer = solver.addFact(tracks[ti].layerFor(n));
        if (options.conflictBudget) {
            // Re-arm: the budget bounds each (axiom, size) query family,
            // not the lifetime of the shared solver.
            solver.satSolver().setConflictBudget(options.conflictBudget);
        }
        out[ti] = enumerateTrack(model, solver, block_vars, layer, options);
        solver.retract(layer);
    }

    if (options.progress) {
        options.progress->conflicts.fetch_add(
            solver.satSolver().stats().conflicts, std::memory_order_relaxed);
    }
    return out;
}

/**
 * Deterministic merge of one track's per-size results into a Suite:
 * sizes ascending, tests in canonical-key order within each size,
 * renamed "model/label#i" by final position.
 */
Suite
assembleSuite(const mm::Model &model, const std::string &label,
              const std::vector<SizeJobResult> &by_size, int min_size)
{
    Suite suite;
    suite.model = model.name();
    suite.axiom = label;

    std::set<std::string> seen;
    for (size_t si = 0; si < by_size.size(); si++) {
        const SizeJobResult &r = by_size[si];
        int size = min_size + static_cast<int>(si);
        int kept = 0;
        for (const LitmusTest &test : r.tests) {
            std::string key = litmus::staticSerialize(test);
            if (seen.count(key))
                continue;
            seen.insert(key);
            LitmusTest named = test;
            named.name = model.name() + "/" + label + "#" +
                         std::to_string(suite.tests.size());
            suite.tests.push_back(std::move(named));
            kept++;
        }
        suite.rawInstances += r.rawInstances;
        suite.truncated = suite.truncated || r.truncated;
        suite.testsBySize[size] = kept;
        suite.secondsBySize[size] = r.seconds;
        suite.instancesBySize[size] = r.rawInstances;
    }
    return suite;
}

/**
 * Run every shard job — inline for jobs <= 1, on a thread pool
 * otherwise — and assemble one Suite per track. The incremental engine
 * shards per size (all tracks swept on one shared solver); the
 * from-scratch engine shards per (track, size). Each job owns its own
 * RelSolver, so no SAT or relational state crosses threads; the merge
 * makes the output independent of scheduling.
 */
std::vector<Suite>
runSynthesisTracks(const mm::Model &model, const BaseFormulaFn &base,
                   const std::vector<Track> &tracks,
                   const SynthOptions &options)
{
    int num_sizes = std::max(0, options.maxSize - options.minSize + 1);
    std::vector<std::vector<SizeJobResult>> results(
        tracks.size(), std::vector<SizeJobResult>(num_sizes));

    SynthProgress *progress = options.progress;
    auto wrap = [&](auto &&body) {
        if (progress)
            progress->jobsRunning.fetch_add(1, std::memory_order_relaxed);
        body();
        if (progress) {
            progress->jobsRunning.fetch_sub(1, std::memory_order_relaxed);
            progress->jobsDone.fetch_add(1, std::memory_order_relaxed);
        }
    };
    auto run_scratch = [&](size_t ti, int si) {
        wrap([&] {
            results[ti][si] =
                runSizeJob(model, tracks[ti], options.minSize + si, options);
        });
    };
    auto run_incremental = [&](int si) {
        wrap([&] {
            std::vector<SizeJobResult> per_track = runIncrementalSizeJob(
                model, base, tracks, options.minSize + si, options);
            for (size_t ti = 0; ti < tracks.size(); ti++)
                results[ti][si] = std::move(per_track[ti]);
        });
    };

    uint64_t total_jobs =
        options.incremental
            ? static_cast<uint64_t>(num_sizes)
            : static_cast<uint64_t>(tracks.size()) * num_sizes;
    if (progress)
        progress->jobsQueued.fetch_add(total_jobs,
                                       std::memory_order_relaxed);

    unsigned threads = ThreadPool::resolveThreads(options.jobs);
    bool serial = options.jobs == 1 || threads <= 1 || total_jobs <= 1;
    if (options.incremental) {
        if (serial) {
            for (int si = 0; si < num_sizes; si++)
                run_incremental(si);
        } else {
            ThreadPool pool(threads);
            for (int si = 0; si < num_sizes; si++)
                pool.submit([&run_incremental, si] { run_incremental(si); });
            pool.wait();
        }
    } else if (serial) {
        for (size_t ti = 0; ti < tracks.size(); ti++) {
            for (int si = 0; si < num_sizes; si++)
                run_scratch(ti, si);
        }
    } else {
        ThreadPool pool(threads);
        for (size_t ti = 0; ti < tracks.size(); ti++) {
            for (int si = 0; si < num_sizes; si++)
                pool.submit([&run_scratch, ti, si] { run_scratch(ti, si); });
        }
        pool.wait();
    }

    std::vector<Suite> suites;
    suites.reserve(tracks.size());
    for (size_t ti = 0; ti < tracks.size(); ti++) {
        suites.push_back(assembleSuite(model, tracks[ti].label, results[ti],
                                       options.minSize));
    }
    return suites;
}

BaseFormulaFn
baseFormula(const mm::Model &model)
{
    return [&model](size_t n) { return minimalityBase(model, n); };
}

Track
axiomTrack(const mm::Model &model, const std::string &axiom_name)
{
    return Track{axiom_name,
                 [&model, axiom_name](size_t n) {
                     return minimalityFormula(model, axiom_name, n);
                 },
                 [&model, axiom_name](size_t n) {
                     return axiomViolation(model, axiom_name, n);
                 }};
}

} // namespace

Suite
synthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                const SynthOptions &options)
{
    std::vector<Track> tracks = {axiomTrack(model, axiom_name)};
    return runSynthesisTracks(model, baseFormula(model), tracks, options)[0];
}

Suite
synthesizeUnionDirect(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Track> tracks = {
        Track{"union-direct",
              [&model](size_t n) {
                  return minimalityFormulaUnion(model, n);
              },
              [&model](size_t n) { return anyAxiomViolation(model, n); }}};
    return runSynthesisTracks(model, baseFormula(model), tracks, options)[0];
}

Suite
unionSuites(const std::vector<Suite> &suites, const SynthOptions &options)
{
    Suite u;
    u.axiom = "union";
    std::set<std::string> seen;
    for (const auto &s : suites) {
        if (u.model.empty())
            u.model = s.model;
        u.rawInstances += s.rawInstances;
        u.truncated = u.truncated || s.truncated;
        for (const auto &test : s.tests) {
            LitmusTest canon = options.useCanon
                                   ? litmus::canonicalize(test,
                                                          options.canonMode)
                                   : test;
            std::string key = litmus::staticSerialize(canon);
            if (seen.count(key))
                continue;
            seen.insert(key);
            canon.name = u.model + "/union#" +
                         std::to_string(u.tests.size());
            u.testsBySize[static_cast<int>(canon.size())]++;
            u.tests.push_back(std::move(canon));
        }
        for (auto [size, secs] : s.secondsBySize)
            u.secondsBySize[size] += secs;
        for (auto [size, insts] : s.instancesBySize)
            u.instancesBySize[size] += insts;
    }
    return u;
}

std::vector<Suite>
synthesizeAll(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Track> tracks;
    tracks.reserve(model.axioms().size());
    for (const auto &axiom : model.axioms())
        tracks.push_back(axiomTrack(model, axiom.name));
    std::vector<Suite> suites =
        runSynthesisTracks(model, baseFormula(model), tracks, options);
    suites.push_back(unionSuites(suites, options));
    return suites;
}

} // namespace lts::synth
