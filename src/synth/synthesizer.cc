#include "synth/synthesizer.hh"

#include <functional>
#include <set>

#include "common/timer.hh"
#include "litmus/canon.hh"
#include "mm/convert.hh"
#include "rel/encoder.hh"
#include "synth/minimality.hh"

namespace lts::synth
{

using litmus::LitmusTest;

namespace
{

/** Shared enumeration loop; @p formula_for builds the per-size query. */
Suite
runSynthesis(const mm::Model &model, const std::string &label,
             const std::function<rel::FormulaPtr(size_t)> &formula_for,
             const SynthOptions &options)
{
    Suite suite;
    suite.model = model.name();
    suite.axiom = label;

    std::set<std::string> seen; // canonical (or raw) serializations

    for (int size = options.minSize; size <= options.maxSize; size++) {
        Timer timer;
        int found_this_size = 0;

        rel::RelSolver solver(model.vocab(), size);
        if (options.conflictBudget)
            solver.satSolver().setConflictBudget(options.conflictBudget);
        solver.addFact(formula_for(static_cast<size_t>(size)));

        std::vector<int> block_vars;
        if (options.blockStaticOnly)
            block_vars = model.staticVarIds();

        bool more = solver.solve();
        while (more) {
            if (solver.satSolver().budgetExhausted()) {
                suite.truncated = true;
                break;
            }
            suite.rawInstances++;
            LitmusTest test = mm::fromInstance(model, solver.instance());
            LitmusTest canon = options.useCanon
                                   ? litmus::canonicalize(test,
                                                          options.canonMode)
                                   : test;
            std::string key = litmus::staticSerialize(canon);
            if (!seen.count(key)) {
                seen.insert(key);
                canon.name = model.name() + "/" + label + "#" +
                             std::to_string(suite.tests.size());
                suite.tests.push_back(canon);
                found_this_size++;
                if (options.maxTestsPerSize &&
                    found_this_size >= options.maxTestsPerSize) {
                    suite.truncated = true;
                    break;
                }
            }
            more = solver.blockAndContinue(block_vars);
        }
        if (!more && solver.satSolver().budgetExhausted())
            suite.truncated = true;

        suite.testsBySize[size] = found_this_size;
        suite.secondsBySize[size] = timer.seconds();
    }
    return suite;
}

} // namespace

Suite
synthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                const SynthOptions &options)
{
    return runSynthesis(
        model, axiom_name,
        [&](size_t n) { return minimalityFormula(model, axiom_name, n); },
        options);
}

Suite
synthesizeUnionDirect(const mm::Model &model, const SynthOptions &options)
{
    return runSynthesis(
        model, "union-direct",
        [&](size_t n) { return minimalityFormulaUnion(model, n); },
        options);
}

Suite
unionSuites(const std::vector<Suite> &suites, const SynthOptions &options)
{
    Suite u;
    u.axiom = "union";
    std::set<std::string> seen;
    for (const auto &s : suites) {
        if (u.model.empty())
            u.model = s.model;
        u.rawInstances += s.rawInstances;
        u.truncated = u.truncated || s.truncated;
        for (const auto &test : s.tests) {
            LitmusTest canon = options.useCanon
                                   ? litmus::canonicalize(test,
                                                          options.canonMode)
                                   : test;
            std::string key = litmus::staticSerialize(canon);
            if (seen.count(key))
                continue;
            seen.insert(key);
            u.tests.push_back(test);
            u.testsBySize[static_cast<int>(test.size())]++;
        }
        for (auto [size, secs] : s.secondsBySize)
            u.secondsBySize[size] += secs;
    }
    return u;
}

std::vector<Suite>
synthesizeAll(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Suite> suites;
    for (const auto &axiom : model.axioms())
        suites.push_back(synthesizeAxiom(model, axiom.name, options));
    suites.push_back(unionSuites(suites, options));
    return suites;
}

} // namespace lts::synth
