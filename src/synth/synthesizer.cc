#include "synth/synthesizer.hh"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "common/pool.hh"
#include "common/timer.hh"
#include "litmus/canon.hh"
#include "mm/convert.hh"
#include "rel/encoder.hh"
#include "synth/minimality.hh"

namespace lts::synth
{

using litmus::LitmusTest;

namespace
{

/** One shard of the workload: a labelled per-size query family. */
struct Track
{
    std::string label;
    std::function<rel::FormulaPtr(size_t)> formulaFor;
};

/**
 * Result of one (track, size) job: tests are canonicalized (per the
 * options), deduplicated within the job, and sorted by their canonical
 * serialization so merge order never depends on enumeration order.
 */
struct SizeJobResult
{
    std::vector<LitmusTest> tests;
    uint64_t rawInstances = 0;
    bool truncated = false;
    double seconds = 0;
};

/** Enumerate one exact size with a private solver. */
SizeJobResult
runSizeJob(const mm::Model &model, const Track &track, int size,
           const SynthOptions &options)
{
    Timer timer;
    SizeJobResult result;
    std::set<std::string> seen;
    std::vector<std::pair<std::string, LitmusTest>> keyed;

    rel::RelSolver solver(model.vocab(), static_cast<size_t>(size));
    if (options.conflictBudget)
        solver.satSolver().setConflictBudget(options.conflictBudget);
    solver.addFact(track.formulaFor(static_cast<size_t>(size)));

    std::vector<int> block_vars;
    if (options.blockStaticOnly)
        block_vars = model.staticVarIds();

    bool more = solver.solve();
    while (more) {
        if (solver.satSolver().budgetExhausted()) {
            result.truncated = true;
            break;
        }
        result.rawInstances++;
        LitmusTest test = mm::fromInstance(model, solver.instance());
        LitmusTest canon =
            options.useCanon ? litmus::canonicalize(test, options.canonMode)
                             : test;
        std::string key = litmus::staticSerialize(canon);
        if (!seen.count(key)) {
            seen.insert(key);
            keyed.emplace_back(std::move(key), std::move(canon));
            if (options.maxTestsPerSize &&
                static_cast<int>(keyed.size()) >= options.maxTestsPerSize) {
                result.truncated = true;
                break;
            }
        }
        more = solver.blockAndContinue(block_vars);
    }
    if (!more && solver.satSolver().budgetExhausted())
        result.truncated = true;

    std::sort(keyed.begin(), keyed.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    result.tests.reserve(keyed.size());
    for (auto &kv : keyed)
        result.tests.push_back(std::move(kv.second));

    if (options.progress) {
        options.progress->conflicts.fetch_add(
            solver.satSolver().stats().conflicts, std::memory_order_relaxed);
        options.progress->instances.fetch_add(result.rawInstances,
                                              std::memory_order_relaxed);
    }
    result.seconds = timer.seconds();
    return result;
}

/**
 * Deterministic merge of one track's per-size results into a Suite:
 * sizes ascending, tests in canonical-key order within each size,
 * renamed "model/label#i" by final position.
 */
Suite
assembleSuite(const mm::Model &model, const std::string &label,
              const std::vector<SizeJobResult> &by_size, int min_size)
{
    Suite suite;
    suite.model = model.name();
    suite.axiom = label;

    std::set<std::string> seen;
    for (size_t si = 0; si < by_size.size(); si++) {
        const SizeJobResult &r = by_size[si];
        int size = min_size + static_cast<int>(si);
        int kept = 0;
        for (const LitmusTest &test : r.tests) {
            std::string key = litmus::staticSerialize(test);
            if (seen.count(key))
                continue;
            seen.insert(key);
            LitmusTest named = test;
            named.name = model.name() + "/" + label + "#" +
                         std::to_string(suite.tests.size());
            suite.tests.push_back(std::move(named));
            kept++;
        }
        suite.rawInstances += r.rawInstances;
        suite.truncated = suite.truncated || r.truncated;
        suite.testsBySize[size] = kept;
        suite.secondsBySize[size] = r.seconds;
    }
    return suite;
}

/**
 * Run every (track, size) job — inline for jobs <= 1, on a thread pool
 * otherwise — and assemble one Suite per track. Each job owns its own
 * RelSolver, so no SAT or relational state crosses threads; the merge
 * makes the output independent of scheduling.
 */
std::vector<Suite>
runSynthesisTracks(const mm::Model &model, const std::vector<Track> &tracks,
                   const SynthOptions &options)
{
    int num_sizes = std::max(0, options.maxSize - options.minSize + 1);
    std::vector<std::vector<SizeJobResult>> results(
        tracks.size(), std::vector<SizeJobResult>(num_sizes));

    SynthProgress *progress = options.progress;
    auto run_one = [&](size_t ti, int si) {
        if (progress)
            progress->jobsRunning.fetch_add(1, std::memory_order_relaxed);
        results[ti][si] =
            runSizeJob(model, tracks[ti], options.minSize + si, options);
        if (progress) {
            progress->jobsRunning.fetch_sub(1, std::memory_order_relaxed);
            progress->jobsDone.fetch_add(1, std::memory_order_relaxed);
        }
    };

    uint64_t total_jobs =
        static_cast<uint64_t>(tracks.size()) * num_sizes;
    if (progress)
        progress->jobsQueued.fetch_add(total_jobs,
                                       std::memory_order_relaxed);

    unsigned threads = ThreadPool::resolveThreads(options.jobs);
    if (options.jobs == 1 || threads <= 1 || total_jobs <= 1) {
        for (size_t ti = 0; ti < tracks.size(); ti++) {
            for (int si = 0; si < num_sizes; si++)
                run_one(ti, si);
        }
    } else {
        ThreadPool pool(threads);
        for (size_t ti = 0; ti < tracks.size(); ti++) {
            for (int si = 0; si < num_sizes; si++)
                pool.submit([&run_one, ti, si] { run_one(ti, si); });
        }
        pool.wait();
    }

    std::vector<Suite> suites;
    suites.reserve(tracks.size());
    for (size_t ti = 0; ti < tracks.size(); ti++) {
        suites.push_back(assembleSuite(model, tracks[ti].label, results[ti],
                                       options.minSize));
    }
    return suites;
}

Track
axiomTrack(const mm::Model &model, const std::string &axiom_name)
{
    return Track{axiom_name, [&model, axiom_name](size_t n) {
                     return minimalityFormula(model, axiom_name, n);
                 }};
}

} // namespace

Suite
synthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                const SynthOptions &options)
{
    std::vector<Track> tracks = {axiomTrack(model, axiom_name)};
    return runSynthesisTracks(model, tracks, options)[0];
}

Suite
synthesizeUnionDirect(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Track> tracks = {
        Track{"union-direct", [&model](size_t n) {
                  return minimalityFormulaUnion(model, n);
              }}};
    return runSynthesisTracks(model, tracks, options)[0];
}

Suite
unionSuites(const std::vector<Suite> &suites, const SynthOptions &options)
{
    Suite u;
    u.axiom = "union";
    std::set<std::string> seen;
    for (const auto &s : suites) {
        if (u.model.empty())
            u.model = s.model;
        u.rawInstances += s.rawInstances;
        u.truncated = u.truncated || s.truncated;
        for (const auto &test : s.tests) {
            LitmusTest canon = options.useCanon
                                   ? litmus::canonicalize(test,
                                                          options.canonMode)
                                   : test;
            std::string key = litmus::staticSerialize(canon);
            if (seen.count(key))
                continue;
            seen.insert(key);
            canon.name = u.model + "/union#" +
                         std::to_string(u.tests.size());
            u.testsBySize[static_cast<int>(canon.size())]++;
            u.tests.push_back(std::move(canon));
        }
        for (auto [size, secs] : s.secondsBySize)
            u.secondsBySize[size] += secs;
    }
    return u;
}

std::vector<Suite>
synthesizeAll(const mm::Model &model, const SynthOptions &options)
{
    std::vector<Track> tracks;
    tracks.reserve(model.axioms().size());
    for (const auto &axiom : model.axioms())
        tracks.push_back(axiomTrack(model, axiom.name));
    std::vector<Suite> suites = runSynthesisTracks(model, tracks, options);
    suites.push_back(unionSuites(suites, options));
    return suites;
}

} // namespace lts::synth
