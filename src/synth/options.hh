/**
 * @file
 * The shared command-line surface for synth::SynthOptions.
 *
 * Every knob in SynthOptions has exactly one --flag, declared from one
 * table (synthFlagSpecs) so ltsgen and the bench binaries agree on
 * names, defaults, and --help text. Binaries declare the table, parse,
 * then build a SynthOptions with synthOptionsFromFlags; re-declaring a
 * flag after declareAll overrides its default for that binary.
 */

#ifndef LTS_SYNTH_OPTIONS_HH
#define LTS_SYNTH_OPTIONS_HH

#include "common/flags.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{

/** The flag table: one row per SynthOptions knob. */
const std::vector<FlagSpec> &synthFlagSpecs();

/** Declare every synthesis flag into the registry. */
void declareSynthFlags(Flags &flags);

/**
 * Build a SynthOptions from parsed flags (progress is left null).
 * Throws std::invalid_argument on an unrecognized --canon value.
 */
SynthOptions synthOptionsFromFlags(const Flags &flags);

} // namespace lts::synth

#endif // LTS_SYNTH_OPTIONS_HH
