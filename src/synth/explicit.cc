#include "synth/explicit.hh"

#include <set>

#include "common/timer.hh"
#include "mm/convert.hh"
#include "mm/exprs.hh"
#include "rel/eval.hh"
#include "synth/executor.hh"
#include "synth/minimality.hh"

namespace lts::synth
{

using litmus::EventType;
using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::Outcome;

namespace
{

/** All compositions of @p total into ordered positive parts. */
std::vector<std::vector<int>>
compositions(int total)
{
    std::vector<std::vector<int>> out;
    std::vector<int> cur;
    std::function<void(int)> rec = [&](int left) {
        if (left == 0) {
            out.push_back(cur);
            return;
        }
        for (int part = 1; part <= left; part++) {
            cur.push_back(part);
            rec(left - part);
            cur.pop_back();
        }
    };
    rec(total);
    return out;
}

/** Allowed annotations per event type for the model's vocabulary. */
std::vector<MemOrder>
allowedOrders(const mm::Model &model, EventType type)
{
    const auto &f = model.features();
    const auto &vocab = model.vocab();
    std::vector<MemOrder> out = {MemOrder::Plain};
    switch (type) {
      case EventType::Read:
        if (f.acqRelAccess)
            out.push_back(MemOrder::Acquire);
        if (f.scAccess)
            out.push_back(MemOrder::SeqCst);
        break;
      case EventType::Write:
        if (f.acqRelAccess)
            out.push_back(MemOrder::Release);
        if (f.scAccess)
            out.push_back(MemOrder::SeqCst);
        break;
      case EventType::Fence:
        if (f.acqRelAccess && vocab.contains(mm::kAcq)) {
            out.push_back(MemOrder::Acquire);
            out.push_back(MemOrder::Release);
        }
        if (f.acqRelFence)
            out.push_back(MemOrder::AcqRel);
        if (f.scFence)
            out.push_back(MemOrder::SeqCst);
        break;
    }
    return out;
}

/** A candidate program being assembled. */
struct Candidate
{
    std::vector<int> tids;
    std::vector<EventType> types;
    std::vector<int> locs;          // -1 for fences
    std::vector<MemOrder> orders;
    std::vector<litmus::Scope> scopes;
    std::vector<int> wgs;           // workgroup per thread (scoped models)
    std::vector<std::tuple<int, int, int>> deps; // (kind 0/1/2, from, to)
    std::vector<std::pair<int, int>> rmws;
};

LitmusTest
materialize(const mm::Model &model, const Candidate &c)
{
    litmus::TestBuilder b;
    int threads = c.tids.empty() ? 0 : c.tids.back() + 1;
    for (int t = 0; t < threads; t++) {
        b.newThread();
        if (!c.wgs.empty())
            b.setWorkgroup(t, c.wgs[t]);
    }
    std::vector<int> ids(c.tids.size());
    for (size_t i = 0; i < c.tids.size(); i++) {
        std::string loc = "m" + std::to_string(c.locs[i]);
        switch (c.types[i]) {
          case EventType::Read:
            ids[i] = b.read(c.tids[i], loc, c.orders[i]);
            break;
          case EventType::Write:
            ids[i] = b.write(c.tids[i], loc, c.orders[i]);
            break;
          case EventType::Fence:
            ids[i] = b.fence(c.tids[i], c.orders[i]);
            break;
        }
        if (!c.scopes.empty())
            b.setScope(ids[i], c.scopes[i]);
    }
    for (auto [kind, from, to] : c.deps) {
        if (kind == 0)
            b.addrDepend(ids[from], ids[to]);
        else if (kind == 1)
            b.dataDepend(ids[from], ids[to]);
        else
            b.ctrlDepend(ids[from], ids[to]);
    }
    for (auto [r, w] : c.rmws)
        b.pairRmw(ids[r], ids[w]);
    (void)model;
    return b.build("");
}

/** Check the model's well-formedness on the program (static side). */
bool
staticallyWellFormed(const mm::Model &model, const LitmusTest &test)
{
    // Build a trivially complete outcome (all reads initial, co in event
    // order, one sc edge when required) so the dynamic facts are
    // satisfiable, then evaluate the full well-formedness formula.
    Outcome outcome(test.size());
    std::vector<std::vector<int>> writes_per_loc(test.numLocs);
    for (const auto &e : test.events) {
        if (e.isWrite())
            writes_per_loc[e.loc].push_back(e.id);
    }
    for (const auto &ws : writes_per_loc) {
        for (size_t i = 0; i < ws.size(); i++) {
            for (size_t j = i + 1; j < ws.size(); j++)
                outcome.co.set(ws[i], ws[j]);
        }
    }
    std::vector<std::pair<int, int>> sc;
    if (model.features().scOrder) {
        std::vector<int> fences;
        for (const auto &e : test.events) {
            if (e.isFence() && e.order == MemOrder::SeqCst)
                fences.push_back(e.id);
        }
        if (fences.size() > 2)
            return false; // outside the lone-sc workaround's space
        if (fences.size() == 2)
            sc.emplace_back(fences[0], fences[1]);
    }
    rel::Instance inst = mm::toInstance(model, test, outcome, sc);
    rel::Evaluator ev(inst);
    return ev.formula(model.wellFormed(test.size()));
}

} // namespace

void
forEachProgram(const mm::Model &model, int size,
               const std::function<void(const LitmusTest &)> &fn)
{
    const auto &feats = model.features();
    std::vector<EventType> type_choices = {EventType::Read, EventType::Write};
    if (feats.fences)
        type_choices.push_back(EventType::Fence);

    for (const auto &shape : compositions(size)) {
        Candidate c;
        for (size_t t = 0; t < shape.size(); t++) {
            for (int i = 0; i < shape[t]; i++)
                c.tids.push_back(static_cast<int>(t));
        }
        c.types.assign(size, EventType::Read);
        c.locs.assign(size, -1);
        c.orders.assign(size, MemOrder::Plain);
        c.scopes.assign(size, litmus::Scope::System);

        // Recursive enumeration: types -> locations -> orders -> scopes
        // -> deps -> rmw. Locations use restricted-growth strings so each
        // location partition is generated once.
        std::function<void(int)> enumRmw;
        std::function<void(int)> enumDeps;
        std::function<void(int)> enumScopes;
        std::function<void(int)> enumOrders;
        std::function<void(int, int)> enumLocs;
        std::function<void(int)> enumTypes;

        enumTypes = [&](int i) {
            if (i == size) {
                enumLocs(0, 0);
                return;
            }
            for (EventType t : type_choices) {
                c.types[i] = t;
                enumTypes(i + 1);
            }
        };

        enumLocs = [&](int i, int used) {
            if (i == size) {
                enumOrders(0);
                return;
            }
            if (c.types[i] == EventType::Fence) {
                c.locs[i] = -1;
                enumLocs(i + 1, used);
                return;
            }
            for (int loc = 0; loc <= used && loc < size; loc++) {
                c.locs[i] = loc;
                enumLocs(i + 1, std::max(used, loc + 1));
            }
        };

        enumOrders = [&](int i) {
            if (i == size) {
                enumScopes(0);
                return;
            }
            for (MemOrder o : allowedOrders(model, c.types[i])) {
                c.orders[i] = o;
                enumOrders(i + 1);
            }
        };

        // Scope enumeration: synchronizing ops of scoped models may be
        // workgroup- or system-scoped (FenceSC stays system-scoped; the
        // well-formedness check rejects the rest).
        enumScopes = [&](int i) {
            if (!model.features().scopes || i == size) {
                if (i == size || !model.features().scopes)
                    enumDeps(0);
                return;
            }
            bool sync_op = c.types[i] == EventType::Fence ||
                           c.orders[i] != MemOrder::Plain;
            bool fence_sc = c.types[i] == EventType::Fence &&
                            c.orders[i] == MemOrder::SeqCst;
            c.scopes[i] = litmus::Scope::System;
            if (sync_op && !fence_sc) {
                enumScopes(i + 1);
                c.scopes[i] = litmus::Scope::WorkGroup;
                enumScopes(i + 1);
                c.scopes[i] = litmus::Scope::System;
            } else {
                enumScopes(i + 1);
            }
        };

        // Dependency slots: (read, po-later same-thread target).
        std::vector<std::pair<int, int>> dep_slots;
        if (feats.deps) {
            for (int i = 0; i < size; i++) {
                for (int j = i + 1; j < size; j++) {
                    if (c.tids[i] == c.tids[j])
                        dep_slots.emplace_back(i, j);
                }
            }
        }
        enumDeps = [&](int slot) {
            if (!feats.deps || slot == static_cast<int>(dep_slots.size())) {
                enumRmw(0);
                return;
            }
            auto [from, to] = dep_slots[slot];
            if (c.types[from] != EventType::Read) {
                enumDeps(slot + 1);
                return;
            }
            bool to_mem = c.types[to] != EventType::Fence;
            bool to_write = c.types[to] == EventType::Write;
            // Each subset of {addr, data, ctrl} respecting target types.
            for (int mask = 0; mask < 8; mask++) {
                if ((mask & 1) && !to_mem)
                    continue; // addr needs a memory target
                if ((mask & 2) && !to_write)
                    continue; // data needs a write target
                size_t before = c.deps.size();
                if (mask & 1)
                    c.deps.emplace_back(0, from, to);
                if (mask & 2)
                    c.deps.emplace_back(1, from, to);
                if (mask & 4)
                    c.deps.emplace_back(2, from, to);
                enumDeps(slot + 1);
                c.deps.resize(before);
            }
        };

        enumRmw = [&](int i) {
            // Eligible adjacent read->write same-thread same-loc pairs are
            // disjoint, so enumerate an include/exclude bit per pair.
            std::vector<std::pair<int, int>> pairs;
            for (int a = 0; a + 1 < size; a++) {
                if (c.tids[a] == c.tids[a + 1] &&
                    c.types[a] == EventType::Read &&
                    c.types[a + 1] == EventType::Write &&
                    c.locs[a] == c.locs[a + 1]) {
                    pairs.emplace_back(a, a + 1);
                }
            }
            (void)i;
            int combos = feats.rmw ? (1 << pairs.size()) : 1;
            for (int mask = 0; mask < combos; mask++) {
                c.rmws.clear();
                for (size_t p = 0; p < pairs.size(); p++) {
                    if (mask & (1 << p))
                        c.rmws.push_back(pairs[p]);
                }
                LitmusTest test = materialize(model, c);
                if (staticallyWellFormed(model, test))
                    fn(test);
            }
            c.rmws.clear();
        };

        if (!model.features().scopes) {
            enumTypes(0);
            continue;
        }
        // Scoped models: additionally partition the threads into
        // contiguous workgroups.
        int threads = static_cast<int>(shape.size());
        for (const auto &wg_shape : compositions(threads)) {
            c.wgs.clear();
            for (size_t g = 0; g < wg_shape.size(); g++) {
                for (int t = 0; t < wg_shape[g]; t++)
                    c.wgs.push_back(static_cast<int>(g));
            }
            enumTypes(0);
        }
    }
}

std::map<int, uint64_t>
countAllPrograms(const mm::Model &model, int min_size, int max_size,
                 litmus::CanonMode mode)
{
    std::map<int, uint64_t> out;
    for (int size = min_size; size <= max_size; size++) {
        std::set<std::string> seen;
        forEachProgram(model, size, [&](const LitmusTest &test) {
            seen.insert(litmus::staticSerialize(canonicalize(test, mode)));
        });
        out[size] = seen.size();
    }
    return out;
}

Suite
explicitSynthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                        const SynthOptions &options)
{
    Suite suite;
    suite.model = model.name();
    suite.axiom = axiom_name;
    std::set<std::string> seen;

    for (int size = options.minSize; size <= options.maxSize; size++) {
        Timer timer;
        int found = 0;
        rel::FormulaPtr criterion =
            minimalityFormula(model, axiom_name, size);

        forEachProgram(model, size, [&](const LitmusTest &test) {
            // SC-order candidates (lone-edge space only, Figure 19).
            std::vector<std::vector<std::pair<int, int>>> scs = {{}};
            if (model.features().scOrder) {
                std::vector<int> fences;
                for (const auto &e : test.events) {
                    if (e.isFence() && e.order == MemOrder::SeqCst)
                        fences.push_back(e.id);
                }
                if (fences.size() == 2) {
                    scs = {{{fences[0], fences[1]}},
                           {{fences[1], fences[0]}}};
                }
            }
            for (const auto &outcome : allOutcomes(test)) {
                bool minimal = false;
                for (const auto &sc : scs) {
                    rel::Instance inst =
                        mm::toInstance(model, test, outcome, sc);
                    rel::Evaluator ev(inst);
                    if (ev.formula(criterion)) {
                        minimal = true;
                        break;
                    }
                }
                if (!minimal)
                    continue;
                suite.rawInstances++;
                LitmusTest with_outcome = test;
                with_outcome.hasForbidden = true;
                with_outcome.forbidden = outcome;
                LitmusTest canon =
                    options.useCanon
                        ? litmus::canonicalize(with_outcome,
                                               options.canonMode)
                        : with_outcome;
                std::string key = litmus::staticSerialize(canon);
                if (!seen.count(key)) {
                    seen.insert(key);
                    canon.name = model.name() + "/" + axiom_name + "#x" +
                                 std::to_string(suite.tests.size());
                    suite.tests.push_back(canon);
                    found++;
                }
                break; // one witness execution per program is enough
            }
        });

        suite.testsBySize[size] = found;
        suite.secondsBySize[size] = timer.seconds();
    }
    return suite;
}

} // namespace lts::synth
