/**
 * @file
 * Explicit (non-SAT) enumeration engine.
 *
 * A second, independent implementation of the synthesis loop: enumerate
 * every litmus-test program up to a size bound directly (thread shapes,
 * event types, locations, annotations, dependencies, rmw pairing), then
 * every execution of each program, and evaluate the same minimality
 * formula concretely. It serves two purposes:
 *
 *  - the "All Progs" baseline of Figure 13a (how fast the raw test space
 *    grows compared to the synthesized suites), and
 *  - an oracle for the SAT path: for small bounds both engines must
 *    produce exactly the same canonical suites (tests/synth checks this).
 */

#ifndef LTS_SYNTH_EXPLICIT_HH
#define LTS_SYNTH_EXPLICIT_HH

#include <cstdint>
#include <functional>

#include "synth/synthesizer.hh"

namespace lts::synth
{

/**
 * Enumerate every well-formed program of exactly @p size events for
 * @p model, invoking @p fn on each (non-canonicalized; callers
 * deduplicate). Programs carry no outcome.
 */
void forEachProgram(const mm::Model &model, int size,
                    const std::function<void(const litmus::LitmusTest &)> &fn);

/** Number of *distinct canonical* programs of each size in [min, max]. */
std::map<int, uint64_t> countAllPrograms(const mm::Model &model, int min_size,
                                         int max_size,
                                         litmus::CanonMode mode);

/**
 * Explicit-engine counterpart of synthesizeAxiom: same Suite output,
 * produced by brute force instead of SAT.
 */
Suite explicitSynthesizeAxiom(const mm::Model &model,
                              const std::string &axiom_name,
                              const SynthOptions &options);

} // namespace lts::synth

#endif // LTS_SYNTH_EXPLICIT_HH
