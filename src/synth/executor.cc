#include "synth/executor.hh"

#include <algorithm>
#include <unordered_set>

#include "common/hash.hh"
#include "mm/convert.hh"
#include "rel/eval.hh"

namespace lts::synth
{

using litmus::LitmusTest;
using litmus::Outcome;

namespace
{

/** Enumerate all strict total orders (as permutations) of @p items. */
std::vector<std::vector<int>>
permutations(std::vector<int> items)
{
    std::vector<std::vector<int>> out;
    std::sort(items.begin(), items.end());
    do {
        out.push_back(items);
    } while (std::next_permutation(items.begin(), items.end()));
    return out;
}

} // namespace

std::vector<Outcome>
allOutcomes(const LitmusTest &test)
{
    size_t n = test.size();

    // Per-read rf choices: -1 (initial) or any same-location write.
    std::vector<int> reads;
    std::vector<std::vector<int>> rf_choices;
    for (const auto &e : test.events) {
        if (!e.isRead())
            continue;
        reads.push_back(e.id);
        std::vector<int> sources = {-1};
        for (const auto &w : test.events) {
            if (w.isWrite() && w.loc == e.loc)
                sources.push_back(w.id);
        }
        rf_choices.push_back(sources);
    }

    // Per-location co orders.
    std::vector<std::vector<std::vector<int>>> co_choices;
    for (int loc = 0; loc < test.numLocs; loc++) {
        std::vector<int> writes;
        for (const auto &e : test.events) {
            if (e.isWrite() && e.loc == loc)
                writes.push_back(e.id);
        }
        co_choices.push_back(permutations(writes));
    }

    std::vector<Outcome> out;
    // Iterate the cross product with an odometer.
    std::vector<size_t> rf_idx(reads.size(), 0);
    for (;;) {
        std::vector<size_t> co_idx(test.numLocs, 0);
        for (;;) {
            Outcome o(n);
            for (size_t r = 0; r < reads.size(); r++) {
                int src = rf_choices[r][rf_idx[r]];
                if (src >= 0)
                    o.rf.set(src, reads[r]);
            }
            for (int loc = 0; loc < test.numLocs; loc++) {
                const auto &order = co_choices[loc][co_idx[loc]];
                for (size_t i = 0; i < order.size(); i++) {
                    for (size_t j = i + 1; j < order.size(); j++)
                        o.co.set(order[i], order[j]);
                }
            }
            out.push_back(std::move(o));

            // Advance the co odometer.
            size_t pos = 0;
            while (pos < co_idx.size()) {
                if (++co_idx[pos] < co_choices[pos].size())
                    break;
                co_idx[pos] = 0;
                pos++;
            }
            if (pos == co_idx.size())
                break;
        }
        // Advance the rf odometer.
        size_t pos = 0;
        while (pos < rf_idx.size()) {
            if (++rf_idx[pos] < rf_choices[pos].size())
                break;
            rf_idx[pos] = 0;
            pos++;
        }
        if (pos == rf_idx.size())
            break;
    }
    return out;
}

std::vector<std::vector<std::pair<int, int>>>
scAssignments(const mm::Model &model, const LitmusTest &test)
{
    std::vector<std::vector<std::pair<int, int>>> out = {{}};
    if (!model.features().scOrder)
        return out;
    std::vector<int> sc_fences;
    for (const auto &e : test.events) {
        if (e.isFence() && e.order == litmus::MemOrder::SeqCst)
            sc_fences.push_back(e.id);
    }
    if (sc_fences.empty() || sc_fences.size() > 4)
        return out;
    out.clear();
    for (const auto &perm : permutations(sc_fences)) {
        std::vector<std::pair<int, int>> edges;
        for (size_t i = 0; i < perm.size(); i++) {
            for (size_t j = i + 1; j < perm.size(); j++)
                edges.emplace_back(perm[i], perm[j]);
        }
        out.push_back(edges);
    }
    return out;
}

bool
isLegal(const mm::Model &model, const LitmusTest &test,
        const Outcome &outcome)
{
    auto sc_candidates = scAssignments(model, test);
    size_t n = test.size();
    for (const auto &sc : sc_candidates) {
        rel::Instance inst = mm::toInstance(model, test, outcome, sc);
        rel::Evaluator ev(inst);
        if (ev.formula(model.allAxioms(model.base(), n)))
            return true;
    }
    return false;
}

std::vector<Outcome>
legalOutcomes(const mm::Model &model, const LitmusTest &test)
{
    std::vector<Outcome> out;
    for (const auto &o : allOutcomes(test)) {
        if (isLegal(model, test, o))
            out.push_back(o);
    }
    return out;
}

std::vector<int>
observableProjection(const LitmusTest &test, const Outcome &outcome)
{
    std::vector<int> proj = test.registerValues(outcome);
    std::vector<int> finals = test.finalValues(outcome);
    proj.insert(proj.end(), finals.begin(), finals.end());
    return proj;
}

namespace
{

/** Hash for observable projections, so dedup is O(1) per outcome. */
struct ProjectionHash
{
    size_t
    operator()(const std::vector<int> &proj) const
    {
        uint64_t h = hashInit();
        for (int v : proj)
            h = hashCombine(h, static_cast<uint64_t>(
                                   static_cast<uint32_t>(v)));
        return static_cast<size_t>(hashCombine(h, proj.size()));
    }
};

} // namespace

std::vector<Outcome>
dedupeByObservable(const LitmusTest &test,
                   const std::vector<Outcome> &outcomes)
{
    std::vector<Outcome> out;
    std::unordered_set<std::vector<int>, ProjectionHash> seen;
    for (const auto &o : outcomes) {
        if (seen.insert(observableProjection(test, o)).second)
            out.push_back(o);
    }
    return out;
}

} // namespace lts::synth
