#include "synth/service.hh"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/hash.hh"
#include "common/strings.hh"
#include "common/timer.hh"
#include "litmus/digest.hh"
#include "litmus/format.hh"
#include "mm/registry.hh"
#include "synth/minimality.hh"

namespace lts::synth
{

namespace
{

std::string
hex16(uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** "paper" / "exact" / "off" — the --canon flag's vocabulary. */
std::string
canonName(const SynthOptions &options)
{
    if (!options.useCanon)
        return "off";
    return options.canonMode == litmus::CanonMode::Exact ? "exact" : "paper";
}

/** Content digest of a proof file's bytes; empty when unreadable. */
std::string
proofFileDigest(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string();
    uint64_t h = hashInit();
    h = hashCombine(h, std::string_view("lts-proof-v1"));
    char buf[4096];
    while (in.read(buf, sizeof buf) || in.gcount() > 0) {
        h = hashCombine(
            h, std::string_view(buf, static_cast<size_t>(in.gcount())));
    }
    return hex16(h);
}

// --- line-oriented record formats ------------------------------------------
//
// Every persisted or wire-carried structure is a header of "key value"
// lines followed by litmus interchange text where tests are involved.
// A Reader pulls typed fields and throws on malformed input, so a
// corrupt (but crc-clean) record surfaces as a parse error rather than
// silently wrong data.

class Reader
{
  public:
    explicit Reader(const std::string &text) : in(text) {}

    /** Next non-blank line; interchange text leaves blank separators
     *  behind after tests(), and keys are never empty. */
    std::string
    line()
    {
        std::string l;
        while (std::getline(in, l)) {
            if (!trim(l).empty())
                return l;
        }
        throw std::runtime_error("service: truncated record");
    }

    /** "key rest-of-line"; throws when the key doesn't match. */
    std::string
    field(const std::string &key)
    {
        std::string l = line();
        if (l.size() < key.size() + 1 || l.compare(0, key.size(), key) != 0 ||
            l[key.size()] != ' ') {
            throw std::runtime_error("service: expected '" + key +
                                     "' line, got '" + l + "'");
        }
        return l.substr(key.size() + 1);
    }

    uint64_t
    u64(const std::string &key)
    {
        return std::stoull(field(key));
    }

    int
    i32(const std::string &key)
    {
        return std::stoi(field(key));
    }

    double
    f64(const std::string &key)
    {
        return std::stod(field(key));
    }

    /**
     * Parse exactly @p count tests and leave the stream positioned
     * after them. parseLitmusSuite would drain the whole stream, which
     * breaks payloads carrying several suites back to back, so collect
     * lines up to the count-th 'end' terminator first.
     */
    std::vector<litmus::LitmusTest>
    tests(size_t count)
    {
        std::string chunk;
        size_t ends = 0;
        std::string l;
        while (ends < count && std::getline(in, l)) {
            chunk += l;
            chunk += '\n';
            if (trim(l) == "end")
                ends++;
        }
        if (ends < count) {
            throw std::runtime_error(
                "service: truncated test block: expected " +
                std::to_string(count) + " tests, found " +
                std::to_string(ends));
        }
        std::istringstream chunk_in(chunk);
        auto suite = litmus::parseLitmusSuite(chunk_in);
        if (suite.size() != count) {
            throw std::runtime_error(
                "service: test count mismatch: expected " +
                std::to_string(count) + ", parsed " +
                std::to_string(suite.size()));
        }
        return suite;
    }

    std::istringstream in;
};

void
writeTests(std::ostream &out, const std::vector<litmus::LitmusTest> &tests)
{
    litmus::writeLitmusSuite(out, tests);
}

// --- shard records ----------------------------------------------------------

std::string
serializeShard(const ShardResult &shard)
{
    std::ostringstream out;
    out << "shard " << kServiceFormat << "\n";
    out << "raw " << shard.rawInstances << "\n";
    out << "sbp " << shard.sbpClauses << "\n";
    out << "truncated " << (shard.truncated ? 1 : 0) << "\n";
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.6f", shard.seconds);
    out << "seconds " << secs << "\n";
    out << "tests " << shard.tests.size() << "\n";
    writeTests(out, shard.tests);
    return out.str();
}

ShardResult
parseShard(const std::string &text)
{
    Reader r(text);
    if (r.field("shard") != kServiceFormat)
        throw std::runtime_error("service: shard record format mismatch");
    ShardResult shard;
    shard.rawInstances = r.u64("raw");
    shard.sbpClauses = r.u64("sbp");
    shard.truncated = r.u64("truncated") != 0;
    r.f64("seconds"); // the cold cost; a cached shard costs ~nothing now
    shard.seconds = 0;
    shard.tests = r.tests(static_cast<size_t>(r.u64("tests")));
    return shard;
}

// --- suite manifests --------------------------------------------------------

struct Manifest
{
    std::string suiteDigest;
    // Axiom label -> the shard keys its per-size results live under,
    // sizes ascending from minSize.
    std::vector<std::pair<std::string, std::vector<std::string>>> axioms;
};

std::string
serializeManifest(const Manifest &m)
{
    std::ostringstream out;
    out << "manifest " << kServiceFormat << "\n";
    out << "digest " << m.suiteDigest << "\n";
    out << "axioms " << m.axioms.size() << "\n";
    for (const auto &[axiom, keys] : m.axioms) {
        out << "axiom " << keys.size() << " " << axiom << "\n";
        for (const auto &key : keys)
            out << "shard " << key << "\n";
    }
    return out.str();
}

Manifest
parseManifest(const std::string &text)
{
    Reader r(text);
    if (r.field("manifest") != kServiceFormat)
        throw std::runtime_error("service: manifest format mismatch");
    Manifest m;
    m.suiteDigest = r.field("digest");
    size_t n_axioms = r.u64("axioms");
    for (size_t i = 0; i < n_axioms; i++) {
        std::string head = r.field("axiom");
        size_t space = head.find(' ');
        if (space == std::string::npos)
            throw std::runtime_error("service: bad manifest axiom line");
        size_t n_keys = std::stoull(head.substr(0, space));
        std::string axiom = head.substr(space + 1);
        std::vector<std::string> keys;
        keys.reserve(n_keys);
        for (size_t k = 0; k < n_keys; k++)
            keys.push_back(r.field("shard"));
        m.axioms.emplace_back(std::move(axiom), std::move(keys));
    }
    return m;
}

// --- suite (de)serialization for the Result payload -------------------------

void
serializeSuite(std::ostream &out, const Suite &suite)
{
    out << "suite " << suite.axiom << "\n";
    out << "model " << suite.model << "\n";
    out << "raw " << suite.rawInstances << "\n";
    out << "truncated " << (suite.truncated ? 1 : 0) << "\n";
    out << "sizes " << suite.testsBySize.size() << "\n";
    for (const auto &[size, count] : suite.testsBySize) {
        auto secs = suite.secondsBySize.count(size)
                        ? suite.secondsBySize.at(size)
                        : 0.0;
        auto insts = suite.instancesBySize.count(size)
                         ? suite.instancesBySize.at(size)
                         : 0;
        auto sbp = suite.sbpClausesBySize.count(size)
                       ? suite.sbpClausesBySize.at(size)
                       : 0;
        char line[128];
        std::snprintf(line, sizeof line, "size %d %d %llu %llu %.6f", size,
                      count, static_cast<unsigned long long>(insts),
                      static_cast<unsigned long long>(sbp), secs);
        out << line << "\n";
    }
    out << "tests " << suite.tests.size() << "\n";
    writeTests(out, suite.tests);
}

Suite
parseSuite(Reader &r)
{
    Suite suite;
    suite.axiom = r.field("suite");
    suite.model = r.field("model");
    suite.rawInstances = r.u64("raw");
    suite.truncated = r.u64("truncated") != 0;
    size_t n_sizes = r.u64("sizes");
    for (size_t i = 0; i < n_sizes; i++) {
        std::istringstream line(r.field("size"));
        int size = 0, count = 0;
        uint64_t insts = 0, sbp = 0;
        double secs = 0;
        if (!(line >> size >> count >> insts >> sbp >> secs))
            throw std::runtime_error("service: bad suite size line");
        suite.testsBySize[size] = count;
        suite.instancesBySize[size] = insts;
        suite.sbpClausesBySize[size] = sbp;
        suite.secondsBySize[size] = secs;
    }
    suite.tests = r.tests(static_cast<size_t>(r.u64("tests")));
    return suite;
}

std::string
escapeLine(const std::string &s)
{
    // Progress/axiom names never contain newlines today; keep the
    // records honest if one ever does.
    std::string out;
    for (char c : s)
        out += c == '\n' ? ' ' : c;
    return out;
}

} // namespace

std::string
toString(CacheOutcome outcome)
{
    switch (outcome) {
    case CacheOutcome::Hit:
        return "hit";
    case CacheOutcome::Partial:
        return "partial";
    case CacheOutcome::Miss:
    default:
        return "miss";
    }
}

std::string
optionsDigest(const SynthOptions &options)
{
    uint64_t h = hashInit();
    h = hashCombine(h, std::string_view(kServiceFormat));
    h = hashCombine(h, std::string_view(canonName(options)));
    h = hashCombine(h, static_cast<uint64_t>(options.blockStaticOnly));
    h = hashCombine(h, options.conflictBudget);
    h = hashCombine(h, static_cast<uint64_t>(options.maxTestsPerSize));
    return hex16(h);
}

std::string
baseFormulaDigest(const mm::Model &model, int size)
{
    uint64_t h = hashInit();
    h = hashCombine(h, std::string_view("lts-base-v1"));
    h = hashCombine(h,
                    minimalityBase(model, static_cast<size_t>(size))
                        ->toString());
    return hex16(h);
}

std::string
violationDigest(const mm::Model &model, const std::string &axiom, int size)
{
    uint64_t h = hashInit();
    h = hashCombine(h, std::string_view("lts-viol-v1"));
    h = hashCombine(h,
                    axiomViolation(model, axiom, static_cast<size_t>(size))
                        ->toString());
    return hex16(h);
}

// --- request / result wire payloads -----------------------------------------

std::string
serializeSuiteRequest(const SuiteRequest &request)
{
    const SynthOptions &o = request.options;
    std::ostringstream out;
    out << "request " << kServiceFormat << "\n";
    out << "model " << request.model << "\n";
    out << "axiom " << (request.axiom.empty() ? "union" : request.axiom)
        << "\n";
    out << "maxsize " << request.maxSize << "\n";
    out << "minsize " << o.minSize << "\n";
    out << "canon " << canonName(o) << "\n";
    out << "blockstatic " << (o.blockStaticOnly ? 1 : 0) << "\n";
    out << "budget " << o.conflictBudget << "\n";
    out << "maxtests " << o.maxTestsPerSize << "\n";
    out << "sbp " << (o.symmetryBreaking ? 1 : 0) << "\n";
    out << "incremental " << (o.incremental ? 1 : 0) << "\n";
    out << "jobs " << o.jobs << "\n";
    out << "simplify " << (o.simplify ? 1 : 0) << "\n";
    out << "share " << (o.shareClauses ? 1 : 0) << "\n";
    return out.str();
}

SuiteRequest
parseSuiteRequest(const std::string &text)
{
    Reader r(text);
    if (r.field("request") != kServiceFormat)
        throw std::runtime_error("service: request format mismatch");
    SuiteRequest request;
    request.model = r.field("model");
    request.axiom = r.field("axiom");
    if (request.axiom == "union")
        request.axiom.clear();
    request.maxSize = r.i32("maxsize");
    SynthOptions &o = request.options;
    o.maxSize = request.maxSize;
    o.minSize = r.i32("minsize");
    std::string canon = r.field("canon");
    o.useCanon = canon != "off";
    o.canonMode = canon == "exact" ? litmus::CanonMode::Exact
                                   : litmus::CanonMode::Paper;
    o.blockStaticOnly = r.u64("blockstatic") != 0;
    o.conflictBudget = r.u64("budget");
    o.maxTestsPerSize = r.i32("maxtests");
    o.symmetryBreaking = r.u64("sbp") != 0;
    o.incremental = r.u64("incremental") != 0;
    o.jobs = r.i32("jobs");
    o.simplify = r.u64("simplify") != 0;
    o.shareClauses = r.u64("share") != 0;
    return request;
}

std::string
serializeSuiteResult(const SuiteResult &result)
{
    std::ostringstream out;
    out << "result " << kServiceFormat << "\n";
    out << "modeldigest " << result.modelDigest << "\n";
    out << "optionsdigest " << result.optionsDigest << "\n";
    out << "suitedigest " << result.suiteDigest << "\n";
    out << "cache " << toString(result.cache) << "\n";
    out << "shardscached " << result.shardsCached << "\n";
    out << "shardssynthesized " << result.shardsSynthesized << "\n";
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.6f", result.seconds);
    out << "seconds " << secs << "\n";
    const SynthProgressSnapshot &p = result.progress;
    out << "progress " << p.jobsQueued << " " << p.jobsRunning << " "
        << p.jobsDone << " " << p.conflicts << " " << p.restarts << " "
        << p.instances << " " << p.sbpClauses << " " << p.eliminatedVars
        << " " << p.subsumedClauses << " " << p.importedClauses << " "
        << p.exportedClauses << "\n";
    out << "provenance " << result.shards.size() << "\n";
    for (const auto &s : result.shards) {
        out << "shard " << s.size << " " << (s.cached ? 1 : 0) << " "
            << s.tests << " "
            << (s.proofDigest.empty() ? "-" : s.proofDigest) << " "
            << escapeLine(s.axiom) << "\n";
    }
    out << "suites " << result.suites.size() << "\n";
    for (const auto &suite : result.suites)
        serializeSuite(out, suite);
    return out.str();
}

SuiteResult
parseSuiteResult(const std::string &text)
{
    Reader r(text);
    if (r.field("result") != kServiceFormat)
        throw std::runtime_error("service: result format mismatch");
    SuiteResult result;
    result.modelDigest = r.field("modeldigest");
    result.optionsDigest = r.field("optionsdigest");
    result.suiteDigest = r.field("suitedigest");
    std::string cache = r.field("cache");
    result.cache = cache == "hit"       ? CacheOutcome::Hit
                   : cache == "partial" ? CacheOutcome::Partial
                                        : CacheOutcome::Miss;
    result.shardsCached = r.u64("shardscached");
    result.shardsSynthesized = r.u64("shardssynthesized");
    result.seconds = r.f64("seconds");
    {
        std::istringstream line(r.field("progress"));
        SynthProgressSnapshot &p = result.progress;
        if (!(line >> p.jobsQueued >> p.jobsRunning >> p.jobsDone >>
              p.conflicts >> p.restarts >> p.instances >> p.sbpClauses >>
              p.eliminatedVars >> p.subsumedClauses >> p.importedClauses >>
              p.exportedClauses)) {
            throw std::runtime_error("service: bad progress line");
        }
    }
    size_t n_shards = r.u64("provenance");
    for (size_t i = 0; i < n_shards; i++) {
        std::istringstream line(r.field("shard"));
        ShardProvenance s;
        int cached = 0;
        if (!(line >> s.size >> cached >> s.tests >> s.proofDigest))
            throw std::runtime_error("service: bad provenance line");
        s.cached = cached != 0;
        if (s.proofDigest == "-")
            s.proofDigest.clear();
        std::getline(line, s.axiom);
        s.axiom = trim(s.axiom);
        result.shards.push_back(std::move(s));
    }
    size_t n_suites = r.u64("suites");
    for (size_t i = 0; i < n_suites; i++)
        result.suites.push_back(parseSuite(r));
    if (result.suites.empty())
        throw std::runtime_error("service: result carries no suites");
    return result;
}

// --- the service -------------------------------------------------------------

Service::Service(ServiceConfig config_) : config(std::move(config_))
{
    if (!config.storeDir.empty()) {
        suiteStore = std::make_unique<store::SuiteStore>(config.storeDir,
                                                         config.cacheBudget);
    }
}

Service::~Service() = default;

SuiteResult
Service::query(const SuiteRequest &request, const QueryProgressFn &on_progress)
{
    if (config.residentEncodings) {
        // Daemon mode: keep the registry model resident so its memoized
        // digest makes repeat-query keying cost map lookups, not
        // formula rendering.
        auto it = models.find(request.model);
        if (it == models.end()) {
            it = models.emplace(request.model, mm::makeModel(request.model))
                     .first;
        }
        return query(*it->second, request, on_progress);
    }
    std::unique_ptr<mm::Model> model = mm::makeModel(request.model);
    return query(*model, request, on_progress);
}

SuiteResult
Service::query(const mm::Model &model, const SuiteRequest &request,
               const QueryProgressFn &on_progress)
{
    Timer wall;
    progress.reset();

    SynthOptions options = request.options;
    options.maxSize = request.maxSize;
    options.progress = &progress;
    if (options.minSize > options.maxSize)
        throw std::invalid_argument("service: minSize > maxSize");

    auto emit = [&](const std::string &msg) {
        if (on_progress)
            on_progress(msg);
    };

    // Axiom scope: declaration order throughout, one axiom when asked.
    std::vector<std::string> axioms;
    bool full_scope = request.axiom.empty() || request.axiom == "union";
    if (full_scope) {
        for (const auto &axiom : model.axioms())
            axioms.push_back(axiom.name);
    } else {
        model.axiom(request.axiom); // throws on unknown names
        axioms.push_back(request.axiom);
    }

    const int min_size = options.minSize;
    const int max_size = options.maxSize;
    const size_t n_sizes = static_cast<size_t>(max_size - min_size + 1);

    SuiteResult result;
    result.modelDigest = model.digest();
    result.optionsDigest = optionsDigest(options);

    std::string manifest_key = "suite/" + result.modelDigest + "/n" +
                               std::to_string(min_size) + "-" +
                               std::to_string(max_size) + "/" +
                               result.optionsDigest;
    if (!full_scope)
        manifest_key += "/one:" + request.axiom;

    // 0. Resident result (daemon mode): the assembled answer to this
    //    exact (modelDigest, bound, optionsDigest) is already in memory.
    //    Checked before any per-shard digest is rendered — this path
    //    must cost map lookups and a copy, nothing solver-shaped.
    if (config.residentEncodings) {
        auto hot = resultCache.find(manifest_key);
        if (hot != resultCache.end()) {
            SuiteResult served = hot->second;
            served.cache = CacheOutcome::Hit;
            for (auto &shard : served.shards)
                shard.cached = true;
            served.shardsCached = served.shards.size();
            served.shardsSynthesized = 0;
            served.progress = progress.snapshot(); // all zero: no work
            served.seconds = wall.seconds();
            emit("suite " + served.suiteDigest + ": resident hit (" +
                 std::to_string(served.unionSuite().tests.size()) +
                 " tests)");
            return served;
        }
    }

    // Restart-stable keys for every shard in scope.
    std::vector<std::string> base_digests(n_sizes);
    for (size_t si = 0; si < n_sizes; si++) {
        base_digests[si] =
            baseFormulaDigest(model, min_size + static_cast<int>(si));
    }
    auto shard_key = [&](const std::string &axiom, size_t si) {
        int size = min_size + static_cast<int>(si);
        return "shard/" + base_digests[si] + "/" +
               violationDigest(model, axiom, size) + "/" +
               result.optionsDigest + "/n" + std::to_string(size);
    };

    // Assembly shared by every path below: per-axiom suites in scope
    // order, plus the union for full-scope queries. Deterministic, so
    // cached shards and fresh shards produce byte-identical suites.
    auto assemble =
        [&](const std::vector<std::vector<ShardResult>> &shards) {
            result.suites.clear();
            for (size_t ai = 0; ai < axioms.size(); ai++) {
                result.suites.push_back(assembleShardSuite(
                    model, axioms[ai], shards[ai], min_size));
            }
            if (full_scope)
                result.suites.push_back(unionSuites(result.suites, options));
            result.suiteDigest =
                litmus::suiteDigest(result.suites.back().tests);
        };

    // 1. Manifest fast path: the (modelDigest, bound, optionsDigest)
    //    index entry plus every shard it references.
    if (suiteStore) {
        if (auto manifest_bytes = suiteStore->get(manifest_key)) {
            try {
                Manifest manifest = parseManifest(*manifest_bytes);
                std::vector<std::vector<ShardResult>> shards;
                bool complete = manifest.axioms.size() == axioms.size();
                for (size_t ai = 0; complete && ai < axioms.size(); ai++) {
                    if (manifest.axioms[ai].first != axioms[ai] ||
                        manifest.axioms[ai].second.size() != n_sizes) {
                        complete = false;
                        break;
                    }
                    std::vector<ShardResult> by_size;
                    for (const auto &key : manifest.axioms[ai].second) {
                        auto bytes = suiteStore->get(key);
                        if (!bytes) {
                            complete = false;
                            break;
                        }
                        by_size.push_back(parseShard(*bytes));
                    }
                    if (by_size.size() == n_sizes)
                        shards.push_back(std::move(by_size));
                    else
                        complete = false;
                }
                if (complete) {
                    assemble(shards);
                    if (result.suiteDigest == manifest.suiteDigest) {
                        result.cache = CacheOutcome::Hit;
                        result.shardsCached = axioms.size() * n_sizes;
                        for (size_t ai = 0; ai < axioms.size(); ai++) {
                            for (size_t si = 0; si < n_sizes; si++) {
                                result.shards.push_back(
                                    {axioms[ai],
                                     min_size + static_cast<int>(si), true,
                                     shards[ai][si].tests.size(),
                                     std::string()});
                            }
                        }
                        result.progress = progress.snapshot();
                        result.seconds = wall.seconds();
                        if (config.residentEncodings)
                            resultCache[manifest_key] = result;
                        emit("suite " + result.suiteDigest +
                             ": store hit (" +
                             std::to_string(result.unionSuite().tests
                                                .size()) +
                             " tests)");
                        return result;
                    }
                    // Digest mismatch: a format skew or store damage.
                    // Fall through and re-synthesize; the fresh run
                    // overwrites the stale manifest.
                    result.suites.clear();
                }
            } catch (const std::exception &e) {
                emit(std::string("manifest unusable, re-deriving: ") +
                     e.what());
            }
        }
    }

    // 2. Shard-level path: serve what the store has, synthesize the rest.
    std::vector<std::vector<ShardResult>> shards(
        axioms.size(), std::vector<ShardResult>(n_sizes));
    std::vector<std::vector<bool>> have(axioms.size(),
                                        std::vector<bool>(n_sizes, false));
    std::vector<std::vector<bool>> from_store(
        axioms.size(), std::vector<bool>(n_sizes, false));
    if (suiteStore) {
        for (size_t ai = 0; ai < axioms.size(); ai++) {
            for (size_t si = 0; si < n_sizes; si++) {
                auto bytes = suiteStore->get(shard_key(axioms[ai], si));
                if (!bytes)
                    continue;
                try {
                    shards[ai][si] = parseShard(*bytes);
                    have[ai][si] = true;
                    from_store[ai][si] = true;
                    result.shardsCached++;
                } catch (const std::exception &) {
                    // Unparseable shard: treat as a miss and overwrite.
                }
            }
        }
    }

    size_t missing = axioms.size() * n_sizes - result.shardsCached;
    if (missing > 0 && config.residentEncodings) {
        // Daemon mode: sweep the misses over resident base encodings,
        // building each missing (base, size) encoding at most once and
        // keeping it hot for later queries.
        for (size_t si = 0; si < n_sizes; si++) {
            int size = min_size + static_cast<int>(si);
            bool any_miss = false;
            for (size_t ai = 0; ai < axioms.size(); ai++)
                any_miss = any_miss || !have[ai][si];
            if (!any_miss)
                continue;
            std::string enc_key =
                base_digests[si] + "/" + result.optionsDigest;
            auto it = encodings.find(enc_key);
            if (it == encodings.end()) {
                emit("size " + std::to_string(size) +
                     ": building base encoding");
                it = encodings
                         .emplace(enc_key, std::make_unique<BaseEncoding>(
                                               model, size, options))
                         .first;
            } else {
                emit("size " + std::to_string(size) +
                     ": base encoding resident");
            }
            for (size_t ai = 0; ai < axioms.size(); ai++) {
                if (have[ai][si])
                    continue;
                shards[ai][si] = it->second->synthesizeShard(
                    model, axioms[ai], options);
                have[ai][si] = true;
                result.shardsSynthesized++;
                emit("shard " + axioms[ai] + "@" + std::to_string(size) +
                     ": synthesized, " +
                     std::to_string(shards[ai][si].tests.size()) + " tests");
            }
        }
    } else if (missing > 0) {
        // One-shot mode: run the missing shards through the sharded
        // engine so the engine knobs (incremental/from-scratch, jobs,
        // simplify, clause sharing) behave exactly as synthesizeAll.
        std::set<std::pair<std::string, int>> wanted;
        for (size_t ai = 0; ai < axioms.size(); ai++) {
            for (size_t si = 0; si < n_sizes; si++) {
                if (!have[ai][si]) {
                    wanted.emplace(axioms[ai],
                                   min_size + static_cast<int>(si));
                }
            }
        }
        ShardSelector selector = [&](const std::string &axiom, int size) {
            return wanted.count({axiom, size}) != 0;
        };
        auto fresh = synthesizeShards(model, options, selector);
        // fresh is indexed by model axiom declaration order; map back
        // into the (possibly axiom-scoped) result rows.
        for (size_t ai = 0; ai < axioms.size(); ai++) {
            size_t model_index = 0;
            const auto &model_axioms = model.axioms();
            while (model_index < model_axioms.size() &&
                   model_axioms[model_index].name != axioms[ai]) {
                model_index++;
            }
            for (size_t si = 0; si < n_sizes; si++) {
                if (have[ai][si])
                    continue;
                shards[ai][si] = std::move(fresh[model_index][si]);
                have[ai][si] = true;
                result.shardsSynthesized++;
                emit("shard " + axioms[ai] + "@" +
                     std::to_string(min_size + static_cast<int>(si)) +
                     ": synthesized, " +
                     std::to_string(shards[ai][si].tests.size()) + " tests");
            }
        }
    }

    // 3. Assemble, record provenance, and persist what this query learned.
    assemble(shards);
    for (size_t ai = 0; ai < axioms.size(); ai++) {
        for (size_t si = 0; si < n_sizes; si++) {
            ShardProvenance prov{axioms[ai],
                                 min_size + static_cast<int>(si),
                                 from_store[ai][si],
                                 shards[ai][si].tests.size(),
                                 std::string()};
            // A freshly synthesized shard's conclusion landed in a proof
            // file; pin its content digest into the provenance. Cached
            // shards ran no solver, and the resident-encoding sweep is
            // proof-less (see BaseEncoding::synthesizeShard).
            if (!from_store[ai][si] && !options.proofDir.empty() &&
                !config.residentEncodings) {
                prov.proofDigest = proofFileDigest(proofFilePath(
                    options, model.name(),
                    options.incremental ? std::string() : axioms[ai],
                    prov.size));
            }
            result.shards.push_back(std::move(prov));
        }
    }
    result.cache = result.shardsSynthesized == 0
                       ? CacheOutcome::Hit
                       : (result.shardsCached > 0 ? CacheOutcome::Partial
                                                  : CacheOutcome::Miss);

    if (suiteStore) {
        Manifest manifest;
        manifest.suiteDigest = result.suiteDigest;
        for (size_t ai = 0; ai < axioms.size(); ai++) {
            std::vector<std::string> keys;
            for (size_t si = 0; si < n_sizes; si++) {
                std::string key = shard_key(axioms[ai], si);
                suiteStore->put(key, serializeShard(shards[ai][si]));
                keys.push_back(std::move(key));
            }
            manifest.axioms.emplace_back(axioms[ai], std::move(keys));
        }
        suiteStore->put(manifest_key, serializeManifest(manifest));
        suiteStore->flush();
    }

    result.progress = progress.snapshot();
    result.seconds = wall.seconds();
    if (config.residentEncodings)
        resultCache[manifest_key] = result;
    emit("suite " + result.suiteDigest + ": cache " +
         toString(result.cache) + " (" +
         std::to_string(result.unionSuite().tests.size()) + " tests, " +
         std::to_string(result.shardsCached) + " shards cached, " +
         std::to_string(result.shardsSynthesized) + " synthesized)");
    return result;
}

} // namespace lts::synth
