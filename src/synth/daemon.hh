/**
 * @file
 * ltsd — the synthesis daemon — as a library.
 *
 * runDaemon() serves SuiteRequests over a unix-domain socket using the
 * frame protocol of store/wire.hh: per request the server streams zero
 * or more Progress frames and ends with exactly one Result (a
 * serialized SuiteResult) or Error frame. The daemon owns a Service
 * configured with resident base encodings, so repeat queries hit the
 * store and model-edit queries re-synthesize only the changed shards on
 * already-built encodings.
 *
 * Everything is callable in-process (the integration tests run the
 * server on a std::thread and the client on the test thread);
 * tools/ltsd.cc is a thin main() around runDaemon.
 */

#ifndef LTS_SYNTH_DAEMON_HH
#define LTS_SYNTH_DAEMON_HH

#include <atomic>
#include <string>

#include "synth/service.hh"

namespace lts::synth
{

struct DaemonConfig
{
    std::string socketPath; ///< unix-domain socket to listen on
    std::string storeDir;   ///< suite store directory ("" = memory only)
    size_t cacheBudget = store::SuiteStore::kDefaultCacheBudget;
    bool verbose = false; ///< log one line per request to stderr
};

/**
 * Serve until a Shutdown frame arrives or @p stop (polled a few times a
 * second) becomes true. Binds the socket (removing a leftover socket
 * file first), handles one connection at a time — synthesis holds the
 * solver, so requests are serialized anyway. Returns 0 on clean
 * shutdown, 1 on setup failure (diagnostic on stderr).
 */
int runDaemon(const DaemonConfig &config,
              const std::atomic<bool> *stop = nullptr);

/**
 * Send one SuiteRequest to the daemon at @p socket_path, forwarding
 * Progress frames to @p on_progress, and return the parsed result.
 * Throws std::runtime_error on connection failure, protocol violations,
 * or a server-side Error frame.
 */
SuiteResult queryDaemon(const std::string &socket_path,
                        const SuiteRequest &request,
                        const QueryProgressFn &on_progress = nullptr);

/** True iff a daemon answers a Ping on @p socket_path. */
bool pingDaemon(const std::string &socket_path);

/** Ask the daemon to exit; true when it acknowledged. */
bool shutdownDaemon(const std::string &socket_path);

} // namespace lts::synth

#endif // LTS_SYNTH_DAEMON_HH
