/**
 * @file
 * Synthesis-as-a-service: the one query API every driver goes through.
 *
 * A SuiteRequest names a model (by registry name), a size bound, and
 * the SynthOptions; a SuiteResult carries the synthesized per-axiom
 * suites plus their union, stable digests, a SynthProgress snapshot,
 * and cache provenance. ltsgen, the benches, the ltsd daemon, and the
 * tests all call Service::query — there is no second path into
 * synthesis, so caching and byte-identity guarantees hold everywhere.
 *
 * Caching is two-level, both levels keyed by content digests that
 * survive process restarts (mm::Model::digest renders formulas, not
 * pointers):
 *
 *  - shard records:  shard/<baseDigest>/<violationDigest>/<opts>/n<N>
 *    one per (axiom, size), keyed by the rendered minimalityBase and
 *    axiomViolation formulas at that size. Editing one axiom's
 *    predicate changes only that axiom's violation digests, so only its
 *    shards miss — everything else is served from the store.
 *
 *  - suite manifests: suite/<modelDigest>/n<min>-<max>/<opts>[/one:<axiom>]
 *    the (modelDigest, bound, optionsDigest) index entry: the union
 *    suite's digest plus the list of shard keys it was assembled from.
 *    A warm repeat query resolves the manifest, loads the shards, and
 *    re-runs the deterministic assembly — no solver is built at all.
 *
 * The options digest covers only the knobs that change suite *bytes*
 * (canonicalizer, blocking granularity, budgets/caps); engine knobs
 * (incremental, jobs, simplify, sbp, clause sharing) are excluded
 * because suites are byte-identical across them — a suite synthesized
 * from-scratch serves a later incremental query.
 */

#ifndef LTS_SYNTH_SERVICE_HH
#define LTS_SYNTH_SERVICE_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/store.hh"
#include "synth/synthesizer.hh"

namespace lts::synth
{

/** Version tag folded into the options digest and the record formats. */
inline constexpr const char *kServiceFormat = "lts-svc-v1";

/**
 * Digest of the semantic synthesis knobs (the ones that change suite
 * bytes): canon mode, useCanon, blockStaticOnly, conflictBudget,
 * maxTestsPerSize. 16 hex digits, restart-stable.
 */
std::string optionsDigest(const SynthOptions &options);

/** Digest of minimalityBase(model, n) — the shard key's base half. */
std::string baseFormulaDigest(const mm::Model &model, int size);

/** Digest of axiomViolation(model, axiom, n) — the axiom half. */
std::string violationDigest(const mm::Model &model,
                            const std::string &axiom, int size);

/** One query: everything synthesis needs, nothing engine-private. */
struct SuiteRequest
{
    std::string model;   ///< registry name (mm::makeModel)
    int maxSize = 4;     ///< size bound; overrides options.maxSize
    SynthOptions options; ///< options.progress is ignored (service-owned)

    /**
     * Restrict to one axiom ("" or "union" = all axioms plus the union
     * suite). Axiom-scoped queries share the shard cache with full
     * queries but get their own manifests.
     */
    std::string axiom;
};

/** Where a query's tests came from. */
enum class CacheOutcome
{
    Miss,    ///< everything synthesized (then stored)
    Partial, ///< some shards served from the store, some synthesized
    Hit,     ///< answered entirely from the store
};

std::string toString(CacheOutcome outcome);

/** Per-(axiom, size) provenance: cached or synthesized this query. */
struct ShardProvenance
{
    std::string axiom;
    int size = 0;
    bool cached = false;
    size_t tests = 0;

    /**
     * Content digest (16 hex digits) of the DRAT proof file this
     * shard's conclusion landed in, when the query ran with
     * options.proofDir and the shard was synthesized (not served from
     * cache — cached shards carry no fresh proof). Under the
     * incremental engine all same-size shards share one trace and so
     * report the same digest. Empty otherwise.
     */
    std::string proofDigest;
};

/** The result of one SuiteRequest. */
struct SuiteResult
{
    /** Per-axiom suites in declaration order; the union suite last
     *  (exactly synthesizeAll's shape). Axiom-scoped requests get just
     *  that axiom's suite. */
    std::vector<Suite> suites;

    std::string modelDigest;   ///< mm::Model::digest() of the queried model
    std::string optionsDigest; ///< semantic-options digest
    std::string suiteDigest;   ///< litmus::suiteDigest of suites.back()

    /** Final snapshot of this query's progress counters. A pure cache
     *  hit has jobsQueued == 0 — no solver ran. */
    SynthProgressSnapshot progress;

    CacheOutcome cache = CacheOutcome::Miss;
    std::vector<ShardProvenance> shards; ///< empty on a manifest hit
    uint64_t shardsCached = 0;
    uint64_t shardsSynthesized = 0;
    double seconds = 0; ///< wall clock of the whole query

    const Suite &
    unionSuite() const
    {
        return suites.back();
    }
};

/** Streamed progress lines ("shard causality@3: synthesized, 12 tests"). */
using QueryProgressFn = std::function<void(const std::string &)>;

/** How a Service is set up (separate type so defaults brace-init). */
struct ServiceConfig
{
    /** Store directory; empty runs without persistence (cold CLI). */
    std::string storeDir;

    size_t cacheBudget = store::SuiteStore::kDefaultCacheBudget;

    /**
     * Keep per-(base formula, size) encodings resident between
     * queries and sweep misses on them serially — the daemon mode.
     * When false, misses run through synthesizeShards, honoring
     * the engine knobs (incremental, jobs, simplify) exactly as
     * synthesizeAll would — the one-shot CLI mode. Suite bytes are
     * identical either way.
     */
    bool residentEncodings = false;
};

/**
 * The synthesis service: a suite store (optional) plus a cache of
 * resident BaseEncodings (optional). One instance per daemon or CLI
 * invocation; not thread-safe — callers serialize queries.
 */
class Service
{
  public:
    explicit Service(ServiceConfig config = ServiceConfig());
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /** Resolve request.model from the registry and query. */
    SuiteResult query(const SuiteRequest &request,
                      const QueryProgressFn &on_progress = nullptr);

    /** Query an explicit model instance (edited or unregistered). */
    SuiteResult query(const mm::Model &model, const SuiteRequest &request,
                      const QueryProgressFn &on_progress = nullptr);

    /** The backing store, or nullptr when running without persistence. */
    store::SuiteStore *store() { return suiteStore.get(); }

    /** Number of resident base encodings currently held. */
    size_t residentEncodings() const { return encodings.size(); }

    /** Number of fully-assembled results held resident (daemon mode). */
    size_t residentResults() const { return resultCache.size(); }

    /** Drop every resident encoding and result (e.g. memory pressure). */
    void evictEncodings()
    {
        encodings.clear();
        resultCache.clear();
        models.clear();
    }

  private:
    ServiceConfig config;
    std::unique_ptr<store::SuiteStore> suiteStore;
    SynthProgress progress;
    std::map<std::string, std::unique_ptr<BaseEncoding>> encodings;
    /// Daemon mode only: registry models kept resident across requests,
    /// so their memoized digests make repeat-query keying cheap.
    std::map<std::string, std::unique_ptr<mm::Model>> models;
    /// Daemon mode only: assembled SuiteResults keyed by manifest key,
    /// so a repeat query skips store reads and reassembly entirely. The
    /// key embeds the model/options digests, so an edited model can
    /// never be served a stale resident result.
    std::map<std::string, SuiteResult> resultCache;
};

// --- wire serialization (the ltsd payloads) --------------------------------

/** Serialize a request as the line-oriented Request-frame payload. */
std::string serializeSuiteRequest(const SuiteRequest &request);

/** Parse a Request payload. Throws std::runtime_error on bad input. */
SuiteRequest parseSuiteRequest(const std::string &text);

/** Serialize a full result (suites included) as the Result payload. */
std::string serializeSuiteResult(const SuiteResult &result);

/** Parse a Result payload. Throws std::runtime_error on bad input. */
SuiteResult parseSuiteResult(const std::string &text);

} // namespace lts::synth

#endif // LTS_SYNTH_SERVICE_HH
