/**
 * @file
 * Suite comparison: subsumption analysis (Table 4 / Figure 10).
 *
 * The paper's key comparison claim is that every test in a baseline
 * suite (e.g. Owens et al.'s x86-TSO tests) either appears in the
 * synthesized suite or *contains as a subtest* a test that does — i.e.
 * the baseline test carries extra instructions or stronger-than-needed
 * synchronization around a minimal core. These utilities decide
 * containment and produce the per-size comparison rows.
 */

#ifndef LTS_SYNTH_COMPARE_HH
#define LTS_SYNTH_COMPARE_HH

#include <string>
#include <vector>

#include "litmus/test.hh"

namespace lts::synth
{

/**
 * True iff @p sub embeds into @p super: an injective, program-order-
 * preserving mapping of sub's threads/events into super's such that
 * event types match, location classes are respected, super's ordering
 * annotations are at least as strong, super carries at least sub's
 * dependencies, and rmw pairing matches.
 */
bool isSubtest(const litmus::LitmusTest &sub, const litmus::LitmusTest &super);

/** Result of comparing one baseline test against a synthesized suite. */
struct ContainmentResult
{
    std::string baselineName;
    bool inSuite = false;        ///< exactly present (canonically)
    bool subsumed = false;       ///< contains a suite test as a subtest
    std::string subsumedBy;      ///< name of the contained suite test
};

/** Compare each baseline test against @p suite_tests. */
std::vector<ContainmentResult>
compareSuites(const std::vector<litmus::LitmusTest> &baseline,
              const std::vector<litmus::LitmusTest> &suite_tests);

} // namespace lts::synth

#endif // LTS_SYNTH_COMPARE_HH
