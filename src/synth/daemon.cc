#include "synth/daemon.hh"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "store/wire.hh"

namespace lts::synth
{

namespace
{

using store::Frame;
using store::FrameType;

/** Bind-or-connect address setup; unix sockets cap path lengths. */
bool
fillAddress(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        return false;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr))
        throw std::runtime_error("ltsd: bad socket path: " + path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error(std::string("ltsd: socket: ") +
                                 std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) !=
        0) {
        int err = errno;
        ::close(fd);
        throw std::runtime_error("ltsd: cannot connect to " + path + ": " +
                                 std::strerror(err));
    }
    return fd;
}

/**
 * Handle one client connection; returns true when the daemon should
 * keep serving, false after an acknowledged Shutdown.
 */
bool
serveConnection(int fd, Service &service, const DaemonConfig &config)
{
    Frame frame;
    while (store::readFrame(fd, frame)) {
        switch (frame.type) {
        case FrameType::Request: {
            try {
                SuiteRequest request = parseSuiteRequest(frame.payload);
                if (config.verbose) {
                    std::fprintf(stderr, "ltsd: query model=%s bound=%d\n",
                                 request.model.c_str(), request.maxSize);
                }
                SuiteResult result = service.query(
                    request, [fd](const std::string &line) {
                        store::writeFrame(fd, FrameType::Progress, line);
                    });
                if (config.verbose) {
                    std::fprintf(stderr,
                                 "ltsd: %s cache=%s %.3fs\n",
                                 result.suiteDigest.c_str(),
                                 toString(result.cache).c_str(),
                                 result.seconds);
                }
                if (!store::writeFrame(fd, FrameType::Result,
                                       serializeSuiteResult(result))) {
                    return true; // client went away; next connection
                }
            } catch (const std::exception &e) {
                store::writeFrame(fd, FrameType::Error, e.what());
            }
            break;
        }
        case FrameType::Ping:
            store::writeFrame(fd, FrameType::Result, "");
            break;
        case FrameType::Shutdown:
            store::writeFrame(fd, FrameType::Result, "");
            return false;
        default:
            store::writeFrame(fd, FrameType::Error,
                              "unexpected frame type");
            break;
        }
    }
    return true;
}

} // namespace

int
runDaemon(const DaemonConfig &config, const std::atomic<bool> *stop)
{
    sockaddr_un addr;
    if (!fillAddress(config.socketPath, addr)) {
        std::fprintf(stderr, "ltsd: bad socket path: %s\n",
                     config.socketPath.c_str());
        return 1;
    }
    // A dead daemon leaves its socket file behind; bind would fail on
    // it forever. Taking the path over is the standard single-daemon
    // convention (callers who want exclusion ping first).
    ::unlink(config.socketPath.c_str());

    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::fprintf(stderr, "ltsd: socket: %s\n", std::strerror(errno));
        return 1;
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd, 8) != 0) {
        std::fprintf(stderr, "ltsd: cannot listen on %s: %s\n",
                     config.socketPath.c_str(), std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }
    // A client that disconnects mid-result must not kill the daemon
    // with SIGPIPE; writeFrame then sees EPIPE and moves on.
    ::signal(SIGPIPE, SIG_IGN);

    ServiceConfig service_config;
    service_config.storeDir = config.storeDir;
    service_config.cacheBudget = config.cacheBudget;
    service_config.residentEncodings = true;
    Service service(service_config);

    if (config.verbose) {
        std::fprintf(stderr, "ltsd: listening on %s (store: %s)\n",
                     config.socketPath.c_str(),
                     config.storeDir.empty() ? "<memory>"
                                             : config.storeDir.c_str());
    }

    bool serving = true;
    while (serving && (!stop || !stop->load())) {
        pollfd pfd{listen_fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "ltsd: poll: %s\n", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        int client = ::accept(listen_fd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "ltsd: accept: %s\n",
                         std::strerror(errno));
            break;
        }
        serving = serveConnection(client, service, config);
        ::close(client);
    }
    ::close(listen_fd);
    ::unlink(config.socketPath.c_str());
    if (config.verbose)
        std::fprintf(stderr, "ltsd: shut down\n");
    return 0;
}

SuiteResult
queryDaemon(const std::string &socket_path, const SuiteRequest &request,
            const QueryProgressFn &on_progress)
{
    int fd = connectUnix(socket_path);
    if (!store::writeFrame(fd, FrameType::Request,
                           serializeSuiteRequest(request))) {
        ::close(fd);
        throw std::runtime_error("ltsd: cannot send request");
    }
    Frame frame;
    while (store::readFrame(fd, frame)) {
        switch (frame.type) {
        case FrameType::Progress:
            if (on_progress)
                on_progress(frame.payload);
            break;
        case FrameType::Result: {
            SuiteResult result = parseSuiteResult(frame.payload);
            ::close(fd);
            return result;
        }
        case FrameType::Error: {
            std::string what = frame.payload;
            ::close(fd);
            throw std::runtime_error("ltsd: server error: " + what);
        }
        default:
            ::close(fd);
            throw std::runtime_error("ltsd: unexpected frame from server");
        }
    }
    ::close(fd);
    throw std::runtime_error("ltsd: connection closed before result");
}

bool
pingDaemon(const std::string &socket_path)
{
    try {
        int fd = connectUnix(socket_path);
        bool ok = store::writeFrame(fd, FrameType::Ping, "");
        Frame frame;
        ok = ok && store::readFrame(fd, frame) &&
             frame.type == FrameType::Result;
        ::close(fd);
        return ok;
    } catch (const std::exception &) {
        return false;
    }
}

bool
shutdownDaemon(const std::string &socket_path)
{
    try {
        int fd = connectUnix(socket_path);
        bool ok = store::writeFrame(fd, FrameType::Shutdown, "");
        Frame frame;
        ok = ok && store::readFrame(fd, frame) &&
             frame.type == FrameType::Result;
        ::close(fd);
        return ok;
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace lts::synth
