#include "synth/compare.hh"

#include <algorithm>
#include <functional>
#include <numeric>

#include "litmus/canon.hh"

namespace lts::synth
{

using litmus::LitmusTest;
using litmus::MemOrder;

namespace
{

/** Is super's annotation at least as strong as sub's? */
bool
strongEnough(MemOrder sub, MemOrder super)
{
    return sub == super || litmus::isWeaker(sub, super);
}

/**
 * Backtracking embedder: map sub's events (in id order) to super events
 * such that threads follow @p thread_map, per-thread order is preserved,
 * and types/annotations/locations are compatible.
 */
bool
embed(const LitmusTest &sub, const LitmusTest &super,
      const std::vector<int> &thread_map)
{
    size_t ns = sub.size();
    std::vector<int> mapping(ns, -1);
    // loc_map[sub_loc] = super_loc; super_loc_used for injectivity.
    std::vector<int> loc_map(sub.numLocs, -1);
    std::vector<bool> super_loc_used(super.numLocs, false);
    // Next usable position within each super thread.
    std::vector<std::vector<int>> super_thread_events(super.numThreads);
    for (const auto &e : super.events)
        super_thread_events[e.tid].push_back(e.id);

    std::function<bool(size_t)> rec = [&](size_t i) -> bool {
        if (i == ns) {
            // Verify dependencies and rmw pairing on the full mapping.
            for (size_t a = 0; a < ns; a++) {
                for (size_t b = 0; b < ns; b++) {
                    if (sub.addrDep.test(a, b) &&
                        !super.addrDep.test(mapping[a], mapping[b]))
                        return false;
                    if (sub.dataDep.test(a, b) &&
                        !super.dataDep.test(mapping[a], mapping[b]))
                        return false;
                    if (sub.ctrlDep.test(a, b) &&
                        !super.ctrlDep.test(mapping[a], mapping[b]))
                        return false;
                    if (sub.rmw.test(a, b) &&
                        !super.rmw.test(mapping[a], mapping[b]))
                        return false;
                }
            }
            return true;
        }
        const auto &e = sub.events[i];
        int super_tid = thread_map[e.tid];
        // Candidates: events of the mapped super thread after the last
        // event already used by this sub thread.
        int min_pos = 0;
        for (size_t j = 0; j < i; j++) {
            if (sub.events[j].tid == e.tid) {
                // Find position of mapping[j] within the super thread.
                const auto &ste = super_thread_events[super_tid];
                auto it = std::find(ste.begin(), ste.end(), mapping[j]);
                min_pos = std::max(
                    min_pos, static_cast<int>(it - ste.begin()) + 1);
            }
        }
        const auto &ste = super_thread_events[super_tid];
        for (size_t pos = min_pos; pos < ste.size(); pos++) {
            const auto &se = super.events[ste[pos]];
            if (se.type != e.type)
                continue;
            if (!strongEnough(e.order, se.order))
                continue;
            int saved_loc_map = -2;
            if (e.isMemory()) {
                if (loc_map[e.loc] >= 0) {
                    if (loc_map[e.loc] != se.loc)
                        continue;
                } else if (super_loc_used[se.loc]) {
                    continue; // injectivity of the location mapping
                } else {
                    saved_loc_map = e.loc;
                    loc_map[e.loc] = se.loc;
                    super_loc_used[se.loc] = true;
                }
            }
            mapping[i] = ste[pos];
            if (rec(i + 1))
                return true;
            mapping[i] = -1;
            if (saved_loc_map >= 0) {
                super_loc_used[loc_map[saved_loc_map]] = false;
                loc_map[saved_loc_map] = -1;
            }
        }
        return false;
    };
    return rec(0);
}

} // namespace

bool
isSubtest(const LitmusTest &sub, const LitmusTest &super)
{
    if (sub.size() > super.size() || sub.numThreads > super.numThreads ||
        sub.numLocs > super.numLocs) {
        return false;
    }
    // Injective thread maps: choose distinct super threads for sub's.
    std::vector<int> all_threads(super.numThreads);
    std::iota(all_threads.begin(), all_threads.end(), 0);
    std::vector<int> chosen(sub.numThreads);
    std::vector<bool> used(super.numThreads, false);
    std::function<bool(int)> pick = [&](int t) -> bool {
        if (t == sub.numThreads)
            return embed(sub, super, chosen);
        for (int s = 0; s < super.numThreads; s++) {
            if (used[s])
                continue;
            used[s] = true;
            chosen[t] = s;
            if (pick(t + 1))
                return true;
            used[s] = false;
        }
        return false;
    };
    return pick(0);
}

std::vector<ContainmentResult>
compareSuites(const std::vector<LitmusTest> &baseline,
              const std::vector<LitmusTest> &suite_tests)
{
    std::vector<ContainmentResult> out;
    std::vector<std::string> suite_keys;
    for (const auto &t : suite_tests) {
        suite_keys.push_back(litmus::staticSerialize(
            litmus::canonicalize(t, litmus::CanonMode::Exact)));
    }
    for (const auto &b : baseline) {
        ContainmentResult r;
        r.baselineName = b.name;
        std::string key = litmus::staticSerialize(
            litmus::canonicalize(b, litmus::CanonMode::Exact));
        for (size_t i = 0; i < suite_tests.size(); i++) {
            if (suite_keys[i] == key) {
                r.inSuite = true;
                r.subsumed = true;
                r.subsumedBy = suite_tests[i].name;
                break;
            }
        }
        if (!r.inSuite) {
            for (const auto &t : suite_tests) {
                if (isSubtest(t, b)) {
                    r.subsumed = true;
                    r.subsumedBy = t.name;
                    break;
                }
            }
        }
        out.push_back(r);
    }
    return out;
}

} // namespace lts::synth
