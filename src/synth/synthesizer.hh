/**
 * @file
 * SAT-based litmus test suite synthesis (Section 5 of the paper).
 *
 * For each axiom of a model and each exact test size, the synthesizer
 * asserts the minimality-criterion formula into the relational solver and
 * enumerates every satisfying instance, blocking on the *static* part of
 * each found test so each program is produced once regardless of how many
 * witness executions it has. Instances are read back as litmus tests,
 * canonicalized (Section 5.1), and deduplicated; per-axiom suites union
 * into the per-model suite of Section 5.2.
 *
 * With SynthOptions::symmetryBreaking (default on) the solver also
 * carries the model's lex-leader symmetry-breaking predicates, and each
 * found model is blocked together with every symmetric image of it
 * (orbit blocking), so enumeration produces one SAT model per
 * isomorphism class. The suite stays byte-identical either way: each
 * kept test is re-derived by pinning a class-canonical representative
 * program and lex-minimizing its witness in a solve that excludes the
 * symmetry and blocking layers, making the emitted bytes a pure
 * function of the class rather than of enumeration order.
 *
 * Work sharding: the default *incremental* engine runs one job per test
 * size, sweeping every axiom over a single shared encoding — the
 * axiom-independent part of the criterion (well-formedness plus the
 * relaxation conjunct) is asserted once as a base fact, and each axiom's
 * violation becomes a retractable fact layer (rel::FactHandle) whose
 * blocking clauses and learned clauses are retired when the sweep moves
 * on. The from-scratch engine (SynthOptions::incremental = false) keeps
 * one private solver per (axiom, size) pair. Either way jobs run on a
 * thread pool when SynthOptions::jobs != 1 and results are merged in a
 * fixed order — axiom declaration order, then size, then canonical
 * serialization — so the output is byte-identical to a serial run
 * regardless of completion order.
 */

#ifndef LTS_SYNTH_SYNTHESIZER_HH
#define LTS_SYNTH_SYNTHESIZER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "litmus/canon.hh"
#include "litmus/test.hh"
#include "mm/model.hh"

namespace lts::synth
{

/**
 * A point-in-time copy of the progress counters: plain integers, safe
 * to store, compare, and serialize after the run. Drivers should copy
 * one of these (SynthProgress::snapshot) into their results instead of
 * reading the live atomics — the snapshot is immutable even if the same
 * SynthProgress is reused (reset) for a later run.
 */
struct SynthProgressSnapshot
{
    uint64_t jobsQueued = 0;  ///< shard jobs submitted (per size
                              ///< incremental, per (axiom, size)
                              ///< from-scratch / service re-synthesis)
    uint64_t jobsRunning = 0; ///< jobs executing at snapshot time
    uint64_t jobsDone = 0;    ///< jobs finished
    uint64_t conflicts = 0;   ///< SAT conflicts, all jobs
    uint64_t restarts = 0;    ///< SAT restarts, all jobs
    uint64_t instances = 0;   ///< SAT models enumerated
    uint64_t sbpClauses = 0;  ///< symmetry-breaking clauses emitted
    uint64_t eliminatedVars = 0;  ///< vars removed by simplify
    uint64_t subsumedClauses = 0; ///< clauses removed by simplify
    uint64_t importedClauses = 0; ///< learnt clauses adopted from siblings
    uint64_t exportedClauses = 0; ///< learnt clauses published to siblings
};

/**
 * Live progress counters for a synthesis run. Safe to read from any
 * thread while jobs execute; a bench harness can poll these (snapshot)
 * while jobs run or copy a final snapshot into its results. Drivers
 * that reuse one SynthProgress across runs call reset() between them
 * instead of re-zeroing fields ad hoc.
 */
struct SynthProgress
{
    std::atomic<uint64_t> jobsQueued{0};  ///< shard jobs submitted (per size
                                          ///< incremental, per (axiom, size)
                                          ///< from-scratch)
    std::atomic<uint64_t> jobsRunning{0}; ///< jobs currently executing
    std::atomic<uint64_t> jobsDone{0};    ///< jobs finished
    std::atomic<uint64_t> conflicts{0};   ///< SAT conflicts, all jobs
    std::atomic<uint64_t> restarts{0};    ///< SAT restarts, all jobs
    std::atomic<uint64_t> instances{0};   ///< SAT models enumerated
    std::atomic<uint64_t> sbpClauses{0};  ///< symmetry-breaking clauses
                                          ///< emitted, all solvers
    std::atomic<uint64_t> eliminatedVars{0};  ///< vars removed by simplify
    std::atomic<uint64_t> subsumedClauses{0}; ///< clauses removed by simplify
    std::atomic<uint64_t> importedClauses{0}; ///< learnt clauses adopted from
                                              ///< sibling shards
    std::atomic<uint64_t> exportedClauses{0}; ///< learnt clauses published to
                                              ///< sibling shards

    /** Copy every counter into a plain-integer snapshot. */
    SynthProgressSnapshot snapshot() const;

    /** Zero every counter, ready for the next run. */
    void reset();
};

/** Synthesis knobs; defaults mirror the paper's methodology. */
struct SynthOptions
{
    int minSize = 2;           ///< smallest test size (instructions)
    int maxSize = 4;           ///< largest test size
    litmus::CanonMode canonMode = litmus::CanonMode::Paper;
    bool blockStaticOnly = true;  ///< ablation: block full instances instead
    bool useCanon = true;         ///< ablation: disable symmetry reduction
    uint64_t conflictBudget = 0;  ///< SAT conflict cap per (axiom, size)
                                  ///< query family (0 = off)
    int maxTestsPerSize = 0;      ///< safety cap (0 = off)

    /**
     * In-solver symmetry breaking: install the model's lex-leader
     * predicates and forbidden patterns (mm::Model::symmetrySpec) into
     * each enumeration solver, and block every symmetric image of each
     * found model (orbit blocking) so one SAT model is enumerated per
     * isomorphism class instead of one per class member. Suites are
     * byte-identical with the knob on or off — only rawInstances and
     * wall time change.
     */
    bool symmetryBreaking = true;

    /**
     * Use the incremental engine: one solver per size, base encoding
     * asserted once, per-axiom violations swept as retractable fact
     * layers. false rebuilds a private solver per (axiom, size) — the
     * from-scratch baseline the benchmarks compare against.
     */
    bool incremental = true;

    /**
     * Worker threads for the sharded engine: one job per size
     * (incremental) or per (axiom, size) pair (from-scratch), each job
     * with a private solver. 1 runs jobs inline on the caller thread;
     * 0 uses all hardware threads. Results are merged deterministically,
     * so output is byte-identical for any value.
     */
    int jobs = 1;

    /**
     * Run the SAT backend's SatELite-style preprocessing pass (subsumption,
     * self-subsuming resolution, bounded variable elimination — see
     * sat/simplify.hh) over each solver's permanent encoding before
     * enumeration. Relation cells and fact-layer selectors are frozen, so
     * suites are byte-identical with the knob on or off; only the search
     * effort changes.
     */
    bool simplify = true;

    /**
     * Exchange learnt clauses between the from-scratch engine's per-axiom
     * shards of the same size through a sat::ClauseBank: the shards share
     * a byte-identical base encoding, so clauses over it transfer
     * soundly. Applies even at jobs = 1 (sequential shards still feed
     * later ones). The incremental engine ignores the knob — it already
     * shares everything through its one solver per size. Suites are
     * byte-identical with sharing on or off.
     */
    bool shareClauses = true;

    /**
     * When non-empty, every enumeration solver logs a DRAT-style proof
     * trace (see sat/drat.hh) into this directory, and each shard that
     * exhausts its enumeration records its final Unsat answer as a
     * checkable conclusion. The from-scratch engine writes one file per
     * (axiom, size); the incremental engine writes one file per size
     * carrying one conclusion per swept axiom (see proofFilePath).
     * Probe solves (witness re-derivation) are logged but never
     * concluded. A proof knob is an engine knob: suites are
     * byte-identical with logging on or off, and the store/service
     * digests ignore it.
     */
    std::string proofDir;

    /** Write text-format proofs instead of the compact binary form. */
    bool proofText = false;

    /**
     * When non-empty, each shard that exhausts its enumeration also
     * dumps its final post-simplify CNF — live clauses plus fact-layer
     * selector units — as DIMACS into this directory, one
     * "<model>.<axiom>.n<size>.cnf" per shard, for offline cross-checks
     * with external solvers. Engine knob, like proofDir.
     */
    std::string dumpDimacsDir;

    /** Optional live counters, updated by every job. Not owned. */
    SynthProgress *progress = nullptr;
};

/** A synthesized suite plus bookkeeping for the runtime figures. */
struct Suite
{
    std::string model;
    std::string axiom; ///< axiom name, or "union"
    std::vector<litmus::LitmusTest> tests;
    std::map<int, int> testsBySize;    ///< size -> #tests
    std::map<int, double> secondsBySize;
    std::map<int, uint64_t> instancesBySize; ///< size -> SAT models found
    std::map<int, uint64_t> sbpClausesBySize; ///< size -> SBP clauses emitted
                                              ///< (summed over solvers)
    uint64_t rawInstances = 0; ///< SAT models before canonicalization
    bool truncated = false;    ///< a budget or cap was hit

    double
    totalSeconds() const
    {
        double s = 0;
        for (auto [k, v] : secondsBySize)
            s += v;
        return s;
    }
};

/**
 * The result of one (axiom, size) query family — the unit of work the
 * engines shard by and the suite store caches by. Tests are canonical
 * (per the options), deduplicated within the shard, and sorted by their
 * canonical serialization, so a shard's bytes are a pure function of
 * (model, axiom, size, semantic options) — independent of engine,
 * thread count, and enumeration order. assembleShardSuite folds a
 * size-ascending run of these into a Suite.
 */
struct ShardResult
{
    std::vector<litmus::LitmusTest> tests;
    uint64_t rawInstances = 0;
    uint64_t sbpClauses = 0;
    bool truncated = false;
    double seconds = 0;
};

/**
 * Which (axiom, size) shards to synthesize; shards the selector rejects
 * are skipped entirely (no job queued, result left empty). A null
 * selector keeps every shard. The service layer uses this to
 * re-synthesize only the shards whose criterion formulas changed.
 */
using ShardSelector = std::function<bool(const std::string &axiom, int size)>;

/**
 * The proof file a shard's trace lands in under options.proofDir: the
 * from-scratch engine gives every (axiom, size) pair its own solver and
 * file, "<model>.<axiom>.n<size>.drat"; the incremental engine sweeps
 * all axioms of a size over one solver and so shares one
 * "<model>.n<size>.drat" (pass an empty @p axiom). Returns an empty
 * string when options.proofDir is empty.
 */
std::string proofFilePath(const SynthOptions &options,
                          const std::string &model, const std::string &axiom,
                          int size);

/**
 * Synthesize per-(axiom, size) shards for every axiom of the model:
 * result[a][s] is axiom a (declaration order) at size minSize + s.
 * Scheduling follows the options (engine, jobs) exactly as
 * synthesizeAll — this *is* synthesizeAll minus the merge.
 */
std::vector<std::vector<ShardResult>>
synthesizeShards(const mm::Model &model, const SynthOptions &options,
                 const ShardSelector &selector = nullptr);

/**
 * Deterministic merge of one axiom's per-size shards into a Suite:
 * sizes ascending, tests in canonical-key order within each size,
 * cross-size duplicates dropped, renamed "model/label#i" by final
 * position. by_size[i] is size min_size + i.
 */
Suite assembleShardSuite(const mm::Model &model, const std::string &label,
                         const std::vector<ShardResult> &by_size,
                         int min_size);

/**
 * A resident per-(model, size) base encoding: the axiom-independent
 * criterion asserted and simplified once, symmetry breaking installed,
 * ready to sweep axiom shards on demand. This is the unit ltsd keeps
 * hot across requests — re-synthesizing one edited axiom's shard skips
 * the encoding build entirely. Not thread-safe; one solver, one caller
 * at a time. Shard output is byte-identical to a fresh engine run (the
 * enumeration already pins class-canonical representatives, so learned
 * state never leaks into the bytes).
 *
 * No reference to the construction-time Model is retained: the sweep
 * takes the model by argument, so a daemon may keep the encoding hot
 * across model *edits* as long as the edited model's minimalityBase at
 * this size renders identically (the service layer checks exactly that
 * digest before reusing one).
 */
class BaseEncoding
{
  public:
    BaseEncoding(const mm::Model &model, int size,
                 const SynthOptions &options);
    ~BaseEncoding();
    BaseEncoding(const BaseEncoding &) = delete;
    BaseEncoding &operator=(const BaseEncoding &) = delete;

    /**
     * Enumerate one axiom's shard on the resident encoding. @p model
     * must have the same vocabulary and minimalityBase rendering as the
     * construction-time model (it may be a different instance, e.g.
     * after an axiom-predicate edit that set relaxedPred explicitly).
     */
    ShardResult synthesizeShard(const mm::Model &model,
                                const std::string &axiom_name,
                                const SynthOptions &options);

    int size() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** Synthesize the suite for one axiom. */
Suite synthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                      const SynthOptions &options);

/**
 * Synthesize per-axiom suites and their union (tests minimal for at
 * least one axiom, counted once — Section 5.2). The union suite is the
 * last element, named "union".
 */
std::vector<Suite> synthesizeAll(const mm::Model &model,
                                 const SynthOptions &options);

/**
 * Merge suites into a union suite, deduplicating canonically. The kept
 * tests are stored in canonical form (under options.useCanon) and
 * renumbered "model/union#i" in merge order, so the union never holds
 * non-canonical duplicates or clashing per-axiom names.
 */
Suite unionSuites(const std::vector<Suite> &suites,
                  const SynthOptions &options);

/**
 * Generate the union suite with a single direct query per size (the
 * disjunctive criterion of minimality.hh) instead of merging per-axiom
 * runs. Produces the same test set; the paper's footnote 4 observes the
 * direct query is often slower, which bench/ablation_synth measures.
 */
Suite synthesizeUnionDirect(const mm::Model &model,
                            const SynthOptions &options);

} // namespace lts::synth

#endif // LTS_SYNTH_SYNTHESIZER_HH
