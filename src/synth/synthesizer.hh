/**
 * @file
 * SAT-based litmus test suite synthesis (Section 5 of the paper).
 *
 * For each axiom of a model and each exact test size, the synthesizer
 * asserts the minimality-criterion formula into the relational solver and
 * enumerates every satisfying instance, blocking on the *static* part of
 * each found test so each program is produced once regardless of how many
 * witness executions it has. Instances are read back as litmus tests,
 * canonicalized (Section 5.1), and deduplicated; per-axiom suites union
 * into the per-model suite of Section 5.2.
 */

#ifndef LTS_SYNTH_SYNTHESIZER_HH
#define LTS_SYNTH_SYNTHESIZER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "litmus/canon.hh"
#include "litmus/test.hh"
#include "mm/model.hh"

namespace lts::synth
{

/** Synthesis knobs; defaults mirror the paper's methodology. */
struct SynthOptions
{
    int minSize = 2;           ///< smallest test size (instructions)
    int maxSize = 4;           ///< largest test size
    litmus::CanonMode canonMode = litmus::CanonMode::Paper;
    bool blockStaticOnly = true;  ///< ablation: block full instances instead
    bool useCanon = true;         ///< ablation: disable symmetry reduction
    uint64_t conflictBudget = 0;  ///< SAT conflict cap per size (0 = off)
    int maxTestsPerSize = 0;      ///< safety cap (0 = off)
};

/** A synthesized suite plus bookkeeping for the runtime figures. */
struct Suite
{
    std::string model;
    std::string axiom; ///< axiom name, or "union"
    std::vector<litmus::LitmusTest> tests;
    std::map<int, int> testsBySize;    ///< size -> #tests
    std::map<int, double> secondsBySize;
    uint64_t rawInstances = 0; ///< SAT models before canonicalization
    bool truncated = false;    ///< a budget or cap was hit

    double
    totalSeconds() const
    {
        double s = 0;
        for (auto [k, v] : secondsBySize)
            s += v;
        return s;
    }
};

/** Synthesize the suite for one axiom. */
Suite synthesizeAxiom(const mm::Model &model, const std::string &axiom_name,
                      const SynthOptions &options);

/**
 * Synthesize per-axiom suites and their union (tests minimal for at
 * least one axiom, counted once — Section 5.2). The union suite is the
 * last element, named "union".
 */
std::vector<Suite> synthesizeAll(const mm::Model &model,
                                 const SynthOptions &options);

/** Merge suites into a union suite, deduplicating canonically. */
Suite unionSuites(const std::vector<Suite> &suites,
                  const SynthOptions &options);

/**
 * Generate the union suite with a single direct query per size (the
 * disjunctive criterion of minimality.hh) instead of merging per-axiom
 * runs. Produces the same test set; the paper's footnote 4 observes the
 * direct query is often slower, which bench/ablation_synth measures.
 */
Suite synthesizeUnionDirect(const mm::Model &model,
                            const SynthOptions &options);

} // namespace lts::synth

#endif // LTS_SYNTH_SYNTHESIZER_HH
