/**
 * @file
 * The litmus-test minimality criterion (Definition 1 / Figure 5c).
 *
 * A test (identified with one of its executions, per the paper's
 * pragmatic outcome-equals-execution reduction) is minimal with respect
 * to an axiom when:
 *
 *   1. the execution is well-formed,
 *   2. the targeted axiom forbids it (not axiom[no_r]), and
 *   3. for every relaxation r and event e to which r applies, the entire
 *      model — with the relations perturbed by r at e — admits it
 *      (model[r->e]).
 *
 * The same formula is used symbolically (SAT synthesis) and concretely
 * (explicit engine, suite audits), so both paths share one semantics.
 */

#ifndef LTS_SYNTH_MINIMALITY_HH
#define LTS_SYNTH_MINIMALITY_HH

#include <string>

#include "mm/convert.hh"
#include "mm/model.hh"
#include "rel/eval.hh"

namespace lts::synth
{

/**
 * Build the minimality-criterion formula for @p axiom_name of @p model
 * over a universe of @p n events. Includes well-formedness.
 * Equivalent to minimalityBase ∧ axiomViolation.
 */
rel::FormulaPtr minimalityFormula(const mm::Model &model,
                                  const std::string &axiom_name, size_t n);

/**
 * The axiom-independent part of the criterion: well-formed ∧ every
 * applicable relaxation admits. This is the bulk of the encoding and is
 * shared by all axioms at a given size, so the incremental engine
 * asserts it once per size as a base fact and layers per-axiom
 * violations (axiomViolation) over it as retractable facts.
 */
rel::FormulaPtr minimalityBase(const mm::Model &model, size_t n);

/**
 * The axiom-dependent part alone: the targeted axiom forbids the
 * execution (¬A over the base relations). Layered over minimalityBase
 * this reconstitutes minimalityFormula.
 */
rel::FormulaPtr axiomViolation(const mm::Model &model,
                               const std::string &axiom_name, size_t n);

/**
 * Disjunctive violation layer for the direct union suite: at least one
 * axiom forbids the execution. Layered over minimalityBase this
 * reconstitutes minimalityFormulaUnion.
 */
rel::FormulaPtr anyAxiomViolation(const mm::Model &model, size_t n);

/**
 * The relaxation-side conjunct alone: every applicable relaxation makes
 * the whole (relaxed-variant) model pass. Exposed for audits that want
 * to distinguish "not forbidden" from "not relaxation-tight".
 */
rel::FormulaPtr relaxationConjunct(const mm::Model &model, size_t n);

/**
 * Direct union-suite formula: minimal for *at least one* axiom. Since
 * the relaxation conjunct is axiom-independent, this is
 * well-formed ∧ (∨_A ¬A(base)) ∧ conjunct. The paper's footnote 4 notes
 * that generating the union directly was often slower than merging the
 * per-axiom suites; bench/ablation_synth reproduces that comparison.
 */
rel::FormulaPtr minimalityFormulaUnion(const mm::Model &model, size_t n);

/** Concretely check the criterion on an explicit instance. */
bool isMinimalInstance(const mm::Model &model, const std::string &axiom_name,
                       const rel::Instance &inst);

/**
 * Whether a minimality audit actually ran to completion.
 *
 * Callers must keep the two failure modes distinct: an Audited test
 * with an empty axiom list is over-synchronized, an Unsupported test is
 * simply unchecked. `ltsgen --audit --strict-audit` maps them to exit
 * codes 2 and 3 respectively, with 3 taking precedence so "could not
 * check" never masquerades as a pass or fail in CI.
 */
enum class AuditStatus
{
    Audited,     ///< the returned axiom list is authoritative
    Unsupported, ///< test outside the audited space (>2 SC fences);
                 ///< the empty axiom list is NOT a minimality verdict
};

/**
 * Audit a litmus test with its forbidden outcome against the criterion
 * for *any* axiom of the model. For models with an explicit sc order the
 * check is existential over the (lone-edge) sc assignments; tests with
 * more than two SC fences are outside that workaround's reach
 * (Section 6.3) and report AuditStatus::Unsupported through @p status
 * instead of silently returning an empty list.
 * Returns the names of axioms for which the test is minimal.
 */
std::vector<std::string> minimalAxioms(const mm::Model &model,
                                       const litmus::LitmusTest &test,
                                       AuditStatus *status = nullptr);

} // namespace lts::synth

#endif // LTS_SYNTH_MINIMALITY_HH
