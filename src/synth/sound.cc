#include "synth/sound.hh"

#include <stdexcept>

#include "mm/convert.hh"
#include "mm/exprs.hh"
#include "rel/eval.hh"
#include "synth/executor.hh"

namespace lts::synth
{

using litmus::EventType;
using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::Outcome;

namespace
{

/** Annotation-set name -> MemOrder. */
MemOrder
orderOfSet(const std::string &name)
{
    if (name == mm::kAcq)
        return MemOrder::Acquire;
    if (name == mm::kRel)
        return MemOrder::Release;
    if (name == mm::kAcqRel)
        return MemOrder::AcqRel;
    if (name == mm::kSc)
        return MemOrder::SeqCst;
    throw std::logic_error("unknown annotation set " + name);
}

/** Carrier-set name -> EventType. */
EventType
typeOfSet(const std::string &name)
{
    if (name == mm::kR)
        return EventType::Read;
    if (name == mm::kW)
        return EventType::Write;
    if (name == mm::kF)
        return EventType::Fence;
    throw std::logic_error("unknown carrier set " + name);
}

/** Copy @p test without event @p victim, renumbering everything. */
LitmusTest
removeEvent(const LitmusTest &test, int victim, std::vector<int> &event_map)
{
    size_t n = test.size();
    event_map.assign(n, -1);
    LitmusTest out;
    out.name = test.name;
    out.numLocs = test.numLocs;

    // Renumber events and threads (a thread may disappear entirely).
    int next = 0;
    std::vector<int> tid_map(test.numThreads, -1);
    int next_tid = 0;
    for (size_t i = 0; i < n; i++) {
        if (static_cast<int>(i) == victim)
            continue;
        event_map[i] = next++;
        if (tid_map[test.events[i].tid] < 0)
            tid_map[test.events[i].tid] = next_tid++;
    }
    out.numThreads = next_tid;
    out.events.resize(next);
    for (size_t i = 0; i < n; i++) {
        if (event_map[i] < 0)
            continue;
        litmus::Event e = test.events[i];
        e.id = event_map[i];
        e.tid = tid_map[e.tid];
        out.events[e.id] = e;
    }

    size_t m = static_cast<size_t>(next);
    auto remap = [&](const BitMatrix &in) {
        BitMatrix mapped(m);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                if (in.test(i, j) && event_map[i] >= 0 && event_map[j] >= 0)
                    mapped.set(event_map[i], event_map[j]);
            }
        }
        return mapped;
    };
    out.addrDep = remap(test.addrDep);
    out.dataDep = remap(test.dataDep);
    out.ctrlDep = remap(test.ctrlDep);
    out.rmw = remap(test.rmw);
    out.forbidden = Outcome(m);
    out.hasForbidden = false;

    std::string err = out.validate();
    if (!err.empty())
        throw std::logic_error("removeEvent produced invalid test: " + err);
    return out;
}

std::vector<int>
identityMap(size_t n)
{
    std::vector<int> map(n);
    for (size_t i = 0; i < n; i++)
        map[i] = static_cast<int>(i);
    return map;
}

} // namespace

std::vector<RelaxedTest>
applyRelaxations(const mm::Model &model, const LitmusTest &test)
{
    std::vector<RelaxedTest> out;
    size_t n = test.size();
    for (const auto &relax : model.relaxations()) {
        for (size_t e = 0; e < n; e++) {
            const litmus::Event &ev = test.events[e];
            switch (relax.tag) {
              case mm::RTag::RI: {
                RelaxedTest r;
                r.relaxation = relax.name;
                r.event = static_cast<int>(e);
                r.test = removeEvent(test, static_cast<int>(e), r.eventMap);
                out.push_back(std::move(r));
                break;
              }
              case mm::RTag::RD: {
                bool has_dep = false;
                for (size_t j = 0; j < n; j++) {
                    if (test.addrDep.test(e, j) || test.dataDep.test(e, j) ||
                        test.ctrlDep.test(e, j))
                        has_dep = true;
                }
                if (!has_dep)
                    break;
                RelaxedTest r;
                r.relaxation = relax.name;
                r.event = static_cast<int>(e);
                r.test = test;
                r.test.hasForbidden = false;
                for (size_t j = 0; j < n; j++) {
                    r.test.addrDep.set(e, j, false);
                    r.test.dataDep.set(e, j, false);
                    r.test.ctrlDep.set(e, j, false);
                }
                r.eventMap = identityMap(n);
                out.push_back(std::move(r));
                break;
              }
              case mm::RTag::DRMW: {
                bool has_rmw = false;
                for (size_t j = 0; j < n; j++) {
                    if (test.rmw.test(e, j))
                        has_rmw = true;
                }
                if (!has_rmw)
                    break;
                RelaxedTest r;
                r.relaxation = relax.name;
                r.event = static_cast<int>(e);
                r.test = test;
                r.test.hasForbidden = false;
                for (size_t j = 0; j < n; j++)
                    r.test.rmw.set(e, j, false);
                r.eventMap = identityMap(n);
                out.push_back(std::move(r));
                break;
              }
              case mm::RTag::DMO:
              case mm::RTag::DF: {
                if (!relax.demoteFrom)
                    break;
                if (ev.type != typeOfSet(relax.demoteCarrier))
                    break;
                if (ev.order != orderOfSet(*relax.demoteFrom))
                    break;
                RelaxedTest r;
                r.relaxation = relax.name;
                r.event = static_cast<int>(e);
                r.test = test;
                r.test.hasForbidden = false;
                r.test.events[e].order =
                    relax.demoteTo ? orderOfSet(*relax.demoteTo)
                                   : MemOrder::Plain;
                r.eventMap = identityMap(n);
                out.push_back(std::move(r));
                break;
              }
              case mm::RTag::DS: {
                if (!model.features().scopes)
                    break;
                bool sync_op = ev.isFence() || ev.order != MemOrder::Plain;
                bool fence_sc =
                    ev.isFence() && ev.order == MemOrder::SeqCst;
                if (!sync_op || fence_sc ||
                    ev.scope != litmus::Scope::System)
                    break;
                RelaxedTest r;
                r.relaxation = relax.name;
                r.event = static_cast<int>(e);
                r.test = test;
                r.test.hasForbidden = false;
                r.test.events[e].scope = litmus::Scope::WorkGroup;
                r.eventMap = identityMap(n);
                out.push_back(std::move(r));
                break;
              }
            }
        }
    }
    return out;
}

namespace
{

/** The co-maximal write of @p loc in @p outcome, or -1. */
int
coLast(const LitmusTest &test, const Outcome &outcome, int loc)
{
    int last = -1;
    for (size_t i = 0; i < test.size(); i++) {
        const auto &e = test.events[i];
        if (!e.isWrite() || e.loc != loc)
            continue;
        bool is_last = true;
        for (size_t j = 0; j < test.size(); j++) {
            if (outcome.co.test(i, j))
                is_last = false;
        }
        if (is_last)
            last = static_cast<int>(i);
    }
    return last;
}

} // namespace

bool
outcomeObservable(const mm::Model &model, const LitmusTest &test,
                  const RelaxedTest &relaxed)
{
    const LitmusTest &rt = relaxed.test;
    size_t n = test.size();

    // Build the projected outcome constraints:
    //  - for each surviving read whose rf source survives, the candidate
    //    must read from that mapped write; a surviving read that read
    //    the initial value must still read the initial value; a read
    //    whose source was removed is unconstrained (Figure 3d);
    //  - for each location whose original co-final write survives, the
    //    candidate's co-final write must be the mapped one.
    std::vector<int> want_rf(rt.size(), -2); // -2 free, -1 initial, else id
    for (size_t j = 0; j < n; j++) {
        if (!test.events[j].isRead() || relaxed.eventMap[j] < 0)
            continue;
        int source = -1;
        for (size_t i = 0; i < n; i++) {
            if (test.forbidden.rf.test(i, j))
                source = static_cast<int>(i);
        }
        int mapped_read = relaxed.eventMap[j];
        if (source < 0)
            want_rf[mapped_read] = -1;
        else if (relaxed.eventMap[source] >= 0)
            want_rf[mapped_read] = relaxed.eventMap[source];
        // else: source removed -> unconstrained
    }
    std::vector<int> want_final(test.numLocs, -2);
    for (int loc = 0; loc < test.numLocs; loc++) {
        int last = coLast(test, test.forbidden, loc);
        if (last >= 0 && relaxed.eventMap[last] >= 0)
            want_final[loc] = relaxed.eventMap[last];
    }

    for (const auto &candidate : allOutcomes(rt)) {
        bool match = true;
        for (size_t j = 0; j < rt.size() && match; j++) {
            if (want_rf[j] == -2 || !rt.events[j].isRead())
                continue;
            int got = -1;
            for (size_t i = 0; i < rt.size(); i++) {
                if (candidate.rf.test(i, j))
                    got = static_cast<int>(i);
            }
            if (got != want_rf[j])
                match = false;
        }
        for (int loc = 0; loc < test.numLocs && match; loc++) {
            if (want_final[loc] == -2)
                continue;
            if (coLast(rt, candidate, loc) != want_final[loc])
                match = false;
        }
        if (!match)
            continue;
        if (isLegal(model, rt, candidate))
            return true;
    }
    return false;
}

std::vector<std::string>
soundMinimalAxioms(const mm::Model &model, const LitmusTest &test)
{
    std::vector<std::string> out;
    if (!test.hasForbidden)
        return out;

    // The relaxation side is axiom-independent; compute it once.
    bool all_relaxed_observable = true;
    for (const auto &relaxed : applyRelaxations(model, test)) {
        if (!outcomeObservable(model, test, relaxed)) {
            all_relaxed_observable = false;
            break;
        }
    }
    if (!all_relaxed_observable)
        return out;

    // Base side, per axiom: every execution (co completion beyond the
    // observable finals, and every sc assignment) that produces the
    // outcome must violate the axiom.
    std::vector<int> want_rf(test.size(), -1);
    for (size_t j = 0; j < test.size(); j++) {
        for (size_t i = 0; i < test.size(); i++) {
            if (test.forbidden.rf.test(i, j))
                want_rf[j] = static_cast<int>(i);
        }
    }
    std::vector<Outcome> producing;
    for (const auto &candidate : allOutcomes(test)) {
        bool match = true;
        for (size_t j = 0; j < test.size() && match; j++) {
            if (!test.events[j].isRead())
                continue;
            int got = -1;
            for (size_t i = 0; i < test.size(); i++) {
                if (candidate.rf.test(i, j))
                    got = static_cast<int>(i);
            }
            if (got != want_rf[j])
                match = false;
        }
        for (int loc = 0; loc < test.numLocs && match; loc++) {
            if (coLast(test, candidate, loc) !=
                coLast(test, test.forbidden, loc))
                match = false;
        }
        if (match)
            producing.push_back(candidate);
    }

    auto sc_candidates = scAssignments(model, test);
    for (const auto &axiom : model.axioms()) {
        bool always_forbidden = true;
        for (const auto &o : producing) {
            for (const auto &sc : sc_candidates) {
                rel::Instance inst = mm::toInstance(model, test, o, sc);
                rel::Evaluator ev(inst);
                if (ev.formula(
                        axiom.pred(model, model.base(), test.size()))) {
                    always_forbidden = false;
                    break;
                }
            }
            if (!always_forbidden)
                break;
        }
        if (always_forbidden)
            out.push_back(axiom.name);
    }
    return out;
}

} // namespace lts::synth
