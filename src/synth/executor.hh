/**
 * @file
 * Exhaustive execution enumeration for a fixed litmus test under a model.
 *
 * Given the static part of a test, enumerate every execution candidate —
 * an rf choice per read (any same-location write, or the initial value),
 * a coherence total order per location, and (for models with an explicit
 * sc relation) an order over SC fences — and classify each as legal or
 * illegal by evaluating the model's axioms. This is how the paper's
 * "Legal:"/"Illegal:" outcome lines (Figures 1, 2, 7, 18) are computed,
 * and how the operational simulators are cross-checked against the
 * axiomatic models.
 */

#ifndef LTS_SYNTH_EXECUTOR_HH
#define LTS_SYNTH_EXECUTOR_HH

#include <vector>

#include "litmus/test.hh"
#include "mm/model.hh"

namespace lts::synth
{

/** All execution candidates of @p test (well-formed rf/co combinations). */
std::vector<litmus::Outcome> allOutcomes(const litmus::LitmusTest &test);

/**
 * Candidate sc-order assignments for a test under a model: the single
 * empty assignment when the model has no explicit sc relation (or the
 * test no SC fences), otherwise the transitive edge lists of every
 * total order over the test's SC fences.
 */
std::vector<std::vector<std::pair<int, int>>>
scAssignments(const mm::Model &model, const litmus::LitmusTest &test);

/**
 * The outcomes of @p test the model deems legal. For models with an sc
 * order the check is existential over sc assignments.
 */
std::vector<litmus::Outcome> legalOutcomes(const mm::Model &model,
                                           const litmus::LitmusTest &test);

/** True iff @p outcome is legal under @p model. */
bool isLegal(const mm::Model &model, const litmus::LitmusTest &test,
             const litmus::Outcome &outcome);

/**
 * Observable projection of an outcome: register values per read plus the
 * final value per location. Two executions with equal projections are
 * the same *outcome* in the paper's Section 4.2 sense.
 */
std::vector<int> observableProjection(const litmus::LitmusTest &test,
                                      const litmus::Outcome &outcome);

/** Deduplicate outcomes by observable projection. */
std::vector<litmus::Outcome>
dedupeByObservable(const litmus::LitmusTest &test,
                   const std::vector<litmus::Outcome> &outcomes);

} // namespace lts::synth

#endif // LTS_SYNTH_EXECUTOR_HH
