#include "analysis/deadcode.hh"

#include <set>
#include <string>

#include "mm/exprs.hh"
#include "rel/visit.hh"

namespace lts::analysis
{

namespace
{

void
markUsed(const rel::FormulaPtr &f, std::set<int> &used)
{
    for (int id : rel::collectVarIds(f))
        used.insert(id);
}

void
markUsed(const rel::ExprPtr &e, std::set<int> &used)
{
    for (int id : rel::collectVarIds(e))
        used.insert(id);
}

} // namespace

void
checkDeadDefinitions(const mm::Model &model, size_t n, Report &report)
{
    const mm::Env &env = model.base();
    std::set<int> used;

    for (const auto &axiom : model.axioms()) {
        markUsed(axiom.pred(model, env, n), used);
        if (axiom.relaxedPred)
            markUsed(axiom.relaxedPred(model, env, n), used);
    }
    for (const auto &fact : model.extraWellFormedFacts(n))
        markUsed(fact.formula, used);

    // Relaxations use relations through their applicability condition and
    // through *targeted* perturbations. A perturbation that rebinds every
    // name uniformly (the RI mask) carries no per-relation information,
    // but one that rebinds a strict subset (demotions, RD, DS) names the
    // relations it manipulates; copied bindings share the base ExprPtr,
    // so a changed binding is a changed pointer.
    rel::ExprPtr ev = mm::singleton(0, n);
    for (const auto &relax : model.relaxations()) {
        markUsed(relax.applies(env, ev, n), used);
        mm::Env perturbed = relax.perturb(env, ev, n);
        size_t changed = 0;
        for (const auto &[name, expr] : perturbed.all()) {
            if (env.has(name) && env.get(name).get() == expr.get())
                continue;
            changed++;
        }
        if (changed == perturbed.all().size())
            continue;
        for (const auto &[name, expr] : perturbed.all()) {
            if (env.has(name) && env.get(name).get() == expr.get())
                continue;
            markUsed(expr, used);
            if (model.vocab().contains(name))
                used.insert(model.vocab().find(name).id);
        }
    }

    const rel::Vocabulary &vocab = model.vocab();
    for (size_t i = 0; i < vocab.size(); i++) {
        const auto &d = vocab.decl(static_cast<int>(i));
        if (used.count(d.id))
            continue;
        report.add({Severity::Warning, "deadcode", "dead-relation",
                    model.name(), "relation:" + d.name,
                    "relation '" + d.name +
                        "' is declared but reachable from no axiom, "
                        "extra fact, or relaxation; the solver still "
                        "searches over its cells"});
    }

    std::set<std::string> seen, reported;
    for (const auto &axiom : model.axioms()) {
        if (!seen.insert(axiom.name).second &&
            reported.insert(axiom.name).second) {
            report.add({Severity::Error, "deadcode", "duplicate-axiom",
                        model.name(), "axiom:" + axiom.name,
                        "axiom '" + axiom.name +
                            "' is declared more than once; later "
                            "declarations shadow earlier ones in lookup"});
        }
    }
}

} // namespace lts::analysis
