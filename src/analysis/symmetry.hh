/**
 * @file
 * Symmetry-spec analysis for memory-model specs.
 *
 * mm::Model::symmetrySpec hand-builds guarded thread-block swaps over
 * the po well-formedness guarantees, and nothing else checks that the
 * two stay in agreement: a generator whose permutation is not an
 * equal-size block swap, or whose guard fails to certify both ranges as
 * complete po blocks, silently prunes satisfying instances — the
 * synthesizer then *loses tests* with no error anywhere. This pass
 * validates the spec's contract shape by shape:
 *
 *  - every generator permutation is a bijection and an involution that
 *    swaps two disjoint, equal-size, contiguous index ranges intact;
 *  - every generator guard carries the full complete-block certificate
 *    for both ranges (boundary-false po cells at interior block edges,
 *    chain-true po cells inside);
 *  - on scoped models, every generator and forbidden pattern is guarded
 *    by same-workgroup membership (an unscoped swap or pattern is not a
 *    symmetry of the workgroup partition);
 *  - the lex vector names declared relations only, and flags po/swg
 *    (invariant under every guarded swap) and dynamic relations
 *    (enumeration blocks static cells only) as dead weight;
 *  - every guard and pattern cell references a declared relation and
 *    in-universe atoms.
 *
 * The core checks an explicit spec so tests can hand in broken ones;
 * checkSymmetry runs it on model.symmetrySpec(n).
 */

#ifndef LTS_ANALYSIS_SYMMETRY_HH
#define LTS_ANALYSIS_SYMMETRY_HH

#include "analysis/report.hh"
#include "mm/model.hh"
#include "rel/symmetry.hh"

namespace lts::analysis
{

/** Validate an explicit spec as if it were @p model's at size @p n. */
void checkSymmetrySpec(const mm::Model &model, const rel::SymmetrySpec &spec,
                       size_t n, Report &report);

/** Validate model.symmetrySpec(n). */
void checkSymmetry(const mm::Model &model, size_t n, Report &report);

} // namespace lts::analysis

#endif // LTS_ANALYSIS_SYMMETRY_HH
