#include "analysis/analysis.hh"

namespace lts::analysis
{

void
analyzeModel(const mm::Model &model, const AnalysisOptions &opt,
             Report &report)
{
    checkTypes(model, opt.size, report);
    checkDeadDefinitions(model, opt.size, report);
    checkSymmetry(model, opt.size, report);
    if (opt.probes) {
        ProbeOptions probe = opt.probe;
        probe.size = opt.size;
        checkVacuity(model, probe, report);
    }
}

} // namespace lts::analysis
