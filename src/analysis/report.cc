#include "analysis/report.hh"

#include <cstdio>

namespace lts::analysis
{

std::string
toString(Severity s)
{
    switch (s) {
        case Severity::Note:
            return "note";
        case Severity::Warning:
            return "warning";
        case Severity::Error:
            return "error";
    }
    return "?";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

size_t
Report::count(Severity s) const
{
    size_t n = 0;
    for (const auto &f : findingList) {
        if (f.severity == s)
            n++;
    }
    return n;
}

bool
Report::clean(bool werror) const
{
    if (count(Severity::Error) > 0)
        return false;
    return !werror || count(Severity::Warning) == 0;
}

std::string
Report::text() const
{
    std::string out;
    for (const auto &f : findingList) {
        out += toString(f.severity) + ": [" + f.pass + "/" + f.code + "] " +
               f.model + "/" + f.where + ": " + f.message + "\n";
    }
    return out;
}

std::string
Report::json() const
{
    std::string out = "{\n  \"findings\": [";
    for (size_t i = 0; i < findingList.size(); i++) {
        const Finding &f = findingList[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"severity\": \"" + toString(f.severity) + "\", ";
        out += "\"pass\": \"" + jsonEscape(f.pass) + "\", ";
        out += "\"code\": \"" + jsonEscape(f.code) + "\", ";
        out += "\"model\": \"" + jsonEscape(f.model) + "\", ";
        out += "\"where\": \"" + jsonEscape(f.where) + "\", ";
        out += "\"message\": \"" + jsonEscape(f.message) + "\"}";
    }
    out += findingList.empty() ? "],\n" : "\n  ],\n";
    out += "  \"counts\": {\"error\": " +
           std::to_string(count(Severity::Error)) +
           ", \"warning\": " + std::to_string(count(Severity::Warning)) +
           ", \"note\": " + std::to_string(count(Severity::Note)) + "}\n}\n";
    return out;
}

} // namespace lts::analysis
