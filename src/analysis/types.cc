#include "analysis/types.hh"

#include <unordered_set>

#include "mm/exprs.hh"
#include "rel/visit.hh"

namespace lts::analysis
{

using rel::Expr;
using rel::ExprKind;
using rel::ExprPtr;
using rel::Formula;
using rel::FormulaKind;
using rel::FormulaPtr;

namespace
{

/** Number of bits a bound of @p arity uses over @p k partition atoms. */
int
maskBits(int arity, int k)
{
    return arity == 1 ? k : k * k;
}

uint32_t
fullMask(int arity, int k)
{
    return (uint32_t{1} << maskBits(arity, k)) - 1;
}

uint32_t
diagMask(int k)
{
    uint32_t m = 0;
    for (int t = 0; t < k; t++)
        m |= uint32_t{1} << (t * k + t);
    return m;
}

bool
relHas(uint32_t mask, int k, int a, int b)
{
    return (mask >> (a * k + b)) & 1u;
}

/** Compose two arity-2 masks: (a,c) when some b links them. */
uint32_t
composeRel(uint32_t lhs, uint32_t rhs, int k)
{
    uint32_t out = 0;
    for (int a = 0; a < k; a++) {
        for (int b = 0; b < k; b++) {
            if (!relHas(lhs, k, a, b))
                continue;
            for (int c = 0; c < k; c++) {
                if (relHas(rhs, k, b, c))
                    out |= uint32_t{1} << (a * k + c);
            }
        }
    }
    return out;
}

uint32_t
transitiveClosure(uint32_t mask, int k)
{
    uint32_t closed = mask;
    for (uint32_t next = composeRel(closed, closed, k) | closed;
         next != closed; next = composeRel(closed, closed, k) | closed) {
        closed = next;
    }
    return closed;
}

} // namespace

TypeInference::TypeInference(const mm::Model &m, size_t n) : model(m)
{
    atoms.push_back(mm::kR);
    atoms.push_back(mm::kW);
    if (model.features().fences)
        atoms.push_back(mm::kF);
    int k = static_cast<int>(atoms.size());

    const rel::Vocabulary &vocab = model.vocab();
    bounds.resize(vocab.size());
    for (size_t i = 0; i < vocab.size(); i++) {
        const auto &d = vocab.decl(static_cast<int>(i));
        bounds[i].arity = d.arity;
        bounds[i].mask = fullMask(d.arity, k);
    }
    // Seed: each partition class variable is bounded by its own class.
    for (int t = 0; t < k; t++) {
        if (vocab.contains(atoms[t]))
            bounds[vocab.find(atoms[t]).id].mask = uint32_t{1} << t;
    }

    // Decreasing fixpoint over the well-formedness facts.
    auto facts = model.wellFormedFacts(n);
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &fact : facts)
            refineFromFact(fact.formula, changed);
        cache.clear(); // bounds moved; memoized values are stale
    }
}

void
TypeInference::refineFromFact(const FormulaPtr &f, bool &changed)
{
    // `!f` (or `f == nullptr`) would hit the mkNot() sugar, not a null
    // test.
    if (f.get() == nullptr)
        return;
    switch (f->kind) {
        case FormulaKind::And:
            refineFromFact(f->lhs, changed);
            refineFromFact(f->rhs, changed);
            return;
        case FormulaKind::Subset:
            if (f->exprLhs->kind == ExprKind::Var) {
                TypeBound rhs = eval(f->exprRhs);
                uint32_t refined = bounds[f->exprLhs->varId].mask & rhs.mask;
                if (refined != bounds[f->exprLhs->varId].mask) {
                    bounds[f->exprLhs->varId].mask = refined;
                    changed = true;
                }
            }
            return;
        case FormulaKind::Equal:
            for (const auto &[var, other] :
                 {std::pair(f->exprLhs, f->exprRhs),
                  std::pair(f->exprRhs, f->exprLhs)}) {
                if (var->kind != ExprKind::Var)
                    continue;
                TypeBound o = eval(other);
                uint32_t refined = bounds[var->varId].mask & o.mask;
                if (refined != bounds[var->varId].mask) {
                    bounds[var->varId].mask = refined;
                    changed = true;
                }
            }
            return;
        case FormulaKind::No:
            if (f->exprLhs->kind == ExprKind::Var &&
                bounds[f->exprLhs->varId].mask != 0) {
                bounds[f->exprLhs->varId].mask = 0;
                changed = true;
            }
            return;
        default:
            return;
    }
}

TypeBound
TypeInference::varBound(int var_id) const
{
    return bounds.at(static_cast<size_t>(var_id));
}

TypeBound
TypeInference::top(int arity) const
{
    TypeBound b;
    b.arity = arity;
    b.mask = fullMask(arity, static_cast<int>(atoms.size()));
    return b;
}

TypeBound
TypeInference::eval(const ExprPtr &e) const
{
    auto it = cache.find(e);
    if (it != cache.end())
        return it->second;

    int k = static_cast<int>(atoms.size());
    TypeBound b;
    b.arity = e->arity;
    switch (e->kind) {
        case ExprKind::Var:
            b = bounds.at(static_cast<size_t>(e->varId));
            break;
        case ExprKind::Univ:
            b.mask = fullMask(1, k);
            break;
        case ExprKind::None:
            b.mask = 0;
            break;
        case ExprKind::Iden:
            b.mask = diagMask(k);
            break;
        case ExprKind::Const:
            // Concrete contents carry no class information; an empty
            // constant is still provably empty.
            if (e->arity == 1)
                b.mask = e->constSet.any() ? fullMask(1, k) : 0;
            else
                b.mask = e->constMatrix.any() ? fullMask(2, k) : 0;
            break;
        case ExprKind::Union:
            b.mask = eval(e->lhs).mask | eval(e->rhs).mask;
            break;
        case ExprKind::Intersect:
            b.mask = eval(e->lhs).mask & eval(e->rhs).mask;
            break;
        case ExprKind::Diff:
            // Upper bounds cannot be narrowed by subtraction.
            b.mask = eval(e->lhs).mask;
            break;
        case ExprKind::Join: {
            uint32_t lhs = eval(e->lhs).mask;
            uint32_t rhs = eval(e->rhs).mask;
            if (e->lhs->arity == 1 && e->rhs->arity == 2) {
                // Image of a set through a relation.
                b.mask = 0;
                for (int a = 0; a < k; a++) {
                    if (!((lhs >> a) & 1u))
                        continue;
                    for (int c = 0; c < k; c++) {
                        if (relHas(rhs, k, a, c))
                            b.mask |= uint32_t{1} << c;
                    }
                }
            } else if (e->lhs->arity == 2 && e->rhs->arity == 1) {
                // Preimage of a set through a relation.
                b.mask = 0;
                for (int a = 0; a < k; a++) {
                    for (int c = 0; c < k; c++) {
                        if (relHas(lhs, k, a, c) && ((rhs >> c) & 1u))
                            b.mask |= uint32_t{1} << a;
                    }
                }
            } else {
                b.mask = composeRel(lhs, rhs, k);
            }
            break;
        }
        case ExprKind::Product: {
            uint32_t lhs = eval(e->lhs).mask;
            uint32_t rhs = eval(e->rhs).mask;
            b.mask = 0;
            for (int a = 0; a < k; a++) {
                if (!((lhs >> a) & 1u))
                    continue;
                for (int c = 0; c < k; c++) {
                    if ((rhs >> c) & 1u)
                        b.mask |= uint32_t{1} << (a * k + c);
                }
            }
            break;
        }
        case ExprKind::Transpose: {
            uint32_t lhs = eval(e->lhs).mask;
            b.mask = 0;
            for (int a = 0; a < k; a++) {
                for (int c = 0; c < k; c++) {
                    if (relHas(lhs, k, a, c))
                        b.mask |= uint32_t{1} << (c * k + a);
                }
            }
            break;
        }
        case ExprKind::Closure:
            b.mask = transitiveClosure(eval(e->lhs).mask, k);
            break;
        case ExprKind::RClosure:
            // Zero steps reach every atom: the identity over the full
            // universe joins the closure.
            b.mask = transitiveClosure(eval(e->lhs).mask, k) | diagMask(k);
            break;
        case ExprKind::DomRestrict: {
            uint32_t set = eval(e->lhs).mask;
            uint32_t r = eval(e->rhs).mask;
            b.mask = 0;
            for (int a = 0; a < k; a++) {
                if (!((set >> a) & 1u))
                    continue;
                for (int c = 0; c < k; c++) {
                    if (relHas(r, k, a, c))
                        b.mask |= uint32_t{1} << (a * k + c);
                }
            }
            break;
        }
        case ExprKind::RanRestrict: {
            uint32_t r = eval(e->lhs).mask;
            uint32_t set = eval(e->rhs).mask;
            b.mask = 0;
            for (int a = 0; a < k; a++) {
                for (int c = 0; c < k; c++) {
                    if (relHas(r, k, a, c) && ((set >> c) & 1u))
                        b.mask |= uint32_t{1} << (a * k + c);
                }
            }
            break;
        }
    }
    cache.emplace(e, b);
    return b;
}

std::string
TypeInference::describe(const TypeBound &b) const
{
    int k = static_cast<int>(atoms.size());
    std::string out = "{";
    bool first = true;
    if (b.arity == 1) {
        for (int t = 0; t < k; t++) {
            if (!((b.mask >> t) & 1u))
                continue;
            out += (first ? "" : ", ") + atoms[t];
            first = false;
        }
    } else {
        for (int a = 0; a < k; a++) {
            for (int c = 0; c < k; c++) {
                if (!relHas(b.mask, k, a, c))
                    continue;
                out += std::string(first ? "" : ", ") + "(" + atoms[a] +
                       "," + atoms[c] + ")";
                first = false;
            }
        }
    }
    return out + "}";
}

// ---------------------------------------------------------------------------
// The checkTypes pass
// ---------------------------------------------------------------------------

namespace
{

/** One labeled formula the pass inspects. */
struct CheckedFormula
{
    std::string where;
    FormulaPtr formula;
};

std::vector<CheckedFormula>
formulasToCheck(const mm::Model &model, size_t n)
{
    std::vector<CheckedFormula> out;
    for (auto &fact : model.wellFormedFacts(n))
        out.push_back({"fact:" + fact.label, std::move(fact.formula)});
    for (const auto &axiom : model.axioms()) {
        out.push_back(
            {"axiom:" + axiom.name, axiom.pred(model, model.base(), n)});
        if (axiom.relaxedPred) {
            out.push_back({"axiom:" + axiom.name + ".relaxed",
                           axiom.relaxedPred(model, model.base(), n)});
        }
    }
    return out;
}

/**
 * Re-validate the structural typing rules the factory functions enforce,
 * catching hand-built nodes and variables inconsistent with the model's
 * vocabulary. Returns false when any arity finding was reported, in
 * which case bound analysis is skipped (bounds would be meaningless).
 */
bool
validateExprArities(const mm::Model &model, const CheckedFormula &cf,
                    Report &report)
{
    bool ok = true;
    auto bad = [&](const ExprPtr &e, const std::string &msg) {
        ok = false;
        report.add({Severity::Error, "types", "arity-mismatch",
                    model.name(), cf.where, msg + " in " + e->toString()});
    };
    const rel::Vocabulary &vocab = model.vocab();
    rel::forEachExprIn(cf.formula, [&](const ExprPtr &e) {
        bool needs_lhs = e->kind != ExprKind::Var &&
                         e->kind != ExprKind::Univ &&
                         e->kind != ExprKind::None &&
                         e->kind != ExprKind::Iden &&
                         e->kind != ExprKind::Const;
        bool needs_rhs = needs_lhs && e->kind != ExprKind::Transpose &&
                         e->kind != ExprKind::Closure &&
                         e->kind != ExprKind::RClosure;
        if ((needs_lhs && !e->lhs) || (needs_rhs && !e->rhs)) {
            // Cannot render the node: toString would chase the hole.
            ok = false;
            report.add({Severity::Error, "types", "arity-mismatch",
                        model.name(), cf.where,
                        "operator node with missing operand"});
            return;
        }
        switch (e->kind) {
            case ExprKind::Var:
                if (e->varId < 0 ||
                    e->varId >= static_cast<int>(vocab.size())) {
                    bad(e, "variable id " + std::to_string(e->varId) +
                               " is not declared in the vocabulary");
                } else if (vocab.decl(e->varId).arity != e->arity) {
                    bad(e, "variable '" + e->name + "' used with arity " +
                               std::to_string(e->arity) + " but declared " +
                               std::to_string(vocab.decl(e->varId).arity));
                }
                break;
            case ExprKind::Univ:
            case ExprKind::None:
            case ExprKind::Iden:
            case ExprKind::Const:
                if (e->arity != 1 && e->arity != 2)
                    bad(e, "leaf with arity " + std::to_string(e->arity));
                break;
            case ExprKind::Union:
            case ExprKind::Intersect:
            case ExprKind::Diff:
                if (e->lhs->arity != e->rhs->arity ||
                    e->arity != e->lhs->arity)
                    bad(e, "set operator over mixed arities");
                break;
            case ExprKind::Join:
                if (e->lhs->arity == 1 && e->rhs->arity == 1)
                    bad(e, "join of two sets is not a relation");
                else if (e->arity !=
                         (e->lhs->arity == 2 && e->rhs->arity == 2 ? 2 : 1))
                    bad(e, "join result arity is inconsistent");
                break;
            case ExprKind::Product:
                if (e->lhs->arity != 1 || e->rhs->arity != 1 || e->arity != 2)
                    bad(e, "product requires two sets");
                break;
            case ExprKind::Transpose:
            case ExprKind::Closure:
            case ExprKind::RClosure:
                if (e->lhs->arity != 2 || e->arity != 2)
                    bad(e, "unary relational operator over a set");
                break;
            case ExprKind::DomRestrict:
                if (e->lhs->arity != 1 || e->rhs->arity != 2 || e->arity != 2)
                    bad(e, "domain restriction requires set <: relation");
                break;
            case ExprKind::RanRestrict:
                if (e->lhs->arity != 2 || e->rhs->arity != 1 || e->arity != 2)
                    bad(e, "range restriction requires relation :> set");
                break;
        }
    });
    return ok;
}

/** The operator kinds whose provable emptiness is worth a finding. */
const char *
emptinessCode(ExprKind kind)
{
    switch (kind) {
        case ExprKind::Join:
            return "empty-join";
        case ExprKind::Intersect:
            return "empty-intersect";
        case ExprKind::DomRestrict:
        case ExprKind::RanRestrict:
            return "empty-restrict";
        default:
            return nullptr;
    }
}

void
checkEmptiness(const mm::Model &model, const TypeInference &types,
               const CheckedFormula &cf, Report &report)
{
    // An expression directly asserted empty (no e / lone e) is exempt:
    // proving the assertion from bounds alone makes it vacuous, not
    // wrong, and the partition facts themselves take this shape.
    std::unordered_set<const Expr *> asserted_empty;
    rel::forEachFormula(cf.formula, [&](const FormulaPtr &f) {
        if (f->kind == FormulaKind::No || f->kind == FormulaKind::Lone)
            asserted_empty.insert(f->exprLhs.get());
    });

    rel::forEachExprIn(cf.formula, [&](const ExprPtr &e) {
        const char *code = emptinessCode(e->kind);
        if (!code || asserted_empty.count(e.get()))
            return;
        if (!types.eval(e).isEmpty() || types.eval(e->lhs).isEmpty() ||
            types.eval(e->rhs).isEmpty())
            return;
        report.add({Severity::Warning, "types", code, model.name(),
                    cf.where,
                    "subexpression is provably empty: " + e->toString() +
                        " (" + types.describe(types.eval(e->lhs)) + " vs " +
                        types.describe(types.eval(e->rhs)) + ")"});
    });

    rel::forEachFormula(cf.formula, [&](const FormulaPtr &f) {
        switch (f->kind) {
            case FormulaKind::Some:
            case FormulaKind::One:
                if (types.eval(f->exprLhs).isEmpty()) {
                    report.add({Severity::Error, "types", "always-false",
                                model.name(), cf.where,
                                "'some/one' over a provably empty "
                                "expression can never hold: " +
                                    f->exprLhs->toString()});
                }
                break;
            case FormulaKind::Subset:
                if (types.eval(f->exprLhs).isEmpty() &&
                    f->exprLhs->kind != ExprKind::None) {
                    report.add({Severity::Note, "types", "vacuous-subset",
                                model.name(), cf.where,
                                "subset holds vacuously; left-hand side is "
                                "provably empty: " + f->exprLhs->toString()});
                }
                break;
            default:
                break;
        }
    });
}

} // namespace

void
checkTypes(const mm::Model &model, size_t n, Report &report)
{
    TypeInference types(model, n);
    for (const auto &cf : formulasToCheck(model, n)) {
        if (validateExprArities(model, cf, report))
            checkEmptiness(model, types, cf, report);
    }
}

} // namespace lts::analysis
