#include "analysis/symmetry.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "mm/exprs.hh"

namespace lts::analysis
{

namespace
{

/** One equal-size contiguous block swap, decomposed from a permutation. */
struct BlockSwap
{
    size_t i = 0; ///< start of the lower block
    size_t j = 0; ///< start of the upper block
    size_t s = 0; ///< block size
};

void
add(Report &report, Severity sev, const mm::Model &model,
    const std::string &where, const std::string &code,
    const std::string &message)
{
    report.add({sev, "symmetry", code, model.name(), where, message});
}

/** Is @p perm a bijection on [0, n)? */
bool
isPermutation(const std::vector<size_t> &perm, size_t n)
{
    if (perm.size() != n)
        return false;
    std::vector<char> seen(n, 0);
    for (size_t v : perm) {
        if (v >= n || seen[v])
            return false;
        seen[v] = 1;
    }
    return true;
}

/**
 * Decompose @p perm into an equal-size contiguous block swap. Returns
 * false when the moved indices have any other shape (unequal blocks,
 * non-contiguous support, blocks not mapped onto each other intact).
 */
bool
decomposeBlockSwap(const std::vector<size_t> &perm, BlockSwap &out)
{
    std::vector<size_t> moved;
    for (size_t k = 0; k < perm.size(); k++) {
        if (perm[k] != k)
            moved.push_back(k);
    }
    if (moved.empty() || moved.size() % 2 != 0)
        return false;
    size_t s = moved.size() / 2;
    size_t i = moved.front();
    size_t j = perm[i];
    if (j <= i || j < i + s)
        return false; // overlapping or inverted ranges
    for (size_t k = 0; k < s; k++) {
        if (moved[k] != i + k || moved[s + k] != j + k)
            return false; // support is not two contiguous runs
        if (perm[i + k] != j + k || perm[j + k] != i + k)
            return false; // blocks not swapped intact
    }
    out = {i, j, s};
    return true;
}

bool
hasCond(const std::vector<rel::CellCond> &conds, int var_id, size_t i,
        size_t j, bool value)
{
    for (const auto &c : conds) {
        if (c.varId == var_id && c.i == i && c.j == j && c.value == value)
            return true;
    }
    return false;
}

/**
 * The complete-block certificate for [start, start+s): boundary-false
 * po cells at interior edges, chain-true po cells inside (exactly what
 * Model::symmetrySpec's blockConds emits). Returns a description of the
 * first missing cell, or "" when the certificate is complete.
 */
std::string
missingBlockCert(const std::vector<rel::CellCond> &conds, int po_id,
                 size_t start, size_t s, size_t n)
{
    auto cell = [](size_t a, size_t b, bool v) {
        return "po(" + std::to_string(a) + ", " + std::to_string(b) +
               ") = " + (v ? "true" : "false");
    };
    if (start > 0 && !hasCond(conds, po_id, start - 1, start, false))
        return cell(start - 1, start, false);
    for (size_t k = 0; k + 1 < s; k++) {
        if (!hasCond(conds, po_id, start + k, start + k + 1, true))
            return cell(start + k, start + k + 1, true);
    }
    if (start + s < n && !hasCond(conds, po_id, start + s - 1, start + s,
                                  false))
        return cell(start + s - 1, start + s, false);
    return std::string();
}

/** Validate one guard/pattern cell; reports and returns false when bad. */
bool
checkCell(const mm::Model &model, const rel::CellCond &c, size_t n,
          const std::string &where, Report &report)
{
    const rel::Vocabulary &vocab = model.vocab();
    if (c.varId < 0 || static_cast<size_t>(c.varId) >= vocab.size()) {
        add(report, Severity::Error, model, where, "bad-guard-cell",
            "condition references undeclared relation id " +
                std::to_string(c.varId));
        return false;
    }
    const rel::VarDecl &d = vocab.decl(c.varId);
    if (c.i >= n || (d.arity == 2 && c.j >= n)) {
        add(report, Severity::Error, model, where, "bad-guard-cell",
            "condition on " + d.name + " references atom (" +
                std::to_string(c.i) + ", " + std::to_string(c.j) +
                ") outside the size-" + std::to_string(n) + " universe");
        return false;
    }
    return true;
}

} // namespace

void
checkSymmetrySpec(const mm::Model &model, const rel::SymmetrySpec &spec,
                  size_t n, Report &report)
{
    const rel::Vocabulary &vocab = model.vocab();
    if (!vocab.contains(mm::kPo)) {
        add(report, Severity::Error, model, "spec", "no-po",
            "model declares no po relation; block-swap guards cannot be "
            "validated");
        return;
    }
    const int po_id = vocab.find(mm::kPo).id;
    const bool scoped = model.features().scopes;
    const int swg_id =
        scoped && vocab.contains(mm::kSameWg) ? vocab.find(mm::kSameWg).id
                                              : -1;

    // Lex vector: declared, static, and not invariant under the swaps.
    std::vector<int> static_ids = model.staticVarIds();
    for (int id : spec.lexVarIds) {
        if (id < 0 || static_cast<size_t>(id) >= vocab.size()) {
            add(report, Severity::Error, model, "lex", "lex-unknown-relation",
                "lex vector references undeclared relation id " +
                    std::to_string(id));
            continue;
        }
        const std::string &name = vocab.decl(id).name;
        if (std::find(static_ids.begin(), static_ids.end(), id) ==
            static_ids.end()) {
            add(report, Severity::Warning, model, "lex",
                "lex-dynamic-relation",
                "lex vector includes dynamic relation " + name +
                    "; enumeration blocks only static cells, so its "
                    "chain terms are dead weight");
        } else if (id == po_id || (swg_id >= 0 && id == swg_id)) {
            add(report, Severity::Warning, model, "lex",
                "lex-invariant-relation",
                "lex vector includes " + name +
                    ", which is pointwise invariant under every guarded "
                    "block swap; its chain terms are dead weight");
        }
    }

    for (size_t gi = 0; gi < spec.generators.size(); gi++) {
        const rel::ConditionalPerm &g = spec.generators[gi];
        std::string where = "generator:#" + std::to_string(gi);

        if (!isPermutation(g.perm, n)) {
            add(report, Severity::Error, model, where, "bad-perm",
                "generator permutation is not a bijection on the size-" +
                    std::to_string(n) + " universe");
            continue;
        }
        bool cells_ok = true;
        for (const auto &c : g.conditions)
            cells_ok = checkCell(model, c, n, where, report) && cells_ok;
        if (!cells_ok)
            continue;

        BlockSwap swap;
        if (!decomposeBlockSwap(g.perm, swap)) {
            add(report, Severity::Error, model, where, "unequal-blocks",
                "generator is not an equal-size contiguous block swap; "
                "only complete-thread swaps are symmetries of the "
                "po index-order facts");
            continue;
        }
        for (size_t start : {swap.i, swap.j}) {
            std::string missing =
                missingBlockCert(g.conditions, po_id, start, swap.s, n);
            if (!missing.empty()) {
                add(report, Severity::Error, model, where,
                    "missing-block-guard",
                    "guard does not certify [" + std::to_string(start) +
                        ", " + std::to_string(start + swap.s) +
                        ") as a complete po block: missing " + missing +
                        "; the swap would bind on partial threads, which "
                        "the po facts order");
            }
        }
        if (scoped && swg_id >= 0 &&
            !hasCond(g.conditions, swg_id, swap.i, swap.j, true) &&
            !hasCond(g.conditions, swg_id, swap.j, swap.i, true)) {
            add(report, Severity::Error, model, where, "missing-scope-guard",
                "scoped model: guard does not require swg(" +
                    std::to_string(swap.i) + ", " + std::to_string(swap.j) +
                    "); swapping blocks across workgroups changes the "
                    "wg partition and is not a symmetry");
        }
    }

    for (size_t pi = 0; pi < spec.forbidden.size(); pi++) {
        const auto &pat = spec.forbidden[pi];
        std::string where = "pattern:#" + std::to_string(pi);
        bool cells_ok = true;
        for (const auto &c : pat)
            cells_ok = checkCell(model, c, n, where, report) && cells_ok;
        if (!cells_ok)
            continue;
        if (pat.empty()) {
            add(report, Severity::Error, model, where, "empty-pattern",
                "empty forbidden pattern lowers to the empty clause and "
                "makes every enumeration vacuously Unsat");
            continue;
        }
        if (scoped && swg_id >= 0) {
            bool has_swg = false;
            for (const auto &c : pat)
                has_swg = has_swg || (c.varId == swg_id && c.value);
            if (!has_swg) {
                add(report, Severity::Error, model, where,
                    "missing-scope-guard",
                    "scoped model: forbidden pattern carries no "
                    "same-workgroup guard; it would exclude size-sorted "
                    "layouts that no in-workgroup swap can reach");
            }
        }
    }
}

void
checkSymmetry(const mm::Model &model, size_t n, Report &report)
{
    checkSymmetrySpec(model, model.symmetrySpec(n), n, report);
}

} // namespace lts::analysis
