/**
 * @file
 * Bounding-type inference over relational expressions, in the style of
 * Alloy's relational type system.
 *
 * The embedded C++ DSL has no declared relation types: what Alloy infers
 * from sig declarations was lost in translation. This pass reconstructs
 * it. The abstract domain is the model's event-type partition — the
 * classes R, W and (when the model has fences) F, which the generic
 * well-formedness facts make pairwise disjoint and jointly exhaustive. An
 * arity-1 expression is bounded by the set of classes its atoms can
 * inhabit; an arity-2 expression by the set of class *pairs* its tuples
 * can connect. Bounds for declared relation variables are inferred by a
 * decreasing fixpoint over the model's well-formedness facts (subset and
 * equality facts refine the bound of their left-hand relation), then
 * propagated through every operator: join composes pairs, product crosses
 * sets, closure saturates, transpose flips, restrictions filter.
 *
 * A subexpression whose bound is empty is *provably empty in every
 * instance* — an always-empty join or intersection is almost certainly a
 * transliteration bug, and a `some` over it can never hold. checkTypes
 * reports those (plus structural arity violations in hand-built trees)
 * against each well-formedness fact and axiom of a model.
 */

#ifndef LTS_ANALYSIS_TYPES_HH
#define LTS_ANALYSIS_TYPES_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/report.hh"
#include "mm/model.hh"

namespace lts::analysis
{

/**
 * The upper bound of one expression over the type partition: a bitmask
 * over partition classes (arity 1, bit t) or class pairs (arity 2, bit
 * t1 * numAtoms + t2). An all-zero mask proves the expression empty.
 */
struct TypeBound
{
    int arity = 1;
    uint32_t mask = 0;

    bool isEmpty() const { return mask == 0; }
};

/**
 * Per-model bounding-type inference. Constructing the object runs the
 * fixpoint over the model's well-formedness facts; eval() then computes
 * the bound of any expression over the model's vocabulary.
 */
class TypeInference
{
  public:
    /** @param n universe size used to instantiate the facts. */
    explicit TypeInference(const mm::Model &model, size_t n = 4);

    /** Partition class names, e.g. {"R", "W", "F"}. */
    const std::vector<std::string> &atomNames() const { return atoms; }

    /** Inferred bound of declared relation @p var_id. */
    TypeBound varBound(int var_id) const;

    /** Upper bound of @p e (memoized per expression node). */
    TypeBound eval(const rel::ExprPtr &e) const;

    /** Render a bound for diagnostics, e.g. "{(W,R)}" or "{R, F}". */
    std::string describe(const TypeBound &b) const;

    /** The full mask of the given arity (the top element). */
    TypeBound top(int arity) const;

  private:
    void refineFromFact(const rel::FormulaPtr &f, bool &changed);

    const mm::Model &model;
    std::vector<std::string> atoms;
    std::vector<TypeBound> bounds; ///< per declared relation variable
    /**
     * Keyed by shared_ptr, not raw pointer: the key pins its node alive,
     * so a freed node's address can never be reused by a fresh expression
     * and alias a stale entry.
     */
    mutable std::unordered_map<rel::ExprPtr, TypeBound> cache;
};

/**
 * The bounding-type pass: validate operator/variable arities structurally
 * and report provably-empty subexpressions across every well-formedness
 * fact and axiom of @p model, at instantiation size @p n.
 */
void checkTypes(const mm::Model &model, size_t n, Report &report);

} // namespace lts::analysis

#endif // LTS_ANALYSIS_TYPES_HH
