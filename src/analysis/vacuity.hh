/**
 * @file
 * Semantic vacuity and contradiction probes.
 *
 * The type pass proves facts about what *cannot* happen; this pass asks
 * the solver what *can*. Every well-formedness fact and every synthesis
 * axiom of a model is loaded as a retractable fact layer
 * (rel::RelSolver::addFact) over one shared encoding at a small bounded
 * size, so each probe is an incremental solveUnder() call rather than a
 * fresh encoding:
 *
 *  - base satisfiability: the conjunction of all well-formedness facts
 *    admits at least one execution (otherwise synthesis enumerates
 *    nothing and every suite is silently empty);
 *  - per-fact redundancy: dropping fact F and asserting its negation
 *    under the remaining facts is satisfiable, i.e. F actually changes
 *    the model set; implied facts are reported (as notes — overlapping
 *    shape facts are sometimes deliberate), with tautologies (facts
 *    unsatisfiable to negate in isolation) called out specially;
 *  - per-axiom vacuity: each axiom is satisfiable (some well-formed
 *    execution obeys it) and falsifiable (some violates it) — an
 *    unsatisfiable axiom makes its suite empty, a tautological one makes
 *    synthesis chase a suite that cannot exist.
 *
 * All probes are bounded by universe size and a conflict budget, so a
 * finding of "unsatisfiable" is definite while absence of findings is
 * evidence at the probed size, mirroring the paper's bounded guarantee.
 */

#ifndef LTS_ANALYSIS_VACUITY_HH
#define LTS_ANALYSIS_VACUITY_HH

#include <cstdint>

#include "analysis/report.hh"
#include "mm/model.hh"

namespace lts::analysis
{

/** Knobs for the solver probes. */
struct ProbeOptions
{
    size_t size = 4;                  ///< universe size of the probes
    uint64_t conflictBudget = 200000; ///< per-probe SAT budget (0 = none)
    bool factProbes = true;           ///< run per-fact redundancy probes
};

/** Run the solver probes for @p model and report findings. */
void checkVacuity(const mm::Model &model, const ProbeOptions &opt,
                  Report &report);

} // namespace lts::analysis

#endif // LTS_ANALYSIS_VACUITY_HH
