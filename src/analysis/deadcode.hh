/**
 * @file
 * Dead-definition analysis for memory-model specs.
 *
 * A Model's constructor declares a vocabulary driven by its feature
 * switches; nothing ties those declarations to actual use. A relation
 * that no axiom, extra fact, or relaxation ever mentions is dead weight:
 * the synthesizer still searches over its cells, slowing every solve,
 * and its presence usually means a transliterated feature was dropped
 * half-way. The generic well-formedness facts intentionally do NOT count
 * as uses — they constrain the *shape* of every declared relation, so
 * they mention all of them by construction.
 *
 * The pass also flags duplicate axiom names (the second one silently
 * shadows the first in axiom lookup and suite naming).
 */

#ifndef LTS_ANALYSIS_DEADCODE_HH
#define LTS_ANALYSIS_DEADCODE_HH

#include "analysis/report.hh"
#include "mm/model.hh"

namespace lts::analysis
{

/**
 * Report declared-but-unreachable relations and duplicate axiom names of
 * @p model, instantiating axioms and relaxations at size @p n.
 */
void checkDeadDefinitions(const mm::Model &model, size_t n, Report &report);

} // namespace lts::analysis

#endif // LTS_ANALYSIS_DEADCODE_HH
