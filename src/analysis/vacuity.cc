#include "analysis/vacuity.hh"

#include <string>
#include <vector>

#include "rel/encoder.hh"

namespace lts::analysis
{

using rel::FactHandle;
using sat::SolveResult;

namespace
{

std::string
atSize(const ProbeOptions &opt)
{
    return " at size " + std::to_string(opt.size);
}

} // namespace

void
checkVacuity(const mm::Model &model, const ProbeOptions &opt, Report &report)
{
    rel::RelSolver solver(model.vocab(), opt.size);
    auto facts = model.wellFormedFacts(opt.size);

    std::vector<FactHandle> pos, neg;
    pos.reserve(facts.size());
    neg.reserve(facts.size());
    for (const auto &fact : facts) {
        pos.push_back(solver.addFact(fact.formula));
        neg.push_back(solver.addFact(rel::mkNot(fact.formula)));
    }

    auto probe = [&](const std::vector<FactHandle> &handles) {
        solver.satSolver().setConflictBudget(opt.conflictBudget);
        return solver.solveUnder(handles);
    };

    // 1. The base model admits at least one execution.
    SolveResult base = probe(pos);
    if (base == SolveResult::Unsat) {
        report.add({Severity::Error, "vacuity", "model-unsat", model.name(),
                    "well-formedness",
                    "the well-formedness facts are unsatisfiable" +
                        atSize(opt) +
                        "; synthesis would silently produce nothing"});
        return; // every further probe is meaningless against falsity
    }
    if (base == SolveResult::BudgetExhausted) {
        report.add({Severity::Note, "vacuity", "probe-inconclusive",
                    model.name(), "well-formedness",
                    "satisfiability probe exhausted its conflict budget" +
                        atSize(opt)});
        return;
    }

    // 2. Per-fact redundancy: others /\ not(F) satisfiable?
    if (opt.factProbes) {
        for (size_t i = 0; i < facts.size(); i++) {
            std::vector<FactHandle> handles;
            for (size_t j = 0; j < facts.size(); j++) {
                if (j != i)
                    handles.push_back(pos[j]);
            }
            handles.push_back(neg[i]);
            SolveResult res = probe(handles);
            if (res == SolveResult::Sat)
                continue;
            std::string where = "fact:" + facts[i].label;
            if (res == SolveResult::BudgetExhausted) {
                report.add({Severity::Note, "vacuity", "probe-inconclusive",
                            model.name(), where,
                            "redundancy probe exhausted its conflict "
                            "budget" + atSize(opt)});
                continue;
            }
            // Implied by the other facts; is it a tautology outright?
            bool tautology = probe({neg[i]}) == SolveResult::Unsat;
            report.add({Severity::Note, "vacuity",
                        tautology ? "tautological-fact" : "redundant-fact",
                        model.name(), where,
                        tautology
                            ? "fact holds in every instance" + atSize(opt) +
                                  "; it constrains nothing"
                            : "fact is implied by the remaining facts" +
                                  atSize(opt) +
                                  "; retracting it changes no model"});
        }
    }

    // 3. Per-axiom satisfiability and falsifiability.
    for (const auto &axiom : model.axioms()) {
        rel::FormulaPtr pred = axiom.pred(model, model.base(), opt.size);
        FactHandle hold = solver.addFact(pred);
        FactHandle violate = solver.addFact(rel::mkNot(pred));
        std::string where = "axiom:" + axiom.name;

        std::vector<FactHandle> handles = pos;
        handles.push_back(hold);
        SolveResult can_hold = probe(handles);
        handles.back() = violate;
        SolveResult can_fail = probe(handles);
        solver.retract(hold);
        solver.retract(violate);

        if (can_hold == SolveResult::Unsat) {
            report.add({Severity::Error, "vacuity", "unsat-axiom",
                        model.name(), where,
                        "axiom rejects every well-formed execution" +
                            atSize(opt) + "; its suite is empty"});
        } else if (can_hold == SolveResult::BudgetExhausted) {
            report.add({Severity::Note, "vacuity", "probe-inconclusive",
                        model.name(), where,
                        "satisfiability probe exhausted its conflict "
                        "budget" + atSize(opt)});
        }
        if (can_fail == SolveResult::Unsat) {
            report.add({Severity::Warning, "vacuity", "tautological-axiom",
                        model.name(), where,
                        "axiom holds in every well-formed execution" +
                            atSize(opt) +
                            "; synthesis cannot distinguish it from "
                            "'true'"});
        } else if (can_fail == SolveResult::BudgetExhausted) {
            report.add({Severity::Note, "vacuity", "probe-inconclusive",
                        model.name(), where,
                        "falsifiability probe exhausted its conflict "
                        "budget" + atSize(opt)});
        }
    }
}

} // namespace lts::analysis
