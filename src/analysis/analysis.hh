/**
 * @file
 * One-stop entry point for the model static analyzer (the library behind
 * the ltslint tool): run the bounding-type, dead-definition, and solver
 * vacuity passes over a model and collect every finding in one Report.
 */

#ifndef LTS_ANALYSIS_ANALYSIS_HH
#define LTS_ANALYSIS_ANALYSIS_HH

#include "analysis/deadcode.hh"
#include "analysis/report.hh"
#include "analysis/symmetry.hh"
#include "analysis/types.hh"
#include "analysis/vacuity.hh"
#include "mm/model.hh"

namespace lts::analysis
{

/** Options shared by every pass. */
struct AnalysisOptions
{
    size_t size = 4;     ///< instantiation size for facts and axioms
    bool probes = true;  ///< run the solver vacuity probes
    ProbeOptions probe;  ///< solver probe knobs (probe.size tracks size)
};

/** Run all passes over @p model, appending findings to @p report. */
void analyzeModel(const mm::Model &model, const AnalysisOptions &opt,
                  Report &report);

} // namespace lts::analysis

#endif // LTS_ANALYSIS_ANALYSIS_HH
