/**
 * @file
 * Findings container for the static analyzer.
 *
 * Every analysis pass reports Finding records into one Report. A finding
 * carries a severity, the pass that produced it, a stable machine code
 * (e.g. "empty-join"), the model and source label it anchors to, and a
 * human-readable message. The report renders both as aligned text for
 * terminals and as JSON for CI tooling, and decides the lint exit status
 * (errors always fail; warnings fail under --Werror; notes never fail).
 */

#ifndef LTS_ANALYSIS_REPORT_HH
#define LTS_ANALYSIS_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace lts::analysis
{

/** Finding severities, ordered from informational to fatal. */
enum class Severity
{
    Note,    ///< informational; never fails the lint
    Warning, ///< suspicious; fails only under --Werror
    Error,   ///< definitely wrong; always fails the lint
};

/** Printable severity name ("note", "warning", "error"). */
std::string toString(Severity s);

/** One diagnostic produced by an analysis pass. */
struct Finding
{
    Severity severity = Severity::Warning;
    std::string pass;    ///< "types", "deadcode", or "vacuity"
    std::string code;    ///< stable machine code, e.g. "empty-join"
    std::string model;   ///< model name the finding is about
    std::string where;   ///< source label, e.g. "axiom:causality"
    std::string message; ///< human-readable explanation
};

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** An ordered collection of findings with rendering and exit logic. */
class Report
{
  public:
    void add(Finding f) { findingList.push_back(std::move(f)); }

    const std::vector<Finding> &findings() const { return findingList; }

    size_t count(Severity s) const;

    bool empty() const { return findingList.empty(); }

    /**
     * True when the lint should exit 0: no errors, and no warnings when
     * @p werror promotes warnings to errors.
     */
    bool clean(bool werror) const;

    /** One "severity: [pass/code] model/where: message" line per finding. */
    std::string text() const;

    /** Machine-readable rendering: {"findings": [...], "counts": {...}}. */
    std::string json() const;

  private:
    std::vector<Finding> findingList;
};

} // namespace lts::analysis

#endif // LTS_ANALYSIS_REPORT_HH
