/**
 * @file
 * Factories for the memory models studied in the paper's case studies.
 *
 * Each factory transliterates the corresponding axiomatic formulation:
 *
 *  - makeSc():    sequential consistency (Lamport 1979)
 *  - makeTso():   the paper's Figure 4 TSO (Alglave-style + RMW)
 *  - makePower(): herding-cats Power (Alglave et al. 2014, Figure 15),
 *                 with the ppo fixpoint of ii/ic/ci/cc unrolled
 *  - makeArmv7(): the Power variant without lwsync (Section 6.2)
 *  - makeScc():   Streamlined Causal Consistency (Figures 17 and 19),
 *                 including the lone-sc workaround
 *  - makeC11():   a release/acquire/SC fragment of C/C++11 after Batty et
 *                 al. (Section 6.4); out-of-thin-air is deliberately not
 *                 axiomatized, per Section 3.3 of the paper
 */

#ifndef LTS_MM_MODELS_HH
#define LTS_MM_MODELS_HH

#include <memory>

#include "mm/model.hh"

namespace lts::mm
{

std::unique_ptr<Model> makeSc();
std::unique_ptr<Model> makeTso();
std::unique_ptr<Model> makePower();
std::unique_ptr<Model> makeArmv7();
std::unique_ptr<Model> makeScc();

/**
 * SCC without the Figure 19 workaround: causality's relaxed variant is
 * the strict Figure 5c check. Exhibits the SB false negative; used by
 * the criterion ablation and the sound-engine tests.
 */
std::unique_ptr<Model> makeSccStrict();
std::unique_ptr<Model> makeC11();

/**
 * Scoped SCC ("sscc"): SCC with OpenCL/HSA-style workgroup/system
 * scopes, exercising the DS relaxation (stand-in for the scoped models
 * of Table 2).
 */
std::unique_ptr<Model> makeScopedScc();

/**
 * The unrolled Power preserved-program-order (ppo) fixpoint: the least
 * solution of the mutually recursive ii/ic/ci/cc equations, unrolled far
 * enough for a universe of @p n events. Exposed for testing against the
 * exact concrete fixpoint.
 */
rel::ExprPtr powerPpo(const Env &env, size_t n);

/** Power's fence-ordering relation (sync plus lwsync-minus-W->R). */
rel::ExprPtr powerFences(const Env &env);

/** Power's prop relation (write propagation order). */
rel::ExprPtr powerProp(const Env &env, size_t n);

} // namespace lts::mm

#endif // LTS_MM_MODELS_HH
