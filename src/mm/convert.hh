/**
 * @file
 * Conversions between the litmus-test IR and relational instances.
 *
 * The synthesizer works in instance space (relations over atoms); suites,
 * printers, and the canonicalizer work on LitmusTest. These converters
 * are the bridge: toInstance embeds a test (and optionally an outcome)
 * into a model's vocabulary, and fromInstance reads a synthesized
 * instance back out as a test plus its witness (forbidden) outcome.
 */

#ifndef LTS_MM_CONVERT_HH
#define LTS_MM_CONVERT_HH

#include "litmus/test.hh"
#include "mm/model.hh"
#include "rel/instance.hh"

namespace lts::mm
{

/**
 * Embed @p test with execution @p outcome into @p model's vocabulary.
 * Throws if the test uses a feature the model lacks (e.g. dependencies in
 * TSO, or an annotation with no corresponding set).
 *
 * When the model carries an explicit sc order (SCC), @p sc_order gives
 * the coherence of SC fences (pairs of event ids); it may be empty.
 */
rel::Instance toInstance(const Model &model, const litmus::LitmusTest &test,
                         const litmus::Outcome &outcome,
                         const std::vector<std::pair<int, int>> &sc_order = {});

/**
 * Read a well-formed instance back as a litmus test; the instance's
 * rf/co become the test's forbidden outcome.
 */
litmus::LitmusTest fromInstance(const Model &model,
                                const rel::Instance &inst);

/** Map a memory-order annotation to the model's set name ("" = none). */
std::string annotationSet(const Model &model, litmus::MemOrder order);

} // namespace lts::mm

#endif // LTS_MM_CONVERT_HH
