#include "mm/convert.hh"

#include <stdexcept>

#include "mm/exprs.hh"

namespace lts::mm
{

using litmus::Event;
using litmus::EventType;
using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::Outcome;

std::string
annotationSet(const Model &model, MemOrder order)
{
    (void)model; // reserved: per-model annotation naming
    switch (order) {
      case MemOrder::Plain:
        return "";
      case MemOrder::Consume:
        throw std::invalid_argument(
            "consume is not modeled (treated as deprecated per Batty et "
            "al.); use Acquire");
      case MemOrder::Acquire:
        return kAcq;
      case MemOrder::Release:
        return kRel;
      case MemOrder::AcqRel:
        return kAcqRel;
      case MemOrder::SeqCst:
        return kSc;
    }
    return "";
}

rel::Instance
toInstance(const Model &model, const LitmusTest &test, const Outcome &outcome,
           const std::vector<std::pair<int, int>> &sc_order)
{
    size_t n = test.size();
    const rel::Vocabulary &vocab = model.vocab();
    rel::Instance inst(vocab, n);

    auto setOf = [&](const std::string &name) -> Bitset & {
        return inst.set(vocab.find(name).id);
    };
    auto matOf = [&](const std::string &name) -> BitMatrix & {
        return inst.matrix(vocab.find(name).id);
    };

    for (const auto &e : test.events) {
        switch (e.type) {
          case EventType::Read:
            setOf(kR).set(e.id);
            break;
          case EventType::Write:
            setOf(kW).set(e.id);
            break;
          case EventType::Fence:
            if (!model.features().fences)
                throw std::invalid_argument("model " + model.name() +
                                            " has no fences");
            setOf(kF).set(e.id);
            break;
        }
        std::string annot = annotationSet(model, e.order);
        if (!annot.empty()) {
            if (!vocab.contains(annot))
                throw std::invalid_argument(
                    "model " + model.name() + " has no annotation set " +
                    annot + " needed by test " + test.name);
            setOf(annot).set(e.id);
        }
    }

    matOf(kPo) = test.poMatrix();
    matOf(kSloc) = test.sameLocMatrix();

    if (model.features().deps) {
        matOf(kAddr) = test.addrDep;
        matOf(kData) = test.dataDep;
        matOf(kCtrl) = test.ctrlDep;
    } else if (test.depMatrix().any()) {
        throw std::invalid_argument("model " + model.name() +
                                    " has no dependencies, test " +
                                    test.name + " uses them");
    }

    if (model.features().rmw) {
        matOf(kRmw) = test.rmw;
    } else if (test.rmw.any()) {
        throw std::invalid_argument("model " + model.name() +
                                    " has no rmw, test " + test.name +
                                    " uses it");
    }

    if (model.features().scopes) {
        matOf(kSameWg) = test.sameWgMatrix();
        for (const auto &e : test.events) {
            bool sync_op = e.isFence() || e.order != MemOrder::Plain;
            if (!sync_op)
                continue;
            switch (e.scope) {
              case litmus::Scope::System:
                setOf(kScopeSys).set(e.id);
                break;
              case litmus::Scope::WorkGroup:
                setOf(kScopeWg).set(e.id);
                break;
              default:
                throw std::invalid_argument(
                    "model " + model.name() +
                    " supports only WorkGroup and System scopes");
            }
        }
    } else {
        for (const auto &e : test.events) {
            if (e.scope != litmus::Scope::System)
                throw std::invalid_argument("model " + model.name() +
                                            " has no scopes, test " +
                                            test.name + " uses them");
        }
    }

    matOf(kRf) = outcome.rf;
    matOf(kCo) = outcome.co;

    if (model.features().scOrder) {
        BitMatrix sc(n);
        for (auto [a, b] : sc_order)
            sc.set(a, b);
        matOf(kScOrd) = sc;
    } else if (!sc_order.empty()) {
        throw std::invalid_argument("model " + model.name() +
                                    " has no sc order");
    }

    return inst;
}

LitmusTest
fromInstance(const Model &model, const rel::Instance &inst)
{
    size_t n = inst.universe();
    const rel::Vocabulary &vocab = model.vocab();

    auto setOf = [&](const std::string &name) -> const Bitset & {
        return inst.set(vocab.find(name).id);
    };
    auto matOf = [&](const std::string &name) -> const BitMatrix & {
        return inst.matrix(vocab.find(name).id);
    };

    LitmusTest test;
    test.events.resize(n);
    test.addrDep = BitMatrix(n);
    test.dataDep = BitMatrix(n);
    test.ctrlDep = BitMatrix(n);
    test.rmw = BitMatrix(n);

    // Threads: contiguous blocks; a new thread starts wherever atom i is
    // not same-thread with atom i-1.
    const BitMatrix &po = matOf(kPo);
    int tid = 0;
    for (size_t i = 0; i < n; i++) {
        if (i > 0 && !po.test(i - 1, i) && !po.test(i, i - 1))
            tid++;
        test.events[i].id = static_cast<int>(i);
        test.events[i].tid = tid;
    }
    test.numThreads = tid + 1;

    // Locations: sloc equivalence classes in first-occurrence order.
    const BitMatrix &sloc = matOf(kSloc);
    std::vector<int> loc(n, -1);
    int next_loc = 0;
    for (size_t i = 0; i < n; i++) {
        if (!sloc.test(i, i) || loc[i] >= 0)
            continue;
        for (size_t j = i; j < n; j++) {
            if (sloc.test(i, j))
                loc[j] = next_loc;
        }
        next_loc++;
    }
    test.numLocs = next_loc;

    for (size_t i = 0; i < n; i++) {
        Event &e = test.events[i];
        if (setOf(kR).test(i))
            e.type = EventType::Read;
        else if (setOf(kW).test(i))
            e.type = EventType::Write;
        else
            e.type = EventType::Fence;
        e.loc = e.isMemory() ? loc[i] : -1;
        e.order = MemOrder::Plain;
        if (vocab.contains(kAcq) && setOf(kAcq).test(i))
            e.order = MemOrder::Acquire;
        else if (vocab.contains(kRel) && setOf(kRel).test(i))
            e.order = MemOrder::Release;
        else if (vocab.contains(kAcqRel) && setOf(kAcqRel).test(i))
            e.order = MemOrder::AcqRel;
        else if (vocab.contains(kSc) && setOf(kSc).test(i))
            e.order = MemOrder::SeqCst;
    }

    if (model.features().deps) {
        test.addrDep = matOf(kAddr);
        test.dataDep = matOf(kData);
        test.ctrlDep = matOf(kCtrl);
    }
    if (model.features().rmw)
        test.rmw = matOf(kRmw);

    if (model.features().scopes) {
        // Scope annotations.
        for (size_t i = 0; i < n; i++) {
            if (setOf(kScopeWg).test(i))
                test.events[i].scope = litmus::Scope::WorkGroup;
            else
                test.events[i].scope = litmus::Scope::System;
        }
        // Workgroups: classes of swg over threads, labeled by first use.
        const BitMatrix &swg = matOf(kSameWg);
        std::vector<int> first_event(test.numThreads, -1);
        for (size_t i = 0; i < n; i++) {
            if (first_event[test.events[i].tid] < 0)
                first_event[test.events[i].tid] = static_cast<int>(i);
        }
        test.threadWg.assign(test.numThreads, -1);
        int next_wg = 0;
        for (int t = 0; t < test.numThreads; t++) {
            if (test.threadWg[t] >= 0)
                continue;
            test.threadWg[t] = next_wg;
            for (int u = t + 1; u < test.numThreads; u++) {
                if (swg.test(first_event[t], first_event[u]))
                    test.threadWg[u] = next_wg;
            }
            next_wg++;
        }
        if (!test.hasWorkgroups())
            test.threadWg.clear();
    }

    test.hasForbidden = true;
    test.forbidden = Outcome(n);
    test.forbidden.rf = matOf(kRf);
    test.forbidden.co = matOf(kCo);

    std::string err = test.validate();
    if (!err.empty())
        throw std::logic_error("fromInstance produced invalid test: " + err);
    return test;
}

} // namespace lts::mm
