#include "mm/exprs.hh"

namespace lts::mm
{

using namespace rel;

ExprPtr
singleton(size_t atom, size_t n)
{
    Bitset s(n);
    s.set(atom);
    return mkConst(s);
}

ExprPtr
indexLt(size_t n)
{
    BitMatrix lt(n);
    for (size_t i = 0; i < n; i++) {
        for (size_t j = i + 1; j < n; j++)
            lt.set(i, j);
    }
    return mkConst(lt);
}

FormulaPtr
cellIn(const ExprPtr &r, size_t i, size_t j, size_t n)
{
    return mkSome(mkRanRestrict(mkDomRestrict(singleton(i, n), r),
                                singleton(j, n)));
}

FormulaPtr
atomIn(const ExprPtr &s, size_t i, size_t n)
{
    return mkSome(mkIntersect(s, singleton(i, n)));
}

ExprPtr
mem(const Env &env)
{
    return env.get(kR) + env.get(kW);
}

ExprPtr
poLoc(const Env &env)
{
    return env.get(kPo) & env.get(kSloc);
}

ExprPtr
sameThread(const Env &env)
{
    return env.get(kPo) + mkTranspose(env.get(kPo));
}

ExprPtr
fr(const Env &env)
{
    ExprPtr same_loc_rw = mkRanRestrict(
        mkDomRestrict(env.get(kR), env.get(kSloc)), env.get(kW));
    ExprPtr reaches_back = mkJoin(mkTranspose(env.get(kRf)),
                                  mkRClosure(mkTranspose(env.get(kCo))));
    return same_loc_rw - reaches_back;
}

ExprPtr
com(const Env &env)
{
    return env.get(kRf) + env.get(kCo) + fr(env);
}

ExprPtr
external(const Env &env, const ExprPtr &r)
{
    return r - sameThread(env);
}

ExprPtr
internal(const Env &env, const ExprPtr &r)
{
    return r & sameThread(env);
}

ExprPtr
rfe(const Env &env)
{
    return external(env, env.get(kRf));
}

ExprPtr
rfi(const Env &env)
{
    return internal(env, env.get(kRf));
}

ExprPtr
coe(const Env &env)
{
    return external(env, env.get(kCo));
}

ExprPtr
fre(const Env &env)
{
    return external(env, fr(env));
}

ExprPtr
fenceOrder(const Env &env, const ExprPtr &fence_set)
{
    return mkJoin(mkRanRestrict(env.get(kPo), fence_set), env.get(kPo));
}

} // namespace lts::mm
