/**
 * @file
 * Sequential consistency (Lamport 1979) in the axiomatic style: all
 * communication and program order embed into one total execution order,
 * i.e. acyclic(po + rf + co + fr). RMW pairs are supported so DRMW and
 * the rmw_atomicity axiom are exercised even in the simplest model.
 */

#include "mm/exprs.hh"
#include "mm/models.hh"

namespace lts::mm
{

using namespace rel;

std::unique_ptr<Model>
makeSc()
{
    ModelFeatures feats;
    feats.fences = false; // fences are meaningless under SC
    feats.rmw = true;

    auto model = std::make_unique<Model>("sc", feats);

    model->addAxiom(Axiom{
        "sequential_consistency",
        [](const Model &, const Env &env, size_t) {
            return mkAcyclic(env.get(kPo) + com(env));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "rmw_atomicity",
        [](const Model &, const Env &env, size_t) {
            return mkNo(mkJoin(fr(env), env.get(kCo)) & env.get(kRmw));
        },
        nullptr,
    });

    model->addRelaxation(makeRI());
    model->addRelaxation(makeDRMW());
    return model;
}

} // namespace lts::mm
