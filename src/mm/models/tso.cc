/**
 * @file
 * Total Store Order, transliterated from Figure 4 of the paper (the
 * Alglave-style formulation extended with atomic read-modify-writes):
 *
 *     pred tso {
 *       acyclic[rf + co + fr + po_loc]            // SC per Location
 *       no fre.coe & rmw                          // RMW Atomicity
 *       acyclic[rfe + co + fr + ppo + fence]      // Causality
 *     }
 *
 * with ppo = po - (Write->Read) and fence = (po :> Fence).po. The suite
 * comparison against Owens et al.'s x86-TSO tests (Table 4) runs against
 * this model.
 */

#include "mm/exprs.hh"
#include "mm/models.hh"

namespace lts::mm
{

using namespace rel;

namespace
{

/** Preserved program order: everything but write-to-read pairs. */
ExprPtr
tsoPpo(const Env &env)
{
    return env.get(kPo) - mkProduct(env.get(kW), env.get(kR));
}

} // namespace

std::unique_ptr<Model>
makeTso()
{
    ModelFeatures feats;
    feats.fences = true; // mfence
    feats.rmw = true;

    auto model = std::make_unique<Model>("tso", feats);

    model->addAxiom(Axiom{
        "sc_per_loc",
        [](const Model &, const Env &env, size_t) {
            return mkAcyclic(com(env) + poLoc(env));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "rmw_atomicity",
        [](const Model &, const Env &env, size_t) {
            return mkNo(mkJoin(fre(env), coe(env)) & env.get(kRmw));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "causality",
        [](const Model &, const Env &env, size_t) {
            ExprPtr fence = fenceOrder(env, env.get(kF));
            return mkAcyclic(rfe(env) + env.get(kCo) + fr(env) +
                             tsoPpo(env) + fence);
        },
        nullptr,
    });

    model->addRelaxation(makeRI());
    model->addRelaxation(makeDRMW());
    return model;
}

} // namespace lts::mm
