/**
 * @file
 * Scoped Streamlined Causal Consistency ("sscc") — SCC extended with
 * OpenCL/HSA-style synchronization scopes, standing in for the scoped
 * models of Table 2 (HSA, OpenCL) so the DS (demote scope) relaxation is
 * exercised end to end.
 *
 * Threads are grouped into workgroups (the swg equivalence). Every
 * synchronizing operation (acquire read, release write, fence) carries a
 * scope: workgroup or system. A release-acquire synchronization edge
 * takes effect only when both endpoints' scopes cover their distance —
 * same-workgroup pairs synchronize at any scope, cross-workgroup pairs
 * only when both ends are system-scoped (the "too narrow scope is
 * insufficient" behavior of Section 3.2's DS discussion). FenceSC is
 * always system-scoped. Everything else is SCC (Figure 17), including
 * the lone-sc workaround.
 */

#include "mm/exprs.hh"
#include "mm/models.hh"

namespace lts::mm
{

using namespace rel;

namespace
{

/** Scope-effective synchronization: SCC sync gated by scope coverage. */
ExprPtr
scopedSync(const Env &env)
{
    ExprPtr f = env.get(kF);
    ExprPtr acq = env.get(kAcq);
    ExprPtr rel_set = env.get(kRel);
    ExprPtr po = env.get(kPo);

    ExprPtr prefix = mkIden() + mkDomRestrict(f, po) +
                     mkDomRestrict(rel_set, poLoc(env));
    ExprPtr suffix = mkIden() + mkRanRestrict(po, f) +
                     mkRanRestrict(poLoc(env), acq);
    ExprPtr chain = mkClosure(env.get(kRf) + env.get(kRmw));
    ExprPtr releasers = rel_set + f;
    ExprPtr acquirers = acq + f;
    ExprPtr sync = mkRanRestrict(
        mkDomRestrict(releasers, mkJoin(prefix, mkJoin(chain, suffix))),
        acquirers);

    // Coverage: same workgroup, or both endpoints system-scoped.
    ExprPtr s_sys = env.get(kScopeSys);
    ExprPtr covered = env.get(kSameWg) + mkProduct(s_sys, s_sys);
    return sync & covered;
}

ExprPtr
scopedCause(const Env &env, const ExprPtr &sc)
{
    ExprPtr po_star = mkRClosure(env.get(kPo));
    return mkJoin(po_star, mkJoin(sc + scopedSync(env), po_star));
}

FormulaPtr
scopedCausality(const Env &env, const ExprPtr &sc)
{
    return mkIrreflexive(
        mkJoin(mkRClosure(com(env)), mkClosure(scopedCause(env, sc))));
}

} // namespace

std::unique_ptr<Model>
makeScopedScc()
{
    ModelFeatures feats;
    feats.fences = true;
    feats.deps = true;
    feats.rmw = true;
    feats.acqRelAccess = true;
    feats.acqRelFence = true;
    feats.scFence = true;
    feats.scOrder = true;
    feats.scopes = true;

    auto model = std::make_unique<Model>("sscc", feats);

    model->addExtraFact(
        "sscc.annotation-carriers",
        [](const Model &, const Env &env, size_t) {
        return mkAndAll({
            mkSubset(env.get(kAcq), env.get(kR)),
            mkSubset(env.get(kRel), env.get(kW)),
            mkSubset(env.get(kF), env.get(kAcqRel) + env.get(kSc)),
            // FenceSC is inherently system-scoped.
            mkSubset(env.get(kF) & env.get(kSc), env.get(kScopeSys)),
        });
    });

    model->addAxiom(Axiom{
        "sc_per_loc",
        [](const Model &, const Env &env, size_t) {
            return mkAcyclic(com(env) + poLoc(env));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "no_thin_air",
        [](const Model &, const Env &env, size_t) {
            ExprPtr dep =
                env.get(kAddr) + env.get(kData) + env.get(kCtrl);
            return mkAcyclic(env.get(kRf) + dep);
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "rmw_atomicity",
        [](const Model &, const Env &env, size_t) {
            return mkNo(mkJoin(fr(env), env.get(kCo)) & env.get(kRmw));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "causality",
        [](const Model &, const Env &env, size_t) {
            return scopedCausality(env, env.get(kScOrd));
        },
        [](const Model &, const Env &env, size_t) {
            return scopedCausality(env, env.get(kScOrd)) ||
                   scopedCausality(env, mkTranspose(env.get(kScOrd)));
        },
    });

    model->addRelaxation(makeRI());
    model->addRelaxation(makeRD());
    model->addRelaxation(makeDRMW());
    model->addRelaxation(
        makeDemote(RTag::DMO, "DMO(acq->rlx)", kAcq, std::nullopt, kR));
    model->addRelaxation(
        makeDemote(RTag::DMO, "DMO(rel->rlx)", kRel, std::nullopt, kW));
    {
        Relaxation df = makeDemote(RTag::DF, "DF(sc->ar)", kSc, kAcqRel, kF);
        auto base_perturb = df.perturb;
        df.perturb = [base_perturb](const Env &env, const ExprPtr &ev,
                                    size_t n) {
            Env out = base_perturb(env, ev, n);
            ExprPtr keep = mkUniv() - ev;
            out.set(kScOrd, mkRanRestrict(
                                mkDomRestrict(keep, env.get(kScOrd)), keep));
            // A demoted FenceSC drops to workgroup-visible default? No:
            // it keeps its (system) scope; only its sc participation and
            // SC strength go away.
            return out;
        };
        model->addRelaxation(df);
    }
    model->addRelaxation(
        makeDemote(RTag::DF, "DF(ar->rlx)", kAcqRel, std::nullopt, kF));

    // DS: narrow a system-scoped synchronizing op to workgroup scope.
    // FenceSC is excluded (pinned to system scope by the facts above).
    {
        Relaxation ds;
        ds.tag = RTag::DS;
        ds.name = "DS(sys->wg)";
        ds.applies = [](const Env &env, const ExprPtr &ev, size_t) {
            ExprPtr fence_sc = env.get(kF) & env.get(kSc);
            return mkSome((ev & env.get(kScopeSys)) - fence_sc);
        };
        ds.perturb = [](const Env &env, const ExprPtr &ev, size_t) {
            Env out = env;
            out.set(kScopeSys, env.get(kScopeSys) - ev);
            out.set(kScopeWg, env.get(kScopeWg) + ev);
            return out;
        };
        model->addRelaxation(ds);
    }
    return model;
}

} // namespace lts::mm
