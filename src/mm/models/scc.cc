/**
 * @file
 * Streamlined Causal Consistency (SCC), the model the paper introduces in
 * Section 6.3 (Figure 17), including the lone-sc workaround of Figure 19.
 *
 *     pred scc {
 *       acyclic[rf + co + fr + po_loc]      // SC per Location
 *       acyclic[rf + dep]                   // No Thin-Air values
 *       no fr.co & rmw                      // RMW Atomicity
 *       irreflexive[*(rf + co + fr).^cause] // Causality
 *     }
 *     prefix = iden + (Fence <: po) + (Release <: po_loc)
 *     suffix = iden + (po :> Fence) + (po_loc :> Acquire)
 *     sync   = Releasers <: prefix.^(rf+rmw).suffix :> Acquirers
 *     cause  = *po.(sc + sync).*po
 *
 * The sc relation is a total order over FenceSC instructions. Because sc
 * is an auxiliary execution relation, the Figure 5c phrasing of the
 * minimality criterion would under-approximate (the SB discussion of
 * Figure 18); the model therefore constrains tests to at most one sc edge
 * and checks relaxed executions against causality_wa (Figure 19), which
 * also tries the reversed sc edge.
 */

#include "mm/exprs.hh"
#include "mm/models.hh"

namespace lts::mm
{

using namespace rel;

namespace
{

ExprPtr
sccSync(const Env &env)
{
    ExprPtr f = env.get(kF);
    ExprPtr acq = env.get(kAcq);
    ExprPtr rel_set = env.get(kRel);
    ExprPtr po = env.get(kPo);

    ExprPtr prefix = mkIden() + mkDomRestrict(f, po) +
                     mkDomRestrict(rel_set, poLoc(env));
    ExprPtr suffix = mkIden() + mkRanRestrict(po, f) +
                     mkRanRestrict(poLoc(env), acq);
    ExprPtr chain = mkClosure(env.get(kRf) + env.get(kRmw));
    ExprPtr releasers = rel_set + f;
    ExprPtr acquirers = acq + f;
    return mkRanRestrict(
        mkDomRestrict(releasers, mkJoin(prefix, mkJoin(chain, suffix))),
        acquirers);
}

/** cause with the given sc edge orientation. */
ExprPtr
sccCause(const Env &env, const ExprPtr &sc)
{
    ExprPtr po_star = mkRClosure(env.get(kPo));
    return mkJoin(po_star, mkJoin(sc + sccSync(env), po_star));
}

FormulaPtr
sccCausality(const Env &env, const ExprPtr &sc)
{
    return mkIrreflexive(
        mkJoin(mkRClosure(com(env)), mkClosure(sccCause(env, sc))));
}

} // namespace

namespace
{

std::unique_ptr<Model> makeSccImpl(bool workaround);

} // namespace

std::unique_ptr<Model>
makeScc()
{
    return makeSccImpl(true);
}

std::unique_ptr<Model>
makeSccStrict()
{
    return makeSccImpl(false);
}

namespace
{

std::unique_ptr<Model>
makeSccImpl(bool workaround)
{
    ModelFeatures feats;
    feats.fences = true;
    feats.deps = true; // used by no_thin_air only
    feats.rmw = true;
    feats.acqRelAccess = true; // Acquire reads, Release writes
    feats.acqRelFence = true;  // FenceAcqRel
    feats.scFence = true;      // FenceSC
    feats.scOrder = true;      // explicit sc total order (lone, Figure 19)

    auto model = std::make_unique<Model>(workaround ? "scc" : "scc-strict",
                                         feats);

    // SCC annotations: acquires are reads, releases are writes (the
    // ARMv8-like opcodes of Figure 17), fences are AcqRel or SC.
    model->addExtraFact(
        "scc.annotation-carriers",
        [](const Model &, const Env &env, size_t) {
        return mkAndAll({
            mkSubset(env.get(kAcq), env.get(kR)),
            mkSubset(env.get(kRel), env.get(kW)),
            mkSubset(env.get(kF), env.get(kAcqRel) + env.get(kSc)),
        });
    });

    model->addAxiom(Axiom{
        "sc_per_loc",
        [](const Model &, const Env &env, size_t) {
            return mkAcyclic(com(env) + poLoc(env));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "no_thin_air",
        [](const Model &, const Env &env, size_t) {
            ExprPtr dep =
                env.get(kAddr) + env.get(kData) + env.get(kCtrl);
            return mkAcyclic(env.get(kRf) + dep);
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "rmw_atomicity",
        [](const Model &, const Env &env, size_t) {
            return mkNo(mkJoin(fr(env), env.get(kCo)) & env.get(kRmw));
        },
        nullptr,
    });
    Axiom causality;
    causality.name = "causality";
    causality.pred = [](const Model &, const Env &env, size_t) {
        return sccCausality(env, env.get(kScOrd));
    };
    if (workaround) {
        // Figure 19: when checking relaxed executions, also accept the
        // reversed sc edge, emulating enumeration over sc orders.
        causality.relaxedPred = [](const Model &, const Env &env, size_t) {
            return sccCausality(env, env.get(kScOrd)) ||
                   sccCausality(env, mkTranspose(env.get(kScOrd)));
        };
    }
    model->addAxiom(std::move(causality));

    model->addRelaxation(makeRI());
    model->addRelaxation(makeRD());
    model->addRelaxation(makeDRMW());
    model->addRelaxation(
        makeDemote(RTag::DMO, "DMO(acq->rlx)", kAcq, std::nullopt, kR));
    model->addRelaxation(
        makeDemote(RTag::DMO, "DMO(rel->rlx)", kRel, std::nullopt, kW));
    // FenceSC -> FenceAcqRel also drops the fence's sc edges.
    {
        Relaxation df = makeDemote(RTag::DF, "DF(sc->ar)", kSc, kAcqRel, kF);
        auto base_perturb = df.perturb;
        df.perturb = [base_perturb](const Env &env, const ExprPtr &ev,
                                    size_t n) {
            Env out = base_perturb(env, ev, n);
            ExprPtr keep = mkUniv() - ev;
            out.set(kScOrd, mkRanRestrict(
                                mkDomRestrict(keep, env.get(kScOrd)), keep));
            return out;
        };
        model->addRelaxation(df);
    }
    model->addRelaxation(
        makeDemote(RTag::DF, "DF(ar->rlx)", kAcqRel, std::nullopt, kF));
    return model;
}

} // namespace

} // namespace lts::mm
