/**
 * @file
 * A C/C++11 fragment (Section 6.4 of the paper), following the shape of
 * Batty et al.'s formalization restricted to atomics with the
 * release/acquire/seq_cst machinery:
 *
 *  - sw (synchronizes-with) from release writes/fences to acquire
 *    reads/fences through rf (and rmw chains, subsuming release
 *    sequences through read-modify-writes);
 *  - hb = (po + sw)^+;
 *  - coherence as irreflexive(hb ; eco?) with eco = (rf + co + fr)^+,
 *    which folds the CoRR/CoWR/CoRW/CoWW shapes and rf-consistency into
 *    one axiom;
 *  - RMW atomicity;
 *  - a simplified SC axiom: the seq_cst events embed into a total order
 *    consistent with hb, co and fr (acyclicity of their restriction).
 *
 * Deliberate simplifications, documented per DESIGN.md: non-atomic
 * accesses and data races are out of scope (every access is atomic),
 * consume is dropped (deprecated in practice and treated specially in
 * every formalization), and — exactly as the paper discusses in Sections
 * 3.3 and 6.4 — no out-of-thin-air axiom is included, so the RD
 * relaxation does not apply.
 */

#include "mm/exprs.hh"
#include "mm/models.hh"

namespace lts::mm
{

using namespace rel;

namespace
{

/** Synchronizes-with. */
ExprPtr
c11Sw(const Env &env)
{
    ExprPtr f = env.get(kF);
    ExprPtr po = env.get(kPo);
    ExprPtr rel_plus =
        env.get(kRel) + env.get(kAcqRel) + env.get(kSc); // release or more
    ExprPtr acq_plus =
        env.get(kAcq) + env.get(kAcqRel) + env.get(kSc); // acquire or more

    ExprPtr releasers = (env.get(kW) + f) & rel_plus;
    ExprPtr acquirers = (env.get(kR) + f) & acq_plus;

    ExprPtr prefix = mkIden() + mkDomRestrict(f, po);
    ExprPtr suffix = mkIden() + mkRanRestrict(po, f);
    ExprPtr chain = mkClosure(env.get(kRf) + env.get(kRmw));
    return mkRanRestrict(
        mkDomRestrict(releasers, mkJoin(prefix, mkJoin(chain, suffix))),
        acquirers);
}

/** Happens-before. */
ExprPtr
c11Hb(const Env &env)
{
    return mkClosure(env.get(kPo) + c11Sw(env));
}

} // namespace

std::unique_ptr<Model>
makeC11()
{
    ModelFeatures feats;
    feats.fences = true;
    feats.deps = false; // no out-of-thin-air axiom => RD not applicable
    feats.rmw = true;
    feats.acqRelAccess = true;
    feats.scAccess = true;
    feats.acqRelFence = true;
    feats.scFence = true;

    auto model = std::make_unique<Model>("c11", feats);

    // C11 fences must carry an ordering annotation (a relaxed fence is a
    // no-op and excluded); acq_rel on accesses only arises from RMW
    // halves, which here carry their own acquire/release annotations.
    model->addExtraFact(
        "c11.annotation-carriers",
        [](const Model &, const Env &env, size_t) {
        return mkAndAll({
            mkSubset(env.get(kF), env.get(kAcq) + env.get(kRel) +
                                      env.get(kAcqRel) + env.get(kSc)),
            mkSubset(env.get(kAcqRel), env.get(kF)),
            mkSubset(env.get(kAcq), env.get(kR) + env.get(kF)),
            mkSubset(env.get(kRel), env.get(kW) + env.get(kF)),
        });
    });

    model->addAxiom(Axiom{
        "coherence",
        [](const Model &, const Env &env, size_t) {
            ExprPtr eco = mkClosure(com(env));
            return mkIrreflexive(mkJoin(c11Hb(env), mkIden() + eco));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "rmw_atomicity",
        [](const Model &, const Env &env, size_t) {
            return mkNo(mkJoin(fr(env), env.get(kCo)) & env.get(kRmw));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "seq_cst",
        [](const Model &, const Env &env, size_t) {
            ExprPtr sc = env.get(kSc);
            ExprPtr order = c11Hb(env) + env.get(kCo) + fr(env);
            return mkAcyclic(mkRanRestrict(mkDomRestrict(sc, order), sc));
        },
        nullptr,
    });

    model->addRelaxation(makeRI());
    model->addRelaxation(makeDRMW());
    // One-step DMO demotions along Table 1.
    model->addRelaxation(makeDemote(RTag::DMO, "DMO(R:sc->acq)", kSc, kAcq,
                                    kR));
    model->addRelaxation(makeDemote(RTag::DMO, "DMO(W:sc->rel)", kSc, kRel,
                                    kW));
    model->addRelaxation(
        makeDemote(RTag::DMO, "DMO(R:acq->rlx)", kAcq, std::nullopt, kR));
    model->addRelaxation(
        makeDemote(RTag::DMO, "DMO(W:rel->rlx)", kRel, std::nullopt, kW));
    // One-step DF demotions for fences.
    model->addRelaxation(makeDemote(RTag::DF, "DF(sc->acq_rel)", kSc,
                                    kAcqRel, kF));
    model->addRelaxation(makeDemote(RTag::DF, "DF(acq_rel->acq)", kAcqRel,
                                    kAcq, kF));
    model->addRelaxation(makeDemote(RTag::DF, "DF(acq_rel->rel)", kAcqRel,
                                    kRel, kF));
    model->addRelaxation(
        makeDemote(RTag::DF, "DF(acq->rlx)", kAcq, std::nullopt, kF));
    model->addRelaxation(
        makeDemote(RTag::DF, "DF(rel->rlx)", kRel, std::nullopt, kF));
    return model;
}

} // namespace lts::mm
