/**
 * @file
 * The Power memory model of Alglave, Maranget & Tautschnig ("Herding
 * Cats", TOPLAS 2014), as used in Section 6.2 / Figure 15 of the paper:
 *
 *     acyclic[rf + co + fr + po_loc]           // SC per Location
 *     acyclic[ppo + fences + rfe]              // No Thin-Air
 *     irreflexive[fre.prop.*(ppo+fences+rfe)]  // Observation
 *     acyclic[co + prop]                       // Propagation
 *
 * ppo is the least fixed point of the four mutually recursive relations
 * ii/ic/ci/cc; here the fixpoint is unrolled symbolically far enough for
 * the bounded universe (tests/mm verify the unrolling against the exact
 * concrete fixpoint). Fences: sync is a SeqCst-annotated fence, lwsync an
 * AcqRel-annotated one. ctrl+isync (cfence) and eieio are not modeled —
 * the latter matching the paper's note that eieio lacks an axiomatic
 * formalization.
 *
 * ARMv7 (Section 6.2) is the same skeleton without lwsync.
 */

#include "mm/exprs.hh"
#include "mm/models.hh"

namespace lts::mm
{

using namespace rel;

namespace
{

/** Number of fixpoint unrolling rounds adequate for n events. */
size_t
unrollRounds(size_t n)
{
    // Each round at least doubles the length of derivations each relation
    // can justify (ii;ii, cc;cc, and the cross terms); ppo edges live in a
    // universe with at most n*n pairs, so 2*ceil(log2(n)) + 2 rounds are
    // comfortably past the fixpoint for the sizes we synthesize at.
    size_t rounds = 2;
    size_t reach = 1;
    while (reach < n) {
        reach *= 2;
        rounds += 2;
    }
    return rounds;
}

} // namespace

ExprPtr
powerPpo(const Env &env, size_t n)
{
    ExprPtr r = env.get(kR);
    ExprPtr w = env.get(kW);
    ExprPtr po = env.get(kPo);

    ExprPtr dp = env.get(kAddr) + env.get(kData);
    ExprPtr rdw = poLoc(env) & mkJoin(fre(env), rfe(env));
    ExprPtr detour = poLoc(env) & mkJoin(coe(env), rfe(env));

    ExprPtr ii0 = dp + rdw + rfi(env);
    ExprPtr ic0 = mkNone(2);
    ExprPtr ci0 = detour; // ctrl+isync (cfence) not modeled
    ExprPtr cc0 =
        dp + poLoc(env) + env.get(kCtrl) + mkJoin(env.get(kAddr), po);

    ExprPtr ii = ii0;
    ExprPtr ic = ic0;
    ExprPtr ci = ci0;
    ExprPtr cc = cc0;
    for (size_t round = 0; round < unrollRounds(n); round++) {
        ExprPtr ii_next = ii0 + ci + mkJoin(ic, ci) + mkJoin(ii, ii);
        ExprPtr ic_next = ic0 + ii + cc + mkJoin(ic, cc) + mkJoin(ii, ic);
        ExprPtr ci_next = ci0 + mkJoin(ci, ii) + mkJoin(cc, ci);
        ExprPtr cc_next = cc0 + ci + mkJoin(ci, ic) + mkJoin(cc, cc);
        ii = ii_next;
        ic = ic_next;
        ci = ci_next;
        cc = cc_next;
    }

    return (mkProduct(r, r) & ii) + (mkProduct(r, w) & ic);
}

ExprPtr
powerFences(const Env &env)
{
    ExprPtr f = env.get(kF);
    ExprPtr sync = f & env.get(kSc);
    ExprPtr ff = fenceOrder(env, sync);
    ExprPtr fences = ff;
    if (env.has(kAcqRel)) {
        ExprPtr lw = f & env.get(kAcqRel);
        ExprPtr lwf = fenceOrder(env, lw) -
                      mkProduct(env.get(kW), env.get(kR));
        fences = fences + lwf;
    }
    return fences;
}

ExprPtr
powerProp(const Env &env, size_t n)
{
    ExprPtr w = env.get(kW);
    ExprPtr fences = powerFences(env);
    ExprPtr ff = fenceOrder(env, env.get(kF) & env.get(kSc));
    ExprPtr hb = powerPpo(env, n) + fences + rfe(env);

    ExprPtr prop_base =
        mkJoin(fences + mkJoin(rfe(env), fences), mkRClosure(hb));
    ExprPtr prop_w = mkProduct(w, w) & prop_base;
    ExprPtr chained = mkJoin(
        mkRClosure(com(env)),
        mkJoin(mkRClosure(prop_base), mkJoin(ff, mkRClosure(hb))));
    return prop_w + chained;
}

namespace
{

std::unique_ptr<Model>
makePowerLike(const std::string &name, bool has_lwsync)
{
    ModelFeatures feats;
    feats.fences = true;
    feats.deps = true;
    feats.rmw = true;
    feats.scFence = true;           // sync / dmb
    feats.acqRelFence = has_lwsync; // lwsync

    auto model = std::make_unique<Model>(name, feats);

    // Every fence is one of the architected fences.
    model->addExtraFact(
        "power.fence-kinds",
        [has_lwsync](const Model &, const Env &env, size_t) {
        ExprPtr allowed = env.get(kSc);
        if (has_lwsync)
            allowed = allowed + env.get(kAcqRel);
        return mkSubset(env.get(kF), allowed);
    });

    model->addAxiom(Axiom{
        "sc_per_loc",
        [](const Model &, const Env &env, size_t) {
            return mkAcyclic(com(env) + poLoc(env));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "no_thin_air",
        [](const Model &, const Env &env, size_t n) {
            return mkAcyclic(powerPpo(env, n) + powerFences(env) + rfe(env));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "observation",
        [](const Model &, const Env &env, size_t n) {
            ExprPtr hb = powerPpo(env, n) + powerFences(env) + rfe(env);
            return mkIrreflexive(mkJoin(
                fre(env), mkJoin(powerProp(env, n), mkRClosure(hb))));
        },
        nullptr,
    });
    model->addAxiom(Axiom{
        "propagation",
        [](const Model &, const Env &env, size_t n) {
            return mkAcyclic(env.get(kCo) + powerProp(env, n));
        },
        nullptr,
    });

    model->addRelaxation(makeRI());
    model->addRelaxation(makeRD());
    model->addRelaxation(makeDRMW());
    if (has_lwsync) {
        model->addRelaxation(
            makeDemote(RTag::DF, "DF(sync->lwsync)", kSc, kAcqRel, kF));
    }
    return model;
}

} // namespace

std::unique_ptr<Model>
makePower()
{
    return makePowerLike("power", true);
}

std::unique_ptr<Model>
makeArmv7()
{
    return makePowerLike("armv7", false);
}

} // namespace lts::mm
