/**
 * @file
 * Shared derived-relation helpers used by every memory model.
 *
 * These are the standard definitions of Section 2.2 of the paper: po_loc,
 * from-reads (fr), internal/external splits (rfi/rfe, coe, fre), and the
 * communication union com. They are written against an Env so the same
 * definition serves both the base and the perturbed instantiations.
 */

#ifndef LTS_MM_EXPRS_HH
#define LTS_MM_EXPRS_HH

#include "common/bitset.hh"
#include "mm/env.hh"
#include "rel/expr.hh"
#include "rel/formula.hh"

namespace lts::mm
{

// Canonical relation names. Unary type sets:
inline const std::string kR = "R";          ///< reads
inline const std::string kW = "W";          ///< writes
inline const std::string kF = "F";          ///< fences
inline const std::string kAcq = "ACQ";      ///< acquire annotation
inline const std::string kRel = "REL";      ///< release annotation
inline const std::string kAcqRel = "AR";    ///< acq_rel / lwsync-class
inline const std::string kSc = "SCA";       ///< seq_cst / sync-class
// Binary relations:
inline const std::string kPo = "po";        ///< program order (transitive)
inline const std::string kSloc = "sloc";    ///< same location (equivalence)
inline const std::string kRf = "rf";        ///< reads-from
inline const std::string kCo = "co";        ///< coherence (transitive)
inline const std::string kAddr = "addr";    ///< address dependency
inline const std::string kData = "data";    ///< data dependency
inline const std::string kCtrl = "ctrl";    ///< control dependency
inline const std::string kRmw = "rmw";      ///< atomic read/write pairing
inline const std::string kScOrd = "sc";     ///< SC-fence total order (SCC)
// Scoped models (OpenCL/HSA-style):
inline const std::string kScopeWg = "SWG";  ///< workgroup-scoped sync ops
inline const std::string kScopeSys = "SSYS";///< system-scoped sync ops
inline const std::string kSameWg = "swg";   ///< same-workgroup equivalence

/** Singleton constant set {atom} in a universe of @p n. */
rel::ExprPtr singleton(size_t atom, size_t n);

/** Constant strict less-than relation over atom indices. */
rel::ExprPtr indexLt(size_t n);

/** Formula: the pair (i, j) is in relation @p r. */
rel::FormulaPtr cellIn(const rel::ExprPtr &r, size_t i, size_t j, size_t n);

/** Formula: atom @p i is in set @p s. */
rel::FormulaPtr atomIn(const rel::ExprPtr &s, size_t i, size_t n);

/** All memory events: R + W. */
rel::ExprPtr mem(const Env &env);

/** Program order restricted to the same location (po_loc). */
rel::ExprPtr poLoc(const Env &env);

/** Same-thread relation (po in either direction). */
rel::ExprPtr sameThread(const Env &env);

/**
 * From-reads (a.k.a. reads-before), in the initial-write-aware form of
 * the paper's Figure 4: fr = (R <: sloc :> W) - ~rf.*~co.
 */
rel::ExprPtr fr(const Env &env);

/** Communication: rf + co + fr. */
rel::ExprPtr com(const Env &env);

/** External (inter-thread) restriction of @p r. */
rel::ExprPtr external(const Env &env, const rel::ExprPtr &r);

/** Internal (intra-thread) restriction of @p r. */
rel::ExprPtr internal(const Env &env, const rel::ExprPtr &r);

rel::ExprPtr rfe(const Env &env);
rel::ExprPtr rfi(const Env &env);
rel::ExprPtr coe(const Env &env);
rel::ExprPtr fre(const Env &env);

/**
 * Fence-ordering relation for a fence set @p fence_set:
 * events po-before a fence of that set to events po-after it
 * ((po :> fset).po, Figure 4).
 */
rel::ExprPtr fenceOrder(const Env &env, const rel::ExprPtr &fence_set);

} // namespace lts::mm

#endif // LTS_MM_EXPRS_HH
