/**
 * @file
 * Model registry and the relaxation-applicability table (Table 2).
 *
 * The registry exposes the synthesizable models by name. The
 * applicability table additionally covers the models the paper lists but
 * whose formalizations are unavailable or out of scope (ARMv8, Itanium,
 * HSA, OpenCL), with the paper's footnotes about missing formalizations
 * and dependency-only RD captured as entry states.
 */

#ifndef LTS_MM_REGISTRY_HH
#define LTS_MM_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "mm/model.hh"

namespace lts::mm
{

/** Names of all synthesizable models ("sc", "tso", ...). */
std::vector<std::string> modelNames();

/**
 * Every name makeModel accepts: the synthesizable models plus study
 * variants (e.g. "scc-strict") that are excluded from the default
 * synthesis set. This is what registry-wide tooling (ltslint --all, the
 * convert round-trip fixture) iterates.
 */
std::vector<std::string> allModelNames();

/** Build a model by name; throws std::out_of_range on unknown names. */
std::unique_ptr<Model> makeModel(const std::string &name);

/** Applicability of one relaxation family to one model (Table 2). */
enum class Applicability
{
    No,            ///< not applicable to the model
    Yes,           ///< applicable and exercised
    IfFormalized,  ///< would apply if formalizations filled in the
                   ///< missing features (Table 2 footnote 1)
    ThinAirOnly,   ///< dependencies not used for synchronization; RD
                   ///< applies to no-thin-air axioms only (footnote 2)
};

/** Short cell text for the applicability table. */
std::string toString(Applicability a);

/** One row of Table 2. */
struct ApplicabilityRow
{
    std::string model;
    bool synthesizable; ///< has a Model factory in this repo
    Applicability ri, drmw, df, dmo, rd, ds;
};

/** The full Table 2, in the paper's row order. */
std::vector<ApplicabilityRow> applicabilityTable();

} // namespace lts::mm

#endif // LTS_MM_REGISTRY_HH
