/**
 * @file
 * Relation environment: a name -> expression binding.
 *
 * Axioms are written against an Env rather than against relation
 * variables directly. The synthesizer instantiates each axiom twice per
 * relaxation application: once with the base environment (every name
 * bound to its relation variable) and once with a *perturbed* environment
 * in which the affected relations are rebound to derived expressions
 * (the "_p" relations of Section 4.3 of the paper).
 */

#ifndef LTS_MM_ENV_HH
#define LTS_MM_ENV_HH

#include <map>
#include <stdexcept>
#include <string>

#include "rel/expr.hh"

namespace lts::mm
{

/** An immutable-by-convention binding of relation names to expressions. */
class Env
{
  public:
    /** Bind (or rebind) @p name. */
    void
    set(const std::string &name, rel::ExprPtr expr)
    {
        bindings[name] = std::move(expr);
    }

    /** Look up @p name; throws if unbound. */
    rel::ExprPtr
    get(const std::string &name) const
    {
        auto it = bindings.find(name);
        if (it == bindings.end())
            throw std::out_of_range("unbound relation: " + name);
        return it->second;
    }

    bool has(const std::string &name) const { return bindings.count(name); }

    /** All bindings, for iteration (e.g. by the RI mask). */
    const std::map<std::string, rel::ExprPtr> &all() const { return bindings; }

  private:
    std::map<std::string, rel::ExprPtr> bindings;
};

} // namespace lts::mm

#endif // LTS_MM_ENV_HH
