/**
 * @file
 * The memory-model definition framework.
 *
 * A Model packages what the paper expresses in Alloy: a vocabulary of
 * relation variables (the "sig" fields), well-formedness facts, a list of
 * named axioms (the predicates suites are generated for), and the set of
 * instruction relaxations that apply to the model (Table 2). Axioms are
 * functions of an Env so they can be instantiated with perturbed
 * relations; relaxations provide both an applicability condition and the
 * environment perturbation (Figure 6).
 */

#ifndef LTS_MM_MODEL_HH
#define LTS_MM_MODEL_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mm/env.hh"
#include "rel/formula.hh"
#include "rel/instance.hh"
#include "rel/symmetry.hh"

namespace lts::mm
{

class Model;

/**
 * One well-formedness fact with a stable diagnostic label (e.g.
 * "po.transitive", "rf.same-location"). The analyzer (src/analysis)
 * reports findings against these labels and probes facts individually
 * through the solver's retractable layers.
 */
struct NamedFact
{
    std::string label;
    rel::FormulaPtr formula;
};

/** One named axiom of a model (e.g. "sc_per_loc", "causality"). */
struct Axiom
{
    std::string name;

    /** The axiom as a formula over the given environment. */
    std::function<rel::FormulaPtr(const Model &, const Env &, size_t n)> pred;

    /**
     * Variant used when checking *relaxed* executions, for models whose
     * auxiliary relations make the Figure 5c under-approximation unsound
     * (the SCC "sc" workaround of Figure 19). Defaults to pred.
     */
    std::function<rel::FormulaPtr(const Model &, const Env &, size_t n)>
        relaxedPred;
};

/** The instruction-relaxation families of Section 3.2. */
enum class RTag
{
    RI,   ///< remove instruction
    DMO,  ///< demote memory order
    DF,   ///< demote fence
    DRMW, ///< decompose atomic read-modify-write
    RD,   ///< remove dependency
    DS,   ///< demote scope
};

/** Printable name of a relaxation family. */
std::string toString(RTag tag);

/**
 * One concrete instruction relaxation (e.g. "DMO(acq->rlx)"): an
 * applicability condition and an environment perturbation, both
 * parameterized by the targeted event (as a singleton constant set).
 */
struct Relaxation
{
    RTag tag;
    std::string name;

    /** Does this relaxation apply to event @p ev (singleton set)? */
    std::function<rel::FormulaPtr(const Env &, const rel::ExprPtr &ev,
                                  size_t n)>
        applies;

    /** The perturbed environment when applied to event @p ev. */
    std::function<Env(const Env &, const rel::ExprPtr &ev, size_t n)> perturb;

    // Structural metadata for DMO/DF demotions, used by the sound
    // (Figure 5b) engine to apply the relaxation to a litmus test
    // directly. Empty for RI/RD/DRMW, whose effect is tag-determined.
    std::optional<std::string> demoteFrom;    ///< annotation set removed
    std::optional<std::string> demoteTo;      ///< annotation set added
    std::string demoteCarrier;                ///< kR, kW or kF
};

/** Feature switches controlling the vocabulary and well-formedness. */
struct ModelFeatures
{
    bool fences = true;       ///< F events exist
    bool deps = false;        ///< addr/data/ctrl dependency relations
    bool rmw = true;          ///< atomic read-modify-write pairing
    bool acqRelAccess = false;///< ACQ on reads / REL on writes
    bool scAccess = false;    ///< SCA annotation on accesses (C/C++)
    bool acqRelFence = false; ///< AR fences (lwsync / FenceAcqRel / C11)
    bool scFence = false;     ///< SCA fences (sync / FenceSC / C11 sc)
    bool scOrder = false;     ///< explicit sc total-order relation (SCC)
    bool scopes = false;      ///< workgroup/system scopes + DS (OpenCL/HSA)
};

/**
 * A complete memory-model definition. Build with the factories in
 * mm/models.hh; the registry (mm/registry.hh) lists them by name.
 */
class Model
{
  public:
    Model(std::string name, ModelFeatures features);

    const std::string &name() const { return modelName; }
    const ModelFeatures &features() const { return feats; }
    const rel::Vocabulary &vocab() const { return vocabulary; }
    const Env &base() const { return baseEnv; }

    const std::vector<Axiom> &axioms() const { return axiomList; }
    const std::vector<Relaxation> &relaxations() const { return relaxList; }

    /** Find an axiom by name (throws if absent). */
    const Axiom &axiom(const std::string &name) const;

    /**
     * Mutable access to an axiom by name (throws if absent), for edit
     * and perturbation tooling: the service layer's shard-invalidation
     * tests swap an axiom's predicate in place and assert that only
     * that axiom's cache shards re-synthesize. digest() reflects the
     * edit on its next call.
     */
    Axiom &axiomMut(const std::string &name);

    void
    addAxiom(Axiom axiom)
    {
        digestMemo.clear();
        axiomList.push_back(std::move(axiom));
    }

    void
    addRelaxation(Relaxation r)
    {
        digestMemo.clear();
        relaxList.push_back(std::move(r));
    }

    /** Extra well-formedness facts specific to this model. */
    void
    addExtraFact(
        std::function<rel::FormulaPtr(const Model &, const Env &, size_t)> f)
    {
        addExtraFact("extra", std::move(f));
    }

    /** Labeled variant: @p label identifies the fact in lint findings. */
    void
    addExtraFact(
        std::string label,
        std::function<rel::FormulaPtr(const Model &, const Env &, size_t)> f)
    {
        digestMemo.clear();
        extraFacts.push_back({std::move(label), std::move(f)});
    }

    /**
     * Well-formedness of an instance as a litmus-test execution: type
     * partition, program-order shape (including the contiguous-thread
     * symmetry breaking), location equivalence, rf/co sanity,
     * dependency/rmw shape, annotation carriers, plus model extras.
     */
    rel::FormulaPtr wellFormed(size_t n) const;

    /**
     * The same well-formedness constraints as individually labeled facts,
     * in the order wellFormed conjoins them. This is the unit the static
     * analyzer types, probes, and reports against.
     */
    std::vector<NamedFact> wellFormedFacts(size_t n) const;

    /**
     * Only the model-specific extra facts (the tail of wellFormedFacts),
     * instantiated at size @p n. The dead-definition analysis treats
     * these as uses of a relation, unlike the generic facts, which
     * mention every declared relation by construction.
     */
    std::vector<NamedFact> extraWellFormedFacts(size_t n) const;

    /** Conjunction of every axiom over @p env. */
    rel::FormulaPtr allAxioms(const Env &env, size_t n) const;

    /** Conjunction of every axiom's relaxed variant over @p env. */
    rel::FormulaPtr allAxiomsRelaxed(const Env &env, size_t n) const;

    /**
     * The symmetry-breaking prescription for this model's encoding at
     * universe size @p n (see rel/symmetry.hh). Kodkod's generic
     * partition detection finds nothing here — the po.index-order fact
     * mentions the indexLt constant, which distinguishes every atom — so
     * the spec is built from what the well-formedness facts guarantee
     * instead: the only residual symmetry is permuting whole thread
     * blocks (within a workgroup, for scoped models). It contains
     *
     *  - conditional lex-leader generators swapping two equally sized
     *    complete thread blocks, guarded by the po cells that make the
     *    ranges complete blocks (and by swg for scoped models, since
     *    only same-workgroup blocks are interchangeable);
     *  - forbidden patterns excluding a complete block immediately
     *    followed by a strictly larger same-workgroup block, so block
     *    sizes are non-increasing (thread-count/size profiles are
     *    canonical, not just locally lex-minimal).
     *
     * The lex vector covers the static relations except po and swg,
     * which are invariant under every guarded generator. Returns an
     * empty spec when no symmetry exists at this size.
     */
    rel::SymmetrySpec symmetrySpec(size_t n) const;

    /**
     * Stable canonical digest of the model *definition*: a 16-hex-digit
     * hash over the name, feature switches, vocabulary, well-formedness
     * facts, every axiom's (plain and relaxed) predicate, and every
     * relaxation's applicability and perturbation effect, each rendered
     * at small probe sizes. Two processes — today's and a restarted
     * one — compute the same digest for the same definition, so it is
     * usable as a persistent cache key (the suite store and ltsd key on
     * it); any semantic edit to the model changes it. A format-version
     * tag is folded in, so digest changes across format revisions too.
     */
    std::string digest() const;

    /** The relation-variable ids forming a test's *static* part. */
    std::vector<int> staticVarIds() const;

    /** The relation-variable ids of the dynamic (outcome) part. */
    std::vector<int> dynamicVarIds() const;

  private:
    std::string modelName;
    ModelFeatures feats;
    rel::Vocabulary vocabulary;
    Env baseEnv;
    struct ExtraFact
    {
        std::string label;
        std::function<rel::FormulaPtr(const Model &, const Env &, size_t)> fn;
    };

    std::vector<Axiom> axiomList;
    std::vector<Relaxation> relaxList;
    std::vector<ExtraFact> extraFacts;

    /// digest() memoization; cleared by every mutator (axiomMut,
    /// addAxiom, addRelaxation, addExtraFact) so edits re-hash. axiomMut
    /// additionally disables memoization for good: the reference it
    /// returns lets callers mutate predicates at any later point, where
    /// a repopulated memo would silently go stale.
    mutable std::string digestMemo;
    bool digestMemoDisabled = false;
};

// --- generic relaxation builders (Figure 6 made reusable) -------------------

/** Remove Instruction: mask the event out of every relation. */
Relaxation makeRI();

/** Remove Dependency: drop dependencies originating at the event. */
Relaxation makeRD();

/** Decompose RMW: drop rmw pairing originating at the event. */
Relaxation makeDRMW();

/**
 * Demote an annotation: remove the event from @p from_set (optionally
 * adding it to @p to_set), applicable when the event carries the
 * annotation and lies in the carrier set named by @p carrier (one of
 * kR/kW/kF). Used for both DMO and DF.
 */
Relaxation makeDemote(RTag tag, const std::string &name,
                      const std::string &from_set,
                      std::optional<std::string> to_set,
                      const std::string &carrier);

} // namespace lts::mm

#endif // LTS_MM_MODEL_HH
