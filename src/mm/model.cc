#include "mm/model.hh"

#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string_view>

#include "common/hash.hh"
#include "mm/exprs.hh"

namespace lts::mm
{

using namespace rel;

std::string
toString(RTag tag)
{
    switch (tag) {
      case RTag::RI:
        return "RI";
      case RTag::DMO:
        return "DMO";
      case RTag::DF:
        return "DF";
      case RTag::DRMW:
        return "DRMW";
      case RTag::RD:
        return "RD";
      case RTag::DS:
        return "DS";
    }
    return "?";
}

Model::Model(std::string name, ModelFeatures features)
    : modelName(std::move(name)), feats(features)
{
    // Type sets.
    baseEnv.set(kR, vocabulary.declare(kR, 1));
    baseEnv.set(kW, vocabulary.declare(kW, 1));
    if (feats.fences)
        baseEnv.set(kF, vocabulary.declare(kF, 1));

    // Annotation sets.
    // ACQ/REL access annotations are independent of AR fences: a model
    // with lwsync-style fences but no annotated accesses (Power) must not
    // drag two unconstrained annotation sets into the search space.
    if (feats.acqRelAccess) {
        baseEnv.set(kAcq, vocabulary.declare(kAcq, 1));
        baseEnv.set(kRel, vocabulary.declare(kRel, 1));
    }
    if (feats.acqRelFence)
        baseEnv.set(kAcqRel, vocabulary.declare(kAcqRel, 1));
    if (feats.scAccess || feats.scFence)
        baseEnv.set(kSc, vocabulary.declare(kSc, 1));

    // Structural relations (static part).
    baseEnv.set(kPo, vocabulary.declare(kPo, 2));
    baseEnv.set(kSloc, vocabulary.declare(kSloc, 2));
    if (feats.deps) {
        baseEnv.set(kAddr, vocabulary.declare(kAddr, 2));
        baseEnv.set(kData, vocabulary.declare(kData, 2));
        baseEnv.set(kCtrl, vocabulary.declare(kCtrl, 2));
    }
    if (feats.rmw)
        baseEnv.set(kRmw, vocabulary.declare(kRmw, 2));

    if (feats.scopes) {
        baseEnv.set(kScopeWg, vocabulary.declare(kScopeWg, 1));
        baseEnv.set(kScopeSys, vocabulary.declare(kScopeSys, 1));
        baseEnv.set(kSameWg, vocabulary.declare(kSameWg, 2));
    }

    // Dynamic (execution/outcome) relations.
    baseEnv.set(kRf, vocabulary.declare(kRf, 2));
    baseEnv.set(kCo, vocabulary.declare(kCo, 2));
    if (feats.scOrder)
        baseEnv.set(kScOrd, vocabulary.declare(kScOrd, 2));
}

const Axiom &
Model::axiom(const std::string &name) const
{
    for (const auto &a : axiomList) {
        if (a.name == name)
            return a;
    }
    throw std::out_of_range("model " + modelName + " has no axiom " + name);
}

Axiom &
Model::axiomMut(const std::string &name)
{
    for (auto &a : axiomList) {
        if (a.name == name) {
            // The caller may swap predicates through this reference at
            // any later point, so memoization is permanently unsound for
            // this model — not just stale now.
            digestMemoDisabled = true;
            digestMemo.clear();
            return a;
        }
    }
    throw std::out_of_range("model " + modelName + " has no axiom " + name);
}

std::string
Model::digest() const
{
    if (!digestMemo.empty())
        return digestMemo;
    // The digest covers everything a formula can observe about the
    // definition, rendered at two probe sizes: formulas are functions of
    // n, and n = 2 alone can hide size-dependent structure (closures over
    // constants, the index order) that n = 3 exposes. Rendering via
    // toString makes the digest a pure function of the definition —
    // independent of pointer values, process layout, or build — at the
    // cost of being conservative: two syntactically different but
    // equivalent predicates hash apart and merely miss the cache.
    uint64_t h = hashInit();
    h = hashCombine(h, std::string_view("lts-model-v1"));
    h = hashCombine(h, modelName);
    for (bool flag : {feats.fences, feats.deps, feats.rmw,
                      feats.acqRelAccess, feats.scAccess, feats.acqRelFence,
                      feats.scFence, feats.scOrder, feats.scopes})
        h = hashCombine(h, static_cast<uint64_t>(flag));
    for (size_t i = 0; i < vocabulary.size(); i++) {
        const VarDecl &d = vocabulary.decl(static_cast<int>(i));
        h = hashCombine(h, d.name);
        h = hashCombine(h, static_cast<uint64_t>(d.arity));
    }
    for (size_t n : {size_t(2), size_t(3)}) {
        h = hashCombine(h, static_cast<uint64_t>(n));
        for (const auto &fact : wellFormedFacts(n)) {
            h = hashCombine(h, fact.label);
            h = hashCombine(h, fact.formula->toString());
        }
        for (const auto &a : axiomList) {
            h = hashCombine(h, a.name);
            h = hashCombine(h, a.pred(*this, baseEnv, n)->toString());
            if (a.relaxedPred) {
                h = hashCombine(h,
                                a.relaxedPred(*this, baseEnv, n)->toString());
            }
        }
        for (const auto &r : relaxList) {
            h = hashCombine(h, toString(r.tag));
            h = hashCombine(h, r.name);
            h = hashCombine(h, r.demoteFrom.value_or(""));
            h = hashCombine(h, r.demoteTo.value_or(""));
            h = hashCombine(h, r.demoteCarrier);
            for (size_t e = 0; e < n; e++) {
                ExprPtr ev = singleton(e, n);
                h = hashCombine(h, r.applies(baseEnv, ev, n)->toString());
                // The perturbation is a function on environments; its
                // observable effect is how the axioms read through the
                // perturbed relations, so hash that rendering.
                Env perturbed = r.perturb(baseEnv, ev, n);
                h = hashCombine(
                    h, allAxiomsRelaxed(perturbed, n)->toString());
            }
        }
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    if (digestMemoDisabled)
        return buf;
    digestMemo = buf;
    return digestMemo;
}

std::vector<NamedFact>
Model::wellFormedFacts(size_t n) const
{
    const Env &env = baseEnv;
    std::vector<NamedFact> facts;
    auto add = [&facts](std::string label, FormulaPtr f) {
        facts.push_back({std::move(label), std::move(f)});
    };
    ExprPtr r = env.get(kR);
    ExprPtr w = env.get(kW);
    ExprPtr po = env.get(kPo);
    ExprPtr sloc = env.get(kSloc);
    ExprPtr rf = env.get(kRf);
    ExprPtr co = env.get(kCo);
    ExprPtr memory = mem(env);

    // Event types partition the universe.
    add("types.rw-disjoint", mkNo(r & w));
    if (feats.fences) {
        ExprPtr f = env.get(kF);
        add("types.rf-disjoint", mkNo(r & f));
        add("types.wf-disjoint", mkNo(w & f));
        add("types.cover", mkEqual(r + w + f, mkUniv()));
    } else {
        add("types.cover", mkEqual(r + w, mkUniv()));
    }

    // Program order: transitive, consistent with atom index order (a
    // symmetry-breaking predicate), forming contiguous thread blocks.
    add("po.index-order", mkSubset(po, indexLt(n)));
    add("po.transitive", mkSubset(mkJoin(po, po), po));
    ExprPtr st = sameThread(env);
    ExprPtr st_refl = st + mkIden();
    add("po.thread-equivalence", mkSubset(mkJoin(st_refl, st_refl), st_refl));
    // Convexity: a thread owns a contiguous range of atom indices.
    for (size_t i = 0; i < n; i++) {
        for (size_t k = i + 2; k < n; k++) {
            for (size_t j = i + 1; j < k; j++) {
                add("po.thread-convexity[" + std::to_string(i) + "," +
                        std::to_string(j) + "," + std::to_string(k) + "]",
                    mkImplies(cellIn(st, i, k, n), cellIn(st, i, j, n)));
            }
        }
    }

    // Same-location: an equivalence over memory events.
    add("sloc.memory-only", mkSubset(sloc, mkProduct(memory, memory)));
    add("sloc.reflexive", mkSubset(mkDomRestrict(memory, mkIden()), sloc));
    add("sloc.symmetric", mkEqual(sloc, mkTranspose(sloc)));
    add("sloc.transitive", mkSubset(mkJoin(sloc, sloc), sloc));

    // Reads-from: write -> read, same location, at most one writer each.
    add("rf.shape", mkSubset(rf, mkRanRestrict(mkDomRestrict(w, sloc), r)));
    add("rf.functional", mkSubset(mkJoin(rf, mkTranspose(rf)), mkIden()));

    // Coherence: strict total order over the writes of each location.
    add("co.shape", mkSubset(co, mkRanRestrict(mkDomRestrict(w, sloc), w)));
    add("co.transitive", mkSubset(mkJoin(co, co), co));
    add("co.acyclic", mkAcyclic(co));
    add("co.total-per-location",
        mkSubset(mkRanRestrict(mkDomRestrict(w, sloc), w) - mkIden(),
                 co + mkTranspose(co)));

    // Dependencies: from reads to po-later events.
    if (feats.deps) {
        add("deps.addr-shape",
            mkSubset(env.get(kAddr),
                     mkRanRestrict(mkDomRestrict(r, po), memory)));
        add("deps.data-shape",
            mkSubset(env.get(kData), mkRanRestrict(mkDomRestrict(r, po), w)));
        add("deps.ctrl-shape",
            mkSubset(env.get(kCtrl), mkDomRestrict(r, po)));
    }

    // RMW pairs: po-adjacent, same location, read then write (Figure 4).
    if (feats.rmw) {
        ExprPtr adjacent = po - mkJoin(po, po);
        add("rmw.shape",
            mkSubset(env.get(kRmw),
                     mkRanRestrict(mkDomRestrict(r, adjacent & sloc), w)));
    }

    // Annotations: pairwise disjoint, confined to their carriers.
    std::vector<std::string> annots;
    for (const auto &name : {kAcq, kRel, kAcqRel, kSc}) {
        if (env.has(name))
            annots.push_back(name);
    }
    for (size_t i = 0; i < annots.size(); i++) {
        for (size_t j = i + 1; j < annots.size(); j++) {
            add("annot.disjoint[" + annots[i] + "," + annots[j] + "]",
                mkNo(env.get(annots[i]) & env.get(annots[j])));
        }
    }
    ExprPtr fence_set = feats.fences ? env.get(kF) : mkNone(1);
    if (env.has(kAcq)) {
        ExprPtr carrier = feats.acqRelAccess ? (r + fence_set) : fence_set;
        add("annot.acq-carrier", mkSubset(env.get(kAcq), carrier));
        carrier = feats.acqRelAccess ? (w + fence_set) : fence_set;
        add("annot.rel-carrier", mkSubset(env.get(kRel), carrier));
    }
    if (env.has(kAcqRel))
        add("annot.ar-carrier", mkSubset(env.get(kAcqRel), fence_set));
    if (env.has(kSc)) {
        ExprPtr carrier = mkNone(1);
        if (feats.scAccess)
            carrier = carrier + memory;
        if (feats.scFence)
            carrier = carrier + fence_set;
        add("annot.sc-carrier", mkSubset(env.get(kSc), carrier));
    }

    // Explicit sc order over SC fences (SCC, Figure 17/19): confined,
    // irreflexive, total over SC-fence pairs, and limited to at most one
    // edge — the lone-sc workaround that makes Figure 5c sound for SCC.
    if (feats.scOrder) {
        ExprPtr fsc = fence_set & env.get(kSc);
        ExprPtr sc = env.get(kScOrd);
        add("sc-order.shape", mkSubset(sc, mkProduct(fsc, fsc)));
        add("sc-order.irreflexive", mkIrreflexive(sc));
        add("sc-order.total",
            mkSubset(mkProduct(fsc, fsc) - mkIden(), sc + mkTranspose(sc)));
        add("sc-order.lone", mkLone(sc));
    }

    // Scopes: swg is an equivalence refined by sameThread, workgroups
    // occupy contiguous thread (hence atom) ranges, and every
    // synchronizing operation carries exactly one scope.
    if (feats.scopes) {
        ExprPtr swg = env.get(kSameWg);
        add("scopes.swg-refines-threads", mkSubset(st + mkIden(), swg));
        add("scopes.swg-symmetric", mkEqual(swg, mkTranspose(swg)));
        add("scopes.swg-transitive", mkSubset(mkJoin(swg, swg), swg));
        for (size_t i = 0; i < n; i++) {
            for (size_t k = i + 2; k < n; k++) {
                for (size_t j = i + 1; j < k; j++) {
                    add("scopes.swg-convexity[" + std::to_string(i) + "," +
                            std::to_string(j) + "," + std::to_string(k) + "]",
                        mkImplies(cellIn(swg, i, k, n),
                                  cellIn(swg, i, j, n)));
                }
            }
        }
        ExprPtr sync_ops = mkNone(1);
        if (env.has(kAcq))
            sync_ops = sync_ops + env.get(kAcq) + env.get(kRel);
        if (feats.fences)
            sync_ops = sync_ops + env.get(kF);
        ExprPtr s_wg = env.get(kScopeWg);
        ExprPtr s_sys = env.get(kScopeSys);
        add("scopes.disjoint", mkNo(s_wg & s_sys));
        add("scopes.cover-sync-ops", mkEqual(s_wg + s_sys, sync_ops));
    }

    for (const auto &f : extraFacts)
        add(f.label, f.fn(*this, env, n));

    return facts;
}

std::vector<NamedFact>
Model::extraWellFormedFacts(size_t n) const
{
    std::vector<NamedFact> facts;
    for (const auto &f : extraFacts)
        facts.push_back({f.label, f.fn(*this, baseEnv, n)});
    return facts;
}

FormulaPtr
Model::wellFormed(size_t n) const
{
    std::vector<FormulaPtr> parts;
    for (auto &fact : wellFormedFacts(n))
        parts.push_back(std::move(fact.formula));
    return mkAndAll(parts);
}

FormulaPtr
Model::allAxioms(const Env &env, size_t n) const
{
    std::vector<FormulaPtr> parts;
    for (const auto &a : axiomList)
        parts.push_back(a.pred(*this, env, n));
    return mkAndAll(parts);
}

FormulaPtr
Model::allAxiomsRelaxed(const Env &env, size_t n) const
{
    std::vector<FormulaPtr> parts;
    for (const auto &a : axiomList) {
        if (a.relaxedPred)
            parts.push_back(a.relaxedPred(*this, env, n));
        else
            parts.push_back(a.pred(*this, env, n));
    }
    return mkAndAll(parts);
}

rel::SymmetrySpec
Model::symmetrySpec(size_t n) const
{
    using rel::CellCond;
    using rel::ConditionalPerm;

    rel::SymmetrySpec spec;
    const int po_id = vocabulary.find(kPo).id;
    const int swg_id = feats.scopes ? vocabulary.find(kSameWg).id : -1;

    // Static relations except po and swg. Both are pointwise invariant
    // under a guarded block swap: po because complete equal-size blocks
    // carry identical total orders and never cross threads, swg because
    // the swg(i, j) guard plus convexity puts the whole swapped range in
    // one workgroup. Dynamic relations are left out too — enumeration
    // blocks only static cells, and witnesses are re-resolved in solves
    // that exclude this layer.
    for (int id : staticVarIds()) {
        if (id == po_id || id == swg_id)
            continue;
        spec.lexVarIds.push_back(id);
    }

    // The po cells certifying that [start, start+s) is one complete
    // thread block: starts a block, chains internally, ends a block.
    auto blockConds = [&](size_t start, size_t s, std::vector<CellCond> &out) {
        if (start > 0)
            out.push_back({po_id, start - 1, start, false});
        for (size_t k = 0; k + 1 < s; k++)
            out.push_back({po_id, start + k, start + k + 1, true});
        if (start + s < n)
            out.push_back({po_id, start + s - 1, start + s, false});
    };

    // Generators: swap the complete equal-size blocks [i, i+s) and
    // [j, j+s), guarded by both ranges being complete blocks (and lying
    // in the same workgroup for scoped models — permuting blocks across
    // workgroups changes the wg partition, which is not a symmetry).
    for (size_t s = 1; 2 * s <= n; s++) {
        for (size_t i = 0; i + 2 * s <= n; i++) {
            for (size_t j = i + s; j + s <= n; j++) {
                ConditionalPerm g;
                g.perm.resize(n);
                std::iota(g.perm.begin(), g.perm.end(), size_t{0});
                for (size_t k = 0; k < s; k++) {
                    g.perm[i + k] = j + k;
                    g.perm[j + k] = i + k;
                }
                blockConds(i, s, g.conditions);
                blockConds(j, s, g.conditions);
                if (swg_id >= 0)
                    g.conditions.push_back({swg_id, i, j, true});
                spec.generators.push_back(std::move(g));
            }
        }
    }

    // Forbidden patterns: a complete block of size s immediately
    // followed by a (same-workgroup) block of size > s. Sorting blocks
    // by non-increasing size — within each workgroup span, so scoped
    // contiguity survives — reaches a member of every orbit that avoids
    // all patterns, and equal-size swaps preserve sortedness, so the
    // patterns compose soundly with the lex-leader generators.
    for (size_t s = 1; 2 * s + 1 <= n; s++) {
        for (size_t i = 0; i + 2 * s + 1 <= n; i++) {
            std::vector<CellCond> pat;
            if (i > 0)
                pat.push_back({po_id, i - 1, i, false});
            for (size_t k = 0; k + 1 < s; k++)
                pat.push_back({po_id, i + k, i + k + 1, true});
            pat.push_back({po_id, i + s - 1, i + s, false});
            for (size_t k = 0; k < s; k++)
                pat.push_back({po_id, i + s + k, i + s + k + 1, true});
            if (swg_id >= 0)
                pat.push_back({swg_id, i, i + s, true});
            spec.forbidden.push_back(std::move(pat));
        }
    }

    return spec;
}

std::vector<int>
Model::staticVarIds() const
{
    std::vector<int> ids;
    for (size_t i = 0; i < vocabulary.size(); i++) {
        const auto &d = vocabulary.decl(static_cast<int>(i));
        if (d.name != kRf && d.name != kCo && d.name != kScOrd)
            ids.push_back(d.id);
    }
    return ids;
}

std::vector<int>
Model::dynamicVarIds() const
{
    std::vector<int> ids;
    for (size_t i = 0; i < vocabulary.size(); i++) {
        const auto &d = vocabulary.decl(static_cast<int>(i));
        if (d.name == kRf || d.name == kCo || d.name == kScOrd)
            ids.push_back(d.id);
    }
    return ids;
}

// ---------------------------------------------------------------------------
// Generic relaxations (Figure 6)
// ---------------------------------------------------------------------------

namespace
{

/** Mask @p rel so no edge touches the removed event. */
ExprPtr
maskBinary(const ExprPtr &relation, const ExprPtr &ev)
{
    ExprPtr keep = mkUniv() - ev;
    return mkRanRestrict(mkDomRestrict(keep, relation), keep);
}

} // namespace

Relaxation
makeRI()
{
    Relaxation r;
    r.tag = RTag::RI;
    r.name = "RI";
    r.applies = [](const Env &, const ExprPtr &, size_t) {
        return mkTrue();
    };
    r.perturb = [](const Env &env, const ExprPtr &ev, size_t) {
        Env out;
        for (const auto &[name, expr] : env.all()) {
            if (expr->arity == 1) {
                out.set(name, expr - ev);
            } else if (name == kCo) {
                // Figure 8: take the transitive closure *before* masking so
                // removing a middle write does not sever the chain.
                out.set(name, maskBinary(mkClosure(expr), ev));
            } else {
                out.set(name, maskBinary(expr, ev));
            }
        }
        return out;
    };
    return r;
}

Relaxation
makeRD()
{
    Relaxation r;
    r.tag = RTag::RD;
    r.name = "RD";
    r.applies = [](const Env &env, const ExprPtr &ev, size_t) {
        ExprPtr deps = env.get(kAddr) + env.get(kData) + env.get(kCtrl);
        return mkSome(mkDomRestrict(ev, deps));
    };
    r.perturb = [](const Env &env, const ExprPtr &ev, size_t) {
        Env out = env;
        for (const auto &name : {kAddr, kData, kCtrl}) {
            out.set(name, env.get(name) - mkDomRestrict(ev, env.get(name)));
        }
        return out;
    };
    return r;
}

Relaxation
makeDRMW()
{
    Relaxation r;
    r.tag = RTag::DRMW;
    r.name = "DRMW";
    r.applies = [](const Env &env, const ExprPtr &ev, size_t) {
        return mkSome(mkDomRestrict(ev, env.get(kRmw)));
    };
    r.perturb = [](const Env &env, const ExprPtr &ev, size_t) {
        Env out = env;
        out.set(kRmw, env.get(kRmw) - mkDomRestrict(ev, env.get(kRmw)));
        return out;
    };
    return r;
}

Relaxation
makeDemote(RTag tag, const std::string &name, const std::string &from_set,
           std::optional<std::string> to_set, const std::string &carrier)
{
    Relaxation r;
    r.tag = tag;
    r.name = name;
    r.applies = [from_set, carrier](const Env &env, const ExprPtr &ev,
                                    size_t) {
        return mkSome(ev & env.get(from_set) & env.get(carrier));
    };
    r.perturb = [from_set, to_set](const Env &env, const ExprPtr &ev,
                                   size_t) {
        Env out = env;
        out.set(from_set, env.get(from_set) - ev);
        if (to_set)
            out.set(*to_set, env.get(*to_set) + ev);
        return out;
    };
    r.demoteFrom = from_set;
    r.demoteTo = to_set;
    r.demoteCarrier = carrier;
    return r;
}

} // namespace lts::mm
