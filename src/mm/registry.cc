#include "mm/registry.hh"

#include <stdexcept>

#include "mm/models.hh"

namespace lts::mm
{

std::vector<std::string>
modelNames()
{
    return {"sc", "tso", "power", "armv7", "scc", "sscc", "c11"};
}

std::vector<std::string>
allModelNames()
{
    auto names = modelNames();
    names.push_back("scc-strict");
    return names;
}

std::unique_ptr<Model>
makeModel(const std::string &name)
{
    if (name == "sc")
        return makeSc();
    if (name == "tso")
        return makeTso();
    if (name == "power")
        return makePower();
    if (name == "armv7")
        return makeArmv7();
    if (name == "scc")
        return makeScc();
    if (name == "scc-strict")
        return makeSccStrict();
    if (name == "sscc")
        return makeScopedScc();
    if (name == "c11")
        return makeC11();
    throw std::out_of_range("unknown model: " + name);
}

std::string
toString(Applicability a)
{
    switch (a) {
      case Applicability::No:
        return "-";
      case Applicability::Yes:
        return "Y";
      case Applicability::IfFormalized:
        return "Y*1";
      case Applicability::ThinAirOnly:
        return "Y*2";
    }
    return "?";
}

std::vector<ApplicabilityRow>
applicabilityTable()
{
    using A = Applicability;
    // Columns: RI, DRMW, DF, DMO, RD, DS — matching Table 2 of the paper.
    return {
        {"SC (Lamport 1979)", true, A::Yes, A::Yes, A::No, A::No, A::No,
         A::No},
        {"TSO (Owens 2009; SPARC 1993)", true, A::Yes, A::Yes, A::Yes,
         A::No, A::IfFormalized, A::No},
        {"Power (Alglave 2014)", true, A::Yes, A::Yes, A::Yes, A::No,
         A::Yes, A::No},
        {"ARMv7 (Alglave 2014)", true, A::Yes, A::Yes, A::IfFormalized,
         A::No, A::Yes, A::No},
        {"ARMv8 (ARM 2016)", false, A::Yes, A::Yes, A::Yes, A::Yes, A::Yes,
         A::No},
        {"Itanium (Intel 2002)", false, A::Yes, A::Yes, A::Yes, A::Yes,
         A::IfFormalized, A::No},
        {"SCC [Section 6.3]", true, A::Yes, A::Yes, A::Yes, A::Yes,
         A::ThinAirOnly, A::No},
        {"HSA (Alglave-Maranget 2016)", false, A::Yes, A::Yes, A::Yes,
         A::Yes, A::ThinAirOnly, A::Yes},
        {"C/C++ (Batty 2016; ISO 2011)", true, A::Yes, A::Yes, A::Yes,
         A::Yes, A::ThinAirOnly, A::No},
        {"OpenCL (Batty 2016; Khronos 2015)", false, A::Yes, A::Yes,
         A::Yes, A::Yes, A::ThinAirOnly, A::Yes},
    };
}

} // namespace lts::mm
