#include "sim/runner.hh"

#include <random>
#include <stdexcept>
#include <vector>

namespace lts::sim
{

using litmus::EventType;
using litmus::LitmusTest;

namespace
{

/** Mutable machine state for one random execution. */
struct RunState
{
    std::vector<int> pc;
    std::vector<std::vector<std::pair<int, int>>> buffers; // (loc, value)
    std::vector<int> memory;
    std::vector<int> reads;
};

/** One scheduler action: drain thread t's buffer, or step thread t. */
struct Action
{
    int thread;
    bool drain;
};

} // namespace

RunStats
runRandom(const LitmusTest &test, const RunnerOptions &options)
{
    if (test.depMatrix().any())
        throw std::invalid_argument(
            "the randomized runner does not model dependencies");

    std::vector<std::vector<int>> thread_events(test.numThreads);
    for (const auto &e : test.events)
        thread_events[e.tid].push_back(e.id);

    std::mt19937_64 rng(options.seed);
    RunStats stats;

    for (uint64_t run = 0; run < options.schedules; run++) {
        RunState st;
        st.pc.assign(test.numThreads, 0);
        st.buffers.resize(test.numThreads);
        for (auto &b : st.buffers)
            b.clear();
        st.memory.assign(test.numLocs, 0);
        st.reads.assign(test.size(), -1);

        for (;;) {
            // Collect enabled actions.
            std::vector<Action> actions;
            std::vector<uint64_t> weights;
            for (int t = 0; t < test.numThreads; t++) {
                if (options.tso && !st.buffers[t].empty()) {
                    actions.push_back(Action{t, true});
                    weights.push_back(
                        static_cast<uint64_t>(100 - options.stress) + 1);
                }
                if (st.pc[t] >=
                    static_cast<int>(thread_events[t].size())) {
                    continue;
                }
                int id = thread_events[t][st.pc[t]];
                const auto &e = test.events[id];
                // Fences and RMW reads stall on non-empty buffers.
                bool needs_empty =
                    e.type == EventType::Fence ||
                    (e.isRead() && test.rmw.row(id).any());
                if (options.tso && needs_empty && !st.buffers[t].empty())
                    continue;
                actions.push_back(Action{t, false});
                weights.push_back(101);
            }
            if (actions.empty())
                break;

            // Weighted choice.
            uint64_t total = 0;
            for (uint64_t w : weights)
                total += w;
            uint64_t pick = rng() % total;
            size_t chosen = 0;
            for (; chosen < actions.size(); chosen++) {
                if (pick < weights[chosen])
                    break;
                pick -= weights[chosen];
            }
            const Action &act = actions[chosen];

            if (act.drain) {
                auto entry = st.buffers[act.thread].front();
                st.buffers[act.thread].erase(
                    st.buffers[act.thread].begin());
                st.memory[entry.first] = entry.second;
                continue;
            }

            int id = thread_events[act.thread][st.pc[act.thread]];
            const auto &e = test.events[id];
            st.pc[act.thread]++;
            switch (e.type) {
              case EventType::Fence:
                break; // buffer already empty by enabledness
              case EventType::Read: {
                int paired = -1;
                for (size_t j = 0; j < test.size(); j++) {
                    if (test.rmw.test(id, j))
                        paired = static_cast<int>(j);
                }
                if (paired >= 0) {
                    st.reads[id] = st.memory[e.loc];
                    st.memory[test.events[paired].loc] = paired + 1;
                    st.pc[act.thread]++;
                    break;
                }
                int value = st.memory[e.loc];
                for (const auto &entry : st.buffers[act.thread]) {
                    if (entry.first == e.loc)
                        value = entry.second;
                }
                st.reads[id] = value;
                break;
              }
              case EventType::Write:
                if (options.tso)
                    st.buffers[act.thread].emplace_back(e.loc, id + 1);
                else
                    st.memory[e.loc] = id + 1;
                break;
            }
        }

        Signature sig = st.reads;
        for (int loc = 0; loc < test.numLocs; loc++)
            sig.push_back(st.memory[loc]);
        stats.histogram[sig]++;
        stats.runs++;
    }
    return stats;
}

} // namespace lts::sim
