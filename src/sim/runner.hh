/**
 * @file
 * Randomized litmus-test runner.
 *
 * The paper's context (Section 2.1) is black-box testing: suites are run
 * billions of times on real machines, where rare outcomes may appear
 * "once every billion executions" and external stressors are applied to
 * make weak behaviors more likely (Sorensen & Donaldson 2016). This
 * module provides that consumer side in-process: instead of the
 * exhaustive exploration of sim/opsim.hh, it runs the x86-TSO
 * store-buffer machine (or the SC machine) under randomly chosen
 * schedules and reports an outcome histogram.
 *
 * The stress knob biases the scheduler toward keeping store buffers full
 * (delaying drains), which is exactly the kind of perturbation that
 * makes relaxed outcomes like SB's (0,0) more frequent — letting the
 * repo demonstrate why stressors matter for suite effectiveness.
 */

#ifndef LTS_SIM_RUNNER_HH
#define LTS_SIM_RUNNER_HH

#include <cstdint>
#include <map>

#include "sim/opsim.hh"

namespace lts::sim
{

/** Randomized-run configuration. */
struct RunnerOptions
{
    uint64_t schedules = 1000; ///< number of random executions
    uint64_t seed = 1;
    /**
     * 0..100: probability weight shifted from buffer drains to
     * instruction execution. 0 = uniform choice among enabled actions;
     * higher values starve drains, keeping buffers full longer.
     */
    int stress = 0;
    bool tso = true; ///< false = SC interleaving machine
};

/** Histogram of observed outcomes over the random runs. */
struct RunStats
{
    std::map<Signature, uint64_t> histogram;
    uint64_t runs = 0;

    /** Number of distinct outcomes observed. */
    size_t distinct() const { return histogram.size(); }

    /** Observation count for one outcome (0 if never seen). */
    uint64_t
    count(const Signature &sig) const
    {
        auto it = histogram.find(sig);
        return it == histogram.end() ? 0 : it->second;
    }
};

/** Run @p test under random schedules and collect outcomes. */
RunStats runRandom(const litmus::LitmusTest &test,
                   const RunnerOptions &options);

} // namespace lts::sim

#endif // LTS_SIM_RUNNER_HH
