/**
 * @file
 * Operational memory-model simulators.
 *
 * These exhaustively explore the interleavings of a litmus test on an
 * executable machine model and report the set of observable outcomes:
 *
 *  - ScSimulator: an atomic-memory interleaving machine (sequential
 *    consistency);
 *  - TsoSimulator: a store-buffer machine in the style of Owens et al.'s
 *    x86-TSO operational model — one FIFO store buffer per thread with
 *    forwarding, fences that stall until the buffer drains, and
 *    buffer-draining locked RMWs.
 *
 * They serve as an independent oracle: on every synthesized TSO test the
 * outcome set of the store-buffer machine must equal the axiomatic
 * model's legal set (tests/integration), which ties the paper's
 * declarative formulation to an executable artifact. Each write is given
 * the unique value (event id + 1) so outcomes are comparable across the
 * axiomatic and operational sides via observableSignature().
 */

#ifndef LTS_SIM_OPSIM_HH
#define LTS_SIM_OPSIM_HH

#include <set>
#include <vector>

#include "litmus/test.hh"

namespace lts::sim
{

/**
 * An observable outcome: the value returned by each read (indexed by
 * event id; -1 for non-reads) followed by the final value of each
 * location. Write values are (writer event id + 1); 0 is the initial
 * value.
 */
using Signature = std::vector<int>;

/** Project an axiomatic execution onto a comparable Signature. */
Signature observableSignature(const litmus::LitmusTest &test,
                              const litmus::Outcome &outcome);

/**
 * Same projection under a custom value-per-write assignment (indexed by
 * event id; entries for non-writes are ignored). The exported .litmus
 * files and C++11 harnesses assign co-position values rather than
 * (id + 1), and this overload lets the simulators speak that value
 * space so an outcome tuple printed by a harness can be checked against
 * the machine directly (litmus::herdWriteValues supplies the vector).
 */
Signature observableSignature(const litmus::LitmusTest &test,
                              const litmus::Outcome &outcome,
                              const std::vector<int> &write_values);

/** Exhaustive interleaving exploration under sequential consistency. */
std::set<Signature> scOutcomes(const litmus::LitmusTest &test);

/** SC outcomes under a custom value-per-write assignment. */
std::set<Signature> scOutcomes(const litmus::LitmusTest &test,
                               const std::vector<int> &write_values);

/** Exhaustive exploration of the x86-TSO store-buffer machine. */
std::set<Signature> tsoOutcomes(const litmus::LitmusTest &test);

/** TSO outcomes under a custom value-per-write assignment. */
std::set<Signature> tsoOutcomes(const litmus::LitmusTest &test,
                                const std::vector<int> &write_values);

} // namespace lts::sim

#endif // LTS_SIM_OPSIM_HH
