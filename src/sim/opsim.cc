#include "sim/opsim.hh"

#include <functional>
#include <map>
#include <stdexcept>

namespace lts::sim
{

using litmus::EventType;
using litmus::LitmusTest;
using litmus::Outcome;

namespace
{

/** The historical default value assignment: write event id + 1. */
std::vector<int>
defaultWriteValues(const LitmusTest &test)
{
    std::vector<int> values(test.size());
    for (size_t i = 0; i < test.size(); i++)
        values[i] = static_cast<int>(i) + 1;
    return values;
}

} // namespace

Signature
observableSignature(const LitmusTest &test, const Outcome &outcome,
                    const std::vector<int> &write_values)
{
    Signature sig(test.size(), -1);
    for (size_t j = 0; j < test.size(); j++) {
        if (!test.events[j].isRead())
            continue;
        sig[j] = 0;
        for (size_t i = 0; i < test.size(); i++) {
            if (outcome.rf.test(i, j))
                sig[j] = write_values[i];
        }
    }
    for (int loc = 0; loc < test.numLocs; loc++) {
        int final_value = 0;
        for (size_t i = 0; i < test.size(); i++) {
            const auto &e = test.events[i];
            if (!e.isWrite() || e.loc != loc)
                continue;
            bool last = true;
            for (size_t j = 0; j < test.size(); j++) {
                if (outcome.co.test(i, j))
                    last = false;
            }
            if (last)
                final_value = write_values[i];
        }
        sig.push_back(final_value);
    }
    return sig;
}

Signature
observableSignature(const LitmusTest &test, const Outcome &outcome)
{
    return observableSignature(test, outcome, defaultWriteValues(test));
}

namespace
{

/** One pending store-buffer entry. */
struct BufferEntry
{
    int loc;
    int value;

    auto operator<=>(const BufferEntry &) const = default;
};

/** Full machine state, ordered so visited-state sets work. */
struct MachineState
{
    std::vector<int> pc;                          // next event per thread
    std::vector<std::vector<BufferEntry>> buffers; // per-thread FIFO
    std::vector<int> memory;                      // per location
    std::vector<int> reads;                       // value per event (-1)

    auto operator<=>(const MachineState &) const = default;
};

/**
 * Common exploration engine; @p with_buffers selects TSO vs SC.
 */
std::set<Signature>
explore(const LitmusTest &test, bool with_buffers,
        const std::vector<int> &write_values)
{
    if (test.depMatrix().any())
        throw std::invalid_argument(
            "operational simulators do not model dependencies");

    std::vector<std::vector<int>> thread_events(test.numThreads);
    for (const auto &e : test.events)
        thread_events[e.tid].push_back(e.id);

    std::set<Signature> outcomes;
    std::set<MachineState> visited;

    MachineState init;
    init.pc.assign(test.numThreads, 0);
    init.buffers.resize(test.numThreads);
    init.memory.assign(test.numLocs, 0);
    init.reads.assign(test.size(), -1);

    std::function<void(const MachineState &)> step =
        [&](const MachineState &state) {
            if (visited.count(state))
                return;
            visited.insert(state);

            bool progressed = false;
            for (int t = 0; t < test.numThreads; t++) {
                // Option 1: drain the oldest store-buffer entry.
                if (!state.buffers[t].empty()) {
                    MachineState next = state;
                    BufferEntry entry = next.buffers[t].front();
                    next.buffers[t].erase(next.buffers[t].begin());
                    next.memory[entry.loc] = entry.value;
                    progressed = true;
                    step(next);
                }
                // Option 2: execute the thread's next instruction.
                if (state.pc[t] >=
                    static_cast<int>(thread_events[t].size())) {
                    continue;
                }
                int id = thread_events[t][state.pc[t]];
                const auto &e = test.events[id];
                MachineState next = state;
                next.pc[t]++;

                switch (e.type) {
                  case EventType::Fence:
                    // Fences stall until the buffer has drained.
                    if (!state.buffers[t].empty())
                        continue;
                    break;
                  case EventType::Read: {
                    // RMW read: atomic with its write; needs an empty
                    // buffer (locked instructions drain first) and goes
                    // straight to memory.
                    int paired_write = -1;
                    for (size_t j = 0; j < test.size(); j++) {
                        if (test.rmw.test(id, j))
                            paired_write = static_cast<int>(j);
                    }
                    if (paired_write >= 0) {
                        if (!state.buffers[t].empty())
                            continue;
                        next.reads[id] = next.memory[e.loc];
                        next.memory[test.events[paired_write].loc] =
                            write_values[paired_write];
                        next.pc[t]++; // consume the write half too
                        break;
                    }
                    // Plain read: forward from the youngest buffered
                    // store to the same location, else read memory.
                    int value = next.memory[e.loc];
                    for (const auto &entry : state.buffers[t]) {
                        if (entry.loc == e.loc)
                            value = entry.value;
                    }
                    next.reads[id] = value;
                    break;
                  }
                  case EventType::Write:
                    if (with_buffers) {
                        next.buffers[t].push_back(
                            BufferEntry{e.loc, write_values[id]});
                    } else {
                        next.memory[e.loc] = write_values[id];
                    }
                    break;
                }
                progressed = true;
                step(next);
            }

            if (!progressed) {
                // All threads done and all buffers empty: record.
                Signature sig = state.reads;
                for (int loc = 0; loc < test.numLocs; loc++)
                    sig.push_back(state.memory[loc]);
                outcomes.insert(sig);
            }
        };

    step(init);
    return outcomes;
}

} // namespace

std::set<Signature>
scOutcomes(const LitmusTest &test)
{
    return explore(test, false, defaultWriteValues(test));
}

std::set<Signature>
scOutcomes(const LitmusTest &test, const std::vector<int> &write_values)
{
    return explore(test, false, write_values);
}

std::set<Signature>
tsoOutcomes(const LitmusTest &test)
{
    return explore(test, true, defaultWriteValues(test));
}

std::set<Signature>
tsoOutcomes(const LitmusTest &test, const std::vector<int> &write_values)
{
    return explore(test, true, write_values);
}

} // namespace lts::sim
