/**
 * @file
 * Dense bitset and square bit-matrix containers.
 *
 * These back the concrete relational evaluator: a unary relation over a
 * universe of n atoms is a Bitset of n bits, and a binary relation is a
 * BitMatrix of n x n bits. Both are small (n <= a few dozen) so the
 * containers are optimized for clarity and word-at-a-time operations
 * rather than for huge sizes.
 */

#ifndef LTS_COMMON_BITSET_HH
#define LTS_COMMON_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lts
{

/**
 * A dynamically sized dense bitset with word-parallel set operations.
 */
class Bitset
{
  public:
    Bitset() = default;

    /** Construct an all-zero bitset holding @p n bits. */
    explicit Bitset(size_t n) : numBits(n), words((n + 63) / 64, 0) {}

    /** Number of bits the set holds (not the number of set bits). */
    size_t size() const { return numBits; }

    bool
    test(size_t i) const
    {
        return (words[i / 64] >> (i % 64)) & 1;
    }

    void
    set(size_t i, bool value = true)
    {
        if (value)
            words[i / 64] |= uint64_t(1) << (i % 64);
        else
            words[i / 64] &= ~(uint64_t(1) << (i % 64));
    }

    void reset(size_t i) { set(i, false); }

    /** Set every bit to zero. */
    void
    clear()
    {
        for (auto &w : words)
            w = 0;
    }

    /** Number of set bits. */
    size_t count() const;

    /** True iff no bit is set. */
    bool none() const;

    /** True iff at least one bit is set. */
    bool any() const { return !none(); }

    Bitset &operator|=(const Bitset &other);
    Bitset &operator&=(const Bitset &other);
    /** Set difference: clear every bit that is set in @p other. */
    Bitset &operator-=(const Bitset &other);

    bool operator==(const Bitset &other) const;
    bool operator!=(const Bitset &other) const { return !(*this == other); }

    /** True iff this is a subset of @p other. */
    bool isSubsetOf(const Bitset &other) const;

    /** Index of the lowest set bit, or size() if empty. */
    size_t firstSet() const;

    /** Stable hash of the contents. */
    uint64_t hash() const;

    /** Render as a string of '0'/'1', lowest index first. */
    std::string toString() const;

  private:
    size_t numBits = 0;
    std::vector<uint64_t> words;
};

/**
 * A square bit matrix representing a binary relation over atoms 0..n-1.
 * Rows are packed Bitsets; entry (i, j) set means atom i relates to atom j.
 */
class BitMatrix
{
  public:
    BitMatrix() = default;

    /** Construct an empty (all-zero) n x n relation. */
    explicit BitMatrix(size_t n);

    /** The identity relation over n atoms. */
    static BitMatrix identity(size_t n);

    /** The full relation (all pairs) over n atoms. */
    static BitMatrix full(size_t n);

    size_t size() const { return n; }

    bool test(size_t i, size_t j) const { return rows[i].test(j); }
    void set(size_t i, size_t j, bool value = true) { rows[i].set(j, value); }

    const Bitset &row(size_t i) const { return rows[i]; }

    /** Number of related pairs. */
    size_t count() const;

    bool none() const;
    bool any() const { return !none(); }

    BitMatrix &operator|=(const BitMatrix &other);
    BitMatrix &operator&=(const BitMatrix &other);
    BitMatrix &operator-=(const BitMatrix &other);

    bool operator==(const BitMatrix &other) const;
    bool operator!=(const BitMatrix &other) const { return !(*this == other); }

    bool isSubsetOf(const BitMatrix &other) const;

    /** Relational composition: (this ; other). */
    BitMatrix compose(const BitMatrix &other) const;

    /** Transposed (inverse) relation. */
    BitMatrix transpose() const;

    /** Transitive closure (one or more steps). */
    BitMatrix transitiveClosure() const;

    /** Reflexive-transitive closure (zero or more steps). */
    BitMatrix reflexiveTransitiveClosure() const;

    /** True iff the relation contains no cycle (iden & closure is empty). */
    bool isAcyclic() const;

    /** True iff no atom relates to itself. */
    bool isIrreflexive() const;

    uint64_t hash() const;

    std::string toString() const;

  private:
    size_t n = 0;
    std::vector<Bitset> rows;
};

} // namespace lts

#endif // LTS_COMMON_BITSET_HH
