#include "common/flags.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/strings.hh"

namespace lts
{

void
Flags::declare(const std::string &name, const std::string &def,
               const std::string &help)
{
    decls[name] = Decl{def, help};
}

void
Flags::declareAll(const std::vector<FlagSpec> &specs)
{
    for (const auto &spec : specs)
        declare(spec.name, spec.def, spec.help);
}

bool
Flags::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr, "%s", usage(argv[0]).c_str());
            return false;
        }
        if (!startsWith(arg, "--")) {
            positionals.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            name = body;
            auto it = decls.find(name);
            if (it == decls.end()) {
                std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                             usage(argv[0]).c_str());
                return false;
            }
            // Boolean-style flag unless the next token is a value.
            bool is_bool =
                it->second.value == "true" || it->second.value == "false";
            if (!is_bool && i + 1 < argc && !startsWith(argv[i + 1], "--")) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        auto it = decls.find(name);
        if (it == decls.end()) {
            std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                         usage(argv[0]).c_str());
            return false;
        }
        it->second.value = value;
    }
    return true;
}

const std::string &
Flags::get(const std::string &name) const
{
    auto it = decls.find(name);
    if (it == decls.end())
        throw std::out_of_range("undeclared flag: " + name);
    return it->second.value;
}

int
Flags::getInt(const std::string &name) const
{
    return std::atoi(get(name).c_str());
}

bool
Flags::getBool(const std::string &name) const
{
    const std::string &v = get(name);
    return v == "true" || v == "1" || v == "yes";
}

double
Flags::getDouble(const std::string &name) const
{
    return std::atof(get(name).c_str());
}

uint64_t
Flags::getUint64(const std::string &name) const
{
    return std::strtoull(get(name).c_str(), nullptr, 10);
}

std::string
Flags::usage(const std::string &prog) const
{
    std::string out = "usage: " + prog + " [flags]\n";
    for (const auto &[name, decl] : decls) {
        out += "  --" + padRight(name + "=" + decl.value, 32) + " " +
               decl.help + "\n";
    }
    return out;
}

} // namespace lts
