/**
 * @file
 * String formatting helpers used by printers and the CLI layer.
 */

#ifndef LTS_COMMON_STRINGS_HH
#define LTS_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace lts
{

/** Split @p s on @p sep, dropping empty pieces when @p keep_empty is false. */
std::vector<std::string> split(std::string_view s, char sep,
                               bool keep_empty = false);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts, std::string_view sep);

/** True iff @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(std::string_view s, size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(std::string_view s, size_t width);

} // namespace lts

#endif // LTS_COMMON_STRINGS_HH
