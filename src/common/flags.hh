/**
 * @file
 * A minimal command-line flag parser for the bench and example binaries.
 *
 * Flags take the forms --name=value, --name value, or --name (boolean).
 * Unknown flags are an error so typos in sweep scripts fail loudly.
 */

#ifndef LTS_COMMON_FLAGS_HH
#define LTS_COMMON_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lts
{

/**
 * One row of a flag table: libraries that own a group of knobs (e.g.
 * synth::SynthOptions) export their flags as a static span of these so
 * every binary declares the same names, defaults, and help text.
 */
struct FlagSpec
{
    const char *name;
    const char *def;
    const char *help;
};

/**
 * Declarative flag registry: declare flags with defaults and help text,
 * then parse argv. Values are fetched by name with typed accessors.
 */
class Flags
{
  public:
    /** Declare a flag with a default value and a help string. */
    void declare(const std::string &name, const std::string &def,
                 const std::string &help);

    /**
     * Declare every flag in a table. Re-declaring afterwards overrides
     * the default, so a binary can specialize a shared table entry.
     */
    void declareAll(const std::vector<FlagSpec> &specs);

    /**
     * Parse argv. Returns false (and prints usage) on error or --help.
     * Positional arguments are collected into positional().
     */
    bool parse(int argc, char **argv);

    const std::string &get(const std::string &name) const;
    int getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;
    double getDouble(const std::string &name) const;
    uint64_t getUint64(const std::string &name) const;

    const std::vector<std::string> &positional() const { return positionals; }

    /** Render usage text for all declared flags. */
    std::string usage(const std::string &prog) const;

  private:
    struct Decl
    {
        std::string value;
        std::string help;
    };

    std::map<std::string, Decl> decls;
    std::vector<std::string> positionals;
};

} // namespace lts

#endif // LTS_COMMON_FLAGS_HH
