#include "common/strings.hh"

#include <cctype>

namespace lts
{

std::vector<std::string>
split(std::string_view s, char sep, bool keep_empty)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t end = s.find(sep, start);
        if (end == std::string_view::npos)
            end = s.size();
        std::string_view piece = s.substr(start, end - start);
        if (keep_empty || !piece.empty())
            out.emplace_back(piece);
        start = end + 1;
        if (end == s.size())
            break;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.substr(0, prefix.size()) == prefix;
}

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        b++;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        e--;
    return std::string(s.substr(b, e - b));
}

std::string
padLeft(std::string_view s, size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.insert(0, width - out.size(), ' ');
    return out;
}

std::string
padRight(std::string_view s, size_t width)
{
    std::string out(s);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

} // namespace lts
