/**
 * @file
 * Small hashing helpers shared across the project.
 *
 * The canonicalizer and the hash-consed gate layer both need stable,
 * well-mixed 64-bit hashes; we use a splitmix64-style mixer combined in
 * a boost-like fold so hashes are reproducible across runs and platforms.
 */

#ifndef LTS_COMMON_HASH_HH
#define LTS_COMMON_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace lts
{

/** Seed value for an incremental hash chain. */
inline uint64_t
hashInit()
{
    return 0x9e3779b97f4a7c15ULL;
}

/** splitmix64 finalizer: a cheap, high-quality 64-bit mixer. */
inline uint64_t
hashMix(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Fold @p value into the running hash @p h. */
inline uint64_t
hashCombine(uint64_t h, uint64_t value)
{
    return hashMix(h ^ (value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/** Hash a string view into the running hash @p h. */
inline uint64_t
hashCombine(uint64_t h, std::string_view s)
{
    for (char c : s)
        h = hashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    return hashCombine(h, s.size());
}

} // namespace lts

#endif // LTS_COMMON_HASH_HH
