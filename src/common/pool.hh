/**
 * @file
 * A fixed-size thread pool with a FIFO job queue.
 *
 * The synthesis engine shards its workload into one job per
 * (axiom, size) pair; each job owns its own solver state, so the pool
 * needs no shared-data machinery beyond the queue itself. Progress
 * counters (queued/running/done) are exposed so long-running bench
 * drivers can report scheduling state, and the first exception thrown
 * by any job is captured and rethrown from wait().
 */

#ifndef LTS_COMMON_POOL_HH
#define LTS_COMMON_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lts
{

/** Scheduling-state snapshot for progress reporting. */
struct PoolCounters
{
    uint64_t queued = 0;  ///< jobs submitted so far (monotonic)
    uint64_t running = 0; ///< jobs currently executing
    uint64_t done = 0;    ///< jobs finished (monotonic)
};

/**
 * Fixed worker pool. Jobs submitted with submit() run in FIFO order
 * across the workers; wait() blocks until every submitted job has
 * finished. The destructor waits for outstanding jobs before joining.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardware_concurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for outstanding jobs, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not be called after the destructor starts. */
    void submit(std::function<void()> job);

    /**
     * Block until all submitted jobs have finished. Rethrows the first
     * exception any job threw since the last wait().
     */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    PoolCounters counters() const;

    /** Clamp a requested job count: 0 means hardware_concurrency(). */
    static unsigned resolveThreads(int requested);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;

    mutable std::mutex mu;
    std::condition_variable workReady; // signalled on submit/stop
    std::condition_variable allIdle;   // signalled when pending hits 0
    size_t pending = 0;                // queued + running (under mu)
    bool stopping = false;
    std::exception_ptr firstError; // first job exception (under mu)

    std::atomic<uint64_t> nQueued{0};
    std::atomic<uint64_t> nRunning{0};
    std::atomic<uint64_t> nDone{0};
};

} // namespace lts

#endif // LTS_COMMON_POOL_HH
