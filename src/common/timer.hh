/**
 * @file
 * Wall-clock timer used by the synthesis harness to report per-suite
 * generation runtimes (Figures 13c, 16c, 20b).
 */

#ifndef LTS_COMMON_TIMER_HH
#define LTS_COMMON_TIMER_HH

#include <chrono>

namespace lts
{

/** A simple monotonic stopwatch; starts on construction. */
class Timer
{
  public:
    Timer() : start(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace lts

#endif // LTS_COMMON_TIMER_HH
