#include "common/bitset.hh"

#include <bit>
#include <cassert>

#include "common/hash.hh"

namespace lts
{

size_t
Bitset::count() const
{
    size_t total = 0;
    for (auto w : words)
        total += std::popcount(w);
    return total;
}

bool
Bitset::none() const
{
    for (auto w : words) {
        if (w)
            return false;
    }
    return true;
}

Bitset &
Bitset::operator|=(const Bitset &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); i++)
        words[i] |= other.words[i];
    return *this;
}

Bitset &
Bitset::operator&=(const Bitset &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); i++)
        words[i] &= other.words[i];
    return *this;
}

Bitset &
Bitset::operator-=(const Bitset &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); i++)
        words[i] &= ~other.words[i];
    return *this;
}

bool
Bitset::operator==(const Bitset &other) const
{
    return numBits == other.numBits && words == other.words;
}

bool
Bitset::isSubsetOf(const Bitset &other) const
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); i++) {
        if (words[i] & ~other.words[i])
            return false;
    }
    return true;
}

size_t
Bitset::firstSet() const
{
    for (size_t i = 0; i < words.size(); i++) {
        if (words[i]) {
            size_t bit = i * 64 + std::countr_zero(words[i]);
            return bit < numBits ? bit : numBits;
        }
    }
    return numBits;
}

uint64_t
Bitset::hash() const
{
    uint64_t h = hashInit();
    h = hashCombine(h, numBits);
    for (auto w : words)
        h = hashCombine(h, w);
    return h;
}

std::string
Bitset::toString() const
{
    std::string s;
    s.reserve(numBits);
    for (size_t i = 0; i < numBits; i++)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

BitMatrix::BitMatrix(size_t n) : n(n), rows(n, Bitset(n)) {}

BitMatrix
BitMatrix::identity(size_t n)
{
    BitMatrix m(n);
    for (size_t i = 0; i < n; i++)
        m.set(i, i);
    return m;
}

BitMatrix
BitMatrix::full(size_t n)
{
    BitMatrix m(n);
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++)
            m.set(i, j);
    }
    return m;
}

size_t
BitMatrix::count() const
{
    size_t total = 0;
    for (const auto &r : rows)
        total += r.count();
    return total;
}

bool
BitMatrix::none() const
{
    for (const auto &r : rows) {
        if (r.any())
            return false;
    }
    return true;
}

BitMatrix &
BitMatrix::operator|=(const BitMatrix &other)
{
    assert(n == other.n);
    for (size_t i = 0; i < n; i++)
        rows[i] |= other.rows[i];
    return *this;
}

BitMatrix &
BitMatrix::operator&=(const BitMatrix &other)
{
    assert(n == other.n);
    for (size_t i = 0; i < n; i++)
        rows[i] &= other.rows[i];
    return *this;
}

BitMatrix &
BitMatrix::operator-=(const BitMatrix &other)
{
    assert(n == other.n);
    for (size_t i = 0; i < n; i++)
        rows[i] -= other.rows[i];
    return *this;
}

bool
BitMatrix::operator==(const BitMatrix &other) const
{
    return n == other.n && rows == other.rows;
}

bool
BitMatrix::isSubsetOf(const BitMatrix &other) const
{
    assert(n == other.n);
    for (size_t i = 0; i < n; i++) {
        if (!rows[i].isSubsetOf(other.rows[i]))
            return false;
    }
    return true;
}

BitMatrix
BitMatrix::compose(const BitMatrix &other) const
{
    assert(n == other.n);
    BitMatrix out(n);
    for (size_t i = 0; i < n; i++) {
        for (size_t k = 0; k < n; k++) {
            if (rows[i].test(k))
                out.rows[i] |= other.rows[k];
        }
    }
    return out;
}

BitMatrix
BitMatrix::transpose() const
{
    BitMatrix out(n);
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++) {
            if (test(i, j))
                out.set(j, i);
        }
    }
    return out;
}

BitMatrix
BitMatrix::transitiveClosure() const
{
    // Warshall's algorithm, row-parallel.
    BitMatrix out = *this;
    for (size_t k = 0; k < n; k++) {
        for (size_t i = 0; i < n; i++) {
            if (out.test(i, k))
                out.rows[i] |= out.rows[k];
        }
    }
    return out;
}

BitMatrix
BitMatrix::reflexiveTransitiveClosure() const
{
    BitMatrix out = transitiveClosure();
    out |= identity(n);
    return out;
}

bool
BitMatrix::isAcyclic() const
{
    BitMatrix closure = transitiveClosure();
    for (size_t i = 0; i < n; i++) {
        if (closure.test(i, i))
            return false;
    }
    return true;
}

bool
BitMatrix::isIrreflexive() const
{
    for (size_t i = 0; i < n; i++) {
        if (test(i, i))
            return false;
    }
    return true;
}

uint64_t
BitMatrix::hash() const
{
    uint64_t h = hashInit();
    h = hashCombine(h, n);
    for (const auto &r : rows)
        h = hashCombine(h, r.hash());
    return h;
}

std::string
BitMatrix::toString() const
{
    std::string s;
    for (size_t i = 0; i < n; i++) {
        s += rows[i].toString();
        s.push_back('\n');
    }
    return s;
}

} // namespace lts
