#include "common/pool.hh"

namespace lts
{

unsigned
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return static_cast<unsigned>(requested);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned count = threads ? threads : resolveThreads(0);
    workers.reserve(count);
    for (unsigned i = 0; i < count; i++)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        allIdle.wait(lock, [this] { return pending == 0; });
        stopping = true;
    }
    workReady.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(job));
        pending++;
    }
    nQueued.fetch_add(1, std::memory_order_relaxed);
    workReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    allIdle.wait(lock, [this] { return pending == 0; });
    if (firstError) {
        std::exception_ptr e = firstError;
        firstError = nullptr;
        std::rethrow_exception(e);
    }
}

PoolCounters
ThreadPool::counters() const
{
    PoolCounters c;
    c.queued = nQueued.load(std::memory_order_relaxed);
    c.running = nRunning.load(std::memory_order_relaxed);
    c.done = nDone.load(std::memory_order_relaxed);
    return c;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            workReady.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and nothing left to drain
            job = std::move(queue.front());
            queue.pop_front();
        }
        nRunning.fetch_add(1, std::memory_order_relaxed);
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            if (!firstError)
                firstError = std::current_exception();
        }
        nRunning.fetch_sub(1, std::memory_order_relaxed);
        nDone.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mu);
            pending--;
            if (pending == 0)
                allIdle.notify_all();
        }
    }
}

} // namespace lts
