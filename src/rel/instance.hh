/**
 * @file
 * Vocabulary (relation-variable declarations) and Instance (a concrete
 * binding of every declared relation to explicit contents).
 *
 * A Vocabulary is shared by both evaluators: the concrete evaluator binds
 * each variable to a Bitset / BitMatrix, while the symbolic encoder binds
 * each cell to a SAT literal. An Instance is what the solver hands back —
 * it plays the role of an Alloy "model instance" (one litmus-test
 * execution) in the paper.
 */

#ifndef LTS_REL_INSTANCE_HH
#define LTS_REL_INSTANCE_HH

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bitset.hh"
#include "rel/expr.hh"

namespace lts::rel
{

/** Declaration record for one relation variable. */
struct VarDecl
{
    int id;
    std::string name;
    int arity;
};

/**
 * The set of declared relation variables. Var ids are dense and returned
 * by declare(); the same Vocabulary must be used to build expressions, to
 * bind instances, and to encode problems.
 */
class Vocabulary
{
  public:
    /** Declare a relation and get back an expression referring to it. */
    ExprPtr
    declare(const std::string &name, int arity)
    {
        if (byName.count(name))
            throw std::invalid_argument("relation redeclared: " + name);
        int id = static_cast<int>(decls.size());
        decls.push_back(VarDecl{id, name, arity});
        byName[name] = id;
        return mkVar(id, name, arity);
    }

    size_t size() const { return decls.size(); }
    const VarDecl &decl(int id) const { return decls.at(id); }

    /** Look up a declared relation by name (throws if absent). */
    const VarDecl &
    find(const std::string &name) const
    {
        auto it = byName.find(name);
        if (it == byName.end())
            throw std::out_of_range("no such relation: " + name);
        return decls[it->second];
    }

    bool contains(const std::string &name) const { return byName.count(name); }

    /** Rebuild the ExprPtr for a declared relation. */
    ExprPtr
    expr(const std::string &name) const
    {
        const VarDecl &d = find(name);
        return mkVar(d.id, d.name, d.arity);
    }

  private:
    std::vector<VarDecl> decls;
    std::map<std::string, int> byName;
};

/**
 * A total assignment of contents to every declared relation over a
 * universe of @c universeSize atoms.
 */
class Instance
{
  public:
    Instance() = default;

    Instance(const Vocabulary &vocab, size_t universe_size)
        : universeSize(universe_size)
    {
        sets.resize(vocab.size());
        matrices.resize(vocab.size());
        for (size_t i = 0; i < vocab.size(); i++) {
            if (vocab.decl(static_cast<int>(i)).arity == 1)
                sets[i] = Bitset(universe_size);
            else
                matrices[i] = BitMatrix(universe_size);
        }
    }

    size_t universe() const { return universeSize; }

    Bitset &set(int var_id) { return sets.at(var_id); }
    const Bitset &set(int var_id) const { return sets.at(var_id); }

    BitMatrix &matrix(int var_id) { return matrices.at(var_id); }
    const BitMatrix &matrix(int var_id) const { return matrices.at(var_id); }

  private:
    size_t universeSize = 0;
    std::vector<Bitset> sets;
    std::vector<BitMatrix> matrices;
};

} // namespace lts::rel

#endif // LTS_REL_INSTANCE_HH
