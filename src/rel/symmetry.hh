/**
 * @file
 * Kodkod-style symmetry breaking for the relational encoder.
 *
 * A bounded relational problem is symmetric under any permutation of the
 * universe that fixes every constant appearing in its formulas: permuting
 * the atoms of a satisfying instance yields another satisfying instance.
 * Enumeration loops therefore visit every member of each isomorphism
 * class unless the encoding prunes them. This module provides the two
 * standard ingredients Kodkod uses (Torlak & Jackson, TACAS'07):
 *
 *  1. *Partition detection*: split the universe into classes of atoms
 *     that no constant expression distinguishes (detectInterchangeable).
 *     Atoms within a class are interchangeable, so transpositions of
 *     adjacent class members generate the full symmetry group.
 *
 *  2. *Lex-leader predicates*: for each generator permutation pi, assert
 *     that the instance — read as a bit vector over the declared
 *     relation matrices — is lexicographically no greater than its image
 *     under pi. Every isomorphism class keeps at least one member (its
 *     lex-least), while most redundant members become UNSAT before they
 *     are ever enumerated.
 *
 * Generators may be *conditional*: the lex-leader constraint is guarded
 * by a conjunction of cell literals and only binds on instances where
 * the guard holds. This is how the memory-model layer expresses
 * thread-block swaps, which are symmetries only when the swapped index
 * ranges actually form complete, equally sized threads (the universe is
 * otherwise ordered by the po.index-order well-formedness fact, which
 * makes every atom distinguishable to the generic detector). A spec may
 * also carry plain *forbidden patterns* — conjunctions of cell literals
 * no canonical instance needs — which lower to single clauses.
 *
 * RelSolver::addSymmetryBreaking installs a spec as a retractable fact
 * layer so enumeration can activate it while witness-resolution queries
 * (which pin a representative that need not be the solver's lex-leader)
 * exclude it.
 */

#ifndef LTS_REL_SYMMETRY_HH
#define LTS_REL_SYMMETRY_HH

#include <cstdint>
#include <vector>

#include "rel/formula.hh"
#include "rel/instance.hh"

namespace lts::rel
{

/**
 * One cell-valued guard literal: relation @p varId holds (or not, per
 * @p value) at (i, j) — for unary relations only @p i is used.
 */
struct CellCond
{
    int varId = -1;
    size_t i = 0;
    size_t j = 0;
    bool value = true;
};

/**
 * An atom permutation with an optional guard. @p perm maps each atom to
 * its image (perm.size() == universe size). The lex-leader constraint
 * for the permutation binds only on instances satisfying every
 * condition; an empty condition list means it always binds.
 */
struct ConditionalPerm
{
    std::vector<size_t> perm;
    std::vector<CellCond> conditions;
};

/** A full symmetry-breaking prescription for one encoding. */
struct SymmetrySpec
{
    /**
     * Relation ids forming the lex vector, in comparison order (cells
     * row-major within each relation). Relations known to be invariant
     * under every generator (e.g. po under guarded block swaps) can be
     * omitted to keep the chains short.
     */
    std::vector<int> lexVarIds;

    std::vector<ConditionalPerm> generators;

    /**
     * Conjunctions of cell conditions excluded outright (each lowers to
     * one clause). Sound when every isomorphism class has a member
     * matching none of the patterns — e.g. "a complete thread block
     * immediately followed by a strictly larger one", which block
     * sorting always avoids.
     */
    std::vector<std::vector<CellCond>> forbidden;

    bool
    empty() const
    {
        return generators.empty() && forbidden.empty();
    }
};

/** Counters reported by RelSolver::addSymmetryBreaking. */
struct SymmetryStats
{
    uint64_t clauses = 0;    ///< CNF clauses emitted (incl. Tseitin defs)
    uint64_t generators = 0; ///< lex-leader predicates asserted
    uint64_t forbidden = 0;  ///< forbidden-pattern clauses asserted
};

/**
 * Partition the universe into interchangeable-atom classes: atoms i and
 * k share a class iff swapping them fixes every constant expression
 * appearing in @p facts (unary membership equal; binary rows/columns
 * equal outside {i, k} and equal on the diagonal and the (i,k)/(k,i)
 * cells). Classes are returned sorted by smallest member; relation
 * *variables* never split a class — they are symmetric by construction.
 */
std::vector<std::vector<size_t>>
detectInterchangeable(const std::vector<FormulaPtr> &facts, size_t n);

/**
 * Unconditional generators for a detected partition: transpositions of
 * adjacent atoms within each class, which generate the full product of
 * symmetric groups over the classes.
 */
std::vector<ConditionalPerm>
unconditionalGenerators(const std::vector<std::vector<size_t>> &classes);

/**
 * Convenience: a spec whose lex vector covers every declared relation
 * and whose generators come from unconditionalGenerators over the
 * detected partition of @p facts.
 */
SymmetrySpec specFromFacts(const Vocabulary &vocab,
                           const std::vector<FormulaPtr> &facts, size_t n);

} // namespace lts::rel

#endif // LTS_REL_SYMMETRY_HH
