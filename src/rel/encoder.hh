/**
 * @file
 * Symbolic encoder: relational expressions/formulas -> AIG gates -> CNF.
 *
 * Together with rel/gates.hh this is the Kodkod-equivalent translation the
 * paper relies on: every declared relation variable becomes a matrix of
 * free SAT variables, every operator becomes gate-level boolean algebra on
 * those matrices (transitive closure by iterative squaring), and every
 * formula becomes a single gate literal that can be asserted.
 *
 * RelSolver wraps the whole pipeline: declare a Vocabulary, assert facts,
 * then solve/enumerate instances. Facts come in two flavours: *base*
 * facts are permanent, while retractable facts (addFact -> FactHandle)
 * are layered over the shared encoding via the SAT solver's
 * activation-literal groups and can be retired with retract(). One
 * solver can therefore serve many closely related queries — the
 * synthesizer sweeps every axiom of a model over a single per-size
 * encoding. Enumeration blocks either the full instance or only a chosen
 * subset of relations (the synthesizer blocks only the *static* part of
 * a litmus test so each test is produced once), and blocking clauses can
 * be tied to a fact layer so they die with it.
 */

#ifndef LTS_REL_ENCODER_HH
#define LTS_REL_ENCODER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "rel/eval.hh"
#include "rel/formula.hh"
#include "rel/gates.hh"
#include "rel/instance.hh"
#include "rel/symmetry.hh"
#include "sat/dimacs.hh"
#include "sat/solver.hh"

namespace lts::rel
{

/** A symbolic set: one gate literal per atom. */
using SymSet = std::vector<GLit>;

/** A symbolic relation: n x n gate literals, row-major. */
struct SymMatrix
{
    size_t n = 0;
    std::vector<GLit> cells; // n * n, row-major

    SymMatrix() = default;
    SymMatrix(size_t n, GLit fill) : n(n), cells(n * n, fill) {}

    GLit &at(size_t i, size_t j) { return cells[i * n + j]; }
    GLit at(size_t i, size_t j) const { return cells[i * n + j]; }
};

/**
 * Translates expressions and formulas over a fixed universe into gates.
 * Sub-expression results are memoized by node identity.
 */
class Encoder
{
  public:
    /**
     * @param vocab   declared relations
     * @param n       universe size
     * @param builder gate builder shared with the owning solver
     */
    Encoder(const Vocabulary &vocab, size_t n, GateBuilder &builder);

    /** The SAT variable holding cell (i, j) of binary relation @p var_id. */
    sat::Var cellVar(int var_id, size_t i, size_t j) const;

    /** The SAT variable holding membership of atom @p i in set @p var_id. */
    sat::Var cellVar(int var_id, size_t i) const;

    /** Encode an arity-1 expression. */
    SymSet encodeSet(const ExprPtr &e);

    /** Encode an arity-2 expression. */
    SymMatrix encodeMatrix(const ExprPtr &e);

    /** Encode a formula into one gate literal. */
    GLit encodeFormula(const FormulaPtr &f);

    /** Read back a full instance from the solver's current model. */
    Instance extract(const sat::Solver &solver) const;

    /**
     * Build a blocking clause excluding the current model's assignment to
     * the given relation variables (all relations when @p var_ids empty).
     */
    sat::Clause blockingClause(const sat::Solver &solver,
                               const std::vector<int> &var_ids) const;

    /** Blocking clause from a stored instance instead of a solver model. */
    sat::Clause blockingClause(const Instance &inst,
                               const std::vector<int> &var_ids) const;

    const Vocabulary &vocabulary() const { return vocab; }

    size_t universe() const { return n; }

  private:
    SymMatrix closure(const SymMatrix &m);
    SymMatrix composeSym(const SymMatrix &a, const SymMatrix &b);

    const Vocabulary &vocab;
    size_t n;
    GateBuilder &builder;

    // Per declared relation: the SAT variables of its cells.
    std::vector<std::vector<sat::Var>> cellVars;

    // Keyed by shared_ptr (pointer identity) so the cache also retains the
    // nodes: a raw-pointer key could be reused by a later allocation after
    // a temporary expression dies, aliasing unrelated cache entries.
    std::unordered_map<ExprPtr, SymSet> setCache;
    std::unordered_map<ExprPtr, SymMatrix> matrixCache;
    std::unordered_map<FormulaPtr, GLit> formulaCache;
};

/**
 * Handle to a retractable fact layer (see RelSolver::addFact). Thin
 * wrapper over a sat::Group: the fact's encoding is guarded by the
 * group's activation literal, so it binds only in solves that include
 * the handle and can be retired permanently with retract().
 */
using FactHandle = sat::Group;

constexpr FactHandle kNoFact = sat::kNoGroup;

/**
 * One-stop relational solver: vocabulary + facts + solve/enumerate.
 */
class RelSolver
{
  public:
    RelSolver(const Vocabulary &vocab, size_t universe_size);

    /**
     * Assert that @p f holds in every instance, permanently. Base facts
     * are lowered as root-level units, so the solver simplifies against
     * them; use this for the encoding every query shares.
     */
    void addBaseFact(const FormulaPtr &f);

    /**
     * Assert @p f as a retractable layer and return its handle. The fact
     * binds only in solve()/solveUnder() calls that activate the handle;
     * an always-false fact makes those calls Unsat without poisoning the
     * solver for other layers.
     */
    FactHandle addFact(const FormulaPtr &f);

    /**
     * Permanently retire a retractable fact layer: its clauses — and any
     * blocking clauses or learned clauses tied to it — are dropped.
     */
    void retract(FactHandle h);

    /**
     * Run the SAT backend's SatELite-style preprocessing pass (see
     * sat/simplify.hh) over the permanent encoding built so far. Cell
     * variables and fact-layer selectors are frozen, so instances decode
     * unchanged and layers stay retractable; only internal Tseitin
     * variables are eliminated (with model reconstruction keeping
     * extract() total). Call it after the base facts every query shares
     * are in place — the more of the encoding is permanent, the more the
     * pass can remove. Returns false when the base encoding is unsat.
     */
    bool simplifyBase(const sat::SimplifyConfig &cfg = sat::SimplifyConfig());

    /**
     * Join a learnt-clause exchange family (see sat/clausebank.hh): every
     * solver connected under the same @p family_key must have built a
     * byte-identical encoding — same vocabulary, universe size, base
     * facts, and simplification — up to this call. The current variable
     * count becomes the shared prefix; later layers/blocks stay local.
     * Must be called before any solve and after simplifyBase.
     */
    void connectBank(sat::ClauseBank &bank, const std::string &family_key);

    /**
     * An initially empty retractable layer. Blocking clauses added under
     * it (blockModel / blockInstance) bind only in solves that activate
     * the handle and die together when it is retracted — the enumeration
     * loop's way of keeping its blocks out of witness-resolution solves.
     */
    FactHandle newLayer();

    /**
     * Install the spec's lex-leader predicates and forbidden-pattern
     * clauses as a retractable fact layer (see rel/symmetry.hh). The
     * layer prunes non-canonical members of each isomorphism class
     * during enumeration; retract it — or solve with pinAndMinimize,
     * which takes an explicit layer set — for queries that must reach
     * every member. Gate definitions are shared and permanent; only the
     * assertions live in the layer. @p stats, when given, accumulates
     * the emitted clause and predicate counts.
     */
    FactHandle addSymmetryBreaking(const SymmetrySpec &spec,
                                   SymmetryStats *stats = nullptr);

    /**
     * Solve with every live (non-retracted) retractable fact active.
     * Fills instance() on Sat.
     */
    sat::SolveResult solve();

    /**
     * Solve with exactly the given retractable layers active (base facts
     * always hold). Fills instance() on Sat.
     */
    sat::SolveResult solveUnder(const std::vector<FactHandle> &handles);

    /** The instance found by the last Sat solve. */
    const Instance &instance() const { return lastInstance; }

    /**
     * Replace the last instance with the lexicographically smallest
     * model (declared relations in id order, cells row-major, false
     * before true) that agrees with it on @p fixed_var_ids, under the
     * live fact layers and every accumulated clause. The result is a
     * pure function of the fixed assignment and the constraint set,
     * independent of SAT search state — the synthesizer relies on this
     * to emit identical witness executions from either engine.
     */
    void lexMinimizeInstance(const std::vector<int> &fixed_var_ids);

    /**
     * Pin @p pinned_var_ids to their values in @p pin and find the
     * lexicographically smallest completion (same order as
     * lexMinimizeInstance) under exactly the given fact layers — not the
     * full live set, so enumeration-only layers (symmetry breaking,
     * blocking) can be left out. Returns false when no completion exists
     * (or a conflict budget ran out); on success instance() holds the
     * result, which is a pure function of the pinned assignment and the
     * active constraint set.
     */
    bool pinAndMinimize(const Instance &pin,
                        const std::vector<int> &pinned_var_ids,
                        const std::vector<FactHandle> &layers);

    /**
     * Exclude the last instance's assignment to @p var_ids (all declared
     * relations when empty). When @p under is a fact handle the blocking
     * clause is tied to that layer and dies with it; kNoFact blocks
     * permanently.
     */
    void blockModel(const std::vector<int> &var_ids = {},
                    FactHandle under = kNoFact);

    /**
     * Like blockModel, but excluding an explicit instance's assignment —
     * used by orbit blocking to retire every symmetric image of a found
     * model, not just the member the solver produced.
     */
    void blockInstance(const Instance &inst,
                       const std::vector<int> &var_ids = {},
                       FactHandle under = kNoFact);

    /**
     * Convenience for enumeration loops: blockModel(var_ids) permanently,
     * then solve() again.
     */
    sat::SolveResult blockAndContinue(const std::vector<int> &var_ids = {});

    /**
     * Attach a DRAT proof writer to the SAT backend (see
     * sat::Solver::setProof). Call right after construction, before any
     * facts are asserted; pass nullptr to detach. The writer must
     * outlive the solver (or be detached first).
     */
    void setProof(sat::DratWriter *writer) { solver.setProof(writer); }

    /**
     * Snapshot the current constraint set as a standalone CNF: every
     * live problem clause (group guards included) plus one unit per
     * live fact-layer selector, so the file poses exactly the query
     * solve() poses. Pair with sat::writeDimacs to cross-check an Unsat
     * shard with an external solver.
     */
    sat::Cnf exportCnf() const;

    Encoder &encoder() { return enc; }
    sat::Solver &satSolver() { return solver; }

  private:
    void pushPins(const Instance &src, const std::vector<char> &fixed,
                  std::vector<sat::Lit> &assume) const;
    void lexWalk(std::vector<sat::Lit> &assume,
                 const std::vector<char> &fixed);

    sat::Solver solver;
    GateBuilder builder;
    Encoder enc;
    Instance lastInstance;
    std::vector<FactHandle> liveFacts;
};

} // namespace lts::rel

#endif // LTS_REL_ENCODER_HH
