/**
 * @file
 * Symbolic encoder: relational expressions/formulas -> AIG gates -> CNF.
 *
 * Together with rel/gates.hh this is the Kodkod-equivalent translation the
 * paper relies on: every declared relation variable becomes a matrix of
 * free SAT variables, every operator becomes gate-level boolean algebra on
 * those matrices (transitive closure by iterative squaring), and every
 * formula becomes a single gate literal that can be asserted.
 *
 * RelSolver wraps the whole pipeline: declare a Vocabulary, assert facts,
 * then solve/enumerate instances. Enumeration blocks either the full
 * instance or only a chosen subset of relations (the synthesizer blocks
 * only the *static* part of a litmus test so each test is produced once).
 */

#ifndef LTS_REL_ENCODER_HH
#define LTS_REL_ENCODER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "rel/eval.hh"
#include "rel/formula.hh"
#include "rel/gates.hh"
#include "rel/instance.hh"
#include "sat/solver.hh"

namespace lts::rel
{

/** A symbolic set: one gate literal per atom. */
using SymSet = std::vector<GLit>;

/** A symbolic relation: n x n gate literals, row-major. */
struct SymMatrix
{
    size_t n = 0;
    std::vector<GLit> cells; // n * n, row-major

    SymMatrix() = default;
    SymMatrix(size_t n, GLit fill) : n(n), cells(n * n, fill) {}

    GLit &at(size_t i, size_t j) { return cells[i * n + j]; }
    GLit at(size_t i, size_t j) const { return cells[i * n + j]; }
};

/**
 * Translates expressions and formulas over a fixed universe into gates.
 * Sub-expression results are memoized by node identity.
 */
class Encoder
{
  public:
    /**
     * @param vocab   declared relations
     * @param n       universe size
     * @param builder gate builder shared with the owning solver
     */
    Encoder(const Vocabulary &vocab, size_t n, GateBuilder &builder);

    /** The SAT variable holding cell (i, j) of binary relation @p var_id. */
    sat::Var cellVar(int var_id, size_t i, size_t j) const;

    /** The SAT variable holding membership of atom @p i in set @p var_id. */
    sat::Var cellVar(int var_id, size_t i) const;

    /** Encode an arity-1 expression. */
    SymSet encodeSet(const ExprPtr &e);

    /** Encode an arity-2 expression. */
    SymMatrix encodeMatrix(const ExprPtr &e);

    /** Encode a formula into one gate literal. */
    GLit encodeFormula(const FormulaPtr &f);

    /** Read back a full instance from the solver's current model. */
    Instance extract(const sat::Solver &solver) const;

    /**
     * Build a blocking clause excluding the current model's assignment to
     * the given relation variables (all relations when @p var_ids empty).
     */
    sat::Clause blockingClause(const sat::Solver &solver,
                               const std::vector<int> &var_ids) const;

    size_t universe() const { return n; }

  private:
    SymMatrix closure(const SymMatrix &m);
    SymMatrix composeSym(const SymMatrix &a, const SymMatrix &b);

    const Vocabulary &vocab;
    size_t n;
    GateBuilder &builder;

    // Per declared relation: the SAT variables of its cells.
    std::vector<std::vector<sat::Var>> cellVars;

    // Keyed by shared_ptr (pointer identity) so the cache also retains the
    // nodes: a raw-pointer key could be reused by a later allocation after
    // a temporary expression dies, aliasing unrelated cache entries.
    std::unordered_map<ExprPtr, SymSet> setCache;
    std::unordered_map<ExprPtr, SymMatrix> matrixCache;
    std::unordered_map<FormulaPtr, GLit> formulaCache;
};

/**
 * One-stop relational solver: vocabulary + facts + solve/enumerate.
 */
class RelSolver
{
  public:
    RelSolver(const Vocabulary &vocab, size_t universe_size);

    /** Assert that @p f holds in every instance. */
    void addFact(const FormulaPtr &f);

    /** True iff an instance satisfying all facts exists; fills instance(). */
    bool solve();

    /** The instance found by the last successful solve(). */
    const Instance &instance() const { return lastInstance; }

    /**
     * Exclude the last instance's assignment to @p var_ids (all declared
     * relations when empty) and keep solving. Returns false when the
     * space is exhausted.
     */
    bool blockAndContinue(const std::vector<int> &var_ids = {});

    Encoder &encoder() { return enc; }
    sat::Solver &satSolver() { return solver; }

  private:
    sat::Solver solver;
    GateBuilder builder;
    Encoder enc;
    Instance lastInstance;
    bool exhausted = false;
};

} // namespace lts::rel

#endif // LTS_REL_ENCODER_HH
