#include "rel/symmetry.hh"

#include <numeric>

#include "rel/visit.hh"

namespace lts::rel
{

namespace
{

/** Would swapping atoms @p a and @p b fix constant expression @p e? */
bool
constantFixedBySwap(const ExprPtr &e, size_t a, size_t b, size_t n)
{
    if (e->arity == 1)
        return e->constSet.test(a) == e->constSet.test(b);
    const BitMatrix &m = e->constMatrix;
    if (m.test(a, a) != m.test(b, b) || m.test(a, b) != m.test(b, a))
        return false;
    for (size_t j = 0; j < n; j++) {
        if (j == a || j == b)
            continue;
        if (m.test(a, j) != m.test(b, j) || m.test(j, a) != m.test(j, b))
            return false;
    }
    return true;
}

} // namespace

std::vector<std::vector<size_t>>
detectInterchangeable(const std::vector<FormulaPtr> &facts, size_t n)
{
    // Only constants distinguish atoms: relation variables are free and
    // the operators are pointwise/positional, so any atom permutation
    // that fixes every constant maps instances to instances.
    std::vector<ExprPtr> consts;
    for (const FormulaPtr &f : facts) {
        forEachExprIn(f, [&consts](const ExprPtr &e) {
            if (e->kind == ExprKind::Const)
                consts.push_back(e);
        });
    }

    auto interchangeable = [&](size_t a, size_t b) {
        for (const ExprPtr &e : consts) {
            if (!constantFixedBySwap(e, a, b, n))
                return false;
        }
        return true;
    };

    std::vector<std::vector<size_t>> classes;
    for (size_t i = 0; i < n; i++) {
        bool placed = false;
        for (auto &cls : classes) {
            bool fits = true;
            for (size_t member : cls) {
                if (!interchangeable(member, i)) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                cls.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed)
            classes.push_back({i});
    }
    return classes;
}

std::vector<ConditionalPerm>
unconditionalGenerators(const std::vector<std::vector<size_t>> &classes)
{
    size_t n = 0;
    for (const auto &cls : classes)
        n += cls.size();

    std::vector<ConditionalPerm> gens;
    for (const auto &cls : classes) {
        for (size_t k = 0; k + 1 < cls.size(); k++) {
            ConditionalPerm g;
            g.perm.resize(n);
            std::iota(g.perm.begin(), g.perm.end(), size_t{0});
            g.perm[cls[k]] = cls[k + 1];
            g.perm[cls[k + 1]] = cls[k];
            gens.push_back(std::move(g));
        }
    }
    return gens;
}

SymmetrySpec
specFromFacts(const Vocabulary &vocab, const std::vector<FormulaPtr> &facts,
              size_t n)
{
    SymmetrySpec spec;
    for (size_t id = 0; id < vocab.size(); id++)
        spec.lexVarIds.push_back(static_cast<int>(id));
    spec.generators = unconditionalGenerators(detectInterchangeable(facts, n));
    return spec;
}

} // namespace lts::rel
