/**
 * @file
 * Concrete evaluation of relational expressions and formulas against an
 * Instance.
 *
 * This evaluator is the ground truth for the symbolic encoder: the
 * property tests assert that for every instance, encoder and evaluator
 * agree. It also powers the explicit synthesis engine and the minimality
 * audit of existing suites, where executions are enumerated directly.
 */

#ifndef LTS_REL_EVAL_HH
#define LTS_REL_EVAL_HH

#include <unordered_map>

#include "common/bitset.hh"
#include "rel/formula.hh"
#include "rel/instance.hh"

namespace lts::rel
{

/** Evaluate a set-valued (arity-1) expression. */
Bitset evalSet(const ExprPtr &e, const Instance &inst);

/** Evaluate a relation-valued (arity-2) expression. */
BitMatrix evalMatrix(const ExprPtr &e, const Instance &inst);

/** Evaluate a formula to a truth value. */
bool evalFormula(const FormulaPtr &f, const Instance &inst);

/**
 * Memoizing evaluator bound to one instance. Expression DAGs with heavy
 * sharing (e.g. the unrolled Power ppo fixpoint) take exponential time
 * under the plain recursive functions above; the Evaluator caches each
 * node's value so every DAG node is computed once.
 */
class Evaluator
{
  public:
    explicit Evaluator(const Instance &inst) : inst(inst) {}

    const Bitset &set(const ExprPtr &e);
    const BitMatrix &matrix(const ExprPtr &e);
    bool formula(const FormulaPtr &f);

  private:
    const Instance &inst;
    std::unordered_map<ExprPtr, Bitset> setCache;
    std::unordered_map<ExprPtr, BitMatrix> matrixCache;
    std::unordered_map<FormulaPtr, bool> formulaCache;
};

} // namespace lts::rel

#endif // LTS_REL_EVAL_HH
