/**
 * @file
 * Hash-consed AND-inverter-graph (AIG) builder with Tseitin lowering.
 *
 * The symbolic relational encoder produces one boolean gate per matrix
 * cell of every sub-expression. Structural hashing is what keeps the
 * minimality-criterion encoding tractable: the perturbed relation copies
 * (one per relaxation application, Section 4.3 of the paper) share almost
 * all of their structure with the base relations, and identical gates are
 * built only once. Gates are lowered on demand into CNF clauses inside a
 * sat::Solver.
 */

#ifndef LTS_REL_GATES_HH
#define LTS_REL_GATES_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sat/solver.hh"

namespace lts::rel
{

/**
 * A gate literal: gate id with a complement bit, AIGER-style.
 * Gate 0 is the constant TRUE, so literal 0 = true, literal 1 = false.
 */
using GLit = uint32_t;

constexpr GLit kTrue = 0;
constexpr GLit kFalse = 1;

/** Complement a gate literal. */
inline GLit
gNot(GLit a)
{
    return a ^ 1;
}

/**
 * Builds a shared AIG over a sat::Solver's variables and lowers asserted
 * gates to CNF.
 */
class GateBuilder
{
  public:
    explicit GateBuilder(sat::Solver &solver) : solver(solver) {}

    /** A gate literal that is true iff the SAT variable @p v is true. */
    GLit mkInput(sat::Var v);

    /** Allocate a fresh free SAT variable and wrap it as an input gate. */
    GLit
    mkFreeInput()
    {
        return mkInput(solver.newVar());
    }

    GLit mkAnd(GLit a, GLit b);
    GLit
    mkOr(GLit a, GLit b)
    {
        return gNot(mkAnd(gNot(a), gNot(b)));
    }
    GLit
    mkImplies(GLit a, GLit b)
    {
        return mkOr(gNot(a), b);
    }
    GLit mkXor(GLit a, GLit b);
    GLit
    mkIff(GLit a, GLit b)
    {
        return gNot(mkXor(a, b));
    }
    /** if s then t else e. */
    GLit mkMux(GLit s, GLit t, GLit e);

    /** AND of a list (true when empty). */
    GLit mkAndAll(const std::vector<GLit> &lits);

    /** OR of a list (false when empty). */
    GLit mkOrAll(const std::vector<GLit> &lits);

    /** At most one of the literals is true (pairwise encoding via gates). */
    GLit mkAtMostOne(const std::vector<GLit> &lits);

    /**
     * Lower @p g to a SAT literal, adding Tseitin clauses for every gate in
     * its cone that has not been lowered yet.
     */
    sat::Lit lower(GLit g);

    /** Assert that @p g is true (lower + unit clause). */
    void assertTrue(GLit g);

    /** Number of distinct AND gates created (for stats/benchmarks). */
    size_t numAnds() const { return andGates.size(); }

  private:
    struct AndGate
    {
        GLit a;
        GLit b;
        sat::Var satVar = -1; ///< -1 until lowered
    };

    struct InputGate
    {
        sat::Var var;
    };

    // Gate ids: 0 = constant true; then inputs and ANDs share the id space.
    // node index -> (isInput, index into the respective table)
    struct Node
    {
        bool isInput;
        uint32_t index;
    };

    GLit newNode(bool is_input, uint32_t index);
    sat::Lit litOf(GLit g, sat::Var var) const;
    /** Lit for a gate whose cone is already lowered (children resolved). */
    sat::Lit lowerResolved(GLit g);

    sat::Solver &solver;
    std::vector<Node> nodes = {Node{false, UINT32_MAX}}; // node 0: TRUE
    std::vector<AndGate> andGates;
    std::vector<InputGate> inputGates;
    std::unordered_map<uint64_t, GLit> andCache;
    std::unordered_map<int32_t, GLit> inputCache;
    sat::Var constVar = -1; ///< variable pinned true, for constant gates
};

} // namespace lts::rel

#endif // LTS_REL_GATES_HH
