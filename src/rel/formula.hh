/**
 * @file
 * First-order formula AST over relational expressions.
 *
 * Formulas are the constraint half of the bounded relational logic: they
 * assert multiplicities and containments over expressions and combine with
 * the usual connectives. The derived predicates the paper's Alloy models
 * lean on (acyclic, irreflexive, totality) are primitives here so both
 * evaluators can implement them directly.
 */

#ifndef LTS_REL_FORMULA_HH
#define LTS_REL_FORMULA_HH

#include <memory>
#include <string>

#include "rel/expr.hh"

namespace lts::rel
{

/** Formula node kinds. */
enum class FormulaKind
{
    True,
    False,
    Subset,       ///< a in b
    Equal,        ///< a = b
    Some,         ///< expr is non-empty
    No,           ///< expr is empty
    Lone,         ///< expr has at most one tuple
    One,          ///< expr has exactly one tuple
    Acyclic,      ///< no iden & ^expr
    Irreflexive,  ///< no iden & expr
    Total,        ///< expr totally orders a set (with strict order semantics)
    And,
    Or,
    Not,
    Implies,
    Iff,
};

class Formula;

/** Shared handle to an immutable formula node. */
using FormulaPtr = std::shared_ptr<const Formula>;

/** An immutable formula node; build with the factories below. */
class Formula
{
  public:
    FormulaKind kind;
    ExprPtr exprLhs;   ///< operand expressions (when applicable)
    ExprPtr exprRhs;
    FormulaPtr lhs;    ///< operand formulas (when applicable)
    FormulaPtr rhs;

    /** Render in Alloy-ish surface syntax for diagnostics. */
    std::string toString() const;
};

// --- atomic formulas --------------------------------------------------------

FormulaPtr mkTrue();
FormulaPtr mkFalse();

/** a in b (subset). */
FormulaPtr mkSubset(ExprPtr a, ExprPtr b);

/** a = b. */
FormulaPtr mkEqual(ExprPtr a, ExprPtr b);

FormulaPtr mkSome(ExprPtr e);
FormulaPtr mkNo(ExprPtr e);
FormulaPtr mkLone(ExprPtr e);
FormulaPtr mkOne(ExprPtr e);

/** acyclic[r]: the transitive closure of r hits no self-loop. */
FormulaPtr mkAcyclic(ExprPtr r);

/** irreflexive[r]: r itself hits no self-loop. */
FormulaPtr mkIrreflexive(ExprPtr r);

/**
 * total[r, s]: r is a strict total order on the set s, i.e. r is inside
 * s->s, is transitive and irreflexive, and relates every distinct pair of
 * s in one direction or the other.
 */
FormulaPtr mkTotal(ExprPtr r, ExprPtr s);

// --- connectives -------------------------------------------------------------

FormulaPtr mkAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr mkOr(FormulaPtr a, FormulaPtr b);
FormulaPtr mkNot(FormulaPtr a);
FormulaPtr mkImplies(FormulaPtr a, FormulaPtr b);
FormulaPtr mkIff(FormulaPtr a, FormulaPtr b);

/** Conjunction of a list (mkTrue() when empty). */
FormulaPtr mkAndAll(const std::vector<FormulaPtr> &formulas);

/** Disjunction of a list (mkFalse() when empty). */
FormulaPtr mkOrAll(const std::vector<FormulaPtr> &formulas);

// --- operator sugar ----------------------------------------------------------

inline FormulaPtr operator&&(FormulaPtr a, FormulaPtr b) { return mkAnd(a, b); }
inline FormulaPtr operator||(FormulaPtr a, FormulaPtr b) { return mkOr(a, b); }
inline FormulaPtr operator!(FormulaPtr a) { return mkNot(a); }

} // namespace lts::rel

#endif // LTS_REL_FORMULA_HH
