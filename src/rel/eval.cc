#include "rel/eval.hh"

#include <cassert>
#include <stdexcept>

namespace lts::rel
{

const Bitset &
Evaluator::set(const ExprPtr &e)
{
    assert(e->arity == 1);
    auto it = setCache.find(e);
    if (it != setCache.end())
        return it->second;

    size_t n = inst.universe();
    Bitset out(n);
    switch (e->kind) {
      case ExprKind::Var:
        out = inst.set(e->varId);
        break;
      case ExprKind::Univ:
        for (size_t i = 0; i < n; i++)
            out.set(i);
        break;
      case ExprKind::None:
        break;
      case ExprKind::Const:
        assert(e->constSet.size() == n);
        out = e->constSet;
        break;
      case ExprKind::Union:
        out = set(e->lhs);
        out |= set(e->rhs);
        break;
      case ExprKind::Intersect:
        out = set(e->lhs);
        out &= set(e->rhs);
        break;
      case ExprKind::Diff:
        out = set(e->lhs);
        out -= set(e->rhs);
        break;
      case ExprKind::Join: {
        if (e->lhs->arity == 1) {
            // set.rel: image of the set.
            const Bitset &s = set(e->lhs);
            const BitMatrix &r = matrix(e->rhs);
            for (size_t i = 0; i < n; i++) {
                if (s.test(i))
                    out |= r.row(i);
            }
        } else {
            // rel.set: preimage of the set.
            const BitMatrix &r = matrix(e->lhs);
            const Bitset &s = set(e->rhs);
            for (size_t i = 0; i < n; i++) {
                Bitset row = r.row(i);
                row &= s;
                if (row.any())
                    out.set(i);
            }
        }
        break;
      }
      default:
        throw std::logic_error("evalSet: unexpected node " + e->toString());
    }
    return setCache.emplace(e, std::move(out)).first->second;
}

const BitMatrix &
Evaluator::matrix(const ExprPtr &e)
{
    assert(e->arity == 2);
    auto it = matrixCache.find(e);
    if (it != matrixCache.end())
        return it->second;

    size_t n = inst.universe();
    BitMatrix out(n);
    switch (e->kind) {
      case ExprKind::Var:
        out = inst.matrix(e->varId);
        break;
      case ExprKind::None:
        break;
      case ExprKind::Iden:
        out = BitMatrix::identity(n);
        break;
      case ExprKind::Const:
        assert(e->constMatrix.size() == n);
        out = e->constMatrix;
        break;
      case ExprKind::Union:
        out = matrix(e->lhs);
        out |= matrix(e->rhs);
        break;
      case ExprKind::Intersect:
        out = matrix(e->lhs);
        out &= matrix(e->rhs);
        break;
      case ExprKind::Diff:
        out = matrix(e->lhs);
        out -= matrix(e->rhs);
        break;
      case ExprKind::Join:
        out = matrix(e->lhs).compose(matrix(e->rhs));
        break;
      case ExprKind::Product: {
        const Bitset &a = set(e->lhs);
        const Bitset &b = set(e->rhs);
        for (size_t i = 0; i < n; i++) {
            if (a.test(i)) {
                for (size_t j = 0; j < n; j++) {
                    if (b.test(j))
                        out.set(i, j);
                }
            }
        }
        break;
      }
      case ExprKind::Transpose:
        out = matrix(e->lhs).transpose();
        break;
      case ExprKind::Closure:
        out = matrix(e->lhs).transitiveClosure();
        break;
      case ExprKind::RClosure:
        out = matrix(e->lhs).reflexiveTransitiveClosure();
        break;
      case ExprKind::DomRestrict: {
        const Bitset &s = set(e->lhs);
        const BitMatrix &r = matrix(e->rhs);
        for (size_t i = 0; i < n; i++) {
            if (s.test(i)) {
                for (size_t j = 0; j < n; j++) {
                    if (r.test(i, j))
                        out.set(i, j);
                }
            }
        }
        break;
      }
      case ExprKind::RanRestrict: {
        const BitMatrix &r = matrix(e->lhs);
        const Bitset &s = set(e->rhs);
        for (size_t i = 0; i < n; i++) {
            Bitset row = r.row(i);
            row &= s;
            for (size_t j = 0; j < n; j++) {
                if (row.test(j))
                    out.set(i, j);
            }
        }
        break;
      }
      default:
        throw std::logic_error("evalMatrix: unexpected node " + e->toString());
    }
    return matrixCache.emplace(e, std::move(out)).first->second;
}

bool
Evaluator::formula(const FormulaPtr &f)
{
    auto it = formulaCache.find(f);
    if (it != formulaCache.end())
        return it->second;

    size_t n = inst.universe();
    auto count = [&](const ExprPtr &e) {
        return e->arity == 1 ? set(e).count() : matrix(e).count();
    };

    bool out = false;
    switch (f->kind) {
      case FormulaKind::True:
        out = true;
        break;
      case FormulaKind::False:
        out = false;
        break;
      case FormulaKind::Subset:
        out = f->exprLhs->arity == 1
                  ? set(f->exprLhs).isSubsetOf(set(f->exprRhs))
                  : matrix(f->exprLhs).isSubsetOf(matrix(f->exprRhs));
        break;
      case FormulaKind::Equal:
        out = f->exprLhs->arity == 1 ? set(f->exprLhs) == set(f->exprRhs)
                                     : matrix(f->exprLhs) == matrix(f->exprRhs);
        break;
      case FormulaKind::Some:
        out = count(f->exprLhs) > 0;
        break;
      case FormulaKind::No:
        out = count(f->exprLhs) == 0;
        break;
      case FormulaKind::Lone:
        out = count(f->exprLhs) <= 1;
        break;
      case FormulaKind::One:
        out = count(f->exprLhs) == 1;
        break;
      case FormulaKind::Acyclic:
        out = matrix(f->exprLhs).isAcyclic();
        break;
      case FormulaKind::Irreflexive:
        out = matrix(f->exprLhs).isIrreflexive();
        break;
      case FormulaKind::Total: {
        const BitMatrix &r = matrix(f->exprLhs);
        const Bitset &s = set(f->exprRhs);
        out = true;
        for (size_t i = 0; i < n && out; i++) {
            for (size_t j = 0; j < n && out; j++) {
                if (r.test(i, j) && (!s.test(i) || !s.test(j)))
                    out = false;
            }
        }
        if (out && !r.isIrreflexive())
            out = false;
        if (out && !r.compose(r).isSubsetOf(r))
            out = false;
        for (size_t i = 0; i < n && out; i++) {
            for (size_t j = 0; j < n && out; j++) {
                if (i != j && s.test(i) && s.test(j) && !r.test(i, j) &&
                    !r.test(j, i)) {
                    out = false;
                }
            }
        }
        break;
      }
      case FormulaKind::And:
        out = formula(f->lhs) && formula(f->rhs);
        break;
      case FormulaKind::Or:
        out = formula(f->lhs) || formula(f->rhs);
        break;
      case FormulaKind::Not:
        out = !formula(f->lhs);
        break;
      case FormulaKind::Implies:
        out = !formula(f->lhs) || formula(f->rhs);
        break;
      case FormulaKind::Iff:
        out = formula(f->lhs) == formula(f->rhs);
        break;
    }
    formulaCache.emplace(f, out);
    return out;
}

Bitset
evalSet(const ExprPtr &e, const Instance &inst)
{
    Evaluator ev(inst);
    return ev.set(e);
}

BitMatrix
evalMatrix(const ExprPtr &e, const Instance &inst)
{
    Evaluator ev(inst);
    return ev.matrix(e);
}

bool
evalFormula(const FormulaPtr &f, const Instance &inst)
{
    Evaluator ev(inst);
    return ev.formula(f);
}

} // namespace lts::rel
