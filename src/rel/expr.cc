#include "rel/expr.hh"

#include <cassert>
#include <stdexcept>

namespace lts::rel
{

namespace
{

ExprPtr
mkNode(ExprKind kind, int arity, ExprPtr lhs = nullptr, ExprPtr rhs = nullptr)
{
    auto node = std::make_shared<Expr>();
    node->kind = kind;
    node->arity = arity;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
}

void
requireArity(const ExprPtr &e, int arity, const char *op)
{
    if (e->arity != arity) {
        throw std::invalid_argument(std::string(op) + ": expected arity " +
                                    std::to_string(arity) + ", got " +
                                    std::to_string(e->arity) + " in " +
                                    e->toString());
    }
}

void
requireSameArity(const ExprPtr &a, const ExprPtr &b, const char *op)
{
    if (a->arity != b->arity) {
        throw std::invalid_argument(std::string(op) + ": arity mismatch: " +
                                    a->toString() + " vs " + b->toString());
    }
}

} // namespace

ExprPtr
mkVar(int var_id, const std::string &name, int arity)
{
    assert(arity == 1 || arity == 2);
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::Var;
    node->arity = arity;
    node->varId = var_id;
    node->name = name;
    return node;
}

ExprPtr
mkUniv()
{
    return mkNode(ExprKind::Univ, 1);
}

ExprPtr
mkNone(int arity)
{
    assert(arity == 1 || arity == 2);
    return mkNode(ExprKind::None, arity);
}

ExprPtr
mkIden()
{
    return mkNode(ExprKind::Iden, 2);
}

ExprPtr
mkConst(Bitset contents)
{
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::Const;
    node->arity = 1;
    node->constSet = std::move(contents);
    return node;
}

ExprPtr
mkConst(BitMatrix contents)
{
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::Const;
    node->arity = 2;
    node->constMatrix = std::move(contents);
    return node;
}

ExprPtr
mkUnion(ExprPtr a, ExprPtr b)
{
    requireSameArity(a, b, "+");
    int arity = a->arity;
    return mkNode(ExprKind::Union, arity, std::move(a), std::move(b));
}

ExprPtr
mkIntersect(ExprPtr a, ExprPtr b)
{
    requireSameArity(a, b, "&");
    int arity = a->arity;
    return mkNode(ExprKind::Intersect, arity, std::move(a), std::move(b));
}

ExprPtr
mkDiff(ExprPtr a, ExprPtr b)
{
    requireSameArity(a, b, "-");
    int arity = a->arity;
    return mkNode(ExprKind::Diff, arity, std::move(a), std::move(b));
}

ExprPtr
mkJoin(ExprPtr a, ExprPtr b)
{
    // set.rel -> set; rel.set -> set; rel.rel -> rel.
    int arity;
    if (a->arity == 1 && b->arity == 2)
        arity = 1;
    else if (a->arity == 2 && b->arity == 1)
        arity = 1;
    else if (a->arity == 2 && b->arity == 2)
        arity = 2;
    else
        throw std::invalid_argument("join: set.set is not a relation");
    return mkNode(ExprKind::Join, arity, std::move(a), std::move(b));
}

ExprPtr
mkProduct(ExprPtr a, ExprPtr b)
{
    requireArity(a, 1, "->");
    requireArity(b, 1, "->");
    return mkNode(ExprKind::Product, 2, std::move(a), std::move(b));
}

ExprPtr
mkTranspose(ExprPtr a)
{
    requireArity(a, 2, "~");
    return mkNode(ExprKind::Transpose, 2, std::move(a));
}

ExprPtr
mkClosure(ExprPtr a)
{
    requireArity(a, 2, "^");
    return mkNode(ExprKind::Closure, 2, std::move(a));
}

ExprPtr
mkRClosure(ExprPtr a)
{
    requireArity(a, 2, "*");
    return mkNode(ExprKind::RClosure, 2, std::move(a));
}

ExprPtr
mkDomRestrict(ExprPtr set, ExprPtr r)
{
    requireArity(set, 1, "<:");
    requireArity(r, 2, "<:");
    return mkNode(ExprKind::DomRestrict, 2, std::move(set), std::move(r));
}

ExprPtr
mkRanRestrict(ExprPtr r, ExprPtr set)
{
    requireArity(r, 2, ":>");
    requireArity(set, 1, ":>");
    return mkNode(ExprKind::RanRestrict, 2, std::move(r), std::move(set));
}

std::string
Expr::toString() const
{
    switch (kind) {
      case ExprKind::Var:
        return name;
      case ExprKind::Univ:
        return "univ";
      case ExprKind::None:
        return "none";
      case ExprKind::Iden:
        return "iden";
      case ExprKind::Const:
        return arity == 1 ? "<const-set>" : "<const-rel>";
      case ExprKind::Union:
        return "(" + lhs->toString() + " + " + rhs->toString() + ")";
      case ExprKind::Intersect:
        return "(" + lhs->toString() + " & " + rhs->toString() + ")";
      case ExprKind::Diff:
        return "(" + lhs->toString() + " - " + rhs->toString() + ")";
      case ExprKind::Join:
        return "(" + lhs->toString() + " . " + rhs->toString() + ")";
      case ExprKind::Product:
        return "(" + lhs->toString() + " -> " + rhs->toString() + ")";
      case ExprKind::Transpose:
        return "~" + lhs->toString();
      case ExprKind::Closure:
        return "^" + lhs->toString();
      case ExprKind::RClosure:
        return "*" + lhs->toString();
      case ExprKind::DomRestrict:
        return "(" + lhs->toString() + " <: " + rhs->toString() + ")";
      case ExprKind::RanRestrict:
        return "(" + lhs->toString() + " :> " + rhs->toString() + ")";
    }
    return "<?>";
}

} // namespace lts::rel
