#include "rel/visit.hh"

#include <algorithm>
#include <unordered_set>

namespace lts::rel
{

namespace
{

void
walkExpr(const ExprPtr &e, std::unordered_set<const Expr *> &seen,
         const std::function<void(const ExprPtr &)> &fn)
{
    if (!e || !seen.insert(e.get()).second)
        return;
    fn(e);
    walkExpr(e->lhs, seen, fn);
    walkExpr(e->rhs, seen, fn);
}

void
walkFormula(const FormulaPtr &f, std::unordered_set<const Formula *> &seen,
            const std::function<void(const FormulaPtr &)> &fn)
{
    // NB: `!f` (and even `f == nullptr`, via ADL inside libstdc++) would
    // resolve to the mkNot() operator sugar, not a null test.
    if (f.get() == nullptr || !seen.insert(f.get()).second)
        return;
    fn(f);
    walkFormula(f->lhs, seen, fn);
    walkFormula(f->rhs, seen, fn);
}

} // namespace

void
forEachExpr(const ExprPtr &e, const std::function<void(const ExprPtr &)> &fn)
{
    std::unordered_set<const Expr *> seen;
    walkExpr(e, seen, fn);
}

void
forEachFormula(const FormulaPtr &f,
               const std::function<void(const FormulaPtr &)> &fn)
{
    std::unordered_set<const Formula *> seen;
    walkFormula(f, seen, fn);
}

void
forEachExprIn(const FormulaPtr &f,
              const std::function<void(const ExprPtr &)> &fn)
{
    std::unordered_set<const Expr *> seen_exprs;
    forEachFormula(f, [&](const FormulaPtr &node) {
        walkExpr(node->exprLhs, seen_exprs, fn);
        walkExpr(node->exprRhs, seen_exprs, fn);
    });
}

std::vector<int>
collectVarIds(const FormulaPtr &f)
{
    std::vector<int> ids;
    forEachExprIn(f, [&](const ExprPtr &e) {
        if (e->kind == ExprKind::Var)
            ids.push_back(e->varId);
    });
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

std::vector<int>
collectVarIds(const ExprPtr &e)
{
    std::vector<int> ids;
    forEachExpr(e, [&](const ExprPtr &node) {
        if (node->kind == ExprKind::Var)
            ids.push_back(node->varId);
    });
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

} // namespace lts::rel
