#include "rel/encoder.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sat/clausebank.hh"

namespace lts::rel
{

Encoder::Encoder(const Vocabulary &vocab, size_t n, GateBuilder &builder)
    : vocab(vocab), n(n), builder(builder)
{
    cellVars.resize(vocab.size());
    for (size_t id = 0; id < vocab.size(); id++) {
        const VarDecl &d = vocab.decl(static_cast<int>(id));
        size_t cells = d.arity == 1 ? n : n * n;
        cellVars[id].reserve(cells);
        for (size_t c = 0; c < cells; c++) {
            // The encoder owns fresh SAT variables for each cell; they are
            // created through the builder's solver to keep numbering dense.
            sat::Lit lit = builder.lower(builder.mkFreeInput());
            assert(!lit.sign());
            cellVars[id].push_back(lit.var());
        }
    }
}

sat::Var
Encoder::cellVar(int var_id, size_t i, size_t j) const
{
    assert(vocab.decl(var_id).arity == 2);
    return cellVars[var_id][i * n + j];
}

sat::Var
Encoder::cellVar(int var_id, size_t i) const
{
    assert(vocab.decl(var_id).arity == 1);
    return cellVars[var_id][i];
}

SymSet
Encoder::encodeSet(const ExprPtr &e)
{
    assert(e->arity == 1);
    auto it = setCache.find(e);
    if (it != setCache.end())
        return it->second;

    SymSet out(n, kFalse);
    switch (e->kind) {
      case ExprKind::Var:
        for (size_t i = 0; i < n; i++)
            out[i] = builder.mkInput(cellVar(e->varId, i));
        break;
      case ExprKind::Univ:
        for (size_t i = 0; i < n; i++)
            out[i] = kTrue;
        break;
      case ExprKind::None:
        break;
      case ExprKind::Const:
        for (size_t i = 0; i < n; i++)
            out[i] = e->constSet.test(i) ? kTrue : kFalse;
        break;
      case ExprKind::Union: {
        SymSet a = encodeSet(e->lhs);
        SymSet b = encodeSet(e->rhs);
        for (size_t i = 0; i < n; i++)
            out[i] = builder.mkOr(a[i], b[i]);
        break;
      }
      case ExprKind::Intersect: {
        SymSet a = encodeSet(e->lhs);
        SymSet b = encodeSet(e->rhs);
        for (size_t i = 0; i < n; i++)
            out[i] = builder.mkAnd(a[i], b[i]);
        break;
      }
      case ExprKind::Diff: {
        SymSet a = encodeSet(e->lhs);
        SymSet b = encodeSet(e->rhs);
        for (size_t i = 0; i < n; i++)
            out[i] = builder.mkAnd(a[i], gNot(b[i]));
        break;
      }
      case ExprKind::Join: {
        if (e->lhs->arity == 1) {
            // set.rel: out[j] = OR_i (s[i] & r[i][j])
            SymSet s = encodeSet(e->lhs);
            SymMatrix r = encodeMatrix(e->rhs);
            for (size_t j = 0; j < n; j++) {
                std::vector<GLit> terms;
                for (size_t i = 0; i < n; i++)
                    terms.push_back(builder.mkAnd(s[i], r.at(i, j)));
                out[j] = builder.mkOrAll(terms);
            }
        } else {
            // rel.set: out[i] = OR_j (r[i][j] & s[j])
            SymMatrix r = encodeMatrix(e->lhs);
            SymSet s = encodeSet(e->rhs);
            for (size_t i = 0; i < n; i++) {
                std::vector<GLit> terms;
                for (size_t j = 0; j < n; j++)
                    terms.push_back(builder.mkAnd(r.at(i, j), s[j]));
                out[i] = builder.mkOrAll(terms);
            }
        }
        break;
      }
      default:
        throw std::logic_error("encodeSet: unexpected node " + e->toString());
    }
    setCache.emplace(e, out);
    return out;
}

SymMatrix
Encoder::composeSym(const SymMatrix &a, const SymMatrix &b)
{
    SymMatrix out(n, kFalse);
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++) {
            std::vector<GLit> terms;
            for (size_t k = 0; k < n; k++)
                terms.push_back(builder.mkAnd(a.at(i, k), b.at(k, j)));
            out.at(i, j) = builder.mkOrAll(terms);
        }
    }
    return out;
}

SymMatrix
Encoder::closure(const SymMatrix &m)
{
    // Iterative squaring: after k rounds, paths of length up to 2^k are
    // covered; ceil(log2(n)) rounds suffice in a universe of n atoms.
    SymMatrix cur = m;
    size_t reach = 1;
    while (reach < n) {
        SymMatrix sq = composeSym(cur, cur);
        for (size_t c = 0; c < cur.cells.size(); c++)
            cur.cells[c] = builder.mkOr(cur.cells[c], sq.cells[c]);
        reach *= 2;
    }
    return cur;
}

SymMatrix
Encoder::encodeMatrix(const ExprPtr &e)
{
    assert(e->arity == 2);
    auto it = matrixCache.find(e);
    if (it != matrixCache.end())
        return it->second;

    SymMatrix out(n, kFalse);
    switch (e->kind) {
      case ExprKind::Var:
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++)
                out.at(i, j) = builder.mkInput(cellVar(e->varId, i, j));
        }
        break;
      case ExprKind::None:
        break;
      case ExprKind::Iden:
        for (size_t i = 0; i < n; i++)
            out.at(i, i) = kTrue;
        break;
      case ExprKind::Const:
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++)
                out.at(i, j) = e->constMatrix.test(i, j) ? kTrue : kFalse;
        }
        break;
      case ExprKind::Union: {
        SymMatrix a = encodeMatrix(e->lhs);
        SymMatrix b = encodeMatrix(e->rhs);
        for (size_t c = 0; c < out.cells.size(); c++)
            out.cells[c] = builder.mkOr(a.cells[c], b.cells[c]);
        break;
      }
      case ExprKind::Intersect: {
        SymMatrix a = encodeMatrix(e->lhs);
        SymMatrix b = encodeMatrix(e->rhs);
        for (size_t c = 0; c < out.cells.size(); c++)
            out.cells[c] = builder.mkAnd(a.cells[c], b.cells[c]);
        break;
      }
      case ExprKind::Diff: {
        SymMatrix a = encodeMatrix(e->lhs);
        SymMatrix b = encodeMatrix(e->rhs);
        for (size_t c = 0; c < out.cells.size(); c++)
            out.cells[c] = builder.mkAnd(a.cells[c], gNot(b.cells[c]));
        break;
      }
      case ExprKind::Join:
        out = composeSym(encodeMatrix(e->lhs), encodeMatrix(e->rhs));
        break;
      case ExprKind::Product: {
        SymSet a = encodeSet(e->lhs);
        SymSet b = encodeSet(e->rhs);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++)
                out.at(i, j) = builder.mkAnd(a[i], b[j]);
        }
        break;
      }
      case ExprKind::Transpose: {
        SymMatrix a = encodeMatrix(e->lhs);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++)
                out.at(i, j) = a.at(j, i);
        }
        break;
      }
      case ExprKind::Closure:
        out = closure(encodeMatrix(e->lhs));
        break;
      case ExprKind::RClosure: {
        out = closure(encodeMatrix(e->lhs));
        for (size_t i = 0; i < n; i++)
            out.at(i, i) = kTrue;
        break;
      }
      case ExprKind::DomRestrict: {
        SymSet s = encodeSet(e->lhs);
        SymMatrix r = encodeMatrix(e->rhs);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++)
                out.at(i, j) = builder.mkAnd(s[i], r.at(i, j));
        }
        break;
      }
      case ExprKind::RanRestrict: {
        SymMatrix r = encodeMatrix(e->lhs);
        SymSet s = encodeSet(e->rhs);
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++)
                out.at(i, j) = builder.mkAnd(r.at(i, j), s[j]);
        }
        break;
      }
      default:
        throw std::logic_error("encodeMatrix: unexpected node " +
                               e->toString());
    }
    matrixCache.emplace(e, out);
    return out;
}

GLit
Encoder::encodeFormula(const FormulaPtr &f)
{
    auto it = formulaCache.find(f);
    if (it != formulaCache.end())
        return it->second;

    auto allCells = [&](const ExprPtr &e) {
        return e->arity == 1 ? encodeSet(e) : encodeMatrix(e).cells;
    };

    GLit out = kFalse;
    switch (f->kind) {
      case FormulaKind::True:
        out = kTrue;
        break;
      case FormulaKind::False:
        out = kFalse;
        break;
      case FormulaKind::Subset: {
        auto a = allCells(f->exprLhs);
        auto b = allCells(f->exprRhs);
        std::vector<GLit> terms;
        for (size_t c = 0; c < a.size(); c++)
            terms.push_back(builder.mkImplies(a[c], b[c]));
        out = builder.mkAndAll(terms);
        break;
      }
      case FormulaKind::Equal: {
        auto a = allCells(f->exprLhs);
        auto b = allCells(f->exprRhs);
        std::vector<GLit> terms;
        for (size_t c = 0; c < a.size(); c++)
            terms.push_back(builder.mkIff(a[c], b[c]));
        out = builder.mkAndAll(terms);
        break;
      }
      case FormulaKind::Some:
        out = builder.mkOrAll(allCells(f->exprLhs));
        break;
      case FormulaKind::No:
        out = gNot(builder.mkOrAll(allCells(f->exprLhs)));
        break;
      case FormulaKind::Lone:
        out = builder.mkAtMostOne(allCells(f->exprLhs));
        break;
      case FormulaKind::One: {
        auto cells = allCells(f->exprLhs);
        out = builder.mkAnd(builder.mkOrAll(cells),
                            builder.mkAtMostOne(cells));
        break;
      }
      case FormulaKind::Acyclic: {
        SymMatrix c = closure(encodeMatrix(f->exprLhs));
        std::vector<GLit> diag;
        for (size_t i = 0; i < n; i++)
            diag.push_back(gNot(c.at(i, i)));
        out = builder.mkAndAll(diag);
        break;
      }
      case FormulaKind::Irreflexive: {
        SymMatrix m = encodeMatrix(f->exprLhs);
        std::vector<GLit> diag;
        for (size_t i = 0; i < n; i++)
            diag.push_back(gNot(m.at(i, i)));
        out = builder.mkAndAll(diag);
        break;
      }
      case FormulaKind::Total: {
        SymMatrix r = encodeMatrix(f->exprLhs);
        SymSet s = encodeSet(f->exprRhs);
        std::vector<GLit> terms;
        // Confined to s -> s.
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                terms.push_back(builder.mkImplies(
                    r.at(i, j), builder.mkAnd(s[i], s[j])));
            }
        }
        // Irreflexive.
        for (size_t i = 0; i < n; i++)
            terms.push_back(gNot(r.at(i, i)));
        // Transitive: r;r in r.
        SymMatrix rr = composeSym(r, r);
        for (size_t c = 0; c < rr.cells.size(); c++)
            terms.push_back(builder.mkImplies(rr.cells[c], r.cells[c]));
        // Total over s.
        for (size_t i = 0; i < n; i++) {
            for (size_t j = i + 1; j < n; j++) {
                terms.push_back(builder.mkImplies(
                    builder.mkAnd(s[i], s[j]),
                    builder.mkOr(r.at(i, j), r.at(j, i))));
            }
        }
        out = builder.mkAndAll(terms);
        break;
      }
      case FormulaKind::And:
        out = builder.mkAnd(encodeFormula(f->lhs), encodeFormula(f->rhs));
        break;
      case FormulaKind::Or:
        out = builder.mkOr(encodeFormula(f->lhs), encodeFormula(f->rhs));
        break;
      case FormulaKind::Not:
        out = gNot(encodeFormula(f->lhs));
        break;
      case FormulaKind::Implies:
        out = builder.mkImplies(encodeFormula(f->lhs), encodeFormula(f->rhs));
        break;
      case FormulaKind::Iff:
        out = builder.mkIff(encodeFormula(f->lhs), encodeFormula(f->rhs));
        break;
    }
    formulaCache.emplace(f, out);
    return out;
}

Instance
Encoder::extract(const sat::Solver &solver) const
{
    Instance inst(vocab, n);
    for (size_t id = 0; id < vocab.size(); id++) {
        const VarDecl &d = vocab.decl(static_cast<int>(id));
        if (d.arity == 1) {
            for (size_t i = 0; i < n; i++) {
                if (solver.modelValue(cellVars[id][i]))
                    inst.set(d.id).set(i);
            }
        } else {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    if (solver.modelValue(cellVars[id][i * n + j]))
                        inst.matrix(d.id).set(i, j);
                }
            }
        }
    }
    return inst;
}

sat::Clause
Encoder::blockingClause(const sat::Solver &solver,
                        const std::vector<int> &var_ids) const
{
    std::vector<int> ids = var_ids;
    if (ids.empty()) {
        for (size_t id = 0; id < vocab.size(); id++)
            ids.push_back(static_cast<int>(id));
    }
    sat::Clause clause;
    for (int id : ids) {
        for (sat::Var v : cellVars[id])
            clause.push_back(sat::Lit(v, solver.modelValue(v)));
    }
    return clause;
}

sat::Clause
Encoder::blockingClause(const Instance &inst,
                        const std::vector<int> &var_ids) const
{
    std::vector<int> ids = var_ids;
    if (ids.empty()) {
        for (size_t id = 0; id < vocab.size(); id++)
            ids.push_back(static_cast<int>(id));
    }
    sat::Clause clause;
    for (int id : ids) {
        const VarDecl &d = vocab.decl(id);
        if (d.arity == 1) {
            for (size_t i = 0; i < n; i++) {
                clause.push_back(
                    sat::Lit(cellVars[id][i], inst.set(id).test(i)));
            }
        } else {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    clause.push_back(sat::Lit(cellVars[id][i * n + j],
                                              inst.matrix(id).test(i, j)));
                }
            }
        }
    }
    return clause;
}

RelSolver::RelSolver(const Vocabulary &vocab, size_t universe_size)
    : builder(solver), enc(vocab, universe_size, builder)
{
}

void
RelSolver::addBaseFact(const FormulaPtr &f)
{
    // Base facts are permanent, non-definitional constraints: adding one
    // after joining a clause-exchange family would specialize this solver
    // away from its siblings (see connectBank). Assert the ordering.
    assert(!solver.hasBank() &&
           "base facts must be asserted before connectBank()");
    builder.assertTrue(enc.encodeFormula(f));
}

bool
RelSolver::simplifyBase(const sat::SimplifyConfig &cfg)
{
    return solver.simplify(cfg);
}

void
RelSolver::connectBank(sat::ClauseBank &bank, const std::string &family_key)
{
    int family = bank.openFamily(family_key);
    solver.connectBank(bank, family, solver.numVars());
}

FactHandle
RelSolver::addFact(const FormulaPtr &f)
{
    FactHandle h = solver.newGroup();
    // Deliberately not assertTrue: the fact's literal goes into a clause
    // guarded by the layer's activation literal, so an always-false fact
    // only deadens this layer instead of poisoning the shared solver.
    sat::Lit flit = builder.lower(enc.encodeFormula(f));
    solver.addClause(h, {flit});
    liveFacts.push_back(h);
    return h;
}

void
RelSolver::retract(FactHandle h)
{
    solver.release(h);
    liveFacts.erase(std::remove(liveFacts.begin(), liveFacts.end(), h),
                    liveFacts.end());
}

sat::Cnf
RelSolver::exportCnf() const
{
    sat::Cnf cnf;
    cnf.numVars = solver.numVars();
    cnf.clauses = solver.liveClauses(false);
    for (FactHandle h : liveFacts)
        cnf.clauses.push_back({solver.groupLit(h)});
    return cnf;
}

FactHandle
RelSolver::newLayer()
{
    FactHandle h = solver.newGroup();
    liveFacts.push_back(h);
    return h;
}

FactHandle
RelSolver::addSymmetryBreaking(const SymmetrySpec &spec, SymmetryStats *stats)
{
    FactHandle h = solver.newGroup();
    int before = solver.numClauses();
    size_t n = enc.universe();
    const Vocabulary &vocab = enc.vocabulary();

    auto cellGate = [&](int var_id, size_t i, size_t j) {
        const VarDecl &d = vocab.decl(var_id);
        sat::Var v = d.arity == 1 ? enc.cellVar(var_id, i)
                                  : enc.cellVar(var_id, i, j);
        return builder.mkInput(v);
    };
    auto guardGate = [&](const std::vector<CellCond> &conds) {
        std::vector<GLit> lits;
        for (const CellCond &c : conds) {
            GLit g = cellGate(c.varId, c.i, c.j);
            lits.push_back(c.value ? g : gNot(g));
        }
        return builder.mkAndAll(lits);
    };

    for (const ConditionalPerm &gen : spec.generators) {
        assert(gen.perm.size() == n);
        // The lex vector under the identity (xs) and under the generator
        // (ys): cell (i, j) compares against cell (perm(i), perm(j)).
        std::vector<GLit> xs, ys;
        for (int id : spec.lexVarIds) {
            const VarDecl &d = vocab.decl(id);
            if (d.arity == 1) {
                for (size_t i = 0; i < n; i++) {
                    xs.push_back(cellGate(id, i, 0));
                    ys.push_back(cellGate(id, gen.perm[i], 0));
                }
            } else {
                for (size_t i = 0; i < n; i++) {
                    for (size_t j = 0; j < n; j++) {
                        xs.push_back(cellGate(id, i, j));
                        ys.push_back(cellGate(id, gen.perm[i], gen.perm[j]));
                    }
                }
            }
        }
        // x <=lex y with false < true, built from the tail:
        // leq_k = (!x_k & y_k) | ((x_k <-> y_k) & leq_{k+1}).
        GLit leq = kTrue;
        for (size_t k = xs.size(); k-- > 0;) {
            GLit lt = builder.mkAnd(gNot(xs[k]), ys[k]);
            GLit eq = builder.mkIff(xs[k], ys[k]);
            leq = builder.mkOr(lt, builder.mkAnd(eq, leq));
        }
        GLit pred = builder.mkImplies(guardGate(gen.conditions), leq);
        solver.addClause(h, {builder.lower(pred)});
    }

    for (const auto &pattern : spec.forbidden) {
        // not (c_1 & ... & c_k): one clause of negated cell literals —
        // no Tseitin needed since every conjunct is a raw cell.
        sat::Clause clause;
        for (const CellCond &c : pattern) {
            const VarDecl &d = vocab.decl(c.varId);
            sat::Var v = d.arity == 1 ? enc.cellVar(c.varId, c.i)
                                      : enc.cellVar(c.varId, c.i, c.j);
            clause.push_back(sat::Lit(v, c.value));
        }
        solver.addClause(h, std::move(clause));
    }

    if (stats) {
        stats->clauses += static_cast<uint64_t>(solver.numClauses() - before);
        stats->generators += spec.generators.size();
        stats->forbidden += spec.forbidden.size();
    }
    liveFacts.push_back(h);
    return h;
}

sat::SolveResult
RelSolver::solve()
{
    return solveUnder(liveFacts);
}

sat::SolveResult
RelSolver::solveUnder(const std::vector<FactHandle> &handles)
{
    std::vector<sat::Lit> assumptions;
    assumptions.reserve(handles.size());
    for (FactHandle h : handles) {
        assert(!solver.isReleased(h));
        assumptions.push_back(solver.groupLit(h));
    }
    sat::SolveResult res = solver.solve(assumptions);
    if (res == sat::SolveResult::Sat)
        lastInstance = enc.extract(solver);
    return res;
}

void
RelSolver::blockModel(const std::vector<int> &var_ids, FactHandle under)
{
    // Block from the stored instance, not the raw solver model: after
    // lexMinimizeInstance the two can disagree, and the documented
    // contract is "exclude the last *instance*".
    blockInstance(lastInstance, var_ids, under);
}

void
RelSolver::blockInstance(const Instance &inst, const std::vector<int> &var_ids,
                         FactHandle under)
{
    sat::Clause clause = enc.blockingClause(inst, var_ids);
    if (under == kNoFact)
        solver.addClause(std::move(clause));
    else
        solver.addClause(under, std::move(clause));
}

void
RelSolver::pushPins(const Instance &src, const std::vector<char> &fixed,
                    std::vector<sat::Lit> &assume) const
{
    const Vocabulary &vocab = enc.vocabulary();
    size_t n = enc.universe();
    // Pin the fixed relations at their values in @p src. Lit's sign flag
    // means "negated", so pinning cell c to value b is Lit(c, !b).
    for (size_t id = 0; id < vocab.size(); id++) {
        if (!fixed[id])
            continue;
        const VarDecl &d = vocab.decl(static_cast<int>(id));
        if (d.arity == 1) {
            for (size_t i = 0; i < n; i++) {
                assume.push_back(
                    sat::Lit(enc.cellVar(d.id, i), !src.set(d.id).test(i)));
            }
        } else {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    assume.push_back(sat::Lit(enc.cellVar(d.id, i, j),
                                              !src.matrix(d.id).test(i, j)));
                }
            }
        }
    }
}

void
RelSolver::lexWalk(std::vector<sat::Lit> &assume, const std::vector<char> &fixed)
{
    const Vocabulary &vocab = enc.vocabulary();
    size_t n = enc.universe();
    // Greedy lex walk over the free cells. A cell already false in the
    // best-so-far instance can be pinned false without solving — the
    // instance itself witnesses feasibility. A true cell costs one
    // assumption solve: Sat means false works (and the new model becomes
    // best-so-far), Unsat means the cell is forced true. Witness
    // relations are sparse, so only a handful of solves happen per call.
    auto tryCell = [&](sat::Var v, bool val) {
        if (!val) {
            assume.push_back(sat::Lit(v, true));
            return;
        }
        assume.push_back(sat::Lit(v, true));
        if (solver.solve(assume) == sat::SolveResult::Sat)
            lastInstance = enc.extract(solver);
        else
            assume.back() = sat::Lit(v, false);
    };
    for (size_t id = 0; id < vocab.size(); id++) {
        if (fixed[id])
            continue;
        const VarDecl &d = vocab.decl(static_cast<int>(id));
        if (d.arity == 1) {
            for (size_t i = 0; i < n; i++)
                tryCell(enc.cellVar(d.id, i), lastInstance.set(d.id).test(i));
        } else {
            for (size_t i = 0; i < n; i++) {
                for (size_t j = 0; j < n; j++) {
                    tryCell(enc.cellVar(d.id, i, j),
                            lastInstance.matrix(d.id).test(i, j));
                }
            }
        }
    }
}

void
RelSolver::lexMinimizeInstance(const std::vector<int> &fixed_var_ids)
{
    std::vector<char> fixed(enc.vocabulary().size(), 0);
    for (int id : fixed_var_ids)
        fixed[static_cast<size_t>(id)] = 1;

    std::vector<sat::Lit> assume;
    for (FactHandle h : liveFacts)
        assume.push_back(solver.groupLit(h));
    pushPins(lastInstance, fixed, assume);
    lexWalk(assume, fixed);
}

bool
RelSolver::pinAndMinimize(const Instance &pin,
                          const std::vector<int> &pinned_var_ids,
                          const std::vector<FactHandle> &layers)
{
    std::vector<char> fixed(enc.vocabulary().size(), 0);
    for (int id : pinned_var_ids)
        fixed[static_cast<size_t>(id)] = 1;

    std::vector<sat::Lit> assume;
    for (FactHandle h : layers) {
        assert(!solver.isReleased(h));
        assume.push_back(solver.groupLit(h));
    }
    pushPins(pin, fixed, assume);
    if (solver.solve(assume) != sat::SolveResult::Sat)
        return false;
    lastInstance = enc.extract(solver);
    lexWalk(assume, fixed);
    return true;
}

sat::SolveResult
RelSolver::blockAndContinue(const std::vector<int> &var_ids)
{
    blockModel(var_ids);
    return solve();
}

} // namespace lts::rel
