#include "rel/gates.hh"

#include <algorithm>
#include <cassert>

namespace lts::rel
{

GLit
GateBuilder::newNode(bool is_input, uint32_t index)
{
    GLit id = static_cast<GLit>(nodes.size());
    nodes.push_back(Node{is_input, index});
    return id << 1;
}

GLit
GateBuilder::mkInput(sat::Var v)
{
    auto it = inputCache.find(v);
    if (it != inputCache.end())
        return it->second;
    // Inputs are the variables the outside world holds on to (relation
    // cells, criterion selectors): they must survive solver.simplify(),
    // so freeze them. Internal AND-gate variables stay eliminable.
    solver.setFrozen(v);
    GLit g = newNode(true, static_cast<uint32_t>(inputGates.size()));
    inputGates.push_back(InputGate{v});
    inputCache[v] = g;
    return g;
}

GLit
GateBuilder::mkAnd(GLit a, GLit b)
{
    // Constant folding and trivial simplifications.
    if (a == kFalse || b == kFalse)
        return kFalse;
    if (a == kTrue)
        return b;
    if (b == kTrue)
        return a;
    if (a == b)
        return a;
    if (a == gNot(b))
        return kFalse;

    if (a > b)
        std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto it = andCache.find(key);
    if (it != andCache.end())
        return it->second;

    GLit g = newNode(false, static_cast<uint32_t>(andGates.size()));
    andGates.push_back(AndGate{a, b, -1});
    andCache[key] = g;
    return g;
}

GLit
GateBuilder::mkXor(GLit a, GLit b)
{
    // a xor b = (a | b) & ~(a & b)
    return mkAnd(mkOr(a, b), gNot(mkAnd(a, b)));
}

GLit
GateBuilder::mkMux(GLit s, GLit t, GLit e)
{
    return mkOr(mkAnd(s, t), mkAnd(gNot(s), e));
}

GLit
GateBuilder::mkAndAll(const std::vector<GLit> &lits)
{
    GLit out = kTrue;
    for (GLit l : lits)
        out = mkAnd(out, l);
    return out;
}

GLit
GateBuilder::mkOrAll(const std::vector<GLit> &lits)
{
    GLit out = kFalse;
    for (GLit l : lits)
        out = mkOr(out, l);
    return out;
}

GLit
GateBuilder::mkAtMostOne(const std::vector<GLit> &lits)
{
    // "Seen one so far" sequential encoding keeps the gate count linear.
    GLit ok = kTrue;
    GLit seen = kFalse;
    for (GLit l : lits) {
        ok = mkAnd(ok, gNot(mkAnd(seen, l)));
        seen = mkOr(seen, l);
    }
    return ok;
}

sat::Lit
GateBuilder::litOf(GLit g, sat::Var var) const
{
    return sat::Lit(var, (g & 1) != 0);
}

sat::Lit
GateBuilder::lower(GLit g)
{
    uint32_t node_id = g >> 1;
    if (node_id == 0) {
        // Constant: materialize a variable pinned to true once per builder.
        if (constVar < 0) {
            constVar = solver.newVar();
            solver.addClause({sat::Lit::pos(constVar)});
        }
        return litOf(g, constVar);
    }

    const Node &node = nodes[node_id];
    if (node.isInput)
        return litOf(g, inputGates[node.index].var);

    // Iterative DFS so deep formulas do not overflow the stack.
    std::vector<uint32_t> stack = {node_id};
    while (!stack.empty()) {
        uint32_t id = stack.back();
        const Node &n = nodes[id];
        if (n.isInput || id == 0) {
            stack.pop_back();
            continue;
        }
        AndGate &gate = andGates[n.index];
        if (gate.satVar >= 0 && !solver.isEliminated(gate.satVar)) {
            stack.pop_back();
            continue;
        }
        uint32_t ca = gate.a >> 1;
        uint32_t cb = gate.b >> 1;
        bool ready = true;
        for (uint32_t child : {ca, cb}) {
            const Node &cn = nodes[child];
            // A lowered child whose variable simplify() eliminated must be
            // re-lowered with a fresh variable: the old one occurs in no
            // live clause and may not be mentioned again. Children whose
            // variables survived elimination are reusable as-is — BVE
            // keeps the full resolvent set, so the remaining formula
            // still functionally determines them from the inputs.
            if (child != 0 && !cn.isInput &&
                (andGates[cn.index].satVar < 0 ||
                 solver.isEliminated(andGates[cn.index].satVar))) {
                stack.push_back(child);
                ready = false;
            }
        }
        if (!ready)
            continue;
        stack.pop_back();

        sat::Lit la = lowerResolved(gate.a);
        sat::Lit lb = lowerResolved(gate.b);
        sat::Var v = solver.newVar();
        gate.satVar = v;
        sat::Lit lg = sat::Lit::pos(v);
        // g <-> a & b
        solver.addClause({~lg, la});
        solver.addClause({~lg, lb});
        solver.addClause({lg, ~la, ~lb});
    }
    return litOf(g, andGates[node.index].satVar);
}

sat::Lit
GateBuilder::lowerResolved(GLit g)
{
    uint32_t node_id = g >> 1;
    if (node_id == 0) {
        if (constVar < 0) {
            constVar = solver.newVar();
            solver.addClause({sat::Lit::pos(constVar)});
        }
        return litOf(g, constVar);
    }
    const Node &node = nodes[node_id];
    if (node.isInput)
        return litOf(g, inputGates[node.index].var);
    assert(andGates[node.index].satVar >= 0 &&
           !solver.isEliminated(andGates[node.index].satVar));
    return litOf(g, andGates[node.index].satVar);
}

void
GateBuilder::assertTrue(GLit g)
{
    if (g == kTrue)
        return;
    if (g == kFalse) {
        // Assert false: make the solver trivially unsatisfiable.
        sat::Var v = solver.newVar();
        solver.addClause({sat::Lit::pos(v)});
        solver.addClause({sat::Lit::neg(v)});
        return;
    }
    solver.addClause({lower(g)});
}

} // namespace lts::rel
