#include "rel/formula.hh"

#include <stdexcept>
#include <vector>

namespace lts::rel
{

namespace
{

FormulaPtr
mkExprNode(FormulaKind kind, ExprPtr a, ExprPtr b = nullptr)
{
    auto node = std::make_shared<Formula>();
    node->kind = kind;
    node->exprLhs = std::move(a);
    node->exprRhs = std::move(b);
    return node;
}

FormulaPtr
mkConnective(FormulaKind kind, FormulaPtr a, FormulaPtr b = nullptr)
{
    auto node = std::make_shared<Formula>();
    node->kind = kind;
    node->lhs = std::move(a);
    node->rhs = std::move(b);
    return node;
}

void
requireBinary(const ExprPtr &e, const char *op)
{
    if (e->arity != 2)
        throw std::invalid_argument(std::string(op) +
                                    " needs a binary relation: " +
                                    e->toString());
}

} // namespace

FormulaPtr
mkTrue()
{
    static FormulaPtr t = mkConnective(FormulaKind::True, nullptr);
    return t;
}

FormulaPtr
mkFalse()
{
    static FormulaPtr f = mkConnective(FormulaKind::False, nullptr);
    return f;
}

FormulaPtr
mkSubset(ExprPtr a, ExprPtr b)
{
    if (a->arity != b->arity)
        throw std::invalid_argument("in: arity mismatch");
    return mkExprNode(FormulaKind::Subset, std::move(a), std::move(b));
}

FormulaPtr
mkEqual(ExprPtr a, ExprPtr b)
{
    if (a->arity != b->arity)
        throw std::invalid_argument("=: arity mismatch");
    return mkExprNode(FormulaKind::Equal, std::move(a), std::move(b));
}

FormulaPtr
mkSome(ExprPtr e)
{
    return mkExprNode(FormulaKind::Some, std::move(e));
}

FormulaPtr
mkNo(ExprPtr e)
{
    return mkExprNode(FormulaKind::No, std::move(e));
}

FormulaPtr
mkLone(ExprPtr e)
{
    return mkExprNode(FormulaKind::Lone, std::move(e));
}

FormulaPtr
mkOne(ExprPtr e)
{
    return mkExprNode(FormulaKind::One, std::move(e));
}

FormulaPtr
mkAcyclic(ExprPtr r)
{
    requireBinary(r, "acyclic");
    return mkExprNode(FormulaKind::Acyclic, std::move(r));
}

FormulaPtr
mkIrreflexive(ExprPtr r)
{
    requireBinary(r, "irreflexive");
    return mkExprNode(FormulaKind::Irreflexive, std::move(r));
}

FormulaPtr
mkTotal(ExprPtr r, ExprPtr s)
{
    requireBinary(r, "total");
    if (s->arity != 1)
        throw std::invalid_argument("total needs a set as second operand");
    return mkExprNode(FormulaKind::Total, std::move(r), std::move(s));
}

FormulaPtr
mkAnd(FormulaPtr a, FormulaPtr b)
{
    if (a->kind == FormulaKind::True)
        return b;
    if (b->kind == FormulaKind::True)
        return a;
    if (a->kind == FormulaKind::False || b->kind == FormulaKind::False)
        return mkFalse();
    return mkConnective(FormulaKind::And, std::move(a), std::move(b));
}

FormulaPtr
mkOr(FormulaPtr a, FormulaPtr b)
{
    if (a->kind == FormulaKind::False)
        return b;
    if (b->kind == FormulaKind::False)
        return a;
    if (a->kind == FormulaKind::True || b->kind == FormulaKind::True)
        return mkTrue();
    return mkConnective(FormulaKind::Or, std::move(a), std::move(b));
}

FormulaPtr
mkNot(FormulaPtr a)
{
    if (a->kind == FormulaKind::True)
        return mkFalse();
    if (a->kind == FormulaKind::False)
        return mkTrue();
    if (a->kind == FormulaKind::Not)
        return a->lhs;
    return mkConnective(FormulaKind::Not, std::move(a));
}

FormulaPtr
mkImplies(FormulaPtr a, FormulaPtr b)
{
    if (a->kind == FormulaKind::True)
        return b;
    if (a->kind == FormulaKind::False)
        return mkTrue();
    return mkConnective(FormulaKind::Implies, std::move(a), std::move(b));
}

FormulaPtr
mkIff(FormulaPtr a, FormulaPtr b)
{
    return mkConnective(FormulaKind::Iff, std::move(a), std::move(b));
}

FormulaPtr
mkAndAll(const std::vector<FormulaPtr> &formulas)
{
    FormulaPtr out = mkTrue();
    for (const auto &f : formulas)
        out = mkAnd(out, f);
    return out;
}

FormulaPtr
mkOrAll(const std::vector<FormulaPtr> &formulas)
{
    FormulaPtr out = mkFalse();
    for (const auto &f : formulas)
        out = mkOr(out, f);
    return out;
}

std::string
Formula::toString() const
{
    switch (kind) {
      case FormulaKind::True:
        return "true";
      case FormulaKind::False:
        return "false";
      case FormulaKind::Subset:
        return "(" + exprLhs->toString() + " in " + exprRhs->toString() + ")";
      case FormulaKind::Equal:
        return "(" + exprLhs->toString() + " = " + exprRhs->toString() + ")";
      case FormulaKind::Some:
        return "some " + exprLhs->toString();
      case FormulaKind::No:
        return "no " + exprLhs->toString();
      case FormulaKind::Lone:
        return "lone " + exprLhs->toString();
      case FormulaKind::One:
        return "one " + exprLhs->toString();
      case FormulaKind::Acyclic:
        return "acyclic[" + exprLhs->toString() + "]";
      case FormulaKind::Irreflexive:
        return "irreflexive[" + exprLhs->toString() + "]";
      case FormulaKind::Total:
        return "total[" + exprLhs->toString() + ", " + exprRhs->toString() +
               "]";
      case FormulaKind::And:
        return "(" + lhs->toString() + " && " + rhs->toString() + ")";
      case FormulaKind::Or:
        return "(" + lhs->toString() + " || " + rhs->toString() + ")";
      case FormulaKind::Not:
        return "!" + lhs->toString();
      case FormulaKind::Implies:
        return "(" + lhs->toString() + " => " + rhs->toString() + ")";
      case FormulaKind::Iff:
        return "(" + lhs->toString() + " <=> " + rhs->toString() + ")";
    }
    return "<?>";
}

} // namespace lts::rel
