/**
 * @file
 * Generic traversal over expression and formula DAGs.
 *
 * Expressions and formulas are shared immutable trees (DAGs once helpers
 * like fr() reuse subterms), so analyses want a uniform way to walk every
 * node exactly once. These visitors back the static analyzer
 * (src/analysis) and any future pass that needs expression metadata
 * without re-implementing recursion per node kind.
 */

#ifndef LTS_REL_VISIT_HH
#define LTS_REL_VISIT_HH

#include <functional>
#include <vector>

#include "rel/formula.hh"

namespace lts::rel
{

/**
 * Visit every distinct expression node reachable from @p e, parents
 * before children, each node exactly once (DAG-aware).
 */
void forEachExpr(const ExprPtr &e,
                 const std::function<void(const ExprPtr &)> &fn);

/**
 * Visit every distinct formula node reachable from @p f, parents before
 * children, each node exactly once. Expression operands are not entered;
 * combine with forEachExpr or use forEachExprIn.
 */
void forEachFormula(const FormulaPtr &f,
                    const std::function<void(const FormulaPtr &)> &fn);

/**
 * Visit every distinct expression node appearing anywhere under @p f:
 * each formula node's expression operands and all their subexpressions,
 * each exactly once across the whole formula.
 */
void forEachExprIn(const FormulaPtr &f,
                   const std::function<void(const ExprPtr &)> &fn);

/**
 * The ids of every relation variable mentioned under @p f, sorted and
 * deduplicated.
 */
std::vector<int> collectVarIds(const FormulaPtr &f);

/** The ids of every relation variable mentioned under @p e. */
std::vector<int> collectVarIds(const ExprPtr &e);

} // namespace lts::rel

#endif // LTS_REL_VISIT_HH
