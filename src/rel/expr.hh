/**
 * @file
 * Relational-algebra expression AST.
 *
 * This is the expression half of the project's bounded relational logic —
 * the role Kodkod plays underneath Alloy in the paper's toolflow. An
 * expression denotes either a set of atoms (arity 1) or a binary relation
 * over atoms (arity 2) in a finite universe of size n. Expressions are
 * immutable, hash-consed-by-shared_ptr trees built from:
 *
 *   - relation variables (free relations the solver searches over),
 *   - constants (explicit bit-matrices, used e.g. for relaxation masks),
 *   - the Alloy operator set of Table 3 in the paper: union (+),
 *     intersection (&), difference (-), relational join (.), transpose (~),
 *     transitive closure (^), reflexive-transitive closure (*), cross
 *     product (->), domain restriction (<:) and range restriction (:>),
 *     plus the identity and universe constants.
 *
 * Expressions are evaluated two ways: concretely against an Instance
 * (rel/eval.hh) and symbolically into AIG gates for SAT (rel/encoder.hh).
 */

#ifndef LTS_REL_EXPR_HH
#define LTS_REL_EXPR_HH

#include <memory>
#include <string>

#include "common/bitset.hh"

namespace lts::rel
{

/** Expression node kinds. */
enum class ExprKind
{
    Var,          ///< A declared relation variable (arity 1 or 2).
    Univ,         ///< All atoms (arity 1).
    None,         ///< Empty set or relation (either arity).
    Iden,         ///< Identity relation (arity 2).
    Const,        ///< Explicit constant contents.
    Union,        ///< a + b
    Intersect,    ///< a & b
    Diff,         ///< a - b
    Join,         ///< a . b  (relational composition / join)
    Product,      ///< a -> b (cross product of two sets)
    Transpose,    ///< ~a
    Closure,      ///< ^a (one or more steps)
    RClosure,     ///< *a (zero or more steps)
    DomRestrict,  ///< s <: r (keep pairs whose source is in s)
    RanRestrict,  ///< r :> s (keep pairs whose target is in s)
};

class Expr;

/** Shared handle to an immutable expression node. */
using ExprPtr = std::shared_ptr<const Expr>;

/**
 * An immutable relational expression node. Use the free factory
 * functions and operators below rather than constructing nodes directly;
 * they check arities.
 */
class Expr
{
  public:
    ExprKind kind;
    int arity;          ///< 1 (set of atoms) or 2 (binary relation)
    int varId = -1;     ///< for Var: index into the vocabulary
    std::string name;   ///< for Var: diagnostic name
    ExprPtr lhs;
    ExprPtr rhs;
    Bitset constSet;       ///< for Const with arity 1
    BitMatrix constMatrix; ///< for Const with arity 2

    /** Render in Alloy-ish surface syntax for diagnostics. */
    std::string toString() const;
};

// --- leaf factories ---------------------------------------------------------

/** A declared relation variable. @p arity must be 1 or 2. */
ExprPtr mkVar(int var_id, const std::string &name, int arity);

/** The set of all atoms. */
ExprPtr mkUniv();

/** The empty set (@p arity 1) or empty relation (@p arity 2). */
ExprPtr mkNone(int arity);

/** The identity relation. */
ExprPtr mkIden();

/** A constant set of atoms. */
ExprPtr mkConst(Bitset contents);

/** A constant binary relation. */
ExprPtr mkConst(BitMatrix contents);

// --- combining operators ----------------------------------------------------

ExprPtr mkUnion(ExprPtr a, ExprPtr b);
ExprPtr mkIntersect(ExprPtr a, ExprPtr b);
ExprPtr mkDiff(ExprPtr a, ExprPtr b);

/**
 * Relational join a.b. Supported arity combinations:
 * set.rel (image), rel.set (preimage), rel.rel (composition).
 */
ExprPtr mkJoin(ExprPtr a, ExprPtr b);

/** Cross product of two sets: arity-2 result. */
ExprPtr mkProduct(ExprPtr a, ExprPtr b);

ExprPtr mkTranspose(ExprPtr a);
ExprPtr mkClosure(ExprPtr a);
ExprPtr mkRClosure(ExprPtr a);

/** Domain restriction s <: r. */
ExprPtr mkDomRestrict(ExprPtr set, ExprPtr r);

/** Range restriction r :> s. */
ExprPtr mkRanRestrict(ExprPtr r, ExprPtr set);

// --- operator sugar ---------------------------------------------------------

inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return mkUnion(a, b); }
inline ExprPtr operator&(ExprPtr a, ExprPtr b) { return mkIntersect(a, b); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return mkDiff(a, b); }

/** Join sugar; C++ has no postfix '.', so use a/b for a.b. */
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return mkJoin(a, b); }

} // namespace lts::rel

#endif // LTS_REL_EXPR_HH
