/**
 * @file
 * The Owens et al. x86-TSO litmus test suite (Section 6.1 / Table 4).
 *
 * Owens, Sarkar & Sewell ("A Better x86 Memory Model: x86-TSO", 2009)
 * collected 24 tests from Intel/AMD manuals, academic papers, and their
 * own analysis; 15 specify forbidden outcomes. The paper compares its
 * synthesized TSO suites against this baseline.
 *
 * Tests whose exact shape is fixed by the literature (MP, SB, LB, S,
 * 2+2W, SB+mfences, IRIW, IRIW+mfences, RWC+mfence, n5/CoLB, n6,
 * iwp2.6/CoIRIW, store-forwarding tests) are transcribed directly.
 * A few of the historical "n" and "iwp" entries are reconstructed to
 * match the size and containment relationships reported in Table 4
 * (which test contains which minimal core); each such entry is marked
 * reconstructed in its note.
 *
 * The reconstruction is externally checkable: every entry exports
 * through litmus/herd.hh as a herd7 .litmus file (and back, losslessly
 * — tests/integration/interop_test.cc pins the round trip), so the
 * transcriptions here can be diffed against the published files and
 * run through herd or on hardware via the litmus/cxx.hh harnesses.
 */

#ifndef LTS_SUITES_OWENS_HH
#define LTS_SUITES_OWENS_HH

#include <string>
#include <vector>

#include "litmus/test.hh"

namespace lts::suites
{

/** One baseline-suite entry. */
struct CatalogEntry
{
    litmus::LitmusTest test;
    bool expectForbidden; ///< the listed outcome is forbidden under TSO
    std::string note;
};

/** The full 24-test Owens suite (15 forbidden-outcome entries). */
std::vector<CatalogEntry> owensSuite();

/** Only the forbidden-outcome tests (the comparison set of Table 4). */
std::vector<litmus::LitmusTest> owensForbidden();

} // namespace lts::suites

#endif // LTS_SUITES_OWENS_HH
