#include "suites/owens.hh"

namespace lts::suites
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

namespace
{

constexpr MemOrder kPlainFence = MemOrder::Plain; // x86 mfence

/** MP: the message-passing test of Figure 1 (without annotations). */
LitmusTest
mp()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("MP");
}

LitmusTest
lb()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w0 = b.write(t0, "y");
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build("LB");
}

LitmusTest
testS()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx2 = b.write(t0, "x");
    int wy = b.write(t0, "y");
    int t1 = b.newThread();
    int ry = b.read(t1, "y");
    int wx1 = b.write(t1, "x");
    b.readsFrom(wy, ry);
    b.coOrder(wx1, wx2);
    return b.build("S");
}

LitmusTest
twoPlusTwoW()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx1 = b.write(t0, "x");
    int wy2 = b.write(t0, "y");
    int t1 = b.newThread();
    int wy1 = b.write(t1, "y");
    int wx2 = b.write(t1, "x");
    b.coOrder(wx2, wx1);
    b.coOrder(wy2, wy1);
    return b.build("2+2W");
}

LitmusTest
sb(bool with_fences, const std::string &name)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    if (with_fences)
        b.fence(t0, kPlainFence);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    if (with_fences)
        b.fence(t1, kPlainFence);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build(name);
}

LitmusTest
iriw(bool with_fences, const std::string &name)
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int wy = b.write(t1, "y");
    int t2 = b.newThread();
    int r2x = b.read(t2, "x");
    if (with_fences)
        b.fence(t2, kPlainFence);
    int r2y = b.read(t2, "y");
    int t3 = b.newThread();
    int r3y = b.read(t3, "y");
    if (with_fences)
        b.fence(t3, kPlainFence);
    int r3x = b.read(t3, "x");
    b.readsFrom(wx, r2x);
    b.readsInitial(r2y);
    b.readsFrom(wy, r3y);
    b.readsInitial(r3x);
    return b.build(name);
}

/** n5 (a.k.a. CoLB): load-buffering through one location (Figure 10). */
LitmusTest
n5()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w1 = b.write(t0, "x");
    int t1 = b.newThread();
    int r1 = b.read(t1, "x");
    int w2 = b.write(t1, "x");
    b.readsFrom(w2, r0);
    b.readsFrom(w1, r1);
    b.coOrder(w1, w2);
    return b.build("n5/CoLB");
}

/** n6 (Owens et al.): store forwarding; the outcome is ALLOWED. */
LitmusTest
n6()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx1 = b.write(t0, "x");
    int r1 = b.read(t0, "x");
    int r2 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int wx2 = b.write(t1, "x");
    b.readsFrom(wx1, r1);
    b.readsInitial(r2);
    b.coOrder(wx2, wx1);
    return b.build("n6");
}

/** iwp2.6 (CoIRIW): coherence seen consistently by all readers. */
LitmusTest
coIriw()
{
    TestBuilder b;
    int t0 = b.newThread();
    int w1 = b.write(t0, "x");
    int t1 = b.newThread();
    int w2 = b.write(t1, "x");
    int t2 = b.newThread();
    int r2a = b.read(t2, "x");
    int r2b = b.read(t2, "x");
    int t3 = b.newThread();
    int r3a = b.read(t3, "x");
    int r3b = b.read(t3, "x");
    // Readers observe the two stores in opposite orders.
    b.readsFrom(w1, r2a);
    b.readsFrom(w2, r2b);
    b.readsFrom(w2, r3a);
    b.readsFrom(w1, r3b);
    b.coOrder(w1, w2);
    return b.build("iwp2.6/CoIRIW");
}

/** RWC+mfence: read-to-write causality with the required fence. */
LitmusTest
rwcMfence()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int r1x = b.read(t1, "x");
    int r1y = b.read(t1, "y");
    int t2 = b.newThread();
    b.write(t2, "y");
    b.fence(t2, kPlainFence);
    int r2x = b.read(t2, "x");
    b.readsFrom(wx, r1x);
    b.readsInitial(r1y);
    b.readsInitial(r2x);
    return b.build("RWC+mfence");
}

/** amd10: doubled store-buffering with fences; contains SB+mfences. */
LitmusTest
amd10()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, kPlainFence);
    int r0y = b.read(t0, "y");
    int r0x = b.read(t0, "x");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, kPlainFence);
    int r1x = b.read(t1, "x");
    int r1y = b.read(t1, "y");
    b.readsInitial(r0y);
    b.readsInitial(r1x);
    b.readsFrom(0, r0x);
    b.readsFrom(4, r1y);
    return b.build("amd10");
}

/** iwp2.7/amd7: IRIW with fenced readers; contains plain IRIW. */
LitmusTest
iwp27()
{
    LitmusTest t = iriw(true, "iwp2.7/amd7");
    return t;
}

/**
 * iwp2.8.a: write-to-read causality (reconstructed as the fence-free WRC
 * shape, which TSO forbids outright).
 */
LitmusTest
iwp28a()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int r1x = b.read(t1, "x");
    int wy = b.write(t1, "y");
    int t2 = b.newThread();
    int r2y = b.read(t2, "y");
    int r2x = b.read(t2, "x");
    b.readsFrom(wx, r1x);
    b.readsFrom(wy, r2y);
    b.readsInitial(r2x);
    return b.build("iwp2.8.a/WRC");
}

/**
 * iwp2.8.b: message passing with a redundant trailing fence
 * (reconstructed: size 5, contains MP per Table 4).
 */
LitmusTest
iwp28b()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    b.fence(t1, kPlainFence);
    int rd = b.read(t1, "x");
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build("iwp2.8.b");
}

/**
 * n4 (reconstructed as R+mfence: the R shape needs one fence on the
 * store/load thread under TSO; size 6 per Table 4).
 */
LitmusTest
n4()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx1 = b.write(t0, "x");
    int wy1 = b.write(t0, "y");
    int t1 = b.newThread();
    int wy2 = b.write(t1, "y");
    b.fence(t1, kPlainFence);
    int rx = b.read(t1, "x");
    b.readsInitial(rx);
    b.coOrder(wy1, wy2);
    (void)wx1;
    return b.build("n4/R+mfence");
}

/**
 * n3: IRIW with fences plus an extra coherent reload in one reader
 * (reconstructed: size 9, contains amd6/IRIW per Table 4).
 */
LitmusTest
n3()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int wy = b.write(t1, "y");
    int t2 = b.newThread();
    int r2x = b.read(t2, "x");
    b.fence(t2, kPlainFence);
    int r2y = b.read(t2, "y");
    int t3 = b.newThread();
    int r3y = b.read(t3, "y");
    b.fence(t3, kPlainFence);
    int r3x = b.read(t3, "x");
    int r3x2 = b.read(t3, "x");
    b.readsFrom(wx, r2x);
    b.readsInitial(r2y);
    b.readsFrom(wy, r3y);
    b.readsInitial(r3x);
    b.readsInitial(r3x2);
    return b.build("n3");
}

/** n1: intra-thread store forwarding (ALLOWED outcome). */
LitmusTest
n1()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int rx = b.read(t0, "x");
    int ry = b.read(t0, "y");
    int t1 = b.newThread();
    int wy = b.write(t1, "y");
    int rwy = b.read(t1, "y");
    int rwx = b.read(t1, "x");
    b.readsFrom(wx, rx);
    b.readsInitial(ry);
    b.readsFrom(wy, rwy);
    b.readsInitial(rwx);
    return b.build("n1");
}

/** iwp2.4: loads may be reordered with older stores (ALLOWED = SB). */
LitmusTest
iwp24()
{
    LitmusTest t = sb(false, "iwp2.4/amd4/SB");
    return t;
}

/** iwp2.3.b: intra-processor forwarding is visible (ALLOWED). */
LitmusTest
iwp23b()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int rx = b.read(t0, "x");
    int t1 = b.newThread();
    int wy = b.write(t1, "x");
    int ry = b.read(t1, "x");
    b.readsFrom(wx, rx);
    b.readsFrom(wy, ry);
    b.coOrder(wx, wy);
    return b.build("iwp2.3.b");
}

/** amd3: reads may see older values of other locations (ALLOWED). */
LitmusTest
amd3()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, kPlainFence);
    int wy0 = b.write(t0, "y");
    int t1 = b.newThread();
    int ry = b.read(t1, "y");
    int rx = b.read(t1, "x");
    b.readsFrom(wy0, ry);
    b.readsFrom(0, rx);
    return b.build("amd3");
}

/** n2: 2+2W variant with forwarding reads (ALLOWED outcome). */
LitmusTest
n2()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx1 = b.write(t0, "x");
    int wy2 = b.write(t0, "y");
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    int wy1 = b.write(t1, "y");
    int wx2 = b.write(t1, "x");
    int r1 = b.read(t1, "x");
    b.readsFrom(wy2, r0);
    b.readsFrom(wx2, r1);
    b.coOrder(wx1, wx2);
    b.coOrder(wy1, wy2);
    return b.build("n2");
}

/** n7: a reader observing two remote stores in coherence order
 * (ALLOWED: the observation is consistent with co). */
LitmusTest
n7()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx1 = b.write(t0, "x");
    int t1 = b.newThread();
    int r1 = b.read(t1, "x");
    int r2 = b.read(t1, "x");
    int t2 = b.newThread();
    int wx2 = b.write(t2, "x");
    b.readsFrom(wx1, r1);
    b.readsFrom(wx2, r2);
    b.coOrder(wx1, wx2);
    return b.build("n7");
}

/** SB with only one thread fenced: the outcome stays ALLOWED. */
LitmusTest
sb_one_sided()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, kPlainFence);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+mfence+po");
}

/** n8: SB with one forwarded reload (ALLOWED). */
LitmusTest
n8()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int rx = b.read(t0, "x");
    int ry = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int rxx = b.read(t1, "x");
    b.readsFrom(wx, rx);
    b.readsInitial(ry);
    b.readsInitial(rxx);
    return b.build("n8");
}

} // namespace

std::vector<CatalogEntry>
owensSuite()
{
    std::vector<CatalogEntry> out;
    auto add = [&](LitmusTest t, bool forbidden, const std::string &note) {
        out.push_back(CatalogEntry{std::move(t), forbidden, note});
    };

    // --- 15 forbidden-outcome tests (the Table 4 comparison set) -----
    add(mp(), true, "message passing (Figure 1 shape)");
    add(lb(), true, "load buffering");
    add(testS(), true, "S");
    add(twoPlusTwoW(), true, "2+2W");
    add(n5(), true, "n5/CoLB; contains CoRW (Figure 10)");
    add(iwp28b(), true, "reconstructed; contains MP");
    add(coIriw(), true, "iwp2.6/CoIRIW; coherence order is global");
    add(sb(true, "amd5/SB+mfences"), true, "store buffering with fences");
    add(iriw(false, "amd6/IRIW"), true, "IRIW (TSO is multi-copy atomic)");
    add(n4(), true, "reconstructed SB+mfences variant");
    add(iwp28a(), true, "reconstructed WRC+mfence shape");
    add(rwcMfence(), true, "read-to-write causality + mfence");
    add(amd10(), true, "contains amd5/SB+mfences");
    add(iwp27(), true, "iwp2.7/amd7; contains amd6/IRIW");
    add(n3(), true, "reconstructed; contains amd6/IRIW");

    // --- allowed-outcome tests -----------------------------------------
    add(iwp24(), false, "SB: the canonical allowed TSO relaxation");
    add(sb_one_sided(), false, "one fence is not enough for SB");
    add(n6(), false, "store forwarding beats coherence ordering");
    add(n1(), false, "intra-thread forwarding");
    add(iwp23b(), false, "forwarding visible before coherence");
    add(amd3(), false, "fenced MP still allows stale other-loc reads");
    add(n2(), false, "2+2W with forwarded reloads");
    add(n7(), false, "coherent cross reads");
    add(n8(), false, "SB with forwarded reload");

    return out;
}

std::vector<LitmusTest>
owensForbidden()
{
    std::vector<LitmusTest> out;
    for (auto &entry : owensSuite()) {
        if (entry.expectForbidden)
            out.push_back(entry.test);
    }
    return out;
}

} // namespace lts::suites
