/**
 * @file
 * A subset of the "Cambridge" Power/ARM litmus-test summary
 * (Sarkar et al. 2011) used as the Section 6.2 baseline, including the
 * tests the paper's text singles out:
 *
 *  - PPOAA in its published full-sync form (NOT minimal, per the paper)
 *    and its lwsync form (minimal, present in power-union);
 *  - lb+addrs+ww in both the address- and data-dependency flavors,
 *    exhibiting the strength difference between addr and data this
 *    formalization preserves;
 *  - the classic fenced/dependency-ordered shapes (MP+syncs, MP+lwsyncs,
 *    MP+lwsync+addr, SB+syncs, LB+addrs, WRC+lwsync+addr, IRIW+syncs)
 *    plus their too-weak ALLOWED variants.
 */

#ifndef LTS_SUITES_CAMBRIDGE_HH
#define LTS_SUITES_CAMBRIDGE_HH

#include "suites/owens.hh"

namespace lts::suites
{

/** The encoded Cambridge subset for Power. */
std::vector<CatalogEntry> cambridgeSuite();

/** Only the forbidden-outcome tests. */
std::vector<litmus::LitmusTest> cambridgeForbidden();

} // namespace lts::suites

#endif // LTS_SUITES_CAMBRIDGE_HH
