#include "suites/cambridge.hh"

namespace lts::suites
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

namespace
{

constexpr MemOrder kSync = MemOrder::SeqCst;   // Power sync
constexpr MemOrder kLwsync = MemOrder::AcqRel; // Power lwsync

/**
 * MP with a configurable producer fence and a consumer ordered either by
 * a fence or by an address dependency.
 */
LitmusTest
mpVariant(const std::string &name, MemOrder producer_fence,
          bool consumer_fence, MemOrder consumer_fence_kind, bool addr_dep)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    if (producer_fence != MemOrder::Plain)
        b.fence(t0, producer_fence);
    int wf = b.write(t0, "y");
    int t1 = b.newThread();
    int rf = b.read(t1, "y");
    if (consumer_fence)
        b.fence(t1, consumer_fence_kind);
    int rd = b.read(t1, "x");
    if (addr_dep)
        b.addrDepend(rf, rd);
    b.readsFrom(wf, rf);
    b.readsInitial(rd);
    return b.build(name);
}

LitmusTest
sbSyncs()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, kSync);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, kSync);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+syncs");
}

LitmusTest
sbLwsyncs()
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.fence(t0, kLwsync);
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    b.fence(t1, kLwsync);
    int r1 = b.read(t1, "x");
    b.readsInitial(r0);
    b.readsInitial(r1);
    return b.build("SB+lwsyncs");
}

LitmusTest
lbDeps(bool addr, const std::string &name)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w0 = b.write(t0, "y");
    if (addr)
        b.addrDepend(r0, w0);
    else
        b.dataDepend(r0, w0);
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    if (addr)
        b.addrDepend(r1, w1);
    else
        b.dataDepend(r1, w1);
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build(name);
}

LitmusTest
lbPlain()
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w0 = b.write(t0, "y");
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build("LB");
}

/**
 * PPOAA: MP whose consumer orders the two loads with an address
 * dependency; the producer fence is the parameter the paper discusses —
 * the Cambridge summary presents it with a full sync, but lwsync
 * suffices, so only the lwsync variant is minimal.
 */
LitmusTest
ppoaa(MemOrder producer_fence, const std::string &name)
{
    return mpVariant(name, producer_fence, false, MemOrder::Plain, true);
}

/**
 * lb+deps+ww: LB where thread 0's dependency targets an intermediate
 * write and the write to the observed location follows it in program
 * order. The addr->po extension of the Power cc0 relation preserves the
 * load-to-second-write order for an address dependency but NOT for a
 * data dependency, so the addr flavor is forbidden while the data flavor
 * is allowed (the lb+addrs+ww discussion of Section 6.2).
 */
LitmusTest
lbDepWw(bool addr, const std::string &name)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int wmid = b.write(t0, "z");
    if (addr)
        b.addrDepend(r0, wmid);
    else
        b.dataDepend(r0, wmid);
    int w0 = b.write(t0, "y");
    int t1 = b.newThread();
    int r1 = b.read(t1, "y");
    int w1 = b.write(t1, "x");
    b.dataDepend(r1, w1);
    b.readsFrom(w1, r0);
    b.readsFrom(w0, r1);
    return b.build(name);
}

/** WRC with lwsync in the middle thread and addr in the reader. */
LitmusTest
wrcLwsyncAddr()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int r1x = b.read(t1, "x");
    b.fence(t1, kLwsync);
    int wy = b.write(t1, "y");
    int t2 = b.newThread();
    int r2y = b.read(t2, "y");
    int r2x = b.read(t2, "x");
    b.addrDepend(r2y, r2x);
    b.readsFrom(wx, r1x);
    b.readsFrom(wy, r2y);
    b.readsInitial(r2x);
    return b.build("WRC+lwsync+addr");
}

LitmusTest
iriwSyncs()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int wy = b.write(t1, "y");
    int t2 = b.newThread();
    int r2x = b.read(t2, "x");
    b.fence(t2, kSync);
    int r2y = b.read(t2, "y");
    int t3 = b.newThread();
    int r3y = b.read(t3, "y");
    b.fence(t3, kSync);
    int r3x = b.read(t3, "x");
    b.readsFrom(wx, r2x);
    b.readsInitial(r2y);
    b.readsFrom(wy, r3y);
    b.readsInitial(r3x);
    return b.build("IRIW+syncs");
}

LitmusTest
iriwLwsyncs()
{
    TestBuilder b;
    int t0 = b.newThread();
    int wx = b.write(t0, "x");
    int t1 = b.newThread();
    int wy = b.write(t1, "y");
    int t2 = b.newThread();
    int r2x = b.read(t2, "x");
    b.fence(t2, kLwsync);
    int r2y = b.read(t2, "y");
    int t3 = b.newThread();
    int r3y = b.read(t3, "y");
    b.fence(t3, kLwsync);
    int r3x = b.read(t3, "x");
    b.readsFrom(wx, r2x);
    b.readsInitial(r2y);
    b.readsFrom(wy, r3y);
    b.readsInitial(r3x);
    return b.build("IRIW+lwsyncs");
}

} // namespace

std::vector<CatalogEntry>
cambridgeSuite()
{
    std::vector<CatalogEntry> out;
    auto add = [&](LitmusTest t, bool forbidden, const std::string &note) {
        out.push_back(CatalogEntry{std::move(t), forbidden, note});
    };

    add(mpVariant("MP", MemOrder::Plain, false, MemOrder::Plain, false),
        false, "plain MP is allowed on Power");
    add(mpVariant("MP+syncs", kSync, true, kSync, false), true,
        "fully fenced MP");
    add(mpVariant("MP+lwsyncs", kLwsync, true, kLwsync, false), true,
        "lwsync suffices for MP");
    add(mpVariant("MP+lwsync+po", kLwsync, false, MemOrder::Plain, false),
        false, "unordered consumer loads break MP");
    // In this formalization PPOAA+lwsync coincides with MP+lwsync+addr,
    // so the catalog keeps one entry per canonical test.
    add(ppoaa(kSync, "PPOAA"), true,
        "as published: full sync; NOT minimal (Section 6.2)");
    add(ppoaa(kLwsync, "PPOAA+lwsync"), true,
        "the minimal lwsync variant (= MP+lwsync+addr), in power-union");
    add(sbSyncs(), true, "SB needs full syncs");
    add(sbLwsyncs(), false, "lwsync cannot restore SB");
    add(lbPlain(), false, "plain LB is allowed on Power");
    add(lbDeps(true, "LB+addrs"), true, "address dependencies forbid LB");
    add(lbDeps(false, "LB+datas"), true, "data dependencies forbid LB");
    add(lbDepWw(true, "LB+addr+po+ww"), true,
        "addr;po is in cc0: still forbidden");
    add(lbDepWw(false, "LB+data+po+ww"), false,
        "data;po is NOT preserved: allowed (addr vs data strength)");
    add(wrcLwsyncAddr(), true, "WRC, cumulativity through lwsync");
    add(iriwSyncs(), true, "IRIW restored by syncs");
    add(iriwLwsyncs(), false, "lwsync is not cumulative enough for IRIW");

    return out;
}

std::vector<LitmusTest>
cambridgeForbidden()
{
    std::vector<LitmusTest> out;
    for (auto &entry : cambridgeSuite()) {
        if (entry.expectForbidden)
            out.push_back(entry.test);
    }
    return out;
}

} // namespace lts::suites
