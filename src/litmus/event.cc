#include "litmus/event.hh"

namespace lts::litmus
{

bool
isWeaker(MemOrder weaker, MemOrder stronger)
{
    if (weaker == stronger)
        return false;
    auto rank = [](MemOrder o) -> int {
        switch (o) {
          case MemOrder::Plain:
            return 0;
          case MemOrder::Consume:
            return 1;
          case MemOrder::Acquire:
          case MemOrder::Release:
            return 2;
          case MemOrder::AcqRel:
            return 3;
          case MemOrder::SeqCst:
            return 4;
        }
        return 0;
    };
    // Acquire and Release are incomparable with each other; Consume is
    // only below Acquire (and everything above it), not below Release.
    if (weaker == MemOrder::Consume && stronger == MemOrder::Release)
        return false;
    if (weaker == MemOrder::Release && stronger == MemOrder::Acquire)
        return false;
    if (weaker == MemOrder::Acquire && stronger == MemOrder::Release)
        return false;
    return rank(weaker) < rank(stronger);
}

std::string
toString(MemOrder order)
{
    switch (order) {
      case MemOrder::Plain:
        return "";
      case MemOrder::Consume:
        return "cns";
      case MemOrder::Acquire:
        return "acq";
      case MemOrder::Release:
        return "rel";
      case MemOrder::AcqRel:
        return "ar";
      case MemOrder::SeqCst:
        return "sc";
    }
    return "?";
}

std::string
toString(EventType type)
{
    switch (type) {
      case EventType::Read:
        return "Ld";
      case EventType::Write:
        return "St";
      case EventType::Fence:
        return "Fence";
    }
    return "?";
}

std::string
toString(Scope scope)
{
    switch (scope) {
      case Scope::WorkItem:
        return "wi";
      case Scope::WorkGroup:
        return "wg";
      case Scope::Device:
        return "dev";
      case Scope::System:
        return "sys";
    }
    return "?";
}

} // namespace lts::litmus
