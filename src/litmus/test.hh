/**
 * @file
 * Litmus test intermediate representation.
 *
 * A LitmusTest is the *static* part of a test in the paper's terminology
 * (Section 4.2): events, program order (implied by event index within each
 * thread), locations, dependencies, and RMW pairing. An Outcome is the
 * *dynamic* part of one execution: the rf and co relations, from which the
 * observable register and final-memory values derive. A test paired with a
 * forbidden Outcome is one entry of a litmus test suite.
 */

#ifndef LTS_LITMUS_TEST_HH
#define LTS_LITMUS_TEST_HH

#include <string>
#include <vector>

#include "common/bitset.hh"
#include "litmus/event.hh"

namespace lts::litmus
{

/**
 * The dynamic relations of one execution: who reads from whom (rf) and
 * the per-location store order (co). Reads with no rf edge read the
 * implicit initial value (0). The "observable outcome" of the paper is a
 * function of these: register values from rf, final memory from co.
 */
struct Outcome
{
    BitMatrix rf; ///< Write -> Read
    BitMatrix co; ///< Write -> Write, same location, irreflexive + total

    Outcome() = default;
    explicit Outcome(size_t n) : rf(n), co(n) {}

    bool
    operator==(const Outcome &other) const
    {
        return rf == other.rf && co == other.co;
    }
};

/** One litmus test: static structure plus an optional forbidden outcome. */
class LitmusTest
{
  public:
    std::string name;
    std::vector<Event> events;
    int numThreads = 0;
    int numLocs = 0;

    /**
     * Workgroup of each thread, for scoped models (OpenCL/HSA-style,
     * Section 3.2's DS relaxation). Empty means ungrouped: every thread
     * forms its own workgroup, which is also the canonical form when no
     * two threads share one.
     */
    std::vector<int> threadWg;

    /** Workgroup of thread @p tid under the convention above. */
    int
    workgroupOf(int tid) const
    {
        return threadWg.empty() ? tid : threadWg[tid];
    }

    /** True iff some two threads share a workgroup. */
    bool
    hasWorkgroups() const
    {
        for (int a = 0; a < numThreads; a++) {
            for (int b = a + 1; b < numThreads; b++) {
                if (workgroupOf(a) == workgroupOf(b))
                    return true;
            }
        }
        return false;
    }

    // Dependencies: from a Read to a po-later event of the same thread.
    BitMatrix addrDep;
    BitMatrix dataDep;
    BitMatrix ctrlDep;

    // RMW pairing: Read -> immediately po-following Write, same location.
    BitMatrix rmw;

    /** The synthesized/specified forbidden outcome, if any. */
    Outcome forbidden;
    bool hasForbidden = false;

    size_t size() const { return events.size(); }

    /** Events of one thread, in program order. */
    std::vector<int> threadEvents(int tid) const;

    /** Program order as an explicit relation (i before j, same thread). */
    BitMatrix poMatrix() const;

    /** Same-location relation over memory events (reflexive on them). */
    BitMatrix sameLocMatrix() const;

    /** Same-workgroup relation over events (reflexive equivalence). */
    BitMatrix sameWgMatrix() const;

    /** Union of the three dependency relations. */
    BitMatrix depMatrix() const;

    /**
     * Check structural sanity: thread ids dense and events grouped by
     * thread, locations dense, deps/rmw well-shaped. Returns an empty
     * string when valid, else a diagnostic.
     */
    std::string validate() const;

    /**
     * The register values a given outcome produces: for each read, the
     * value observed (0 = initial; k = the k-th co-ordered write to that
     * location, 1-based). Indexed by event id; non-reads get -1.
     */
    std::vector<int> registerValues(const Outcome &outcome) const;

    /**
     * Final memory value per location under an outcome (0 when no write).
     */
    std::vector<int> finalValues(const Outcome &outcome) const;

    /**
     * Values written by each write event: 1 + its position in co among
     * the writes to the same location. Indexed by event id; -1 otherwise.
     */
    std::vector<int> writeValues(const Outcome &outcome) const;
};

/**
 * Fluent builder for hand-written catalog tests.
 *
 * @code
 *   TestBuilder b;
 *   int t0 = b.newThread();
 *   b.write(t0, "data");
 *   b.write(t0, "flag", MemOrder::Release);
 *   int t1 = b.newThread();
 *   int ld_flag = b.read(t1, "flag", MemOrder::Acquire);
 *   int ld_data = b.read(t1, "data");
 *   LitmusTest mp = b.build("MP+rel+acq");
 * @endcode
 */
class TestBuilder
{
  public:
    /** Start a new thread; subsequent events go to it by thread id. */
    int newThread();

    /**
     * Pre-register a location name so it gets the next dense id even if
     * its first access comes later. Parsers that see a declaration
     * section (the herd init block) use this to preserve the exporting
     * test's location numbering; repeated registration is a no-op.
     */
    int declareLoc(const std::string &loc);

    /** Append a read; returns the event id. */
    int read(int tid, const std::string &loc,
             MemOrder order = MemOrder::Plain);

    /** Append a write; returns the event id. */
    int write(int tid, const std::string &loc,
              MemOrder order = MemOrder::Plain);

    /** Append a fence; returns the event id. */
    int fence(int tid, MemOrder order = MemOrder::SeqCst);

    /** Put thread @p tid into workgroup @p wg (scoped models). */
    void setWorkgroup(int tid, int wg);

    /** Set the scope annotation of event @p ev (scoped models). */
    void setScope(int ev, Scope scope);

    /** Declare an address dependency from read @p from to event @p to. */
    void addrDepend(int from, int to);

    /** Declare a data dependency from read @p from to write @p to. */
    void dataDepend(int from, int to);

    /** Declare a control dependency from read @p from to event @p to. */
    void ctrlDepend(int from, int to);

    /** Pair read @p r and write @p w as an atomic RMW. */
    void pairRmw(int r, int w);

    // --- forbidden outcome specification ------------------------------

    /** Read @p r observes write @p w in the forbidden outcome. */
    void readsFrom(int w, int r);

    /** Read @p r observes the initial value (explicit, optional). */
    void readsInitial(int r);

    /** @p earlier precedes @p later in coherence order. */
    void coOrder(int earlier, int later);

    /**
     * Declare that the test carries a forbidden outcome even if no rf,
     * init, or co constraint was recorded — the outcome of a test whose
     * reads all have explicit edges elsewhere may be entirely empty
     * (e.g. writes to distinct locations only). Without this mark such a
     * test would round-trip to "no outcome", which is a different thing:
     * an empty outcome forbids the unique trivial execution, no outcome
     * forbids nothing.
     */
    void markForbidden();

    /**
     * Assemble the test. Events are renumbered so each thread's events
     * are contiguous; co is transitively closed; for locations whose
     * writes were left unordered, the per-thread/declaration order is
     * completed deterministically.
     */
    LitmusTest build(const std::string &name);

  private:
    struct PendingEvent
    {
        int tid;
        EventType type;
        int loc;
        MemOrder order;
        Scope scope = Scope::System;
    };

    int locId(const std::string &loc);

    std::vector<PendingEvent> pending;
    std::vector<std::string> locNames;
    std::vector<int> workgroups; ///< per thread; -1 = own group
    int threads = 0;
    std::vector<std::pair<int, int>> addrDeps, dataDeps, ctrlDeps, rmws;
    std::vector<std::pair<int, int>> rfEdges, coEdges;
    std::vector<int> initialReads;
    bool forceForbidden = false;
};

} // namespace lts::litmus

#endif // LTS_LITMUS_TEST_HH
