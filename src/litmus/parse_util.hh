/**
 * @file
 * Shared parsing infrastructure for the litmus text formats.
 *
 * Both the interchange parser (format.cc) and the herd7 `.litmus` parser
 * (herd.cc) read line-oriented text and want diagnostics that carry the
 * offending line *number* and, when known, the name of the test being
 * parsed — in a multi-test suite file the raw line text alone is useless
 * for locating a problem.
 */

#ifndef LTS_LITMUS_PARSE_UTIL_HH
#define LTS_LITMUS_PARSE_UTIL_HH

#include <iosfwd>
#include <string>

namespace lts::litmus
{

/** A line remembered together with its position, for late diagnostics. */
struct SourceLine
{
    int number = 0;
    std::string text;
};

/**
 * Line-oriented input cursor that tracks position and test context so
 * every parse error can say *where* it happened. Parsers that buffer
 * lines for later processing (the interchange format applies deps and
 * the outcome only at 'end') remember them as SourceLine and report
 * through failAt().
 */
class LineReader
{
  public:
    explicit LineReader(std::istream &in) : input(in) {}

    /** Read the next raw line; false at end of input. */
    bool next(std::string &line);

    /** 1-based number of the line last returned by next(). */
    int lineNumber() const { return line_no; }

    /** The current line as a SourceLine, for deferred diagnostics. */
    SourceLine here(const std::string &text) const
    {
        return SourceLine{line_no, text};
    }

    /** Name the test under construction (shown in diagnostics). */
    void setContext(const std::string &test_name) { context = test_name; }
    void clearContext() { context.clear(); }

    /** Throw a parse error at the current line. */
    [[noreturn]] void fail(const std::string &why) const;

    /** Throw a parse error at a remembered line. */
    [[noreturn]] void failAt(const SourceLine &at,
                             const std::string &why) const;

    /**
     * Parse a non-negative integer out of @p s, failing at @p at with a
     * positioned diagnostic instead of a bare std::stoi exception.
     */
    int parseInt(const SourceLine &at, const std::string &s,
                 const std::string &what) const;

  private:
    std::istream &input;
    int line_no = 0;
    std::string current;
    std::string context;
};

} // namespace lts::litmus

#endif // LTS_LITMUS_PARSE_UTIL_HH
