#include "litmus/cxx.hh"

#include <sstream>
#include <vector>

#include "common/strings.hh"
#include "litmus/herd.hh"

namespace lts::litmus
{

namespace
{

std::string
cxxOrderName(MemOrder order)
{
    switch (order) {
      case MemOrder::Plain: return "std::memory_order_relaxed";
      // Promoted: consume is acquire on every shipping implementation.
      case MemOrder::Consume: return "std::memory_order_acquire";
      case MemOrder::Acquire: return "std::memory_order_acquire";
      case MemOrder::Release: return "std::memory_order_release";
      case MemOrder::AcqRel: return "std::memory_order_acq_rel";
      case MemOrder::SeqCst: return "std::memory_order_seq_cst";
    }
    return "std::memory_order_seq_cst";
}

MemOrder
joinOrders(MemOrder a, MemOrder b)
{
    if (a == b)
        return a;
    auto has = [&](MemOrder o) { return a == o || b == o; };
    if (has(MemOrder::SeqCst))
        return MemOrder::SeqCst;
    if (has(MemOrder::AcqRel))
        return MemOrder::AcqRel;
    bool acq = has(MemOrder::Acquire) || has(MemOrder::Consume);
    bool rel = has(MemOrder::Release);
    if (acq && rel)
        return MemOrder::AcqRel;
    if (acq)
        return MemOrder::Acquire;
    if (rel)
        return MemOrder::Release;
    return has(MemOrder::Consume) ? MemOrder::Consume : MemOrder::Plain;
}

int
rmwPartner(const LitmusTest &test, size_t r)
{
    for (size_t j = 0; j < test.size(); j++) {
        if (test.rmw.test(r, j))
            return static_cast<int>(j);
    }
    return -1;
}

bool
isRmwWrite(const LitmusTest &test, size_t w)
{
    for (size_t i = 0; i < test.size(); i++) {
        if (test.rmw.test(i, w))
            return true;
    }
    return false;
}

std::vector<std::string>
regNames(const LitmusTest &test)
{
    std::vector<std::string> names(test.size());
    int k = 0;
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].isRead())
            names[i] = "r" + std::to_string(k++);
    }
    return names;
}

} // namespace

std::string
writeCxxHarness(const LitmusTest &test, const CxxOptions &options)
{
    auto values = herdWriteValues(test);
    auto regs = regNames(test);
    std::string name = test.name.empty() ? "unnamed" : test.name;

    // The outcome signature: register values in read order, then final
    // values of multiply-written locations — the projection the herd
    // exists-condition constrains.
    std::vector<std::string> sig_names;
    std::vector<int> forbidden_sig;
    std::vector<int> wcount(test.numLocs, 0);
    for (const auto &e : test.events) {
        if (e.isWrite())
            wcount[e.loc]++;
    }
    {
        std::vector<int> rv, fv;
        if (test.hasForbidden) {
            rv = test.registerValues(test.forbidden);
            fv = test.finalValues(test.forbidden);
        }
        for (size_t i = 0; i < test.size(); i++) {
            if (!test.events[i].isRead())
                continue;
            sig_names.push_back(regs[i]);
            if (test.hasForbidden)
                forbidden_sig.push_back(rv[i]);
        }
        for (int loc = 0; loc < test.numLocs; loc++) {
            if (wcount[loc] < 2)
                continue;
            sig_names.push_back(herdLocName(loc));
            if (test.hasForbidden)
                forbidden_sig.push_back(fv[loc]);
        }
    }

    auto depSources = [&](const BitMatrix &m, std::vector<int> targets) {
        std::vector<int> out;
        for (size_t i = 0; i < test.size(); i++) {
            for (int j : targets) {
                if (m.test(i, j)) {
                    out.push_back(static_cast<int>(i));
                    break;
                }
            }
        }
        return out;
    };
    auto xorZero = [&](const std::vector<int> &sources) {
        std::string s;
        for (size_t k = 0; k < sources.size(); k++) {
            s += k ? " + " : "";
            s += "(" + regs[sources[k]] + " ^ " + regs[sources[k]] + ")";
        }
        return s;
    };
    // Address dependencies become index arithmetic on the location's
    // address; the index is always zero, but the compiler cannot know.
    auto addrExpr = [&](int loc, const std::vector<int> &sources) {
        std::string base = herdLocName(loc);
        if (sources.empty())
            return base;
        return "(&" + base + ")[" + xorZero(sources) + "]";
    };
    auto valueExpr = [&](int value, const std::vector<int> &sources) {
        std::string s = std::to_string(value);
        if (!sources.empty())
            s += " + " + xorZero(sources);
        return s;
    };
    auto guardPrefix = [&](const std::vector<int> &sources) {
        std::string s;
        for (int i : sources)
            s += "if (" + regs[i] + " >= 0) ";
        return s;
    };

    std::ostringstream out;
    out << "// Stress harness for litmus test '" << name << "'";
    if (!options.modelName.empty())
        out << " (model " << options.modelName << ")";
    out << ".\n";
    out << "// Generated by lts; build with: c++ -std=c++11 -O2 -pthread\n";
    if (test.hasForbidden) {
        out << "// Exits 1 iff the forbidden outcome";
        for (size_t k = 0; k < sig_names.size(); k++)
            out << (k ? " " : " [") << sig_names[k] << "="
                << forbidden_sig[k];
        if (!sig_names.empty())
            out << "]";
        out << " is observed: a nonzero exit is a\n"
            << "// witness that this machine/compiler exhibits an "
               "execution the model forbids.\n";
    } else {
        out << "// No forbidden outcome declared: the harness only "
               "histograms outcomes.\n";
    }
    out << "\n"
        << "#include <atomic>\n"
        << "#include <cstdio>\n"
        << "#include <cstdlib>\n"
        << "#include <map>\n"
        << "#include <string>\n"
        << "#include <thread>\n"
        << "#include <vector>\n"
        << "\n"
        << "namespace {\n"
        << "\n";

    for (int loc = 0; loc < test.numLocs; loc++)
        out << "std::atomic<int> " << herdLocName(loc) << "(0);\n";
    bool any_read = false;
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].isRead()) {
            out << (any_read ? ", " : "int ") << regs[i];
            any_read = true;
        }
    }
    if (any_read)
        out << ";\n";
    out << "long g_iters = " << options.defaultIterations << ";\n"
        << "\n"
        << "// Sense-reversing barrier; every wait() pair synchronizes the\n"
        << "// workers with the collector, so resets and reads of the\n"
        << "// plain-int registers never race (TSan-clean by "
           "happens-before).\n"
        << "class Barrier {\n"
        << "  public:\n"
        << "    explicit Barrier(int parties)\n"
        << "        : parties(parties), arrived(0), phase(0) {}\n"
        << "    void wait() {\n"
        << "        int p = phase.load(std::memory_order_acquire);\n"
        << "        if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1"
           " == parties) {\n"
        << "            arrived.store(0, std::memory_order_relaxed);\n"
        << "            phase.fetch_add(1, std::memory_order_acq_rel);\n"
        << "        } else {\n"
        << "            while (phase.load(std::memory_order_acquire) == p)\n"
        << "                std::this_thread::yield();\n"
        << "        }\n"
        << "    }\n"
        << "  private:\n"
        << "    const int parties;\n"
        << "    std::atomic<int> arrived;\n"
        << "    std::atomic<int> phase;\n"
        << "};\n"
        << "\n"
        << "Barrier barrier(" << test.numThreads + 1 << ");\n";

    for (int t = 0; t < test.numThreads; t++) {
        out << "\n"
            << "void thread" << t << "() {\n"
            << "    for (long i = 0; i < g_iters; i++) {\n"
            << "        barrier.wait();\n";
        for (int id : test.threadEvents(t)) {
            const Event &e = test.events[id];
            if (e.isWrite() && isRmwWrite(test, id))
                continue; // emitted with its paired read
            std::string stmt;
            if (e.isFence()) {
                stmt = guardPrefix(depSources(test.ctrlDep, {id})) +
                       "std::atomic_thread_fence(" + cxxOrderName(e.order) +
                       ");";
            } else if (e.isWrite()) {
                stmt = guardPrefix(depSources(test.ctrlDep, {id})) +
                       addrExpr(e.loc, depSources(test.addrDep, {id})) +
                       ".store(" +
                       valueExpr(values[id],
                                 depSources(test.dataDep, {id})) +
                       ", " + cxxOrderName(e.order) + ");";
            } else {
                int w = rmwPartner(test, id);
                std::vector<int> halves = w >= 0 ? std::vector<int>{id, w}
                                                 : std::vector<int>{id};
                std::string guards =
                    guardPrefix(depSources(test.ctrlDep, halves));
                std::string addr =
                    addrExpr(e.loc, depSources(test.addrDep, halves));
                if (w >= 0) {
                    stmt = guards + regs[id] + " = " + addr + ".exchange(" +
                           valueExpr(values[w],
                                     depSources(test.dataDep, {w})) +
                           ", " +
                           cxxOrderName(joinOrders(e.order,
                                                   test.events[w].order)) +
                           ");";
                } else {
                    stmt = guards + regs[id] + " = " + addr + ".load(" +
                           cxxOrderName(e.order) + ");";
                }
            }
            out << "        " << stmt << "\n";
        }
        out << "        barrier.wait();\n"
            << "    }\n"
            << "}\n";
    }

    out << "\n"
        << "} // namespace\n"
        << "\n"
        << "int main(int argc, char **argv) {\n"
        << "    if (argc > 1)\n"
        << "        g_iters = std::atol(argv[1]);\n"
        << "    std::map<std::vector<int>, long> histogram;\n"
        << "    std::thread workers[] = {";
    for (int t = 0; t < test.numThreads; t++)
        out << (t ? ", " : "") << "std::thread(thread" << t << ")";
    out << "};\n"
        << "    for (long i = 0; i < g_iters; i++) {\n";
    for (int loc = 0; loc < test.numLocs; loc++) {
        out << "        " << herdLocName(loc)
            << ".store(0, std::memory_order_relaxed);\n";
    }
    if (any_read) {
        out << "        ";
        bool first = true;
        for (size_t i = 0; i < test.size(); i++) {
            if (test.events[i].isRead()) {
                out << (first ? "" : " ") << regs[i] << " = 0;";
                first = false;
            }
        }
        out << "\n";
    }
    out << "        barrier.wait(); // release workers into iteration i\n"
        << "        barrier.wait(); // wait for every thread body\n"
        << "        histogram[std::vector<int>{";
    {
        bool first = true;
        for (size_t i = 0; i < test.size(); i++) {
            if (test.events[i].isRead()) {
                out << (first ? "" : ", ") << regs[i];
                first = false;
            }
        }
        for (int loc = 0; loc < test.numLocs; loc++) {
            if (wcount[loc] < 2)
                continue;
            out << (first ? "" : ", ") << herdLocName(loc)
                << ".load(std::memory_order_relaxed)";
            first = false;
        }
    }
    out << "}]++;\n"
        << "    }\n"
        << "    for (auto &w : workers)\n"
        << "        w.join();\n"
        << "\n"
        << "    const char *const sig_names[] = {";
    for (size_t k = 0; k < sig_names.size(); k++)
        out << (k ? ", " : "") << "\"" << sig_names[k] << "\"";
    out << "};\n";
    if (test.hasForbidden) {
        out << "    const std::vector<int> forbidden{";
        for (size_t k = 0; k < forbidden_sig.size(); k++)
            out << (k ? ", " : "") << forbidden_sig[k];
        out << "};\n";
    }
    out << "    long seen = 0;\n"
        << "    for (const auto &entry : histogram) {\n"
        << "        std::string label;\n"
        << "        char buf[64];\n"
        << "        for (size_t k = 0; k < entry.first.size(); k++) {\n"
        << "            std::snprintf(buf, sizeof buf, \"%s%s=%d\",\n"
        << "                          k ? \" \" : \"\", sig_names[k],\n"
        << "                          entry.first[k]);\n"
        << "            label += buf;\n"
        << "        }\n";
    if (test.hasForbidden) {
        out << "        bool bad = entry.first == forbidden;\n"
            << "        if (bad)\n"
            << "            seen = entry.second;\n"
            << "        std::printf(\"%10ld  %s%s\\n\", entry.second, "
               "label.c_str(),\n"
            << "                    bad ? \"  <- FORBIDDEN\" : \"\");\n";
    } else {
        out << "        std::printf(\"%10ld  %s\\n\", entry.second, "
               "label.c_str());\n";
    }
    out << "    }\n";
    if (test.hasForbidden) {
        out << "    if (seen) {\n"
            << "        std::printf(\"forbidden outcome observed %ld "
               "time(s) in %ld iterations\\n\",\n"
            << "                    seen, g_iters);\n"
            << "        return 1;\n"
            << "    }\n"
            << "    std::printf(\"forbidden outcome not observed in %ld "
               "iterations\\n\", g_iters);\n";
    } else {
        out << "    (void)seen;\n";
    }
    out << "    return 0;\n"
        << "}\n";
    return out.str();
}

} // namespace lts::litmus
