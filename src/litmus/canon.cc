#include "litmus/canon.hh"

#include <algorithm>
#include <numeric>

#include "common/hash.hh"

namespace lts::litmus
{

namespace
{

/** Serialize one thread with thread-local address renaming. */
std::string
threadSignature(const LitmusTest &test, int tid)
{
    std::vector<int> ids = test.threadEvents(tid);
    // Thread-local location renaming by first use.
    std::vector<int> loc_map(test.numLocs, -1);
    int next_loc = 0;
    std::string sig;
    for (size_t pos = 0; pos < ids.size(); pos++) {
        const Event &e = test.events[ids[pos]];
        sig += std::to_string(static_cast<int>(e.type));
        sig += ':';
        if (e.isMemory()) {
            if (loc_map[e.loc] < 0)
                loc_map[e.loc] = next_loc++;
            sig += std::to_string(loc_map[e.loc]);
        } else {
            sig += '-';
        }
        sig += ':';
        sig += std::to_string(static_cast<int>(e.order));
        sig += ':';
        sig += std::to_string(static_cast<int>(e.scope));
        // Intra-thread structure: deps and rmw as positional offsets.
        for (size_t to = 0; to < ids.size(); to++) {
            if (test.addrDep.test(ids[pos], ids[to]))
                sig += ";a" + std::to_string(to);
            if (test.dataDep.test(ids[pos], ids[to]))
                sig += ";d" + std::to_string(to);
            if (test.ctrlDep.test(ids[pos], ids[to]))
                sig += ";c" + std::to_string(to);
            if (test.rmw.test(ids[pos], ids[to]))
                sig += ";m" + std::to_string(to);
        }
        sig += '|';
    }
    return sig;
}

void
remapMatrix(const BitMatrix &in, const std::vector<int> &old_to_new,
            BitMatrix &out)
{
    for (size_t i = 0; i < in.size(); i++) {
        for (size_t j = 0; j < in.size(); j++) {
            if (in.test(i, j))
                out.set(old_to_new[i], old_to_new[j]);
        }
    }
}

} // namespace

LitmusTest
permuteThreads(const LitmusTest &test, const std::vector<int> &thread_order)
{
    size_t n = test.size();
    LitmusTest out;
    out.name = test.name;
    out.numThreads = test.numThreads;
    out.numLocs = test.numLocs;
    out.events.resize(n);
    out.addrDep = BitMatrix(n);
    out.dataDep = BitMatrix(n);
    out.ctrlDep = BitMatrix(n);
    out.rmw = BitMatrix(n);
    out.hasForbidden = test.hasForbidden;
    out.forbidden = Outcome(n);

    // Event renumbering: threads in the given order, per-thread order kept.
    std::vector<int> old_to_new(n);
    int next = 0;
    for (int new_tid = 0; new_tid < test.numThreads; new_tid++) {
        for (int id : test.threadEvents(thread_order[new_tid]))
            old_to_new[id] = next++;
    }

    // Location renaming by first use in the new event order.
    std::vector<int> new_to_old(n);
    for (size_t i = 0; i < n; i++)
        new_to_old[old_to_new[i]] = static_cast<int>(i);
    std::vector<int> loc_map(test.numLocs, -1);
    int next_loc = 0;
    for (size_t new_id = 0; new_id < n; new_id++) {
        const Event &e = test.events[new_to_old[new_id]];
        if (e.isMemory() && loc_map[e.loc] < 0)
            loc_map[e.loc] = next_loc++;
    }

    // Thread renumbering: position in thread_order.
    std::vector<int> tid_map(test.numThreads);
    for (int new_tid = 0; new_tid < test.numThreads; new_tid++)
        tid_map[thread_order[new_tid]] = new_tid;

    // Workgroups: follow the thread permutation, relabel by first use.
    if (test.hasWorkgroups()) {
        out.threadWg.resize(test.numThreads);
        std::vector<int> wg_map;
        for (int new_tid = 0; new_tid < test.numThreads; new_tid++) {
            int old_wg = test.workgroupOf(thread_order[new_tid]);
            int label = -1;
            for (size_t k = 0; k < wg_map.size(); k++) {
                if (wg_map[k] == old_wg)
                    label = static_cast<int>(k);
            }
            if (label < 0) {
                label = static_cast<int>(wg_map.size());
                wg_map.push_back(old_wg);
            }
            out.threadWg[new_tid] = label;
        }
    }

    for (size_t i = 0; i < n; i++) {
        Event e = test.events[i];
        e.id = old_to_new[i];
        e.tid = tid_map[e.tid];
        if (e.isMemory())
            e.loc = loc_map[e.loc];
        out.events[e.id] = e;
    }
    remapMatrix(test.addrDep, old_to_new, out.addrDep);
    remapMatrix(test.dataDep, old_to_new, out.dataDep);
    remapMatrix(test.ctrlDep, old_to_new, out.ctrlDep);
    remapMatrix(test.rmw, old_to_new, out.rmw);
    if (test.hasForbidden) {
        remapMatrix(test.forbidden.rf, old_to_new, out.forbidden.rf);
        remapMatrix(test.forbidden.co, old_to_new, out.forbidden.co);
    }
    return out;
}

std::string
staticSerialize(const LitmusTest &test)
{
    std::string s = std::to_string(test.numThreads) + "/" +
                    std::to_string(test.numLocs) + "/";
    for (const auto &e : test.events) {
        s += std::to_string(e.tid) + ":" +
             std::to_string(static_cast<int>(e.type)) + ":" +
             std::to_string(e.loc) + ":" +
             std::to_string(static_cast<int>(e.order)) + ":" +
             std::to_string(static_cast<int>(e.scope)) + "|";
    }
    auto emit = [&](const char *tag, const BitMatrix &m) {
        s += tag;
        for (size_t i = 0; i < m.size(); i++) {
            for (size_t j = 0; j < m.size(); j++) {
                if (m.test(i, j)) {
                    s += std::to_string(i) + ">" + std::to_string(j) + ",";
                }
            }
        }
        s += ";";
    };
    emit("A", test.addrDep);
    emit("D", test.dataDep);
    emit("C", test.ctrlDep);
    emit("M", test.rmw);
    if (test.hasWorkgroups()) {
        s += "G";
        for (int t = 0; t < test.numThreads; t++)
            s += std::to_string(test.workgroupOf(t)) + ",";
        s += ";";
    }
    return s;
}

std::string
fullSerialize(const LitmusTest &test)
{
    std::string s = staticSerialize(test);
    if (test.hasForbidden) {
        s += "RF";
        for (size_t i = 0; i < test.size(); i++) {
            for (size_t j = 0; j < test.size(); j++) {
                if (test.forbidden.rf.test(i, j))
                    s += std::to_string(i) + ">" + std::to_string(j) + ",";
            }
        }
        s += "CO";
        for (size_t i = 0; i < test.size(); i++) {
            for (size_t j = 0; j < test.size(); j++) {
                if (test.forbidden.co.test(i, j))
                    s += std::to_string(i) + ">" + std::to_string(j) + ",";
            }
        }
    }
    return s;
}

LitmusTest
canonicalize(const LitmusTest &test, CanonMode mode)
{
    if (mode == CanonMode::Paper) {
        // Sort threads by their local signature; ties keep input order,
        // which is exactly the WWC blind spot of Figure 14.
        std::vector<int> order(test.numThreads);
        std::iota(order.begin(), order.end(), 0);
        std::vector<std::string> sigs(test.numThreads);
        for (int t = 0; t < test.numThreads; t++)
            sigs[t] = threadSignature(test, t);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return sigs[a] < sigs[b];
        });
        return permuteThreads(test, order);
    }

    // Exact: minimize the (staticSerialize, fullSerialize) pair over all
    // thread permutations. Minimizing the full key as tie-break — not
    // just the static key — makes the result a pure function of the
    // test's isomorphism class: two members differing only in how the
    // outcome lands on statically identical threads canonicalize to the
    // same bytes, so the synthesizer need not enumerate a class
    // exhaustively to emit a deterministic representative. fullSerialize
    // extends staticSerialize with an outcome suffix, so comparing full
    // keys compares (static, outcome) lexicographically.
    std::vector<int> order(test.numThreads);
    std::iota(order.begin(), order.end(), 0);
    LitmusTest best = permuteThreads(test, order);
    std::string best_static = staticSerialize(best);
    std::string best_full = fullSerialize(best);
    while (std::next_permutation(order.begin(), order.end())) {
        LitmusTest candidate = permuteThreads(test, order);
        std::string s = staticSerialize(candidate);
        if (s > best_static)
            continue;
        std::string f = fullSerialize(candidate);
        if (s < best_static || f < best_full) {
            best_static = std::move(s);
            best_full = std::move(f);
            best = candidate;
        }
    }
    return best;
}

uint64_t
canonicalHash(const LitmusTest &test, CanonMode mode)
{
    return hashCombine(hashInit(), staticSerialize(canonicalize(test, mode)));
}

} // namespace lts::litmus
