/**
 * @file
 * Self-contained C++11 stress-harness emission.
 *
 * For each litmus test this emits one translation unit that needs
 * nothing beyond -std=c++11 -pthread: the test's locations become
 * std::atomic<int> globals, each thread's events become a function using
 * the exact memory orders of the IR (memory_order_consume is promoted to
 * acquire in the harness only — real compilers do the same), and a
 * sense-reversing barrier brackets every iteration so the main thread
 * can reset state and collect the outcome race-free (the harness is
 * clean under ThreadSanitizer).
 *
 * The harness runs N iterations (default 20000, argv[1] overrides),
 * histograms the observed outcome signatures — register values per read
 * plus final values of multiply-written locations, the same projection
 * the herd exists-condition uses — and, when the test carries a
 * forbidden outcome, exits 1 if that signature was ever observed. A
 * nonzero exit is a *witness*: the target machine/compiler exhibited the
 * outcome the model forbids. A zero exit is only absence of evidence.
 *
 * Write values follow the same co-position convention as the herd
 * exporter (litmus/herd.hh), so an outcome tuple printed by the harness
 * can be cross-checked against herd7 on the matching .litmus file and
 * against the operational simulator.
 */

#ifndef LTS_LITMUS_CXX_HH
#define LTS_LITMUS_CXX_HH

#include <string>

#include "litmus/test.hh"

namespace lts::litmus
{

/** Emission knobs for writeCxxHarness. */
struct CxxOptions
{
    /** Iterations when the harness is run with no arguments. */
    long defaultIterations = 20000;

    /** Model name embedded in the banner comment (informational). */
    std::string modelName;
};

/** Emit one self-contained C++11 stress-harness program for @p test. */
std::string writeCxxHarness(const LitmusTest &test,
                            const CxxOptions &options = {});

} // namespace lts::litmus

#endif // LTS_LITMUS_CXX_HH
