/**
 * @file
 * Textual litmus-test interchange format.
 *
 * A diy/herd-inspired format so synthesized suites can be fed into
 * external testing infrastructure (Section 2.1) and read back:
 *
 *     LTS <name>
 *     thread 0: St [x] ; St.rel [y]
 *     thread 1: Ld.acq r0 = [y] ; Ld r1 = [x]
 *     deps: data 0 -> 1
 *     rmw: 2 3
 *     forbidden: rf 1 -> 2 ; init 3 ; co 0 < 4
 *     end
 *
 * Events are numbered test-wide in program order (thread 0 first). The
 * "forbidden" clause lists the rf edges, explicit initial reads, and co
 * constraints of the outcome; co is completed per location in listed
 * order.
 */

#ifndef LTS_LITMUS_FORMAT_HH
#define LTS_LITMUS_FORMAT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "litmus/test.hh"

namespace lts::litmus
{

/** Serialize @p test (with its forbidden outcome, if any). */
std::string writeLitmus(const LitmusTest &test);

/** Serialize a whole suite, tests separated by blank lines. */
void writeLitmusSuite(std::ostream &out,
                      const std::vector<LitmusTest> &tests);

/**
 * Parse one test from the format above. Throws std::runtime_error with
 * a line diagnostic on malformed input.
 */
LitmusTest parseLitmus(const std::string &text);

/** Parse a suite (zero or more tests). */
std::vector<LitmusTest> parseLitmusSuite(std::istream &in);

} // namespace lts::litmus

#endif // LTS_LITMUS_FORMAT_HH
