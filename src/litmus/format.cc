#include "litmus/format.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/strings.hh"
#include "litmus/parse_util.hh"

namespace lts::litmus
{

namespace
{

std::string
annotSuffix(MemOrder order)
{
    std::string s = toString(order);
    return s.empty() ? "" : "." + s;
}

std::string
scopeSuffix(const Event &e)
{
    return e.scope == Scope::System ? "" : "@" + toString(e.scope);
}

std::string
locName(int loc)
{
    return "m" + std::to_string(loc);
}

} // namespace

std::string
writeLitmus(const LitmusTest &test)
{
    std::ostringstream out;
    out << "LTS " << (test.name.empty() ? "unnamed" : test.name) << "\n";
    int reg = 0;
    for (int t = 0; t < test.numThreads; t++) {
        out << "thread " << t << ":";
        bool first = true;
        for (int id : test.threadEvents(t)) {
            const Event &e = test.events[id];
            out << (first ? " " : " ; ");
            first = false;
            switch (e.type) {
              case EventType::Write:
                out << "St" << annotSuffix(e.order) << scopeSuffix(e) << " ["
                    << locName(e.loc) << "]";
                break;
              case EventType::Read:
                out << "Ld" << annotSuffix(e.order) << scopeSuffix(e) << " r"
                    << reg++ << " = [" << locName(e.loc) << "]";
                break;
              case EventType::Fence:
                out << "Fence" << annotSuffix(e.order) << scopeSuffix(e);
                break;
            }
        }
        out << "\n";
    }
    if (test.hasWorkgroups()) {
        out << "wg:";
        for (int t = 0; t < test.numThreads; t++)
            out << " " << test.workgroupOf(t);
        out << "\n";
    }
    for (size_t i = 0; i < test.size(); i++) {
        for (size_t j = 0; j < test.size(); j++) {
            if (test.addrDep.test(i, j))
                out << "dep addr " << i << " -> " << j << "\n";
            if (test.dataDep.test(i, j))
                out << "dep data " << i << " -> " << j << "\n";
            if (test.ctrlDep.test(i, j))
                out << "dep ctrl " << i << " -> " << j << "\n";
            if (test.rmw.test(i, j))
                out << "rmw " << i << " " << j << "\n";
        }
    }
    if (test.hasForbidden) {
        std::vector<std::string> parts;
        for (size_t j = 0; j < test.size(); j++) {
            if (!test.events[j].isRead())
                continue;
            bool sourced = false;
            for (size_t i = 0; i < test.size(); i++) {
                if (test.forbidden.rf.test(i, j)) {
                    parts.push_back("rf " + std::to_string(i) + " -> " +
                                    std::to_string(j));
                    sourced = true;
                }
            }
            if (!sourced)
                parts.push_back("init " + std::to_string(j));
        }
        // Emit the co order as immediate-successor constraints.
        for (size_t i = 0; i < test.size(); i++) {
            for (size_t j = 0; j < test.size(); j++) {
                if (!test.forbidden.co.test(i, j))
                    continue;
                bool immediate = true;
                for (size_t k = 0; k < test.size(); k++) {
                    if (test.forbidden.co.test(i, k) &&
                        test.forbidden.co.test(k, j))
                        immediate = false;
                }
                if (immediate) {
                    parts.push_back("co " + std::to_string(i) + " < " +
                                    std::to_string(j));
                }
            }
        }
        // The line is emitted even when no part constrains the outcome
        // (no reads, no location written twice): its *presence* is what
        // distinguishes an empty forbidden outcome from no outcome.
        out << "forbidden: " << join(parts, " ; ") << "\n";
    }
    out << "end\n";
    return out.str();
}

void
writeLitmusSuite(std::ostream &out, const std::vector<LitmusTest> &tests)
{
    for (const auto &t : tests)
        out << writeLitmus(t) << "\n";
}

LitmusTest
parseLitmus(const std::string &text)
{
    std::istringstream in(text);
    auto suite = parseLitmusSuite(in);
    if (suite.size() != 1)
        throw std::runtime_error("expected exactly one test, got " +
                                 std::to_string(suite.size()));
    return suite[0];
}

namespace
{

MemOrder
parseAnnot(const LineReader &reader, const std::string &s)
{
    if (s.empty())
        return MemOrder::Plain;
    if (s == "cns")
        return MemOrder::Consume;
    if (s == "acq")
        return MemOrder::Acquire;
    if (s == "rel")
        return MemOrder::Release;
    if (s == "ar")
        return MemOrder::AcqRel;
    if (s == "sc")
        return MemOrder::SeqCst;
    reader.fail("bad annotation '" + s + "'");
}

/** Parse one instruction like "St.rel [m0]" or "Ld r0 = [m1]". */
void
parseInstruction(const LineReader &reader, TestBuilder &builder, int tid,
                 const std::string &instr)
{
    std::string s = trim(instr);
    if (s.empty())
        reader.fail("empty instruction");
    // Opcode (with optional .annotation and @scope).
    size_t sp = s.find(' ');
    std::string opcode = sp == std::string::npos ? s : s.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : trim(s.substr(sp));
    std::string base = opcode;
    std::string scope_str;
    size_t at = base.find('@');
    if (at != std::string::npos) {
        scope_str = base.substr(at + 1);
        base = base.substr(0, at);
    }
    std::string annot;
    size_t dot = base.find('.');
    if (dot != std::string::npos) {
        annot = base.substr(dot + 1);
        base = base.substr(0, dot);
    }
    MemOrder order = parseAnnot(reader, annot);
    Scope scope = Scope::System;
    if (!scope_str.empty()) {
        if (scope_str == "wg")
            scope = Scope::WorkGroup;
        else if (scope_str == "dev")
            scope = Scope::Device;
        else if (scope_str == "wi")
            scope = Scope::WorkItem;
        else if (scope_str != "sys")
            reader.fail("bad scope '" + scope_str + "'");
    }

    auto parseLoc = [&](const std::string &piece) {
        size_t lb = piece.find('[');
        size_t rb = piece.find(']');
        if (lb == std::string::npos || rb == std::string::npos || rb < lb)
            reader.fail("missing [location]");
        return trim(piece.substr(lb + 1, rb - lb - 1));
    };

    int ev;
    if (base == "St") {
        ev = builder.write(tid, parseLoc(rest), order);
    } else if (base == "Ld") {
        // "rK = [loc]": the register name is ignored.
        size_t eq = rest.find('=');
        if (eq == std::string::npos)
            reader.fail("load without '='");
        ev = builder.read(tid, parseLoc(rest.substr(eq + 1)), order);
    } else if (base == "Fence") {
        ev = builder.fence(tid, order);
    } else {
        reader.fail("unknown opcode '" + base + "'");
    }
    builder.setScope(ev, scope);
}

} // namespace

std::vector<LitmusTest>
parseLitmusSuite(std::istream &in)
{
    std::vector<LitmusTest> out;
    LineReader reader(in);
    std::string line;

    bool in_test = false;
    SourceLine test_start;
    std::string name;
    TestBuilder builder;
    std::vector<SourceLine> dep_lines, rmw_lines;
    SourceLine forbidden_line;
    bool forbidden_seen = false;

    auto finish = [&]() {
        // Threads were declared in order; builder events were added when
        // thread lines were parsed, so just apply deps/rmw/outcome.
        auto parseEdge = [&](const SourceLine &at, const std::string &body,
                             const char *sep) {
            auto pieces = split(body, ' ');
            // e.g. {"0", "->", "1"}
            if (pieces.size() != 3 || pieces[1] != sep) {
                reader.failAt(at, "expected 'A " + std::string(sep) +
                                      " B' after the keyword");
            }
            return std::make_pair(
                reader.parseInt(at, pieces[0], "event id"),
                reader.parseInt(at, pieces[2], "event id"));
        };
        for (const auto &d : dep_lines) {
            auto pieces = split(d.text, ' ');
            if (pieces.size() != 5)
                reader.failAt(d, "expected 'dep kind A -> B'");
            auto [from, to] = parseEdge(
                d, pieces[2] + " " + pieces[3] + " " + pieces[4], "->");
            if (pieces[1] == "addr")
                builder.addrDepend(from, to);
            else if (pieces[1] == "data")
                builder.dataDepend(from, to);
            else if (pieces[1] == "ctrl")
                builder.ctrlDepend(from, to);
            else
                reader.failAt(d, "unknown dependency kind '" + pieces[1] +
                                     "'");
        }
        for (const auto &r : rmw_lines) {
            auto pieces = split(r.text, ' ');
            if (pieces.size() != 3)
                reader.failAt(r, "expected 'rmw R W'");
            builder.pairRmw(reader.parseInt(r, pieces[1], "event id"),
                            reader.parseInt(r, pieces[2], "event id"));
        }
        if (forbidden_seen) {
            // An empty directive list is still an outcome declaration:
            // it distinguishes "forbids the trivial execution" from "no
            // forbidden outcome" (which has no 'forbidden:' line at all).
            builder.markForbidden();
            for (const auto &raw : split(forbidden_line.text, ';')) {
                std::string part = trim(raw);
                if (part.empty())
                    continue;
                SourceLine at{forbidden_line.number, part};
                if (startsWith(part, "rf ")) {
                    auto [w, r] = parseEdge(at, part.substr(3), "->");
                    builder.readsFrom(w, r);
                } else if (startsWith(part, "init ")) {
                    builder.readsInitial(
                        reader.parseInt(at, trim(part.substr(5)),
                                        "event id"));
                } else if (startsWith(part, "co ")) {
                    auto [a, b] = parseEdge(at, part.substr(3), "<");
                    builder.coOrder(a, b);
                } else {
                    reader.failAt(at, "unknown outcome directive");
                }
            }
        }
        try {
            out.push_back(builder.build(name));
        } catch (const std::out_of_range &) {
            // Thrown by the builder's .at()-checked edge remapping.
            reader.failAt(test_start,
                          "an edge names an event id outside the test");
        } catch (const std::logic_error &e) {
            reader.failAt(test_start, std::string("invalid test: ") +
                                          e.what());
        }
        builder = TestBuilder();
        dep_lines.clear();
        rmw_lines.clear();
        forbidden_seen = false;
        forbidden_line = SourceLine{};
        in_test = false;
        reader.clearContext();
    };

    while (reader.next(line)) {
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        if (startsWith(s, "LTS ")) {
            if (in_test)
                reader.fail("nested test (missing 'end'?)");
            in_test = true;
            name = trim(s.substr(4));
            test_start = reader.here(s);
            reader.setContext(name);
            continue;
        }
        if (!in_test)
            reader.fail("content outside a test");
        if (startsWith(s, "thread ")) {
            size_t colon = s.find(':');
            if (colon == std::string::npos)
                reader.fail("thread line without ':'");
            int declared = reader.parseInt(
                reader.here(s), trim(s.substr(7, colon - 7)), "thread id");
            int tid = builder.newThread();
            if (tid != declared)
                reader.fail("threads must be declared densely in order");
            for (const auto &instr : split(s.substr(colon + 1), ';'))
                parseInstruction(reader, builder, tid, instr);
        } else if (startsWith(s, "wg:")) {
            auto labels = split(s.substr(3), ' ');
            for (size_t t = 0; t < labels.size(); t++) {
                int wg = reader.parseInt(reader.here(s), labels[t],
                                         "workgroup label");
                try {
                    builder.setWorkgroup(static_cast<int>(t), wg);
                } catch (const std::out_of_range &) {
                    reader.fail("workgroup list names more threads than "
                                "declared");
                }
            }
        } else if (startsWith(s, "dep ")) {
            dep_lines.push_back(reader.here(s));
        } else if (startsWith(s, "rmw ")) {
            rmw_lines.push_back(reader.here(s));
        } else if (startsWith(s, "forbidden:")) {
            forbidden_seen = true;
            forbidden_line = reader.here(trim(s.substr(10)));
        } else if (s == "end") {
            finish();
        } else {
            reader.fail("unrecognized line");
        }
    }
    if (in_test) {
        reader.failAt(test_start,
                      "unterminated test (missing 'end')");
    }
    return out;
}

} // namespace lts::litmus
