#include "litmus/format.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/strings.hh"

namespace lts::litmus
{

namespace
{

std::string
annotSuffix(MemOrder order)
{
    std::string s = toString(order);
    return s.empty() ? "" : "." + s;
}

std::string
scopeSuffix(const Event &e)
{
    return e.scope == Scope::System ? "" : "@" + toString(e.scope);
}

MemOrder
parseAnnot(const std::string &s, const std::string &context)
{
    if (s.empty())
        return MemOrder::Plain;
    if (s == "cns")
        return MemOrder::Consume;
    if (s == "acq")
        return MemOrder::Acquire;
    if (s == "rel")
        return MemOrder::Release;
    if (s == "ar")
        return MemOrder::AcqRel;
    if (s == "sc")
        return MemOrder::SeqCst;
    throw std::runtime_error("bad annotation '" + s + "' in " + context);
}

std::string
locName(int loc)
{
    return "m" + std::to_string(loc);
}

[[noreturn]] void
fail(const std::string &line, const std::string &why)
{
    throw std::runtime_error("litmus parse error: " + why + " in '" + line +
                             "'");
}

} // namespace

std::string
writeLitmus(const LitmusTest &test)
{
    std::ostringstream out;
    out << "LTS " << (test.name.empty() ? "unnamed" : test.name) << "\n";
    int reg = 0;
    for (int t = 0; t < test.numThreads; t++) {
        out << "thread " << t << ":";
        bool first = true;
        for (int id : test.threadEvents(t)) {
            const Event &e = test.events[id];
            out << (first ? " " : " ; ");
            first = false;
            switch (e.type) {
              case EventType::Write:
                out << "St" << annotSuffix(e.order) << scopeSuffix(e) << " ["
                    << locName(e.loc) << "]";
                break;
              case EventType::Read:
                out << "Ld" << annotSuffix(e.order) << scopeSuffix(e) << " r"
                    << reg++ << " = [" << locName(e.loc) << "]";
                break;
              case EventType::Fence:
                out << "Fence" << annotSuffix(e.order) << scopeSuffix(e);
                break;
            }
        }
        out << "\n";
    }
    if (test.hasWorkgroups()) {
        out << "wg:";
        for (int t = 0; t < test.numThreads; t++)
            out << " " << test.workgroupOf(t);
        out << "\n";
    }
    for (size_t i = 0; i < test.size(); i++) {
        for (size_t j = 0; j < test.size(); j++) {
            if (test.addrDep.test(i, j))
                out << "dep addr " << i << " -> " << j << "\n";
            if (test.dataDep.test(i, j))
                out << "dep data " << i << " -> " << j << "\n";
            if (test.ctrlDep.test(i, j))
                out << "dep ctrl " << i << " -> " << j << "\n";
            if (test.rmw.test(i, j))
                out << "rmw " << i << " " << j << "\n";
        }
    }
    if (test.hasForbidden) {
        std::vector<std::string> parts;
        for (size_t j = 0; j < test.size(); j++) {
            if (!test.events[j].isRead())
                continue;
            bool sourced = false;
            for (size_t i = 0; i < test.size(); i++) {
                if (test.forbidden.rf.test(i, j)) {
                    parts.push_back("rf " + std::to_string(i) + " -> " +
                                    std::to_string(j));
                    sourced = true;
                }
            }
            if (!sourced)
                parts.push_back("init " + std::to_string(j));
        }
        // Emit the co order as immediate-successor constraints.
        for (size_t i = 0; i < test.size(); i++) {
            for (size_t j = 0; j < test.size(); j++) {
                if (!test.forbidden.co.test(i, j))
                    continue;
                bool immediate = true;
                for (size_t k = 0; k < test.size(); k++) {
                    if (test.forbidden.co.test(i, k) &&
                        test.forbidden.co.test(k, j))
                        immediate = false;
                }
                if (immediate) {
                    parts.push_back("co " + std::to_string(i) + " < " +
                                    std::to_string(j));
                }
            }
        }
        out << "forbidden: " << join(parts, " ; ") << "\n";
    }
    out << "end\n";
    return out.str();
}

void
writeLitmusSuite(std::ostream &out, const std::vector<LitmusTest> &tests)
{
    for (const auto &t : tests)
        out << writeLitmus(t) << "\n";
}

LitmusTest
parseLitmus(const std::string &text)
{
    std::istringstream in(text);
    auto suite = parseLitmusSuite(in);
    if (suite.size() != 1)
        throw std::runtime_error("expected exactly one test, got " +
                                 std::to_string(suite.size()));
    return suite[0];
}

namespace
{

/** Parse one instruction like "St.rel [m0]" or "Ld r0 = [m1]". */
void
parseInstruction(TestBuilder &builder, int tid, const std::string &instr)
{
    std::string s = trim(instr);
    if (s.empty())
        fail(instr, "empty instruction");
    // Opcode (with optional .annotation).
    size_t sp = s.find(' ');
    std::string opcode = sp == std::string::npos ? s : s.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : trim(s.substr(sp));
    std::string base = opcode;
    std::string scope_str;
    size_t at = base.find('@');
    if (at != std::string::npos) {
        scope_str = base.substr(at + 1);
        base = base.substr(0, at);
    }
    std::string annot;
    size_t dot = base.find('.');
    if (dot != std::string::npos) {
        annot = base.substr(dot + 1);
        base = base.substr(0, dot);
    }
    MemOrder order = parseAnnot(annot, instr);
    Scope scope = Scope::System;
    if (!scope_str.empty()) {
        if (scope_str == "wg")
            scope = Scope::WorkGroup;
        else if (scope_str == "dev")
            scope = Scope::Device;
        else if (scope_str == "wi")
            scope = Scope::WorkItem;
        else if (scope_str != "sys")
            fail(instr, "bad scope '" + scope_str + "'");
    }

    auto parseLoc = [&](const std::string &piece) {
        size_t lb = piece.find('[');
        size_t rb = piece.find(']');
        if (lb == std::string::npos || rb == std::string::npos || rb < lb)
            fail(instr, "missing [location]");
        return trim(piece.substr(lb + 1, rb - lb - 1));
    };

    int ev;
    if (base == "St") {
        ev = builder.write(tid, parseLoc(rest), order);
    } else if (base == "Ld") {
        // "rK = [loc]": the register name is ignored.
        size_t eq = rest.find('=');
        if (eq == std::string::npos)
            fail(instr, "load without '='");
        ev = builder.read(tid, parseLoc(rest.substr(eq + 1)), order);
    } else if (base == "Fence") {
        ev = builder.fence(tid, order);
    } else {
        fail(instr, "unknown opcode '" + base + "'");
    }
    builder.setScope(ev, scope);
}

} // namespace

std::vector<LitmusTest>
parseLitmusSuite(std::istream &in)
{
    std::vector<LitmusTest> out;
    std::string line;

    bool in_test = false;
    std::string name;
    TestBuilder builder;
    std::vector<std::pair<int, std::string>> thread_lines;
    std::vector<std::string> dep_lines, rmw_lines;
    std::string forbidden_line;

    auto finish = [&]() {
        // Threads were declared in order; builder events were added when
        // thread lines were parsed, so just apply deps/rmw/outcome.
        auto parseEdge = [&](const std::string &body, const char *sep) {
            auto pieces = split(body, ' ');
            // e.g. {"0", "->", "1"}
            if (pieces.size() != 3 || pieces[1] != sep)
                fail(body, "expected 'A " + std::string(sep) + " B'");
            return std::make_pair(std::stoi(pieces[0]),
                                  std::stoi(pieces[2]));
        };
        for (const auto &d : dep_lines) {
            auto pieces = split(d, ' ');
            if (pieces.size() != 5)
                fail(d, "expected 'dep kind A -> B'");
            auto [from, to] =
                parseEdge(pieces[2] + " " + pieces[3] + " " + pieces[4],
                          "->");
            if (pieces[1] == "addr")
                builder.addrDepend(from, to);
            else if (pieces[1] == "data")
                builder.dataDepend(from, to);
            else if (pieces[1] == "ctrl")
                builder.ctrlDepend(from, to);
            else
                fail(d, "unknown dependency kind");
        }
        for (const auto &r : rmw_lines) {
            auto pieces = split(r, ' ');
            if (pieces.size() != 3)
                fail(r, "expected 'rmw R W'");
            builder.pairRmw(std::stoi(pieces[1]), std::stoi(pieces[2]));
        }
        if (!forbidden_line.empty()) {
            for (const auto &raw : split(forbidden_line, ';')) {
                std::string part = trim(raw);
                if (part.empty())
                    continue;
                if (startsWith(part, "rf ")) {
                    auto [w, r] = parseEdge(part.substr(3), "->");
                    builder.readsFrom(w, r);
                } else if (startsWith(part, "init ")) {
                    builder.readsInitial(std::stoi(part.substr(5)));
                } else if (startsWith(part, "co ")) {
                    auto [a, b] = parseEdge(part.substr(3), "<");
                    builder.coOrder(a, b);
                } else {
                    fail(part, "unknown outcome directive");
                }
            }
        }
        out.push_back(builder.build(name));
        builder = TestBuilder();
        dep_lines.clear();
        rmw_lines.clear();
        forbidden_line.clear();
        in_test = false;
    };

    while (std::getline(in, line)) {
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        if (startsWith(s, "LTS ")) {
            if (in_test)
                fail(s, "nested test (missing 'end'?)");
            in_test = true;
            name = trim(s.substr(4));
            continue;
        }
        if (!in_test)
            fail(s, "content outside a test");
        if (startsWith(s, "thread ")) {
            size_t colon = s.find(':');
            if (colon == std::string::npos)
                fail(s, "thread line without ':'");
            int declared = std::stoi(trim(s.substr(7, colon - 7)));
            int tid = builder.newThread();
            if (tid != declared)
                fail(s, "threads must be declared densely in order");
            for (const auto &instr : split(s.substr(colon + 1), ';'))
                parseInstruction(builder, tid, instr);
        } else if (startsWith(s, "wg:")) {
            auto labels = split(s.substr(3), ' ');
            for (size_t t = 0; t < labels.size(); t++)
                builder.setWorkgroup(static_cast<int>(t),
                                     std::stoi(labels[t]));
        } else if (startsWith(s, "dep ")) {
            dep_lines.push_back(s);
        } else if (startsWith(s, "rmw ")) {
            rmw_lines.push_back(s);
        } else if (startsWith(s, "forbidden:")) {
            forbidden_line = trim(s.substr(10));
        } else if (s == "end") {
            finish();
        } else {
            fail(s, "unrecognized line");
        }
    }
    if (in_test)
        throw std::runtime_error("unterminated test (missing 'end')");
    return out;
}

} // namespace lts::litmus
