#include "litmus/digest.hh"

#include <cstdio>

#include "common/hash.hh"
#include "litmus/canon.hh"

namespace lts::litmus
{

uint64_t
suiteDigestValue(const std::vector<LitmusTest> &tests)
{
    uint64_t h = hashInit();
    for (const auto &test : tests)
        h = hashCombine(h, fullSerialize(test));
    return h;
}

std::string
formatSuiteDigest(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(kSuiteDigestFormat) + ":" + buf;
}

std::string
suiteDigest(const std::vector<LitmusTest> &tests)
{
    return formatSuiteDigest(suiteDigestValue(tests));
}

} // namespace lts::litmus
