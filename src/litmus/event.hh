/**
 * @file
 * Litmus-test event vocabulary: event types, memory-order annotations,
 * and scope annotations.
 *
 * A single MemOrder lattice covers every model in the paper: C/C++ memory
 * orders (Table 1), ARMv8/SCC acquire-release opcodes, and fence
 * strengths. Fences reuse the same annotation — e.g. Power's sync is a
 * SeqCst fence and lwsync an AcqRel fence — so the DF (demote fence) and
 * DMO (demote memory order) instruction relaxations share one mechanism.
 */

#ifndef LTS_LITMUS_EVENT_HH
#define LTS_LITMUS_EVENT_HH

#include <cstdint>
#include <string>

namespace lts::litmus
{

/** What an event does. */
enum class EventType : uint8_t
{
    Read,
    Write,
    Fence,
};

/**
 * Ordering-strength annotation, in the C/C++ naming of Table 1 of the
 * paper but applied across models. The strict-weakening lattice is
 *
 *     SeqCst > AcqRel > { Acquire, Release } > Consume > Plain
 *
 * with Acquire/Release incomparable and Consume below Acquire only.
 */
enum class MemOrder : uint8_t
{
    Plain,    ///< relaxed / ordinary access, or no-op fence
    Consume,  ///< memory_order_consume (C/C++ only)
    Acquire,  ///< load-acquire / memory_order_acquire
    Release,  ///< store-release / memory_order_release
    AcqRel,   ///< memory_order_acq_rel; as a fence: Power lwsync class
    SeqCst,   ///< memory_order_seq_cst; as a fence: sync/mfence/FenceSC
};

/**
 * Synchronization scope (OpenCL/HSA-style). Only used by the DS (demote
 * scope) relaxation machinery and the applicability table; the synthesized
 * models in this repo are scope-free and use System throughout.
 */
enum class Scope : uint8_t
{
    WorkItem,
    WorkGroup,
    Device,
    System,
};

/** True iff @p weaker is a strict weakening of @p stronger. */
bool isWeaker(MemOrder weaker, MemOrder stronger);

/** Short printable mnemonic, e.g. "acq", "rel", "sc", or "" for Plain. */
std::string toString(MemOrder order);

/** Printable name of an event type. */
std::string toString(EventType type);

/** Printable name of a scope. */
std::string toString(Scope scope);

/**
 * One instruction of a litmus test. Events are identified by their dense
 * index in LitmusTest::events; program order within a thread follows that
 * index order.
 */
struct Event
{
    int id = -1;                     ///< dense index within the test
    int tid = -1;                    ///< owning thread
    EventType type = EventType::Read;
    int loc = -1;                    ///< location index; -1 for fences
    MemOrder order = MemOrder::Plain;
    Scope scope = Scope::System;

    bool isRead() const { return type == EventType::Read; }
    bool isWrite() const { return type == EventType::Write; }
    bool isFence() const { return type == EventType::Fence; }
    bool isMemory() const { return type != EventType::Fence; }
};

} // namespace lts::litmus

#endif // LTS_LITMUS_EVENT_HH
