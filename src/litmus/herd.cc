#include "litmus/herd.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/strings.hh"
#include "litmus/parse_util.hh"

namespace lts::litmus
{

namespace
{

// ---------------------------------------------------------------------------
// Shared vocabulary
// ---------------------------------------------------------------------------

const char *const kX86Regs[] = {"EAX", "EBX", "ECX", "EDX", "ESI", "EDI"};
constexpr size_t kNumX86Regs = sizeof(kX86Regs) / sizeof(kX86Regs[0]);

std::string
cOrderName(MemOrder order)
{
    switch (order) {
      case MemOrder::Plain: return "memory_order_relaxed";
      case MemOrder::Consume: return "memory_order_consume";
      case MemOrder::Acquire: return "memory_order_acquire";
      case MemOrder::Release: return "memory_order_release";
      case MemOrder::AcqRel: return "memory_order_acq_rel";
      case MemOrder::SeqCst: return "memory_order_seq_cst";
    }
    return "memory_order_seq_cst";
}

bool
cOrderFromName(const std::string &name, MemOrder &out)
{
    if (name == "memory_order_relaxed") out = MemOrder::Plain;
    else if (name == "memory_order_consume") out = MemOrder::Consume;
    else if (name == "memory_order_acquire") out = MemOrder::Acquire;
    else if (name == "memory_order_release") out = MemOrder::Release;
    else if (name == "memory_order_acq_rel") out = MemOrder::AcqRel;
    else if (name == "memory_order_seq_cst") out = MemOrder::SeqCst;
    else return false;
    return true;
}

/** Short order mnemonic for LTS-* metadata ("" would be ambiguous). */
std::string
shortOrderToken(MemOrder order)
{
    std::string s = toString(order);
    return s.empty() ? "pln" : s;
}

bool
shortOrderFromToken(const std::string &tok, MemOrder &out)
{
    if (tok == "pln") out = MemOrder::Plain;
    else if (tok == "cns") out = MemOrder::Consume;
    else if (tok == "acq") out = MemOrder::Acquire;
    else if (tok == "rel") out = MemOrder::Release;
    else if (tok == "ar") out = MemOrder::AcqRel;
    else if (tok == "sc") out = MemOrder::SeqCst;
    else return false;
    return true;
}

bool
scopeFromToken(const std::string &tok, Scope &out)
{
    if (tok == "wi") out = Scope::WorkItem;
    else if (tok == "wg") out = Scope::WorkGroup;
    else if (tok == "dev") out = Scope::Device;
    else if (tok == "sys") out = Scope::System;
    else return false;
    return true;
}

/**
 * Least order at least as strong as both halves of an RMW pair: the one
 * operation an atomic_exchange_explicit call performs carries a single
 * memory_order, so a split-order pair is emitted with the join (and the
 * exact halves travel in LTS-RmwOrders metadata).
 */
MemOrder
joinOrders(MemOrder a, MemOrder b)
{
    if (a == b)
        return a;
    auto has = [&](MemOrder o) { return a == o || b == o; };
    if (has(MemOrder::SeqCst))
        return MemOrder::SeqCst;
    if (has(MemOrder::AcqRel))
        return MemOrder::AcqRel;
    bool acq = has(MemOrder::Acquire);
    bool rel = has(MemOrder::Release);
    bool cns = has(MemOrder::Consume);
    if ((acq || cns) && rel)
        return MemOrder::AcqRel;
    if (acq)
        return MemOrder::Acquire;
    if (rel)
        return MemOrder::Release;
    if (cns)
        return MemOrder::Consume;
    return MemOrder::Plain;
}

/** The write paired with rmw read @p r, or -1. */
int
rmwPartner(const LitmusTest &test, size_t r)
{
    for (size_t j = 0; j < test.size(); j++) {
        if (test.rmw.test(r, j))
            return static_cast<int>(j);
    }
    return -1;
}

bool
isRmwWrite(const LitmusTest &test, size_t w)
{
    for (size_t i = 0; i < test.size(); i++) {
        if (test.rmw.test(i, w))
            return true;
    }
    return false;
}

bool
isRmwHalf(const LitmusTest &test, size_t e)
{
    return isRmwWrite(test, e) ||
           (test.events[e].isRead() && rmwPartner(test, e) >= 0);
}

/**
 * Deps whose target is half of an RMW pair collapse onto the single
 * exchange call in the surface syntax, so the exact edges must travel as
 * metadata.
 */
bool
hasAmbiguousDeps(const LitmusTest &test)
{
    BitMatrix deps = test.depMatrix();
    for (size_t i = 0; i < test.size(); i++) {
        for (size_t j = 0; j < test.size(); j++) {
            if (deps.test(i, j) && isRmwHalf(test, j))
                return true;
        }
    }
    return false;
}

/** Per-event register names: global r0, r1, ... over reads in id order. */
std::vector<std::string>
cRegNames(const LitmusTest &test)
{
    std::vector<std::string> names(test.size());
    int k = 0;
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].isRead())
            names[i] = "r" + std::to_string(k++);
    }
    return names;
}

std::vector<int>
writesPerLoc(const LitmusTest &test)
{
    std::vector<int> count(test.numLocs, 0);
    for (const auto &e : test.events) {
        if (e.isWrite())
            count[e.loc]++;
    }
    return count;
}

/**
 * The final-state condition: one register conjunct per read plus one
 * final-memory conjunct per multiply-written location. Together with the
 * co-position write values this pins rf and co exactly.
 */
std::string
conditionString(const LitmusTest &test, const std::vector<std::string> &regs)
{
    auto rv = test.registerValues(test.forbidden);
    auto fv = test.finalValues(test.forbidden);
    std::vector<std::string> conj;
    for (size_t i = 0; i < test.size(); i++) {
        if (!test.events[i].isRead())
            continue;
        conj.push_back(std::to_string(test.events[i].tid) + ":" + regs[i] +
                       "=" + std::to_string(rv[i]));
    }
    auto wcount = writesPerLoc(test);
    for (int loc = 0; loc < test.numLocs; loc++) {
        if (wcount[loc] >= 2)
            conj.push_back(herdLocName(loc) + "=" + std::to_string(fv[loc]));
    }
    if (conj.empty())
        conj.push_back("true");
    return "exists (" + join(conj, " /\\ ") + ")";
}

/** LTS-* metadata lines for relations the surface syntax cannot carry. */
void
emitMetadata(std::ostream &out, const LitmusTest &test)
{
    std::vector<std::string> scopes;
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].scope != Scope::System) {
            scopes.push_back(std::to_string(i) + ":" +
                             toString(test.events[i].scope));
        }
    }
    if (!scopes.empty())
        out << "LTS-Scopes=" << join(scopes, " ") << "\n";
    if (test.hasWorkgroups()) {
        out << "LTS-Wg=";
        for (int t = 0; t < test.numThreads; t++)
            out << (t ? " " : "") << test.workgroupOf(t);
        out << "\n";
    }
    std::vector<std::string> split_rmw;
    for (size_t i = 0; i < test.size(); i++) {
        if (!test.events[i].isRead())
            continue;
        int w = rmwPartner(test, i);
        if (w >= 0 && test.events[i].order != test.events[w].order) {
            split_rmw.push_back(std::to_string(i) + ":" +
                                shortOrderToken(test.events[i].order) + ":" +
                                shortOrderToken(test.events[w].order));
        }
    }
    if (!split_rmw.empty())
        out << "LTS-RmwOrders=" << join(split_rmw, " ") << "\n";
    if (hasAmbiguousDeps(test)) {
        std::vector<std::string> deps;
        auto add = [&](const BitMatrix &m, const char *kind) {
            for (size_t i = 0; i < test.size(); i++) {
                for (size_t j = 0; j < test.size(); j++) {
                    if (m.test(i, j)) {
                        deps.push_back(std::string(kind) + ":" +
                                       std::to_string(i) + ">" +
                                       std::to_string(j));
                    }
                }
            }
        };
        add(test.addrDep, "a");
        add(test.dataDep, "d");
        add(test.ctrlDep, "c");
        out << "LTS-Deps=" << join(deps, " ") << "\n";
    }
}

// ---------------------------------------------------------------------------
// X86 dialect emission
// ---------------------------------------------------------------------------

/**
 * True iff @p test is a program x86 mnemonics can spell: plain loads and
 * stores, SC fences, plain XCHG pairs, no deps/scopes/workgroups, and at
 * most six reads per thread (one general-purpose register each).
 */
bool
x86Expressible(const LitmusTest &test)
{
    if (test.hasWorkgroups() || test.depMatrix().any())
        return false;
    std::vector<int> reads_per_thread(test.numThreads, 0);
    for (size_t i = 0; i < test.size(); i++) {
        const Event &e = test.events[i];
        if (e.scope != Scope::System)
            return false;
        switch (e.type) {
          case EventType::Fence:
            if (e.order != MemOrder::SeqCst)
                return false;
            break;
          case EventType::Read:
          case EventType::Write:
            if (e.order != MemOrder::Plain)
                return false;
            if (e.isRead())
                reads_per_thread[e.tid]++;
            break;
        }
    }
    for (int n : reads_per_thread) {
        if (n > static_cast<int>(kNumX86Regs))
            return false;
    }
    return true;
}

std::string
writeX86(const LitmusTest &test)
{
    auto values = herdWriteValues(test);
    std::vector<std::string> regs(test.size());
    {
        std::vector<int> next(test.numThreads, 0);
        for (size_t i = 0; i < test.size(); i++) {
            if (test.events[i].isRead())
                regs[i] = kX86Regs[next[test.events[i].tid]++];
        }
    }

    std::vector<std::vector<std::string>> cols(test.numThreads);
    for (int t = 0; t < test.numThreads; t++) {
        for (int id : test.threadEvents(t)) {
            const Event &e = test.events[id];
            std::string loc = e.isMemory() ? herdLocName(e.loc) : "";
            switch (e.type) {
              case EventType::Fence:
                cols[t].push_back("MFENCE");
                break;
              case EventType::Write:
                if (isRmwWrite(test, id))
                    break; // emitted with its paired read
                cols[t].push_back("MOV [" + loc + "],$" +
                                  std::to_string(values[id]));
                break;
              case EventType::Read: {
                int w = rmwPartner(test, id);
                if (w >= 0) {
                    cols[t].push_back("MOV " + regs[id] + ",$" +
                                      std::to_string(values[w]));
                    cols[t].push_back("XCHG [" + loc + "]," + regs[id]);
                } else {
                    cols[t].push_back("MOV " + regs[id] + ",[" + loc + "]");
                }
                break;
              }
            }
        }
    }

    std::ostringstream out;
    out << "X86 " << (test.name.empty() ? "unnamed" : test.name) << "\n";
    emitMetadata(out, test); // expressibility keeps this empty in practice
    out << "{";
    for (int loc = 0; loc < test.numLocs; loc++)
        out << " " << herdLocName(loc) << "=0;";
    out << " }\n";

    size_t rows = 0;
    std::vector<size_t> width(test.numThreads);
    for (int t = 0; t < test.numThreads; t++) {
        width[t] = std::string("P" + std::to_string(t)).size();
        rows = std::max(rows, cols[t].size());
        for (const auto &cell : cols[t])
            width[t] = std::max(width[t], cell.size());
    }
    auto emitRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (int t = 0; t < test.numThreads; t++) {
            line += " " + padRight(cells[t], width[t]);
            line += t + 1 < test.numThreads ? " |" : " ;";
        }
        out << line << "\n";
    };
    std::vector<std::string> cells(test.numThreads);
    for (int t = 0; t < test.numThreads; t++)
        cells[t] = "P" + std::to_string(t);
    emitRow(cells);
    for (size_t r = 0; r < rows; r++) {
        for (int t = 0; t < test.numThreads; t++)
            cells[t] = r < cols[t].size() ? cols[t][r] : "";
        emitRow(cells);
    }
    if (test.hasForbidden)
        out << conditionString(test, regs) << "\n";
    return out.str();
}

// ---------------------------------------------------------------------------
// C dialect emission
// ---------------------------------------------------------------------------

std::string
writeC(const LitmusTest &test)
{
    auto values = herdWriteValues(test);
    auto regs = cRegNames(test);

    // When any dependency targets an RMW half, the whole dep picture
    // moves to LTS-Deps metadata (which the parser takes as-is, ignoring
    // surface idioms), so emit none of the idioms: an exchange's own
    // address/value expressions cannot mention the register it defines.
    const bool surface_deps = !hasAmbiguousDeps(test);

    // Unique, sorted dependency sources feeding the listed targets.
    auto depSources = [&](const BitMatrix &m, std::vector<int> targets) {
        std::vector<int> out;
        if (!surface_deps)
            return out;
        for (size_t i = 0; i < test.size(); i++) {
            for (int j : targets) {
                if (m.test(i, j)) {
                    out.push_back(static_cast<int>(i));
                    break;
                }
            }
        }
        return out;
    };
    auto depSuffix = [&](const std::vector<int> &sources) {
        std::string s;
        for (int i : sources)
            s += " + (" + regs[i] + " ^ " + regs[i] + ")";
        return s;
    };
    auto guardPrefix = [&](const std::vector<int> &sources) {
        std::string s;
        for (int i : sources)
            s += "if (" + regs[i] + " >= 0) ";
        return s;
    };

    std::ostringstream out;
    out << "C " << (test.name.empty() ? "unnamed" : test.name) << "\n";
    emitMetadata(out, test);
    out << "{";
    for (int loc = 0; loc < test.numLocs; loc++)
        out << " " << herdLocName(loc) << "=0;";
    out << " }\n";

    std::string params;
    for (int loc = 0; loc < test.numLocs; loc++) {
        params += loc ? ", " : "";
        params += "atomic_int* " + herdLocName(loc);
    }

    for (int t = 0; t < test.numThreads; t++) {
        out << "\nP" << t << " (" << params << ") {\n";
        for (int id : test.threadEvents(t)) {
            const Event &e = test.events[id];
            if (e.isWrite() && isRmwWrite(test, id))
                continue; // emitted with its paired read
            std::string stmt;
            if (e.isFence()) {
                stmt = guardPrefix(depSources(test.ctrlDep, {id})) +
                       "atomic_thread_fence(" + cOrderName(e.order) + ");";
            } else if (e.isWrite()) {
                std::string addr = herdLocName(e.loc) +
                                   depSuffix(depSources(test.addrDep, {id}));
                std::string val = std::to_string(values[id]) +
                                  depSuffix(depSources(test.dataDep, {id}));
                stmt = guardPrefix(depSources(test.ctrlDep, {id})) +
                       "atomic_store_explicit(" + addr + ", " + val + ", " +
                       cOrderName(e.order) + ");";
            } else {
                int w = rmwPartner(test, id);
                std::vector<int> halves = w >= 0 ? std::vector<int>{id, w}
                                                 : std::vector<int>{id};
                std::string addr =
                    herdLocName(e.loc) +
                    depSuffix(depSources(test.addrDep, halves));
                std::string guards = guardPrefix(
                    depSources(test.ctrlDep, halves));
                std::string core;
                if (w >= 0) {
                    std::string val =
                        std::to_string(values[w]) +
                        depSuffix(depSources(test.dataDep, {w}));
                    core = regs[id] + " = atomic_exchange_explicit(" + addr +
                           ", " + val + ", " +
                           cOrderName(joinOrders(e.order,
                                                 test.events[w].order)) +
                           ");";
                } else {
                    core = regs[id] + " = atomic_load_explicit(" + addr +
                           ", " + cOrderName(e.order) + ");";
                }
                stmt = guards.empty()
                           ? "int " + core
                           : "int " + regs[id] + " = 0; " + guards + core;
            }
            out << "    " << stmt << "\n";
        }
        out << "}\n";
    }
    if (test.hasForbidden)
        out << "\n" << conditionString(test, regs) << "\n";
    return out.str();
}

} // namespace

std::string
herdLocName(int loc)
{
    static const char *const names[] = {"x", "y", "z", "w", "a", "b",
                                        "c", "d"};
    if (loc < static_cast<int>(sizeof(names) / sizeof(names[0])))
        return names[loc];
    return "v" + std::to_string(loc);
}

std::vector<int>
herdWriteValues(const LitmusTest &test)
{
    if (test.hasForbidden)
        return test.writeValues(test.forbidden);
    // No outcome to encode: any distinct-per-location scheme round-trips;
    // declaration order is the deterministic choice.
    std::vector<int> values(test.size(), -1);
    std::vector<int> next(test.numLocs, 1);
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].isWrite())
            values[i] = next[test.events[i].loc]++;
    }
    return values;
}

HerdDialect
herdDialectFor(const LitmusTest &test, const std::string &model_name)
{
    if (model_name == "tso" && x86Expressible(test))
        return HerdDialect::X86;
    return HerdDialect::C;
}

std::string
writeHerd(const LitmusTest &test, const HerdOptions &options)
{
    HerdDialect dialect = options.dialect
                              ? *options.dialect
                              : herdDialectFor(test, options.modelName);
    if (dialect == HerdDialect::X86)
        return writeX86(test);
    return writeC(test);
}

std::string
sanitizeTestName(const std::string &name)
{
    std::string out;
    for (char ch : name) {
        if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '-')
            out += ch;
        else if (!out.empty() && out.back() != '_')
            out += '_';
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out.empty() ? "test" : out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isIdentifier(const std::string &s)
{
    if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    for (char ch : s) {
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_')
            return false;
    }
    return true;
}

/** Split at top-level (outside parentheses) occurrences of @p sep. */
std::vector<std::string>
splitTopLevel(const std::string &s, char sep)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char ch : s) {
        if (ch == '(')
            depth++;
        else if (ch == ')')
            depth--;
        if (ch == sep && depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    out.push_back(cur);
    return out;
}

class HerdParser
{
  public:
    explicit HerdParser(std::istream &in) : reader(in) {}

    LitmusTest parse();

  private:
    struct PRead
    {
        int b; ///< builder event id
        int tid;
        std::string loc;
        std::string reg;
    };
    struct PWrite
    {
        int b;
        std::string loc;
        int value;
    };

    // --- phases
    SourceLine parseTitle(bool &is_c);
    void parseMetaAndInit(bool is_c);
    void parseX86Body();
    void parseCBody();
    void parseCStatement(int tid, const SourceLine &at);
    void parseCondition(const SourceLine &at, const std::string &text);
    LitmusTest assemble(const SourceLine &title, const std::string &name);

    // --- helpers
    bool nextContent(SourceLine &out);
    void pushBack(const SourceLine &line) { stash.push_back(line); }
    int lookupReg(const SourceLine &at, int tid, const std::string &reg);
    MemOrder orderArg(const SourceLine &at, const std::string &s);
    std::pair<std::string, std::vector<int>>
    addrArg(const SourceLine &at, int tid, const std::string &s);
    std::pair<int, std::vector<int>>
    valueArg(const SourceLine &at, int tid, const std::string &s);

    LineReader reader;
    std::vector<SourceLine> stash; ///< pushed-back lookahead lines
    TestBuilder builder;

    std::map<std::string, SourceLine> meta;
    std::vector<PRead> reads;
    std::vector<PWrite> writes;
    std::map<std::pair<int, std::string>, int> regReads;
    std::vector<std::pair<int, int>> surfAddr, surfData, surfCtrl;
    std::map<int, std::pair<MemOrder, MemOrder>> rmwOrderOverride;
    int numThreads = 0;
    int eventCount = 0; ///< builder events created so far

    bool cond_seen = false;
    SourceLine cond_line;
    std::map<std::pair<int, std::string>, int> regCond;
    std::map<std::string, int> finalCond;
};

bool
HerdParser::nextContent(SourceLine &out)
{
    while (true) {
        std::string line;
        if (!stash.empty()) {
            out = stash.back();
            stash.pop_back();
        } else if (reader.next(line)) {
            out = reader.here(line);
        } else {
            return false;
        }
        std::string s = trim(out.text);
        if (startsWith(s, "(*")) {
            // herd block comment; may span lines. Stashed lines never
            // open one, so draining the reader here is safe.
            while (s.find("*)") == std::string::npos) {
                if (!reader.next(line))
                    return false;
                s = line;
            }
            continue;
        }
        if (s.empty() || s[0] == '"')
            continue; // blank or doc string
        out.text = s;
        return true;
    }
}

SourceLine
HerdParser::parseTitle(bool &is_c)
{
    SourceLine title;
    if (!nextContent(title))
        reader.fail("empty litmus file");
    size_t sp = title.text.find(' ');
    std::string arch = sp == std::string::npos ? title.text
                                               : title.text.substr(0, sp);
    if (arch == "X86")
        is_c = false;
    else if (arch == "C")
        is_c = true;
    else
        reader.failAt(title, "unsupported architecture '" + arch + "'");
    return title;
}

void
HerdParser::parseMetaAndInit(bool is_c)
{
    // Metadata lines (Key=Value, ignored by herd7) up to the init block.
    SourceLine line;
    while (true) {
        if (!nextContent(line))
            reader.fail("missing init block '{ ... }'");
        if (line.text[0] == '{')
            break;
        size_t eq = line.text.find('=');
        if (eq == std::string::npos || line.text.find(' ') < eq) {
            reader.failAt(line,
                          "expected metadata or the init block '{ ... }'");
        }
        std::string key = line.text.substr(0, eq);
        if (startsWith(key, "LTS-")) {
            if (!is_c) {
                reader.failAt(line, "LTS-* metadata is only supported in "
                                    "the C dialect");
            }
            meta[key] = SourceLine{line.number, trim(line.text.substr(eq + 1))};
        }
        // Other generators' metadata (Generator=..., Hash=...) is skipped.
    }

    // Init block, possibly spanning lines: { x=0; y=0; }
    std::string body = line.text.substr(1);
    SourceLine at = line;
    while (body.find('}') == std::string::npos) {
        if (!nextContent(line))
            reader.failAt(at, "unterminated init block");
        body += " " + line.text;
    }
    size_t close = body.find('}');
    if (!trim(body.substr(close + 1)).empty())
        reader.failAt(at, "unexpected text after the init block");
    for (const auto &raw : split(body.substr(0, close), ';')) {
        std::string entry = trim(raw);
        if (entry.empty())
            continue;
        if (entry.find(':') != std::string::npos) {
            reader.failAt(at,
                          "register initialisation is not supported");
        }
        size_t e = entry.find('=');
        if (e == std::string::npos)
            reader.failAt(at, "init entry without '='");
        std::string lhs = trim(entry.substr(0, e));
        // Tolerate type prefixes ("atomic_int x") and brackets ("[x]").
        auto toks = split(lhs, ' ');
        std::string name = toks.empty() ? lhs : toks.back();
        if (!name.empty() && name.front() == '[' && name.back() == ']')
            name = trim(name.substr(1, name.size() - 2));
        if (!isIdentifier(name))
            reader.failAt(at, "bad location name '" + name + "'");
        int value = reader.parseInt(at, trim(entry.substr(e + 1)),
                                    "initial value");
        if (value != 0)
            reader.failAt(at, "nonzero initial values are not supported");
        builder.declareLoc(name);
    }
}

// --- X86 body -------------------------------------------------------------

void
HerdParser::parseX86Body()
{
    auto splitRow = [&](const SourceLine &at) {
        std::string s = at.text;
        if (!endsWith(s, ";"))
            reader.failAt(at, "instruction row must end with ';'");
        s = s.substr(0, s.size() - 1);
        std::vector<std::string> cells;
        for (const auto &c : split(s, '|', /*keep_empty=*/true))
            cells.push_back(trim(c));
        return cells;
    };

    SourceLine line;
    if (!nextContent(line))
        reader.fail("missing thread header row");
    auto headers = splitRow(line);
    for (size_t t = 0; t < headers.size(); t++) {
        if (headers[t] != "P" + std::to_string(t)) {
            reader.failAt(line, "bad thread header '" + headers[t] +
                                    "' (expected P" + std::to_string(t) +
                                    ")");
        }
        builder.newThread();
    }
    numThreads = static_cast<int>(headers.size());

    // MOV reg,$v setups awaiting their XCHG.
    std::map<std::pair<int, std::string>, std::pair<int, SourceLine>> setups;

    auto isImm = [](const std::string &s) {
        return !s.empty() && s[0] == '$';
    };
    auto isMem = [](const std::string &s) {
        return s.size() >= 2 && s.front() == '[' && s.back() == ']';
    };
    auto memLoc = [&](const SourceLine &at, const std::string &s) {
        std::string name = trim(s.substr(1, s.size() - 2));
        if (!isIdentifier(name))
            reader.failAt(at, "bad location '" + s + "'");
        return name;
    };

    while (nextContent(line)) {
        if (startsWith(line.text, "exists") ||
            startsWith(line.text, "~exists") ||
            startsWith(line.text, "forall") ||
            startsWith(line.text, "locations") ||
            startsWith(line.text, "filter")) {
            pushBack(line);
            break;
        }
        auto cells = splitRow(line);
        if (static_cast<int>(cells.size()) != numThreads) {
            reader.failAt(line, "row has " + std::to_string(cells.size()) +
                                    " columns, expected " +
                                    std::to_string(numThreads));
        }
        for (int t = 0; t < numThreads; t++) {
            const std::string &cell = cells[t];
            if (cell.empty())
                continue;
            size_t sp = cell.find(' ');
            std::string op = sp == std::string::npos ? cell
                                                     : cell.substr(0, sp);
            std::string rest =
                sp == std::string::npos ? "" : trim(cell.substr(sp));
            if (op == "MFENCE") {
                if (!rest.empty())
                    reader.failAt(line, "MFENCE takes no operands");
                builder.fence(t, MemOrder::SeqCst);
                eventCount++;
                continue;
            }
            auto ops = split(rest, ',');
            for (auto &o : ops)
                o = trim(o);
            if (op == "MOV") {
                if (ops.size() != 2)
                    reader.failAt(line, "MOV needs two operands");
                if (isMem(ops[0]) && isImm(ops[1])) {
                    std::string loc = memLoc(line, ops[0]);
                    int v = reader.parseInt(line, ops[1].substr(1),
                                            "store value");
                    int b = builder.write(t, loc, MemOrder::Plain);
                    eventCount++;
                    writes.push_back(PWrite{b, loc, v});
                } else if (!isMem(ops[0]) && isMem(ops[1])) {
                    std::string loc = memLoc(line, ops[1]);
                    int b = builder.read(t, loc, MemOrder::Plain);
                    eventCount++;
                    reads.push_back(PRead{b, t, loc, ops[0]});
                    regReads[{t, ops[0]}] = b;
                } else if (!isMem(ops[0]) && isImm(ops[1])) {
                    int v = reader.parseInt(line, ops[1].substr(1),
                                            "immediate");
                    auto key = std::make_pair(t, ops[0]);
                    if (setups.count(key)) {
                        reader.failAt(line, "register " + ops[0] +
                                                " set up twice before XCHG");
                    }
                    setups.emplace(key, std::make_pair(v, line));
                } else {
                    reader.failAt(line, "unsupported MOV form '" + cell +
                                            "'");
                }
            } else if (op == "XCHG") {
                if (ops.size() != 2 || !isMem(ops[0]) || isImm(ops[1]))
                    reader.failAt(line, "expected 'XCHG [loc],REG'");
                std::string loc = memLoc(line, ops[0]);
                auto key = std::make_pair(t, ops[1]);
                auto it = setups.find(key);
                if (it == setups.end()) {
                    reader.failAt(line, "XCHG without a preceding 'MOV " +
                                            ops[1] + ",$v' setup");
                }
                int v = it->second.first;
                setups.erase(it);
                int r = builder.read(t, loc, MemOrder::Plain);
                int w = builder.write(t, loc, MemOrder::Plain);
                eventCount += 2;
                builder.pairRmw(r, w);
                reads.push_back(PRead{r, t, loc, ops[1]});
                regReads[{t, ops[1]}] = r;
                writes.push_back(PWrite{w, loc, v});
            } else {
                reader.failAt(line, "unsupported instruction '" + op + "'");
            }
        }
    }
    if (!setups.empty()) {
        reader.failAt(setups.begin()->second.second,
                      "register setup without a following XCHG");
    }
}

// --- C body ---------------------------------------------------------------

int
HerdParser::lookupReg(const SourceLine &at, int tid, const std::string &reg)
{
    auto it = regReads.find({tid, reg});
    if (it == regReads.end()) {
        reader.failAt(at, "unknown register '" + reg +
                              "' in dependency expression");
    }
    return it->second;
}

MemOrder
HerdParser::orderArg(const SourceLine &at, const std::string &s)
{
    MemOrder order;
    if (!cOrderFromName(trim(s), order))
        reader.failAt(at, "bad memory order '" + trim(s) + "'");
    return order;
}

std::pair<std::string, std::vector<int>>
HerdParser::addrArg(const SourceLine &at, int tid, const std::string &s)
{
    auto pieces = splitTopLevel(s, '+');
    std::string loc = trim(pieces[0]);
    if (!isIdentifier(loc))
        reader.failAt(at, "bad address expression '" + trim(s) + "'");
    std::vector<int> dep_regs;
    for (size_t i = 1; i < pieces.size(); i++) {
        std::string p = trim(pieces[i]);
        if (p.size() < 2 || p.front() != '(' || p.back() != ')')
            reader.failAt(at, "bad dependency idiom '" + p + "'");
        auto halves = split(p.substr(1, p.size() - 2), '^');
        if (halves.size() != 2 || trim(halves[0]) != trim(halves[1]))
            reader.failAt(at, "bad dependency idiom '" + p + "'");
        dep_regs.push_back(lookupReg(at, tid, trim(halves[0])));
    }
    return {loc, dep_regs};
}

std::pair<int, std::vector<int>>
HerdParser::valueArg(const SourceLine &at, int tid, const std::string &s)
{
    auto pieces = splitTopLevel(s, '+');
    int value = reader.parseInt(at, trim(pieces[0]), "store value");
    std::vector<int> dep_regs;
    for (size_t i = 1; i < pieces.size(); i++) {
        std::string p = trim(pieces[i]);
        if (p.size() < 2 || p.front() != '(' || p.back() != ')')
            reader.failAt(at, "bad dependency idiom '" + p + "'");
        auto halves = split(p.substr(1, p.size() - 2), '^');
        if (halves.size() != 2 || trim(halves[0]) != trim(halves[1]))
            reader.failAt(at, "bad dependency idiom '" + p + "'");
        dep_regs.push_back(lookupReg(at, tid, trim(halves[0])));
    }
    return {value, dep_regs};
}

void
HerdParser::parseCStatement(int tid, const SourceLine &at)
{
    std::string s = at.text;

    // Optional guarded-read pre-declaration: "int rK = 0; ...".
    std::string predecl;
    if (startsWith(s, "int ")) {
        size_t semi = s.find(';');
        if (semi != std::string::npos && !trim(s.substr(semi + 1)).empty()) {
            auto toks = split(trim(s.substr(0, semi)), ' ');
            if (toks.size() == 4 && toks[0] == "int" && toks[2] == "=" &&
                toks[3] == "0" && isIdentifier(toks[1])) {
                predecl = toks[1];
                s = trim(s.substr(semi + 1));
            }
        }
    }

    // Control-dependency guards: "if (rK >= 0) ...".
    std::vector<std::string> guards;
    while (startsWith(s, "if ") || startsWith(s, "if(")) {
        size_t open = s.find('(');
        size_t close = s.find(')', open);
        if (close == std::string::npos)
            reader.failAt(at, "unterminated guard");
        auto toks = split(trim(s.substr(open + 1, close - open - 1)), ' ');
        if (toks.size() != 3 || toks[1] != ">=" || toks[2] != "0")
            reader.failAt(at, "unsupported guard (expected 'rK >= 0')");
        guards.push_back(toks[0]);
        s = trim(s.substr(close + 1));
    }

    if (s.empty() || s.back() != ';')
        reader.failAt(at, "statement must end with ';'");
    s = trim(s.substr(0, s.size() - 1));

    // Destructure an optional register assignment.
    std::string reg, rhs;
    if (!predecl.empty()) {
        size_t eq = s.find('=');
        if (eq == std::string::npos ||
            trim(s.substr(0, eq)) != predecl) {
            reader.failAt(at, "guarded statement must assign the "
                              "pre-declared register");
        }
        reg = predecl;
        rhs = trim(s.substr(eq + 1));
    } else if (startsWith(s, "int ")) {
        std::string rest = trim(s.substr(4));
        size_t eq = rest.find('=');
        if (eq == std::string::npos)
            reader.failAt(at, "declaration without '='");
        reg = trim(rest.substr(0, eq));
        if (!isIdentifier(reg))
            reader.failAt(at, "bad register name '" + reg + "'");
        rhs = trim(rest.substr(eq + 1));
    }

    auto ctrlInto = [&](int target) {
        for (const auto &g : guards)
            surfCtrl.emplace_back(lookupReg(at, tid, g), target);
    };

    if (!reg.empty()) {
        if (regReads.count({tid, reg}))
            reader.failAt(at, "register '" + reg + "' redeclared");
        // Plain dereference form: "int rK = *x".
        if (startsWith(rhs, "*")) {
            std::string loc = trim(rhs.substr(1));
            if (!isIdentifier(loc))
                reader.failAt(at, "bad dereference '" + rhs + "'");
            int b = builder.read(tid, loc, MemOrder::Plain);
            eventCount++;
            reads.push_back(PRead{b, tid, loc, reg});
            regReads[{tid, reg}] = b;
            ctrlInto(b);
            return;
        }
        size_t open = rhs.find('(');
        if (open == std::string::npos || rhs.back() != ')')
            reader.failAt(at, "unsupported expression '" + rhs + "'");
        std::string fn = trim(rhs.substr(0, open));
        auto args = splitTopLevel(
            rhs.substr(open + 1, rhs.size() - open - 2), ',');
        if (fn == "atomic_load_explicit" || fn == "atomic_load") {
            bool expl = fn == "atomic_load_explicit";
            if (args.size() != (expl ? 2u : 1u))
                reader.failAt(at, fn + " takes " +
                                      (expl ? "two arguments"
                                            : "one argument"));
            auto [loc, addr_regs] = addrArg(at, tid, args[0]);
            MemOrder mo = expl ? orderArg(at, args[1]) : MemOrder::SeqCst;
            int b = builder.read(tid, loc, mo);
            eventCount++;
            reads.push_back(PRead{b, tid, loc, reg});
            regReads[{tid, reg}] = b;
            for (int src : addr_regs)
                surfAddr.emplace_back(src, b);
            ctrlInto(b);
        } else if (fn == "atomic_exchange_explicit" ||
                   fn == "atomic_exchange") {
            bool expl = fn == "atomic_exchange_explicit";
            if (args.size() != (expl ? 3u : 2u))
                reader.failAt(at, fn + " takes " +
                                      (expl ? "three" : "two") +
                                      std::string(" arguments"));
            auto [loc, addr_regs] = addrArg(at, tid, args[0]);
            auto [value, data_regs] = valueArg(at, tid, args[1]);
            MemOrder mo = expl ? orderArg(at, args[2]) : MemOrder::SeqCst;
            // A split-order pair was exported with the joined order on
            // the call and the exact halves in LTS-RmwOrders, keyed by
            // the read's event id; builder ids equal final ids here
            // (threads parse in order), and the read about to be
            // created gets the next builder id.
            MemOrder ro = mo, wo = mo;
            auto it = rmwOrderOverride.find(eventCount);
            if (it != rmwOrderOverride.end()) {
                ro = it->second.first;
                wo = it->second.second;
            }
            int r = builder.read(tid, loc, ro);
            int w = builder.write(tid, loc, wo);
            eventCount += 2;
            builder.pairRmw(r, w);
            reads.push_back(PRead{r, tid, loc, reg});
            regReads[{tid, reg}] = r;
            writes.push_back(PWrite{w, loc, value});
            for (int src : addr_regs)
                surfAddr.emplace_back(src, r);
            for (int src : data_regs)
                surfData.emplace_back(src, w);
            ctrlInto(r);
            ctrlInto(w);
        } else {
            reader.failAt(at, "unsupported call '" + fn + "'");
        }
        return;
    }

    // Statement forms (no register produced).
    if (startsWith(s, "*")) {
        size_t eq = s.find('=');
        if (eq == std::string::npos)
            reader.failAt(at, "unsupported statement '" + s + "'");
        std::string loc = trim(s.substr(1, eq - 1));
        if (!isIdentifier(loc))
            reader.failAt(at, "bad dereference '*" + loc + "'");
        auto [value, data_regs] = valueArg(at, tid, s.substr(eq + 1));
        int b = builder.write(tid, loc, MemOrder::Plain);
        eventCount++;
        writes.push_back(PWrite{b, loc, value});
        for (int src : data_regs)
            surfData.emplace_back(src, b);
        ctrlInto(b);
        return;
    }
    size_t open = s.find('(');
    if (open == std::string::npos || s.back() != ')')
        reader.failAt(at, "unsupported statement '" + s + "'");
    std::string fn = trim(s.substr(0, open));
    auto args = splitTopLevel(s.substr(open + 1, s.size() - open - 2), ',');
    if (fn == "atomic_store_explicit" || fn == "atomic_store") {
        bool expl = fn == "atomic_store_explicit";
        if (args.size() != (expl ? 3u : 2u)) {
            reader.failAt(at, fn + " takes " + (expl ? "three" : "two") +
                                  std::string(" arguments"));
        }
        auto [loc, addr_regs] = addrArg(at, tid, args[0]);
        auto [value, data_regs] = valueArg(at, tid, args[1]);
        MemOrder mo = expl ? orderArg(at, args[2]) : MemOrder::SeqCst;
        int b = builder.write(tid, loc, mo);
        eventCount++;
        writes.push_back(PWrite{b, loc, value});
        for (int src : addr_regs)
            surfAddr.emplace_back(src, b);
        for (int src : data_regs)
            surfData.emplace_back(src, b);
        ctrlInto(b);
    } else if (fn == "atomic_thread_fence") {
        if (args.size() != 1)
            reader.failAt(at, "atomic_thread_fence takes one argument");
        int b = builder.fence(tid, orderArg(at, args[0]));
        eventCount++;
        ctrlInto(b);
    } else {
        reader.failAt(at, "unsupported statement '" + fn + "'");
    }
}

void
HerdParser::parseCBody()
{
    SourceLine line;
    while (nextContent(line)) {
        if (!startsWith(line.text, "P")) {
            pushBack(line);
            break;
        }
        size_t open = line.text.find('(');
        if (open == std::string::npos) {
            pushBack(line);
            break;
        }
        std::string pnum = trim(line.text.substr(1, open - 1));
        int declared = reader.parseInt(line, pnum, "thread id");
        int tid = builder.newThread();
        numThreads++;
        if (tid != declared) {
            reader.failAt(line, "threads must be declared densely in "
                                "order");
        }
        size_t close = line.text.find(')', open);
        if (close == std::string::npos ||
            trim(line.text.substr(close + 1)) != "{") {
            reader.failAt(line,
                          "expected 'P" + pnum + " (params) {'");
        }
        // Parameter list carries no information beyond the init block.
        while (true) {
            SourceLine stmt;
            if (!nextContent(stmt))
                reader.failAt(line, "unterminated thread body");
            if (stmt.text == "}")
                break;
            parseCStatement(tid, stmt);
        }
    }
}

// --- condition ------------------------------------------------------------

void
HerdParser::parseCondition(const SourceLine &at, const std::string &text)
{
    std::string c = trim(text);
    if (startsWith(c, "forall"))
        reader.failAt(at, "forall conditions are not supported");
    if (startsWith(c, "~exists"))
        c = trim(c.substr(7));
    else if (startsWith(c, "exists"))
        c = trim(c.substr(6));
    else
        reader.failAt(at, "expected an 'exists' or '~exists' condition");

    auto stripOuterParens = [](std::string s) {
        s = trim(s);
        while (s.size() >= 2 && s.front() == '(' && s.back() == ')') {
            int depth = 0;
            bool wraps = true;
            for (size_t i = 0; i + 1 < s.size(); i++) {
                depth += s[i] == '(' ? 1 : s[i] == ')' ? -1 : 0;
                if (depth == 0) {
                    wraps = false;
                    break;
                }
            }
            if (!wraps)
                break;
            s = trim(s.substr(1, s.size() - 2));
        }
        return s;
    };
    c = stripOuterParens(c);
    cond_seen = true;
    cond_line = at;
    if (c == "true")
        return;
    if (c.find("\\/") != std::string::npos)
        reader.failAt(at, "disjunctive conditions are not supported");

    // Split on top-level /\ connectives.
    std::vector<std::string> conjuncts;
    {
        int depth = 0;
        std::string cur;
        for (size_t i = 0; i < c.size(); i++) {
            if (c[i] == '(')
                depth++;
            else if (c[i] == ')')
                depth--;
            if (depth == 0 && c[i] == '/' && i + 1 < c.size() &&
                c[i + 1] == '\\') {
                conjuncts.push_back(cur);
                cur.clear();
                i++;
            } else {
                cur += c[i];
            }
        }
        conjuncts.push_back(cur);
    }

    for (const auto &raw : conjuncts) {
        std::string part = stripOuterParens(raw);
        if (part == "true")
            continue;
        size_t eq = part.find('=');
        if (eq == std::string::npos)
            reader.failAt(at, "bad condition conjunct '" + part + "'");
        std::string lhs = trim(part.substr(0, eq));
        int value = reader.parseInt(at, trim(part.substr(eq + 1)),
                                    "condition value");
        size_t colon = lhs.find(':');
        if (colon != std::string::npos) {
            int tid = reader.parseInt(at, trim(lhs.substr(0, colon)),
                                      "thread id");
            std::string reg = trim(lhs.substr(colon + 1));
            auto key = std::make_pair(tid, reg);
            auto it = regCond.find(key);
            if (it != regCond.end() && it->second != value) {
                reader.failAt(at, "contradictory values for " + lhs);
            }
            regCond[key] = value;
        } else {
            if (!lhs.empty() && lhs.front() == '[' && lhs.back() == ']')
                lhs = trim(lhs.substr(1, lhs.size() - 2));
            if (!isIdentifier(lhs))
                reader.failAt(at, "bad condition conjunct '" + part + "'");
            auto it = finalCond.find(lhs);
            if (it != finalCond.end() && it->second != value)
                reader.failAt(at, "contradictory values for " + lhs);
            finalCond[lhs] = value;
        }
    }
}

// --- assembly -------------------------------------------------------------

LitmusTest
HerdParser::assemble(const SourceLine &title, const std::string &name)
{
    // Workgroups.
    if (auto it = meta.find("LTS-Wg"); it != meta.end()) {
        auto labels = split(it->second.text, ' ');
        for (size_t t = 0; t < labels.size(); t++) {
            int wg = reader.parseInt(it->second, labels[t],
                                     "workgroup label");
            try {
                builder.setWorkgroup(static_cast<int>(t), wg);
            } catch (const std::out_of_range &) {
                reader.failAt(it->second, "workgroup list names more "
                                          "threads than declared");
            }
        }
    }
    // Scopes (event ids in these entries are final ids; the C dialect's
    // thread-major parse makes builder ids coincide with them).
    if (auto it = meta.find("LTS-Scopes"); it != meta.end()) {
        for (const auto &entry : split(it->second.text, ' ')) {
            size_t colon = entry.find(':');
            if (colon == std::string::npos)
                reader.failAt(it->second, "bad scope entry '" + entry + "'");
            int ev = reader.parseInt(it->second, entry.substr(0, colon),
                                     "event id");
            Scope scope;
            if (!scopeFromToken(entry.substr(colon + 1), scope))
                reader.failAt(it->second, "bad scope entry '" + entry + "'");
            try {
                builder.setScope(ev, scope);
            } catch (const std::out_of_range &) {
                reader.failAt(it->second,
                              "scope entry names an unknown event");
            }
        }
    }
    // Dependencies: authoritative metadata replaces the surface idioms
    // when present (deps onto RMW halves are ambiguous in the surface).
    if (auto it = meta.find("LTS-Deps"); it != meta.end()) {
        for (const auto &entry : split(it->second.text, ' ')) {
            size_t colon = entry.find(':');
            size_t gt = entry.find('>');
            if (colon != 1 || gt == std::string::npos || gt < colon)
                reader.failAt(it->second, "bad dep entry '" + entry + "'");
            int from = reader.parseInt(
                it->second, entry.substr(2, gt - 2), "event id");
            int to = reader.parseInt(it->second, entry.substr(gt + 1),
                                     "event id");
            switch (entry[0]) {
              case 'a': builder.addrDepend(from, to); break;
              case 'd': builder.dataDepend(from, to); break;
              case 'c': builder.ctrlDepend(from, to); break;
              default:
                reader.failAt(it->second, "bad dep entry '" + entry + "'");
            }
        }
    } else {
        for (auto [a, b] : surfAddr)
            builder.addrDepend(a, b);
        for (auto [a, b] : surfData)
            builder.dataDepend(a, b);
        for (auto [a, b] : surfCtrl)
            builder.ctrlDepend(a, b);
    }

    if (cond_seen) {
        builder.markForbidden();
        // rf: register values name the sourcing write (by stored value).
        for (const auto &pr : reads) {
            auto it = regCond.find({pr.tid, pr.reg});
            if (it == regCond.end())
                continue; // unmentioned reads observe the initial value
            int value = it->second;
            regCond.erase(it);
            if (value == 0) {
                builder.readsInitial(pr.b);
                continue;
            }
            const PWrite *source = nullptr;
            for (const auto &pw : writes) {
                if (pw.loc == pr.loc && pw.value == value) {
                    if (source) {
                        reader.failAt(cond_line,
                                      "writes to '" + pr.loc +
                                          "' store duplicate values; the "
                                          "condition is ambiguous");
                    }
                    source = &pw;
                }
            }
            if (!source) {
                reader.failAt(cond_line,
                              "condition value " + std::to_string(value) +
                                  " has no matching write to '" + pr.loc +
                                  "'");
            }
            builder.readsFrom(source->b, pr.b);
        }
        for (const auto &[key, value] : regCond) {
            reader.failAt(cond_line,
                          "condition names unknown register '" +
                              std::to_string(key.first) + ":" + key.second +
                              "'");
        }
        // co: ascending stored values, with the location's final value
        // (when the condition pins one) moved last.
        std::map<std::string, std::vector<const PWrite *>> by_loc;
        for (const auto &pw : writes)
            by_loc[pw.loc].push_back(&pw);
        for (auto &[loc, group] : by_loc) {
            std::sort(group.begin(), group.end(),
                      [](const PWrite *a, const PWrite *b) {
                          return a->value < b->value;
                      });
            for (size_t i = 0; i + 1 < group.size(); i++) {
                if (group[i]->value == group[i + 1]->value) {
                    reader.failAt(cond_line,
                                  "writes to '" + loc +
                                      "' store duplicate values; "
                                      "coherence is ambiguous");
                }
            }
            if (auto it = finalCond.find(loc); it != finalCond.end()) {
                int value = it->second;
                finalCond.erase(it);
                auto match = std::find_if(
                    group.begin(), group.end(),
                    [&](const PWrite *w) { return w->value == value; });
                if (match == group.end()) {
                    reader.failAt(cond_line,
                                  "final value " + std::to_string(value) +
                                      " has no matching write to '" + loc +
                                      "'");
                }
                std::rotate(match, match + 1, group.end());
            }
            for (size_t i = 0; i + 1 < group.size(); i++)
                builder.coOrder(group[i]->b, group[i + 1]->b);
        }
        for (const auto &[loc, value] : finalCond) {
            if (value != 0) {
                reader.failAt(cond_line,
                              "final value for location '" + loc +
                                  "' which is never written");
            }
        }
    }

    try {
        return builder.build(name.empty() ? "unnamed" : name);
    } catch (const std::out_of_range &) {
        // Thrown by the builder's .at()-checked edge remapping.
        reader.failAt(title, "an edge names an event id outside the test");
    } catch (const std::logic_error &e) {
        reader.failAt(title, std::string("invalid test: ") + e.what());
    }
}

LitmusTest
HerdParser::parse()
{
    bool is_c = false;
    SourceLine title = parseTitle(is_c);
    std::string name;
    {
        size_t sp = title.text.find(' ');
        name = sp == std::string::npos ? "" : trim(title.text.substr(sp));
    }
    reader.setContext(name);
    parseMetaAndInit(is_c);

    // RMW order overrides must be known before events are created.
    if (auto it = meta.find("LTS-RmwOrders"); it != meta.end()) {
        for (const auto &entry : split(it->second.text, ' ')) {
            auto parts = split(entry, ':');
            MemOrder ro, wo;
            if (parts.size() != 3 || !shortOrderFromToken(parts[1], ro) ||
                !shortOrderFromToken(parts[2], wo)) {
                reader.failAt(it->second,
                              "bad rmw order entry '" + entry + "'");
            }
            rmwOrderOverride[reader.parseInt(it->second, parts[0],
                                             "event id")] = {ro, wo};
        }
    }

    if (is_c)
        parseCBody();
    else
        parseX86Body();
    if (numThreads == 0)
        reader.fail("test has no threads");

    // Trailer: skip herd auxiliaries, then the condition (if any).
    SourceLine line;
    while (nextContent(line)) {
        if (startsWith(line.text, "locations") ||
            startsWith(line.text, "filter")) {
            continue;
        }
        if (startsWith(line.text, "exists") ||
            startsWith(line.text, "~exists") ||
            startsWith(line.text, "forall")) {
            // Conditions may span lines; everything to EOF belongs to it.
            std::string text = line.text;
            SourceLine extra;
            while (nextContent(extra))
                text += " " + extra.text;
            parseCondition(line, text);
            break;
        }
        reader.failAt(line, "unexpected line after the program body");
    }
    return assemble(title, name);
}

} // namespace

LitmusTest
parseHerd(std::istream &in)
{
    HerdParser parser(in);
    return parser.parse();
}

LitmusTest
parseHerd(const std::string &text)
{
    std::istringstream in(text);
    return parseHerd(in);
}

} // namespace lts::litmus
