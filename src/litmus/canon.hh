/**
 * @file
 * Litmus test canonicalizer (Section 5.1 of the paper).
 *
 * Naive enumeration produces many symmetric copies of each test — thread
 * order and address naming are arbitrary (Figure 9). The canonicalizer
 * maps every test to a single representative so that a suite keeps one
 * copy per symmetry class.
 *
 * Two modes are provided:
 *
 *  - Paper: the algorithm the paper describes — hash each thread with
 *    thread-local address renaming, sort threads by hash, then reassign
 *    addresses in sorted-sequential order. This reproduces the paper's
 *    acknowledged blind spot (Figure 14): the two WWC variants whose
 *    first two threads have identical load/store patterns hash equal,
 *    tie-break on input order, and thus fail to merge.
 *
 *  - Exact: brute-force minimization over all thread permutations (with
 *    deterministic address renaming per permutation), picking the
 *    lexicographically least serialization. This is the "enhanced
 *    canonicalizer" the paper leaves as future work; it merges WWC.
 */

#ifndef LTS_LITMUS_CANON_HH
#define LTS_LITMUS_CANON_HH

#include <cstdint>
#include <string>

#include "litmus/test.hh"

namespace lts::litmus
{

/** Which canonicalization algorithm to use. */
enum class CanonMode
{
    Paper,
    Exact,
};

/**
 * Return the canonical representative of @p test's symmetry class:
 * threads reordered, addresses renamed, events renumbered, and all
 * relations (including any forbidden outcome) remapped accordingly.
 */
LitmusTest canonicalize(const LitmusTest &test, CanonMode mode);

/**
 * Deterministic serialization of the *static* part of a test (events,
 * program order, locations, memory orders, scopes, dependencies, rmw).
 * Equal strings iff structurally identical tests.
 */
std::string staticSerialize(const LitmusTest &test);

/**
 * Serialization of static part plus the forbidden outcome; used when a
 * suite distinguishes same-program tests with different outcomes.
 */
std::string fullSerialize(const LitmusTest &test);

/** Stable hash of the canonical static serialization. */
uint64_t canonicalHash(const LitmusTest &test, CanonMode mode);

/**
 * Apply an explicit thread permutation: new thread t is old thread
 * @p thread_order[t]. Addresses are renamed in order of first use and
 * events renumbered; all relations are remapped.
 */
LitmusTest permuteThreads(const LitmusTest &test,
                          const std::vector<int> &thread_order);

} // namespace lts::litmus

#endif // LTS_LITMUS_CANON_HH
