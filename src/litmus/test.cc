#include "litmus/test.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace lts::litmus
{

std::vector<int>
LitmusTest::threadEvents(int tid) const
{
    std::vector<int> out;
    for (const auto &e : events) {
        if (e.tid == tid)
            out.push_back(e.id);
    }
    return out;
}

BitMatrix
LitmusTest::poMatrix() const
{
    BitMatrix po(size());
    for (size_t i = 0; i < size(); i++) {
        for (size_t j = i + 1; j < size(); j++) {
            if (events[i].tid == events[j].tid)
                po.set(i, j);
        }
    }
    return po;
}

BitMatrix
LitmusTest::sameLocMatrix() const
{
    BitMatrix m(size());
    for (size_t i = 0; i < size(); i++) {
        for (size_t j = 0; j < size(); j++) {
            if (events[i].isMemory() && events[j].isMemory() &&
                events[i].loc == events[j].loc) {
                m.set(i, j);
            }
        }
    }
    return m;
}

BitMatrix
LitmusTest::sameWgMatrix() const
{
    BitMatrix m(size());
    for (size_t i = 0; i < size(); i++) {
        for (size_t j = 0; j < size(); j++) {
            if (workgroupOf(events[i].tid) == workgroupOf(events[j].tid))
                m.set(i, j);
        }
    }
    return m;
}

BitMatrix
LitmusTest::depMatrix() const
{
    BitMatrix m = addrDep;
    m |= dataDep;
    m |= ctrlDep;
    return m;
}

std::string
LitmusTest::validate() const
{
    size_t n = size();
    // Event ids dense and in order.
    for (size_t i = 0; i < n; i++) {
        if (events[i].id != static_cast<int>(i))
            return "event ids not dense";
    }
    // Threads: contiguous blocks, ids 0..numThreads-1 in order.
    int cur = -1;
    for (const auto &e : events) {
        if (e.tid < cur)
            return "thread blocks not contiguous";
        if (e.tid > cur && e.tid != cur + 1)
            return "thread ids not dense";
        cur = std::max(cur, e.tid);
    }
    if (cur + 1 != numThreads)
        return "numThreads mismatch";
    if (!threadWg.empty() &&
        threadWg.size() != static_cast<size_t>(numThreads))
        return "threadWg size mismatch";
    // Locations dense; fences have no location.
    int max_loc = -1;
    for (const auto &e : events) {
        if (e.isFence() && e.loc != -1)
            return "fence with a location";
        if (e.isMemory()) {
            if (e.loc < 0)
                return "memory event without location";
            max_loc = std::max(max_loc, e.loc);
        }
    }
    if (max_loc + 1 > numLocs)
        return "numLocs mismatch";
    // Dependencies: Read -> po-later same-thread event.
    BitMatrix po = poMatrix();
    for (const auto *dep : {&addrDep, &dataDep, &ctrlDep}) {
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                if (!dep->test(i, j))
                    continue;
                if (!events[i].isRead())
                    return "dependency source is not a read";
                if (!po.test(i, j))
                    return "dependency target not po-later";
            }
        }
    }
    // RMW: read -> adjacent same-location write.
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++) {
            if (!rmw.test(i, j))
                continue;
            if (!events[i].isRead() || !events[j].isWrite())
                return "rmw must pair a read with a write";
            if (j != i + 1 || events[i].tid != events[j].tid)
                return "rmw pair must be po-adjacent";
            if (events[i].loc != events[j].loc)
                return "rmw pair must target one location";
        }
    }
    if (hasForbidden) {
        // rf: writes to reads, same location, at most one source per read.
        for (size_t j = 0; j < n; j++) {
            int sources = 0;
            for (size_t i = 0; i < n; i++) {
                if (!forbidden.rf.test(i, j))
                    continue;
                sources++;
                if (!events[i].isWrite() || !events[j].isRead())
                    return "rf must go from a write to a read";
                if (events[i].loc != events[j].loc)
                    return "rf endpoints disagree on location";
            }
            if (sources > 1)
                return "read with multiple rf sources";
        }
        // co: strict total order per location over writes.
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                if (!forbidden.co.test(i, j))
                    continue;
                if (!events[i].isWrite() || !events[j].isWrite())
                    return "co must relate writes";
                if (events[i].loc != events[j].loc)
                    return "co endpoints disagree on location";
            }
        }
        if (!forbidden.co.isAcyclic())
            return "cyclic co";
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                if (i != j && events[i].isWrite() && events[j].isWrite() &&
                    events[i].loc == events[j].loc &&
                    !forbidden.co.test(i, j) && !forbidden.co.test(j, i)) {
                    return "co not total over a location";
                }
            }
        }
    }
    return "";
}

std::vector<int>
LitmusTest::writeValues(const Outcome &outcome) const
{
    std::vector<int> values(size(), -1);
    for (size_t i = 0; i < size(); i++) {
        if (!events[i].isWrite())
            continue;
        int pos = 1;
        for (size_t j = 0; j < size(); j++) {
            if (outcome.co.test(j, i))
                pos++;
        }
        values[i] = pos;
    }
    return values;
}

std::vector<int>
LitmusTest::registerValues(const Outcome &outcome) const
{
    std::vector<int> wv = writeValues(outcome);
    std::vector<int> values(size(), -1);
    for (size_t j = 0; j < size(); j++) {
        if (!events[j].isRead())
            continue;
        values[j] = 0; // initial value unless an rf edge says otherwise
        for (size_t i = 0; i < size(); i++) {
            if (outcome.rf.test(i, j))
                values[j] = wv[i];
        }
    }
    return values;
}

std::vector<int>
LitmusTest::finalValues(const Outcome &outcome) const
{
    std::vector<int> wv = writeValues(outcome);
    std::vector<int> finals(numLocs, 0);
    for (size_t i = 0; i < size(); i++) {
        if (!events[i].isWrite())
            continue;
        bool is_last = true;
        for (size_t j = 0; j < size(); j++) {
            if (outcome.co.test(i, j))
                is_last = false;
        }
        if (is_last)
            finals[events[i].loc] = wv[i];
    }
    return finals;
}

// ---------------------------------------------------------------------------
// TestBuilder
// ---------------------------------------------------------------------------

int
TestBuilder::newThread()
{
    workgroups.push_back(-1);
    return threads++;
}

int
TestBuilder::declareLoc(const std::string &loc)
{
    return locId(loc);
}

void
TestBuilder::setWorkgroup(int tid, int wg)
{
    workgroups.at(tid) = wg;
}

void
TestBuilder::setScope(int ev, Scope scope)
{
    pending.at(ev).scope = scope;
}

int
TestBuilder::locId(const std::string &loc)
{
    for (size_t i = 0; i < locNames.size(); i++) {
        if (locNames[i] == loc)
            return static_cast<int>(i);
    }
    locNames.push_back(loc);
    return static_cast<int>(locNames.size()) - 1;
}

int
TestBuilder::read(int tid, const std::string &loc, MemOrder order)
{
    pending.push_back(PendingEvent{tid, EventType::Read, locId(loc), order});
    return static_cast<int>(pending.size()) - 1;
}

int
TestBuilder::write(int tid, const std::string &loc, MemOrder order)
{
    pending.push_back(PendingEvent{tid, EventType::Write, locId(loc), order});
    return static_cast<int>(pending.size()) - 1;
}

int
TestBuilder::fence(int tid, MemOrder order)
{
    pending.push_back(PendingEvent{tid, EventType::Fence, -1, order});
    return static_cast<int>(pending.size()) - 1;
}

void
TestBuilder::addrDepend(int from, int to)
{
    addrDeps.emplace_back(from, to);
}

void
TestBuilder::dataDepend(int from, int to)
{
    dataDeps.emplace_back(from, to);
}

void
TestBuilder::ctrlDepend(int from, int to)
{
    ctrlDeps.emplace_back(from, to);
}

void
TestBuilder::pairRmw(int r, int w)
{
    rmws.emplace_back(r, w);
}

void
TestBuilder::readsFrom(int w, int r)
{
    rfEdges.emplace_back(w, r);
}

void
TestBuilder::readsInitial(int r)
{
    initialReads.push_back(r);
}

void
TestBuilder::coOrder(int earlier, int later)
{
    coEdges.emplace_back(earlier, later);
}

void
TestBuilder::markForbidden()
{
    forceForbidden = true;
}

LitmusTest
TestBuilder::build(const std::string &name)
{
    size_t n = pending.size();
    // Renumber events so that each thread occupies a contiguous block,
    // preserving per-thread insertion order.
    std::vector<int> old_to_new(n);
    {
        int next = 0;
        for (int t = 0; t < threads; t++) {
            for (size_t i = 0; i < n; i++) {
                if (pending[i].tid == t)
                    old_to_new[i] = next++;
            }
        }
        if (next != static_cast<int>(n))
            throw std::logic_error("event with undeclared thread id");
    }

    LitmusTest test;
    test.name = name;
    test.numThreads = threads;
    test.numLocs = static_cast<int>(locNames.size());
    test.events.resize(n);
    for (size_t i = 0; i < n; i++) {
        Event e;
        e.id = old_to_new[i];
        e.tid = pending[i].tid;
        e.type = pending[i].type;
        e.loc = pending[i].loc;
        e.order = pending[i].order;
        e.scope = pending[i].scope;
        test.events[old_to_new[i]] = e;
    }

    // Workgroups: declared groups keep their sharing; undeclared threads
    // get fresh groups; labels renumber by first use; a trivial grouping
    // (no sharing) canonicalizes to the empty vector.
    bool any_wg = false;
    for (int wg : workgroups)
        any_wg = any_wg || wg >= 0;
    if (any_wg) {
        std::vector<int> assigned(threads, -1);
        std::map<int, int> label_map;
        int next_wg = 0;
        for (int t = 0; t < threads; t++) {
            if (workgroups[t] >= 0) {
                auto it = label_map.find(workgroups[t]);
                if (it == label_map.end())
                    it = label_map.emplace(workgroups[t], next_wg++).first;
                assigned[t] = it->second;
            } else {
                assigned[t] = next_wg++;
            }
        }
        test.threadWg = assigned;
        if (!test.hasWorkgroups())
            test.threadWg.clear();
    }

    test.addrDep = BitMatrix(n);
    test.dataDep = BitMatrix(n);
    test.ctrlDep = BitMatrix(n);
    test.rmw = BitMatrix(n);
    // .at() everywhere an edge endpoint indexes the remap: declared edges
    // come straight from parsers, and an out-of-range event id must
    // surface as a catchable error, not out-of-bounds vector access.
    for (auto [a, b] : addrDeps)
        test.addrDep.set(old_to_new.at(a), old_to_new.at(b));
    for (auto [a, b] : dataDeps)
        test.dataDep.set(old_to_new.at(a), old_to_new.at(b));
    for (auto [a, b] : ctrlDeps)
        test.ctrlDep.set(old_to_new.at(a), old_to_new.at(b));
    for (auto [a, b] : rmws)
        test.rmw.set(old_to_new.at(a), old_to_new.at(b));

    bool any_outcome = forceForbidden || !rfEdges.empty() ||
                       !coEdges.empty() || !initialReads.empty();
    test.forbidden = Outcome(n);
    if (any_outcome) {
        test.hasForbidden = true;
        for (auto [w, r] : rfEdges)
            test.forbidden.rf.set(old_to_new.at(w), old_to_new.at(r));

        // Complete co into a strict total order per location: respect the
        // declared edges, break ties by event id.
        BitMatrix declared(n);
        for (auto [a, b] : coEdges)
            declared.set(old_to_new.at(a), old_to_new.at(b));
        declared = declared.transitiveClosure();
        for (int loc = 0; loc < test.numLocs; loc++) {
            std::vector<int> writes;
            for (size_t i = 0; i < n; i++) {
                if (test.events[i].isWrite() &&
                    test.events[i].loc == loc) {
                    writes.push_back(static_cast<int>(i));
                }
            }
            // Topological completion: repeatedly take the smallest-id
            // write with no declared predecessor left (a stable_sort with
            // a partial order would not be a strict weak ordering).
            std::vector<int> ordered;
            std::vector<bool> taken(writes.size(), false);
            while (ordered.size() < writes.size()) {
                int pick = -1;
                for (size_t i = 0; i < writes.size(); i++) {
                    if (taken[i])
                        continue;
                    bool blocked = false;
                    for (size_t j = 0; j < writes.size(); j++) {
                        if (!taken[j] && j != i &&
                            declared.test(writes[j], writes[i])) {
                            blocked = true;
                            break;
                        }
                    }
                    if (!blocked) {
                        pick = static_cast<int>(i);
                        break;
                    }
                }
                if (pick < 0)
                    throw std::logic_error("cyclic co declared in test");
                taken[pick] = true;
                ordered.push_back(writes[pick]);
            }
            for (size_t i = 0; i < ordered.size(); i++) {
                for (size_t j = i + 1; j < ordered.size(); j++)
                    test.forbidden.co.set(ordered[i], ordered[j]);
            }
        }
    }

    std::string err = test.validate();
    if (!err.empty())
        throw std::logic_error("TestBuilder produced invalid test '" + name +
                               "': " + err);
    return test;
}

} // namespace lts::litmus
