#include "litmus/parse_util.hh"

#include <cctype>
#include <istream>
#include <stdexcept>

namespace lts::litmus
{

bool
LineReader::next(std::string &line)
{
    if (!std::getline(input, line))
        return false;
    line_no++;
    current = line;
    return true;
}

namespace
{

[[noreturn]] void
raise(int line_no, const std::string &context, const std::string &text,
      const std::string &why)
{
    std::string msg = "litmus parse error at line " + std::to_string(line_no);
    if (!context.empty())
        msg += ", test '" + context + "'";
    msg += ": " + why;
    if (!text.empty())
        msg += " in '" + text + "'";
    throw std::runtime_error(msg);
}

} // namespace

void
LineReader::fail(const std::string &why) const
{
    raise(line_no, context, current, why);
}

void
LineReader::failAt(const SourceLine &at, const std::string &why) const
{
    raise(at.number, context, at.text, why);
}

int
LineReader::parseInt(const SourceLine &at, const std::string &s,
                     const std::string &what) const
{
    if (s.empty())
        failAt(at, "missing " + what);
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            failAt(at, "bad " + what + " '" + s + "' (expected a number)");
    }
    try {
        return std::stoi(s);
    } catch (const std::exception &) {
        failAt(at, "bad " + what + " '" + s + "' (out of range)");
    }
}

} // namespace lts::litmus
