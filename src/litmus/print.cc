#include "litmus/print.hh"

#include <algorithm>

#include "common/strings.hh"

namespace lts::litmus
{

namespace
{

std::string
locName(int loc)
{
    static const char *names = "xyzwvut";
    if (loc >= 0 && loc < 7)
        return std::string(1, names[loc]);
    return "m" + std::to_string(loc);
}

/** Registers are numbered per test in event order. */
std::vector<int>
regNames(const LitmusTest &test)
{
    std::vector<int> regs(test.size(), -1);
    int next = 0;
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].isRead())
            regs[i] = next++;
    }
    return regs;
}

std::string
annot(const Event &e, const LitmusTest &test)
{
    std::string s = toString(e.order);
    std::string out = s.empty() ? "" : "." + s;
    if (e.scope != Scope::System)
        out += "@" + toString(e.scope);
    // Mark RMW halves.
    for (size_t j = 0; j < test.size(); j++) {
        if ((e.isRead() && test.rmw.test(e.id, j)) ||
            (e.isWrite() && test.rmw.test(j, e.id))) {
            out += ".rmw";
            break;
        }
    }
    return out;
}

} // namespace

std::string
eventToString(const LitmusTest &test, int event_id,
              const std::vector<int> &write_values,
              const std::vector<int> &reg_names)
{
    const Event &e = test.events[event_id];
    switch (e.type) {
      case EventType::Fence:
        return "Fence" + annot(e, test);
      case EventType::Read:
        return "Ld" + annot(e, test) + " r" +
               std::to_string(reg_names[event_id]) + " = [" +
               locName(e.loc) + "]";
      case EventType::Write: {
        int value = write_values.empty() ? 1 : write_values[event_id];
        return "St" + annot(e, test) + " [" + locName(e.loc) + "], " +
               std::to_string(value);
      }
    }
    return "?";
}

std::string
outcomeToString(const LitmusTest &test, const Outcome &outcome)
{
    std::vector<int> regs = regNames(test);
    std::vector<int> reg_values = test.registerValues(outcome);
    std::vector<int> finals = test.finalValues(outcome);

    std::vector<std::string> parts;
    for (size_t i = 0; i < test.size(); i++) {
        if (test.events[i].isRead()) {
            parts.push_back("r" + std::to_string(regs[i]) + "=" +
                            std::to_string(reg_values[i]));
        }
    }
    // Final values matter only for locations written more than once or
    // where they disambiguate; print them for every written location.
    std::vector<int> writes_per_loc(test.numLocs, 0);
    for (const auto &e : test.events) {
        if (e.isWrite())
            writes_per_loc[e.loc]++;
    }
    for (int loc = 0; loc < test.numLocs; loc++) {
        if (writes_per_loc[loc] >= 2) {
            parts.push_back("[" + locName(loc) + "]=" +
                            std::to_string(finals[loc]));
        }
    }
    return "(" + join(parts, ", ") + ")";
}

std::string
toString(const LitmusTest &test)
{
    std::vector<int> regs = regNames(test);
    std::vector<int> write_values(test.size(), 1);
    if (test.hasForbidden)
        write_values = test.writeValues(test.forbidden);
    else {
        // Without an outcome, number writes per location in event order.
        std::vector<int> next(test.numLocs, 1);
        for (size_t i = 0; i < test.size(); i++) {
            if (test.events[i].isWrite())
                write_values[i] = next[test.events[i].loc]++;
        }
    }

    // Build one instruction column per thread.
    std::vector<std::vector<std::string>> cols(test.numThreads);
    size_t rows = 0;
    for (int t = 0; t < test.numThreads; t++) {
        for (int id : test.threadEvents(t)) {
            std::string line = eventToString(test, id, write_values, regs);
            // Annotate outgoing dependencies inline.
            for (size_t j = 0; j < test.size(); j++) {
                if (test.addrDep.test(id, j))
                    line += " [addr->" + std::to_string(j) + "]";
                if (test.dataDep.test(id, j))
                    line += " [data->" + std::to_string(j) + "]";
                if (test.ctrlDep.test(id, j))
                    line += " [ctrl->" + std::to_string(j) + "]";
            }
            cols[t].push_back(line);
        }
        rows = std::max(rows, cols[t].size());
    }

    bool wg = test.hasWorkgroups();
    std::vector<std::string> headers;
    for (int t = 0; t < test.numThreads; t++) {
        std::string header = "Thread " + std::to_string(t);
        if (wg)
            header += " (wg" + std::to_string(test.workgroupOf(t)) + ")";
        headers.push_back(header);
    }

    size_t width = 8;
    for (const auto &header : headers)
        width = std::max(width, header.size());
    for (const auto &col : cols) {
        for (const auto &line : col)
            width = std::max(width, line.size());
    }

    std::string out;
    if (!test.name.empty())
        out += test.name + ":\n";
    for (int t = 0; t < test.numThreads; t++) {
        out += padRight(headers[t], width);
        out += (t + 1 < test.numThreads) ? " | " : "\n";
    }
    for (size_t row = 0; row < rows; row++) {
        for (int t = 0; t < test.numThreads; t++) {
            std::string cell =
                row < cols[t].size() ? cols[t][row] : std::string();
            out += padRight(cell, width);
            out += (t + 1 < test.numThreads) ? " | " : "\n";
        }
    }
    if (test.hasForbidden) {
        out += "Forbidden: " + outcomeToString(test, test.forbidden) + "\n";
    }
    return out;
}

std::string
summary(const LitmusTest &test)
{
    return std::to_string(test.numThreads) + " thr, " +
           std::to_string(test.size()) + " ev, " +
           std::to_string(test.numLocs) + " locs";
}

} // namespace lts::litmus
