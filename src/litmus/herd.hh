/**
 * @file
 * herd7-compatible `.litmus` export and ingest.
 *
 * The interchange format (format.hh) is ours; the `.litmus` format is the
 * field's. diy/litmus7/herd7 consume files shaped like
 *
 *     X86 SB
 *     { x=0; y=0; }
 *      P0          | P1          ;
 *      MOV [x],$1  | MOV [y],$1  ;
 *      MOV EAX,[y] | MOV EBX,[x] ;
 *     exists (0:EAX=0 /\ 1:EBX=0)
 *
 * and this module writes and reads them so synthesized suites can be
 * checked by herd7 against the published axiomatic models, run on real
 * hardware by litmus7, and — in the other direction — published suites
 * can be ingested for minimality/coverage audits (synth/minimality.hh).
 *
 * Two dialects are emitted:
 *
 *  - X86: x86 mnemonics (MOV/MFENCE/XCHG), used for TSO tests whose
 *    events an x86 program can express (plain accesses, SC fences,
 *    plain RMW pairs, no deps or scopes);
 *  - C: the C11-atomics litmus dialect herd7 accepts for any model
 *    (atomic_*_explicit + atomic_thread_fence), used everywhere else.
 *    Dependencies are expressed with the standard syntactic idioms
 *    (data: `v + (r0 ^ r0)`, address: `x + (r0 ^ r0)`, control:
 *    `if (r0 >= 0)`).
 *
 * Write values encode coherence: each write stores its 1-based position
 * in the forbidden outcome's per-location co order (declaration order
 * when the test has no forbidden outcome), so the final-state condition
 * derived from registerValues/finalValues pins the outcome, and ingest
 * can reconstruct rf (register value -> sourcing write) and co
 * (ascending stored values) exactly. Relations the surface syntax cannot
 * carry (scopes, workgroups, split RMW orders, deps on RMW halves)
 * travel as `LTS-*=` metadata lines, which herd7 tooling ignores.
 *
 * Tests without a forbidden outcome are emitted without a condition
 * line and ingest back as outcome-free — "no outcome" round-trips as
 * such rather than materializing an empty Outcome.
 */

#ifndef LTS_LITMUS_HERD_HH
#define LTS_LITMUS_HERD_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hh"

namespace lts::litmus
{

/** Instruction dialect of an emitted `.litmus` file. */
enum class HerdDialect
{
    X86, ///< x86 mnemonics (arch header "X86")
    C,   ///< C11-atomics litmus dialect (arch header "C")
};

/** Export knobs. */
struct HerdOptions
{
    /** Force a dialect; unset picks via herdDialectFor. */
    std::optional<HerdDialect> dialect;

    /**
     * Model the suite was synthesized for ("tso", "power", ...). Only
     * used by dialect auto-selection: tso tests prefer X86 when
     * expressible; everything else uses C.
     */
    std::string modelName;
};

/**
 * The dialect @p test would be exported in for @p model_name: X86 iff
 * the model is tso and every event is expressible in x86 mnemonics,
 * else C.
 */
HerdDialect herdDialectFor(const LitmusTest &test,
                           const std::string &model_name);

/** Serialize @p test as one herd7 `.litmus` file. */
std::string writeHerd(const LitmusTest &test, const HerdOptions &options = {});

/**
 * Parse one `.litmus` file (X86 or C dialect) into the IR. Accepts both
 * files produced by writeHerd (lossless, including LTS-* metadata) and
 * external hand-written files, with the usual observability caveats:
 * reads the condition does not mention are taken to read the initial
 * value, and coherence among writes the condition does not pin is
 * completed in ascending stored-value order. Throws std::runtime_error
 * with a line-numbered diagnostic on malformed or unsupported input.
 */
LitmusTest parseHerd(const std::string &text);

/** Stream overload of parseHerd. */
LitmusTest parseHerd(std::istream &in);

/**
 * Filename-safe version of a test name ("tso/union#3" ->
 * "tso_union_3"), used by ltsgen --emit-litmus / --emit-cxx.
 */
std::string sanitizeTestName(const std::string &name);

/** Location name used in emitted programs: x, y, z, w, a, b, c, d, v8... */
std::string herdLocName(int loc);

/**
 * The stored-value assignment every emitted program uses: each write's
 * 1-based co position under the forbidden outcome (declaration order
 * when the test has none). Indexed by event id; -1 for non-writes. The
 * herd exporter and the C++11 harness (litmus/cxx.hh) share this so
 * their outcome tuples are directly comparable.
 */
std::vector<int> herdWriteValues(const LitmusTest &test);

} // namespace lts::litmus

#endif // LTS_LITMUS_HERD_HH
