/**
 * @file
 * Pretty-printing of litmus tests in the paper's figure style.
 *
 * Tests render as one column per thread plus a legality line, e.g.:
 *
 *     Thread 0            | Thread 1
 *     St [x], 1           | Ld.acq r0 = [y]
 *     St.rel [y], 1       | Ld r1 = [x]
 *     Forbidden: (r0=1, r1=0)
 */

#ifndef LTS_LITMUS_PRINT_HH
#define LTS_LITMUS_PRINT_HH

#include <string>

#include "litmus/test.hh"

namespace lts::litmus
{

/** Render the static test plus its forbidden outcome (when present). */
std::string toString(const LitmusTest &test);

/** Render one event in instruction syntax ("St.rel [y], 2"). */
std::string eventToString(const LitmusTest &test, int event_id,
                          const std::vector<int> &write_values,
                          const std::vector<int> &reg_names);

/** Render an outcome as "(r0=1, r1=0, [x]=2)". */
std::string outcomeToString(const LitmusTest &test, const Outcome &outcome);

/** Compact one-line structural summary, e.g. "2 thr, 4 ev, 2 locs". */
std::string summary(const LitmusTest &test);

} // namespace lts::litmus

#endif // LTS_LITMUS_PRINT_HH
