/**
 * @file
 * Versioned suite digests — the content addresses of the service layer.
 *
 * A suite digest is a stable 64-bit hash of every test's full canonical
 * serialization, rendered as "<format-tag>:<16 hex digits>". Two suites
 * share a digest iff they are byte-identical in the interchange sense,
 * which is what the bench smoke jobs, the suite store, and the ltsd
 * cache all key on. The format tag names the serialization contract:
 * any change to fullSerialize (or to this hash) must bump the tag so
 * stale store entries and cross-version CI comparisons miss loudly
 * instead of colliding silently. The current tag is pinned by
 * tests/litmus/digest_test.cc.
 */

#ifndef LTS_LITMUS_DIGEST_HH
#define LTS_LITMUS_DIGEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/test.hh"

namespace lts::litmus
{

/**
 * The digest format tag. Bump when fullSerialize or the fold changes:
 * the tag is baked into every rendered digest, so store lookups keyed
 * on an old format can never return bytes the new code misreads.
 */
inline constexpr const char *kSuiteDigestFormat = "lts-suite-v1";

/** Raw 64-bit suite hash (fullSerialize of each test, folded in order). */
uint64_t suiteDigestValue(const std::vector<LitmusTest> &tests);

/** Rendered digest: "<kSuiteDigestFormat>:<16 hex digits>". */
std::string suiteDigest(const std::vector<LitmusTest> &tests);

/** Render an already-computed 64-bit hash in the versioned format. */
std::string formatSuiteDigest(uint64_t value);

} // namespace lts::litmus

#endif // LTS_LITMUS_DIGEST_HH
