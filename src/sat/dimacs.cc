#include "sat/dimacs.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lts::sat
{

Cnf
parseDimacs(std::istream &in)
{
    Cnf cnf;
    int declared_clauses = -1;
    std::string line;
    Clause current;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c')
            continue;
        if (line[0] == 'p') {
            std::istringstream ss(line);
            std::string p, fmt;
            ss >> p >> fmt >> cnf.numVars >> declared_clauses;
            if (fmt != "cnf" || !ss)
                throw std::runtime_error("bad DIMACS problem line: " + line);
            continue;
        }
        std::istringstream ss(line);
        long v;
        while (ss >> v) {
            if (v == 0) {
                cnf.clauses.push_back(current);
                current.clear();
            } else {
                long var = std::labs(v) - 1;
                if (var >= cnf.numVars)
                    throw std::runtime_error("literal out of range");
                current.push_back(Lit(static_cast<Var>(var), v < 0));
            }
        }
    }
    if (!current.empty())
        throw std::runtime_error("unterminated clause at end of input");
    if (declared_clauses >= 0 &&
        static_cast<size_t>(declared_clauses) != cnf.clauses.size()) {
        throw std::runtime_error("clause count mismatch");
    }
    return cnf;
}

Cnf
parseDimacsString(const std::string &text)
{
    std::istringstream ss(text);
    return parseDimacs(ss);
}

void
writeDimacs(std::ostream &out, const Cnf &cnf)
{
    out << "p cnf " << cnf.numVars << " " << cnf.clauses.size() << "\n";
    for (const auto &clause : cnf.clauses) {
        for (Lit l : clause)
            out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << " ";
        out << "0\n";
    }
}

} // namespace lts::sat
