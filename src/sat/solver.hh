/**
 * @file
 * A conflict-driven clause-learning (CDCL) SAT solver.
 *
 * This is the project's stand-in for the off-the-shelf MiniSAT backend the
 * paper used underneath Alloy/Kodkod. It implements the standard modern
 * architecture: two-watched-literal unit propagation, first-UIP conflict
 * analysis with recursive clause minimization, VSIDS decision heuristics
 * with phase saving, Luby-sequence restarts, LBD-aware learned-clause
 * deletion, and incremental solving under assumptions.
 *
 * The solver is built for *retractable* incremental use: clauses may be
 * added between solve() calls (how the synthesizer's enumeration loop
 * blocks previously found tests), and clauses may be tagged with an
 * activation-literal group (newGroup / addClause(group, lits) /
 * release(group)) so a whole layer of facts can be asserted for some
 * queries and permanently retired later without rebuilding the solver.
 * Learned clauses derived from a group carry the group's activation
 * literal and die with it; everything else survives across queries.
 */

#ifndef LTS_SAT_SOLVER_HH
#define LTS_SAT_SOLVER_HH

#include <cstdint>
#include <vector>

#include "sat/simplify.hh"
#include "sat/types.hh"

namespace lts::sat
{

class ClauseBank;
class DratWriter;

/** Aggregate counters exposed for benchmarks and logging. */
struct SolverStats
{
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t conflicts = 0;
    uint64_t restarts = 0;
    uint64_t learnedClauses = 0;
    uint64_t deletedClauses = 0;
    uint64_t minimizedLits = 0;
    uint64_t reduceCalls = 0;     ///< learned-DB reductions performed
    uint64_t releasedGroups = 0;  ///< activation groups retired
    uint64_t eliminatedVars = 0;  ///< variables removed by simplify()
    uint64_t subsumedClauses = 0; ///< clauses deleted by subsumption
    uint64_t strengthenedLits = 0; ///< literals removed by self-subsumption
    uint64_t importedClauses = 0; ///< clauses adopted from a ClauseBank
    uint64_t exportedClauses = 0; ///< learnt clauses published to the bank
};

/**
 * Structured outcome of a solve() call. BudgetExhausted means the
 * conflict budget stopped the search before an answer was reached: the
 * model and the conflict-assumption set are both meaningless.
 */
enum class SolveResult
{
    Sat,
    Unsat,
    BudgetExhausted,
};

/**
 * An activation-literal group for retractable clauses. Clauses added to
 * a group are guarded by the group's selector variable and only bind
 * when the group's literal (groupLit) is assumed. release() retires the
 * group permanently. Obtained from Solver::newGroup().
 */
using Group = int32_t;

constexpr Group kNoGroup = -1;

/**
 * CDCL SAT solver over clauses of Lit.
 *
 * Typical use:
 * @code
 *   Solver s;
 *   Var a = s.newVar(), b = s.newVar();
 *   s.addClause({Lit::pos(a), Lit::pos(b)});
 *   if (s.solve() == SolveResult::Sat) { bool va = s.modelValue(a); ... }
 * @endcode
 *
 * Retractable layers:
 * @code
 *   Group g = s.newGroup();
 *   s.addClause(g, {Lit::neg(a)});             // bound only under g
 *   s.solve({s.groupLit(g)});                  // query with the layer
 *   s.release(g);                              // retire it for good
 * @endcode
 */
class Solver
{
  public:
    Solver();

    /** Allocate a fresh variable and return it. */
    Var newVar();

    /** Number of allocated variables. */
    int numVars() const { return static_cast<int>(assigns.size()); }

    /** Number of problem (non-learned) clauses currently alive. */
    int numClauses() const { return numProblemClauses; }

    /** Number of learned clauses currently alive. */
    int numLearned() const { return numLearnedClauses; }

    /**
     * Add a permanent clause. Returns false if the clause (together with
     * prior top-level facts) makes the formula trivially unsatisfiable.
     * May be called between solve() calls.
     */
    bool addClause(Clause lits);

    // --- activation-literal groups ---------------------------------------

    /**
     * Allocate a retractable clause group. The group's clauses bind only
     * in solve() calls that assume groupLit(g).
     */
    Group newGroup();

    /**
     * The group's activation literal: assume it to enforce the group's
     * clauses for one solve() call.
     */
    Lit groupLit(Group g) const;

    /**
     * Add a clause guarded by group @p g (the clause is augmented with
     * the negated activation literal). Returns false only if the solver
     * is already in a top-level conflict.
     */
    bool addClause(Group g, Clause lits);

    /**
     * Permanently retire a group: its problem clauses are removed, its
     * activation literal is pinned false, and learned clauses guarded by
     * it are purged. Must be called between solve() calls. Idempotent.
     */
    void release(Group g);

    /** True once release(g) has been called. */
    bool isReleased(Group g) const;

    // --- simplification (simplify.cc) -------------------------------------

    /**
     * Freeze @p v: simplify() will never eliminate it. Freeze every
     * variable the outside world refers to — relation cells, anything
     * later assumed, pinned, or read back. Group selectors are frozen
     * automatically by newGroup().
     */
    void setFrozen(Var v, bool frozen = true);

    /** Whether @p v is protected from elimination. */
    bool isFrozen(Var v) const { return frozenFlags[v] != 0; }

    /**
     * Whether simplify() eliminated @p v. Eliminated variables occur in
     * no live clause and must not appear in clauses, assumptions, or
     * groups added later; modelValue() stays total via reconstruction.
     */
    bool isEliminated(Var v) const { return elimFlags[v] != 0; }

    /**
     * Run the SatELite-style preprocessing pass (see simplify.hh):
     * backward subsumption, self-subsuming resolution, and bounded
     * variable elimination over the live *ungrouped* problem clauses.
     * Grouped clauses and every variable occurring in one are left
     * untouched so retractable layers stay retractable; learnt clauses
     * are dropped (they are re-derivable). Must be called at decision
     * level 0; deterministic, so identical solvers simplify identically.
     * Returns false when simplification proves the formula unsatisfiable.
     */
    bool simplify(const SimplifyConfig &cfg = SimplifyConfig());

    // --- cross-solver clause sharing (ClauseBank) --------------------------

    /**
     * Join a clause-bank family: learnt clauses whose literals all lie in
     * [0, shared_var_limit) and that pass the bank's quality filter are
     * exported; sibling exports are imported at every restart boundary.
     * The caller must guarantee the family's soundness contract (see
     * clausebank.hh): the first @p shared_var_limit variables of every
     * member were built identically, and after connecting, constraints
     * over shared variables are only added through activation groups —
     * permanent additions must be definitional extensions (Tseitin
     * lowering of new cones). As a safety net, a permanent clause made
     * up entirely of shared variables disables exporting from this
     * solver. The bank must outlive the solver.
     */
    void connectBank(ClauseBank &bank, int family, Var shared_var_limit);

    /** Whether connectBank has been called. */
    bool hasBank() const { return bank != nullptr; }

    /**
     * Snapshot of the live problem clauses — including the activation
     * guard literal of grouped clauses — and optionally the learnt ones.
     * Lets callers round-trip solver state through DIMACS.
     */
    std::vector<Clause> liveClauses(bool include_learned = false) const;

    // --- proof logging (drat.hh) ------------------------------------------

    /**
     * Attach (or detach, with nullptr) a proof writer. From here on
     * every clause addition, derivation, and deletion is logged, so any
     * Unsat answer concluded with proofConcludeUnsat() can be verified
     * by the independent checker in drat.hh. Clauses already present
     * (and root units) are snapshotted as input lines, so attaching to
     * a solver that has clauses is sound — but it must not have learnt
     * clauses yet (asserted), since those cannot be re-justified here.
     * The writer is not owned and must outlive the solver (or be
     * detached first). Under a proof, clause-bank imports are adopted
     * only when re-justifiable by root unit propagation, keeping the
     * trace self-contained; dropped imports only change heuristics,
     * never answers.
     */
    void setProof(DratWriter *writer);

    /** Whether a proof writer is attached. */
    bool hasProof() const { return proof != nullptr; }

    /**
     * Log the most recent Unsat answer as a proof conclusion ('u'): the
     * negated failed assumptions (the empty clause for an assumption-
     * free refutation). The checker verifies every conclusion, so call
     * this only for the answers the caller relies on — probe solves
     * (witness minimization and the like) are best left unlogged.
     * Requires the last solve() to have returned SolveResult::Unsat.
     */
    void proofConcludeUnsat();

    // --- solving ----------------------------------------------------------

    /** Solve with no assumptions. */
    SolveResult solve();

    /**
     * Solve under the given assumption literals. The assumptions hold
     * only for this call.
     */
    SolveResult solve(const std::vector<Lit> &assumptions);

    /** True once the formula is known unsatisfiable regardless of input. */
    bool inConflict() const { return !ok; }

    /** Value of @p v in the most recent satisfying model. */
    bool modelValue(Var v) const { return model[v] == LBool::True; }

    /** Value of @p l in the most recent satisfying model. */
    bool
    modelValue(Lit l) const
    {
        bool v = model[l.var()] == LBool::True;
        return l.sign() ? !v : v;
    }

    /**
     * Subset of the assumptions responsible for the last UNSAT answer
     * (negated, i.e. the final conflict clause over assumption vars).
     * Only meaningful when the last solve() returned SolveResult::Unsat;
     * asserted in debug builds.
     */
    const std::vector<Lit> &conflictAssumptions() const;

    const SolverStats &stats() const { return statsData; }

    /**
     * Abort solve() once this many conflicts occur, counted from this
     * call (0 = no limit). Re-arming resets the count, so a long-lived
     * incremental solver can budget each query family separately.
     */
    void setConflictBudget(uint64_t budget);

    /**
     * Force a learned-clause database reduction now (normally triggered
     * internally). Exposed so tests and benchmarks can exercise the
     * LBD-aware retention policy deterministically.
     */
    void reduceLearnedClauses();

    /**
     * Verify the most recent satisfying model: every live problem clause
     * (including the activation-literal guard of grouped clauses) must
     * contain a true literal. Only meaningful after solve() returned
     * SolveResult::Sat; debug builds assert this after every Sat answer,
     * so an unsound simplification or watch bug fails loudly at its
     * source instead of corrupting synthesis output downstream.
     */
    bool checkModel() const;

  private:
    friend class Simplifier; ///< the preprocessing pass (simplify.cc)
    /** Internal clause representation. */
    struct InternalClause
    {
        std::vector<Lit> lits;
        double activity = 0.0;
        int32_t lbd = 0; ///< literal block distance at learn time
        bool learned = false;
        bool deleted = false;
    };

    struct GroupInfo
    {
        Var selector = -1;
        std::vector<int32_t> clauseRefs; ///< live problem clauses
        bool releasedFlag = false;
    };

    using ClauseRef = int32_t;
    static constexpr ClauseRef kNoReason = -1;

    // --- clause & watch management -------------------------------------
    ClauseRef allocClause(std::vector<Lit> lits, bool learned);
    void attachClause(ClauseRef cref);
    void detachClause(ClauseRef cref);
    void removeClause(ClauseRef cref);
    bool addClauseInternal(Clause lits, Group group);

    // --- assignment trail -----------------------------------------------
    LBool value(Var v) const { return assigns[v]; }
    LBool
    value(Lit l) const
    {
        LBool b = assigns[l.var()];
        return l.sign() ? ~b : b;
    }
    int decisionLevel() const { return static_cast<int>(trailLims.size()); }
    void newDecisionLevel() { trailLims.push_back(trail.size()); }
    void uncheckedEnqueue(Lit l, ClauseRef reason);
    void cancelUntil(int level);

    // --- simplification & sharing support --------------------------------
    void reconstructModel();
    bool importSharedClauses();
    void maybeExportLearnt(const std::vector<Lit> &lits, int lbd);

    // --- proof support ----------------------------------------------------
    void proofAdd(const std::vector<Lit> &lits);
    void proofAddUnit(Lit l);
    bool rupImpliedAtRoot(const std::vector<Lit> &lits);

    // --- search ----------------------------------------------------------
    ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit> &out_learnt,
                 int &out_btlevel, int &out_lbd);
    bool litRedundant(Lit l, uint32_t abstract_levels);
    void analyzeFinal(Lit p);
    Lit pickBranchLit();
    LBool search(int64_t max_conflicts);

    // --- heuristics -------------------------------------------------------
    void varBumpActivity(Var v);
    void varDecayActivity() { varInc /= varDecay; }
    void claBumpActivity(InternalClause &c);
    void claDecayActivity() { claInc /= claDecay; }
    void reduceDB();
    bool satisfiedAtRoot(const InternalClause &c) const;
    static double luby(double y, int i);

    // --- order heap (max-heap on activity) --------------------------------
    void heapInsert(Var v);
    void heapUpdate(Var v);
    Var heapRemoveMax();
    bool heapContains(Var v) const { return heapIndex[v] >= 0; }
    void heapPercolateUp(int i);
    void heapPercolateDown(int i);

    // --- state -------------------------------------------------------------
    std::vector<InternalClause> clauses;
    std::vector<ClauseRef> learnts;
    std::vector<std::vector<ClauseRef>> watches; // indexed by Lit::index()

    std::vector<LBool> assigns;
    std::vector<LBool> model;
    std::vector<bool> polarity;  // saved phases
    std::vector<int> levels;
    std::vector<ClauseRef> reasons;
    std::vector<Lit> trail;
    std::vector<size_t> trailLims;
    size_t qhead = 0;

    std::vector<double> activity;
    std::vector<int> heap;       // variable max-heap by activity
    std::vector<int> heapIndex;  // var -> position in heap, -1 if absent

    std::vector<Lit> assumptionsVec;
    std::vector<Lit> conflict;

    std::vector<uint8_t> seen;
    std::vector<Lit> analyzeStack;
    std::vector<Lit> analyzeToClear;
    std::vector<int> lbdLevels; // scratch for LBD computation

    std::vector<GroupInfo> groups;

    // --- simplification state ---------------------------------------------
    /** Clauses removed by variable elimination, in elimination order;
     *  replayed in reverse by reconstructModel() so eliminated variables
     *  get model values satisfying them. */
    struct ElimRecord
    {
        Var v;
        std::vector<std::vector<Lit>> clauses;
    };

    std::vector<uint8_t> frozenFlags;   // per var: caller froze it
    std::vector<uint8_t> elimFlags;     // per var: eliminated by simplify()
    std::vector<uint8_t> selectorFlags; // per var: a group's selector
    std::vector<ElimRecord> elimStack;

    // --- clause-bank state --------------------------------------------------
    ClauseBank *bank = nullptr;
    int bankFamily = -1;
    int bankProducer = -1;
    Var bankVarLimit = 0;
    size_t bankCursor = 0;
    bool bankExportPoisoned = false; ///< a shard-local shared-var clause
                                     ///< was added; stop exporting

    DratWriter *proof = nullptr; ///< proof sink; not owned

    bool ok = true;
    double varInc = 1.0;
    double varDecay = 0.95;
    double claInc = 1.0;
    double claDecay = 0.999;
    int numProblemClauses = 0;
    int numLearnedClauses = 0;
    double maxLearnts = 0.0;
    uint64_t conflictBudget = 0;
    uint64_t budgetBase = 0;
    bool hitBudget = false;
    SolveResult lastResult = SolveResult::Sat;
    bool haveModel = false;

    SolverStats statsData;
};

} // namespace lts::sat

#endif // LTS_SAT_SOLVER_HH
