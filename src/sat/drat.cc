#include "sat/drat.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>

namespace lts::sat
{

namespace
{

constexpr char kTextHeader[] = "c ltsdrat v1 text\n";
constexpr char kBinaryMagic[8] = {'L', 'D', 'R', 'A', 'T', 'B', '1', '\0'};
constexpr size_t kFlushThreshold = 1 << 16;

/**
 * Binary literal code: never zero, so 0x00 can terminate a record.
 * DIMACS number (var + 1) shifted left with the sign in the low bit.
 */
uint32_t
binCode(Lit l)
{
    return (static_cast<uint32_t>(l.var()) + 1) * 2 +
           (l.sign() ? 1U : 0U);
}

} // namespace

// --- DratWriter ------------------------------------------------------------

DratWriter::DratWriter(const std::string &path, DratFormat format)
    : filePath(path), fmt(format)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        return;
    buf.reserve(kFlushThreshold + 256);
    if (fmt == DratFormat::Text) {
        buf.insert(buf.end(), kTextHeader,
                   kTextHeader + std::strlen(kTextHeader));
    } else {
        buf.insert(buf.end(), kBinaryMagic, kBinaryMagic + 8);
    }
}

DratWriter::~DratWriter()
{
    flush();
    if (file)
        std::fclose(file);
}

void
DratWriter::flush()
{
    if (!file)
        return;
    if (!buf.empty()) {
        if (std::fwrite(buf.data(), 1, buf.size(), file) != buf.size())
            failed = true;
        buf.clear();
    }
    if (std::fflush(file) != 0)
        failed = true;
}

void
DratWriter::put(char tag, const std::vector<Lit> &lits)
{
    if (!file)
        return;
    if (fmt == DratFormat::Text) {
        buf.push_back(tag);
        char tmp[16];
        for (Lit l : lits) {
            int32_t dimacs = (l.var() + 1) * (l.sign() ? -1 : 1);
            int n = std::snprintf(tmp, sizeof(tmp), " %d", dimacs);
            buf.insert(buf.end(), tmp, tmp + n);
        }
        buf.push_back(' ');
        buf.push_back('0');
        buf.push_back('\n');
    } else {
        buf.push_back(tag);
        for (Lit l : lits) {
            uint32_t u = binCode(l);
            while (u >= 0x80) {
                buf.push_back(static_cast<char>((u & 0x7f) | 0x80));
                u >>= 7;
            }
            buf.push_back(static_cast<char>(u));
        }
        buf.push_back('\0');
    }
    if (buf.size() >= kFlushThreshold) {
        if (std::fwrite(buf.data(), 1, buf.size(), file) != buf.size())
            failed = true;
        buf.clear();
    }
}

// --- parsing ---------------------------------------------------------------

namespace
{

bool
parseKind(char tag, DratStep::Kind &kind)
{
    switch (tag) {
    case 'i':
        kind = DratStep::Kind::Input;
        return true;
    case 'a':
        kind = DratStep::Kind::Derived;
        return true;
    case 'u':
        kind = DratStep::Kind::Conclusion;
        return true;
    case 'd':
        kind = DratStep::Kind::Delete;
        return true;
    default:
        return false;
    }
}

bool
parseText(const std::string &data, size_t pos, std::vector<DratStep> &steps,
          std::string &error)
{
    size_t line_no = 2; // record bodies start after the header line
    while (pos < data.size()) {
        // One record per line; blank lines and comments are skipped.
        size_t eol = data.find('\n', pos);
        if (eol == std::string::npos)
            eol = data.size();
        size_t p = pos, end = eol;
        pos = eol == data.size() ? eol : eol + 1;
        size_t this_line = line_no++;
        while (p < end && (data[p] == ' ' || data[p] == '\t'))
            p++;
        if (p == end)
            continue;
        if (data[p] == 'c') {
            continue;
        }
        DratStep step;
        if (!parseKind(data[p], step.kind)) {
            error = "line " + std::to_string(this_line) +
                    ": bad record tag '" + std::string(1, data[p]) + "'";
            return false;
        }
        p++;
        bool terminated = false;
        while (p < end && !terminated) {
            while (p < end && (data[p] == ' ' || data[p] == '\t'))
                p++;
            if (p == end)
                break;
            bool neg = data[p] == '-';
            if (neg)
                p++;
            if (p == end || data[p] < '0' || data[p] > '9') {
                error = "line " + std::to_string(this_line) +
                        ": bad literal";
                return false;
            }
            int64_t v = 0;
            while (p < end && data[p] >= '0' && data[p] <= '9') {
                v = v * 10 + (data[p] - '0');
                if (v > INT32_MAX) {
                    error = "line " + std::to_string(this_line) +
                            ": literal out of range";
                    return false;
                }
                p++;
            }
            if (v == 0) {
                if (neg) {
                    error = "line " + std::to_string(this_line) +
                            ": bad literal '-0'";
                    return false;
                }
                terminated = true;
                break;
            }
            step.lits.push_back(
                Lit(static_cast<Var>(v - 1), neg));
        }
        if (!terminated) {
            error = "line " + std::to_string(this_line) +
                    ": unterminated clause (missing 0)";
            return false;
        }
        steps.push_back(std::move(step));
    }
    return true;
}

bool
parseBinary(const std::string &data, size_t pos,
            std::vector<DratStep> &steps, std::string &error)
{
    while (pos < data.size()) {
        size_t record_start = pos;
        DratStep step;
        if (!parseKind(data[pos], step.kind)) {
            error = "bad record tag at offset " +
                    std::to_string(record_start) + " in binary proof";
            return false;
        }
        pos++;
        while (true) {
            uint32_t u = 0;
            int shift = 0;
            bool more = true;
            while (more) {
                if (pos >= data.size()) {
                    error = "truncated record in binary proof (step " +
                            std::to_string(steps.size()) + ")";
                    return false;
                }
                uint8_t byte = static_cast<uint8_t>(data[pos++]);
                if (shift >= 32) {
                    error = "overlong literal encoding at offset " +
                            std::to_string(pos - 1) + " in binary proof";
                    return false;
                }
                u |= static_cast<uint32_t>(byte & 0x7f) << shift;
                shift += 7;
                more = (byte & 0x80) != 0;
            }
            if (u == 0)
                break;
            if (u < 2) {
                error = "bad literal code at offset " +
                        std::to_string(pos - 1) + " in binary proof";
                return false;
            }
            step.lits.push_back(
                Lit(static_cast<Var>(u / 2 - 1), (u & 1) != 0));
        }
        steps.push_back(std::move(step));
    }
    return true;
}

} // namespace

bool
parseDratFile(const std::string &path, std::vector<DratStep> &steps,
              std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    steps.clear();
    if (data.size() >= 8 && std::memcmp(data.data(), kBinaryMagic, 8) == 0)
        return parseBinary(data, 8, steps, error);
    size_t header_len = std::strlen(kTextHeader);
    if (data.size() >= header_len &&
        std::memcmp(data.data(), kTextHeader, header_len) == 0)
        return parseText(data, header_len, steps, error);
    error = "unrecognized proof header in " + path;
    return false;
}

// --- checking --------------------------------------------------------------

namespace
{

/**
 * The backward checker. Instances are add-steps; the forward pass links
 * each deletion to the most recent matching add, then the backward walk
 * reconstructs the database live before each step and verifies the
 * marked derivations with a self-contained unit propagator.
 */
class Checker
{
  public:
    Checker(const std::vector<DratStep> &steps) : steps(steps) {}

    DratCheckResult run(bool verify_all);

  private:
    bool isAdd(size_t i) const
    {
        return steps[i].kind != DratStep::Kind::Delete;
    }

    /** +1 true, -1 false, 0 unassigned. */
    int valOf(Lit l) const
    {
        int v = val[static_cast<size_t>(l.var())];
        return l.sign() ? -v : v;
    }

    /** Assign @p l true. Pre: unassigned. */
    void enqueue(Lit l, int reason)
    {
        val[static_cast<size_t>(l.var())] =
            static_cast<int8_t>(l.sign() ? -1 : 1);
        reasonStep[static_cast<size_t>(l.var())] = reason;
        trail.push_back(l);
    }

    /**
     * Assert @p l for the assumption phase of a RUP check. Returns
     * false when the assertion is inconsistent with the assignment so
     * far (the negated clause is contradictory — a tautology check
     * succeeds immediately); @p clash_var then names the variable.
     */
    bool assume(Lit l, Var &clash_var)
    {
        int v = valOf(l);
        if (v > 0)
            return true;
        if (v < 0) {
            clash_var = l.var();
            return false;
        }
        enqueue(l, kAssumption);
        return true;
    }

    void unwind()
    {
        for (Lit l : trail)
            val[static_cast<size_t>(l.var())] = 0;
        trail.clear();
    }

    /** Mark the antecedent cone of the conflict for core extraction. */
    void markConflict(int conflict_step, Var seed_var);
    void markVarCone(Var v);

    /**
     * Does UP from the active database plus the negation of
     * extra1 ∪ extra2 derive a conflict? Marks antecedents on success.
     */
    bool rup(const std::vector<Lit> &extra1, const std::vector<Lit> *extra2,
             Lit drop);

    const std::vector<DratStep> &steps;

    static constexpr int kAssumption = -1;

    std::vector<char> active;
    std::vector<char> marked;
    std::vector<int> deleteTarget;
    std::vector<std::vector<int>> occ; ///< literal index -> add steps
    std::vector<int> unitSteps;        ///< add steps with one literal

    std::vector<int8_t> val;
    std::vector<int> reasonStep;
    std::vector<Lit> trail;
    std::vector<char> varSeen;
    std::vector<Var> markQueue;
};

void
Checker::markVarCone(Var v)
{
    markQueue.clear();
    markQueue.push_back(v);
    while (!markQueue.empty()) {
        Var x = markQueue.back();
        markQueue.pop_back();
        if (varSeen[static_cast<size_t>(x)])
            continue;
        varSeen[static_cast<size_t>(x)] = 1;
        int r = reasonStep[static_cast<size_t>(x)];
        if (r < 0)
            continue;
        marked[static_cast<size_t>(r)] = 1;
        for (Lit l : steps[static_cast<size_t>(r)].lits)
            markQueue.push_back(l.var());
    }
}

void
Checker::markConflict(int conflict_step, Var seed_var)
{
    for (Lit l : trail)
        varSeen[static_cast<size_t>(l.var())] = 0;
    if (conflict_step >= 0) {
        marked[static_cast<size_t>(conflict_step)] = 1;
        for (Lit l : steps[static_cast<size_t>(conflict_step)].lits)
            markVarCone(l.var());
    }
    if (seed_var >= 0)
        markVarCone(seed_var);
}

bool
Checker::rup(const std::vector<Lit> &extra1, const std::vector<Lit> *extra2,
             Lit drop)
{
    trail.clear();
    Var clash = -1;
    bool conflict = false;
    int conflict_step = -1;

    // Assumption phase: assert the negation of every literal of the
    // checked clause (and of the resolvent remainder, for RAT).
    for (Lit l : extra1) {
        if (!assume(~l, clash)) {
            conflict = true;
            break;
        }
    }
    if (!conflict && extra2) {
        for (Lit l : *extra2) {
            if (l == drop)
                continue;
            if (!assume(~l, clash)) {
                conflict = true;
                break;
            }
        }
    }

    // Seed with the database's unit clauses, then propagate.
    if (!conflict) {
        for (int ui : unitSteps) {
            if (!active[static_cast<size_t>(ui)])
                continue;
            Lit l = steps[static_cast<size_t>(ui)].lits[0];
            int v = valOf(l);
            if (v > 0)
                continue;
            if (v < 0) {
                conflict = true;
                conflict_step = ui;
                clash = l.var();
                break;
            }
            enqueue(l, ui);
        }
    }
    size_t qhead = 0;
    while (!conflict && qhead < trail.size()) {
        Lit p = trail[qhead++];
        const std::vector<int> &watch = occ[static_cast<size_t>(
            (~p).index())];
        for (int ci : watch) {
            if (!active[static_cast<size_t>(ci)])
                continue;
            const std::vector<Lit> &c = steps[static_cast<size_t>(ci)].lits;
            Lit unassigned;
            bool satisfied = false;
            int n_unassigned = 0;
            for (Lit l : c) {
                int v = valOf(l);
                if (v > 0) {
                    satisfied = true;
                    break;
                }
                if (v == 0) {
                    if (++n_unassigned > 1)
                        break;
                    unassigned = l;
                }
            }
            if (satisfied || n_unassigned > 1)
                continue;
            if (n_unassigned == 0) {
                conflict = true;
                conflict_step = ci;
                clash = -1;
                break;
            }
            enqueue(unassigned, ci);
        }
    }

    if (conflict)
        markConflict(conflict_step, clash);
    unwind();
    return conflict;
}

DratCheckResult
Checker::run(bool verify_all)
{
    DratCheckResult res;
    res.steps = steps.size();

    // Forward pass: size the universe, link deletions to adds, count.
    Var max_var = -1;
    for (const DratStep &s : steps) {
        for (Lit l : s.lits)
            max_var = std::max(max_var, l.var());
    }
    active.assign(steps.size(), 0);
    marked.assign(steps.size(), 0);
    deleteTarget.assign(steps.size(), -1);
    occ.assign(2 * static_cast<size_t>(max_var + 1), {});
    val.assign(static_cast<size_t>(max_var + 1), 0);
    reasonStep.assign(static_cast<size_t>(max_var + 1), kAssumption);
    varSeen.assign(static_cast<size_t>(max_var + 1), 0);

    std::map<std::vector<int32_t>, std::vector<int>> live;
    auto keyOf = [](const std::vector<Lit> &lits) {
        std::vector<int32_t> key;
        key.reserve(lits.size());
        for (Lit l : lits)
            key.push_back(l.index());
        std::sort(key.begin(), key.end());
        key.erase(std::unique(key.begin(), key.end()), key.end());
        return key;
    };

    for (size_t i = 0; i < steps.size(); i++) {
        const DratStep &s = steps[i];
        switch (s.kind) {
        case DratStep::Kind::Input:
            res.inputs++;
            break;
        case DratStep::Kind::Derived:
            res.derived++;
            break;
        case DratStep::Kind::Conclusion:
            res.conclusions++;
            break;
        case DratStep::Kind::Delete:
            res.deletions++;
            break;
        }
        if (s.kind == DratStep::Kind::Delete) {
            std::vector<int> &stack = live[keyOf(s.lits)];
            if (stack.empty()) {
                res.error = "step " + std::to_string(i) +
                            ": deletes a clause not in the database";
                res.errorStep = i;
                return res;
            }
            deleteTarget[i] = stack.back();
            stack.pop_back();
        } else {
            active[i] = 1;
            live[keyOf(s.lits)].push_back(static_cast<int>(i));
            for (Lit l : s.lits)
                occ[static_cast<size_t>(l.index())].push_back(
                    static_cast<int>(i));
            if (s.lits.size() == 1)
                unitSteps.push_back(static_cast<int>(i));
            if (s.kind == DratStep::Kind::Conclusion)
                marked[i] = 1;
        }
    }

    if (res.conclusions == 0) {
        res.error = "proof has no conclusion ('u') step — nothing to verify";
        res.errorStep = steps.size();
        return res;
    }

    // Backward pass: undo each step, verifying marked derivations
    // against the database live just before them.
    for (size_t ri = steps.size(); ri-- > 0;) {
        const DratStep &s = steps[ri];
        if (s.kind == DratStep::Kind::Delete) {
            active[static_cast<size_t>(deleteTarget[ri])] = 1;
            continue;
        }
        active[ri] = 0;
        if (s.kind == DratStep::Kind::Input)
            continue;
        if (!marked[ri] && !verify_all)
            continue;
        res.verified++;
        if (rup(s.lits, nullptr, Lit()))
            continue;
        if (s.kind == DratStep::Kind::Conclusion) {
            res.error = "step " + std::to_string(ri) +
                        ": conclusion clause is not RUP";
            res.errorStep = ri;
            return res;
        }
        if (s.lits.empty()) {
            res.error = "step " + std::to_string(ri) +
                        ": empty clause is not RUP";
            res.errorStep = ri;
            return res;
        }
        // RAT fallback on the first literal as written: the step holds
        // if every resolvent with a ~pivot clause is itself RUP.
        Lit pivot = s.lits[0];
        Lit npivot = ~pivot;
        const std::vector<int> partners =
            occ[static_cast<size_t>(npivot.index())];
        for (int ci : partners) {
            if (!active[static_cast<size_t>(ci)])
                continue;
            if (!rup(s.lits, &steps[static_cast<size_t>(ci)].lits,
                     npivot)) {
                res.error =
                    "step " + std::to_string(ri) +
                    ": clause is not RUP, and RAT on pivot " +
                    pivot.toString() +
                    " fails against the partner clause added at step " +
                    std::to_string(ci);
                res.errorStep = ri;
                return res;
            }
            marked[static_cast<size_t>(ci)] = 1;
        }
        res.ratSteps++;
    }

    for (size_t i = 0; i < steps.size(); i++) {
        if (!marked[i] || !isAdd(i))
            continue;
        res.coreSteps++;
        if (steps[i].kind == DratStep::Kind::Input)
            res.coreInputs++;
    }
    res.ok = true;
    return res;
}

} // namespace

DratCheckResult
checkDrat(const std::vector<DratStep> &steps, bool verify_all)
{
    Checker checker(steps);
    return checker.run(verify_all);
}

DratCheckResult
checkDratFile(const std::string &path, bool verify_all)
{
    DratCheckResult res;
    std::vector<DratStep> parsed;
    std::string error;
    if (!parseDratFile(path, parsed, error)) {
        res.error = error;
        res.errorStep = 0;
        return res;
    }
    return checkDrat(parsed, verify_all);
}

} // namespace lts::sat
