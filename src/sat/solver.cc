#include "sat/solver.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sat/clausebank.hh"
#include "sat/drat.hh"

namespace lts::sat
{

Solver::Solver() = default;

Var
Solver::newVar()
{
    Var v = static_cast<Var>(assigns.size());
    assigns.push_back(LBool::Undef);
    model.push_back(LBool::Undef);
    polarity.push_back(true); // negative phase first, MiniSAT-style
    levels.push_back(0);
    reasons.push_back(kNoReason);
    activity.push_back(0.0);
    heapIndex.push_back(-1);
    seen.push_back(0);
    frozenFlags.push_back(0);
    elimFlags.push_back(0);
    selectorFlags.push_back(0);
    watches.emplace_back();
    watches.emplace_back();
    heapInsert(v);
    return v;
}

void
Solver::setFrozen(Var v, bool frozen)
{
    assert(v >= 0 && v < numVars());
    assert(!(frozen && elimFlags[v]) && "freezing an eliminated variable");
    frozenFlags[v] = frozen ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Clause management
// ---------------------------------------------------------------------------

Solver::ClauseRef
Solver::allocClause(std::vector<Lit> lits, bool learned)
{
    ClauseRef cref = static_cast<ClauseRef>(clauses.size());
    InternalClause c;
    c.lits = std::move(lits);
    c.learned = learned;
    clauses.push_back(std::move(c));
    if (learned) {
        numLearnedClauses++;
        statsData.learnedClauses++;
    } else {
        numProblemClauses++;
    }
    return cref;
}

void
Solver::attachClause(ClauseRef cref)
{
    const auto &c = clauses[cref];
    assert(c.lits.size() >= 2);
    watches[(~c.lits[0]).index()].push_back(cref);
    watches[(~c.lits[1]).index()].push_back(cref);
}

void
Solver::detachClause(ClauseRef cref)
{
    const auto &c = clauses[cref];
    for (int i = 0; i < 2; i++) {
        auto &ws = watches[(~c.lits[i]).index()];
        auto it = std::find(ws.begin(), ws.end(), cref);
        assert(it != ws.end());
        *it = ws.back();
        ws.pop_back();
    }
}

void
Solver::removeClause(ClauseRef cref)
{
    auto &c = clauses[cref];
    assert(!c.deleted);
    if (proof)
        proof->deleteClause(c.lits);
    detachClause(cref);
    // The clause may be recorded as the reason of a root-level assignment;
    // root-level reasons are never dereferenced, but clear the record so
    // no stale reference survives the removal.
    Var v0 = c.lits[0].var();
    if (reasons[v0] == cref)
        reasons[v0] = kNoReason;
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
    if (c.learned)
        numLearnedClauses--;
    else
        numProblemClauses--;
    statsData.deletedClauses++;
}

bool
Solver::addClause(Clause lits)
{
    return addClauseInternal(std::move(lits), kNoGroup);
}

bool
Solver::addClause(Group g, Clause lits)
{
    assert(g >= 0 && g < static_cast<Group>(groups.size()));
    assert(!groups[g].releasedFlag && "adding clause to a released group");
    // The guard literal: the clause only binds when the activation
    // literal (groupLit) is assumed true.
    lits.push_back(Lit::neg(groups[g].selector));
    return addClauseInternal(std::move(lits), g);
}

bool
Solver::addClauseInternal(Clause lits, Group group)
{
    assert(decisionLevel() == 0);
    if (!ok)
        return false;

    std::sort(lits.begin(), lits.end());
    // Input clauses are logged as given (before normalization): they are
    // the caller's constraints, which the checker takes on faith. The
    // normalized residue is re-derived below as an 'a' line when it
    // differs, so later deletions match a clause the checker has.
    if (proof)
        proof->addInput(lits);
    // Dedupe; drop clause on tautology; drop level-0 falsified literals.
    std::vector<Lit> out;
    Lit prev;
    bool all_shared = bank != nullptr;
    for (Lit l : lits) {
        assert(l.var() < numVars());
        assert(!elimFlags[l.var()] &&
               "clause refers to an eliminated variable");
        all_shared = all_shared && l.var() < bankVarLimit;
        if (value(l) == LBool::True || (prev.valid() && l == ~prev))
            return true; // satisfied or tautological
        if (value(l) != LBool::False && l != prev)
            out.push_back(l);
        prev = l;
    }
    // A permanent clause entirely over shared variables is shard-local
    // state (e.g. a blocking clause) that siblings must not learn from:
    // from here on this solver only imports. Grouped clauses are fine —
    // their guard lives outside the prefix and travels with every
    // derivation (see clausebank.hh).
    if (all_shared && group == kNoGroup)
        bankExportPoisoned = true;

    if (out.empty()) {
        ok = false;
        return false;
    }
    // The root-normalized clause is RUP given the input line and the
    // units that falsified the dropped literals, all logged earlier.
    if (proof && out.size() != lits.size())
        proof->addDerived(out);
    if (out.size() == 1) {
        // For a group clause this can only be the guard literal itself
        // (the body was root-falsified): the group becomes permanently
        // inactive, which is the correct residue of an absurd layer.
        uncheckedEnqueue(out[0], kNoReason);
        ok = (propagate() == kNoReason);
        return ok;
    }
    ClauseRef cref = allocClause(std::move(out), false);
    attachClause(cref);
    if (group != kNoGroup)
        groups[group].clauseRefs.push_back(cref);
    return true;
}

// ---------------------------------------------------------------------------
// Activation-literal groups
// ---------------------------------------------------------------------------

Group
Solver::newGroup()
{
    Group g = static_cast<Group>(groups.size());
    GroupInfo info;
    info.selector = newVar();
    // The selector is assumed by solve() and pinned by release(): both
    // uses outlive any simplification pass, so it must never be
    // eliminated. It is also excluded from clause sharing — a guarded
    // clause is meaningless in a solver with different groups.
    setFrozen(info.selector);
    selectorFlags[info.selector] = 1;
    groups.push_back(std::move(info));
    return g;
}

Lit
Solver::groupLit(Group g) const
{
    assert(g >= 0 && g < static_cast<Group>(groups.size()));
    return Lit::pos(groups[g].selector);
}

bool
Solver::isReleased(Group g) const
{
    assert(g >= 0 && g < static_cast<Group>(groups.size()));
    return groups[g].releasedFlag;
}

void
Solver::release(Group g)
{
    assert(g >= 0 && g < static_cast<Group>(groups.size()));
    assert(decisionLevel() == 0);
    auto &info = groups[g];
    if (info.releasedFlag)
        return;
    info.releasedFlag = true;
    statsData.releasedGroups++;

    // A group clause can only ever root-propagate its own guard (any
    // other propagation would need the selector true at the root, which
    // never happens). If one did, re-derive the guard unit before its
    // reason clause is deleted, so later proof steps can still rely on
    // it; the Undef case is covered by the pin below ('i' line).
    if (proof && value(info.selector) == LBool::False)
        proofAddUnit(Lit::neg(info.selector));

    for (ClauseRef cref : info.clauseRefs) {
        if (!clauses[cref].deleted)
            removeClause(cref);
    }
    info.clauseRefs.clear();
    info.clauseRefs.shrink_to_fit();

    // Every learned clause derived from this group's clauses carries the
    // negated activation literal (the selector is only ever assigned as
    // an assumption decision, so conflict analysis can never resolve it
    // away). Purge them: with the group gone they are dead weight.
    Lit guard = Lit::neg(info.selector);
    size_t keep = 0;
    for (ClauseRef cref : learnts) {
        auto &c = clauses[cref];
        if (c.deleted)
            continue;
        if (std::find(c.lits.begin(), c.lits.end(), guard) != c.lits.end()) {
            removeClause(cref);
            continue;
        }
        learnts[keep++] = cref;
    }
    learnts.resize(keep);

    // Pin the selector false so the variable never burdens the search
    // again (and any remaining guarded clause is root-satisfied).
    if (ok && value(info.selector) == LBool::Undef)
        addClause({guard});
}

// ---------------------------------------------------------------------------
// Trail
// ---------------------------------------------------------------------------

void
Solver::uncheckedEnqueue(Lit l, ClauseRef reason)
{
    assert(value(l) == LBool::Undef);
    Var v = l.var();
    assigns[v] = l.sign() ? LBool::False : LBool::True;
    levels[v] = decisionLevel();
    reasons[v] = reason;
    trail.push_back(l);
}

void
Solver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    for (size_t i = trail.size(); i > trailLims[level]; i--) {
        Lit l = trail[i - 1];
        Var v = l.var();
        assigns[v] = LBool::Undef;
        polarity[v] = l.sign();
        reasons[v] = kNoReason;
        if (!heapContains(v))
            heapInsert(v);
    }
    trail.resize(trailLims[level]);
    trailLims.resize(level);
    qhead = trail.size();
}

// ---------------------------------------------------------------------------
// Propagation
// ---------------------------------------------------------------------------

Solver::ClauseRef
Solver::propagate()
{
    ClauseRef confl = kNoReason;
    while (qhead < trail.size()) {
        Lit p = trail[qhead++];
        statsData.propagations++;
        auto &ws = watches[p.index()];
        size_t keep = 0;
        size_t i = 0;
        for (; i < ws.size(); i++) {
            ClauseRef cref = ws[i];
            auto &c = clauses[cref];
            if (c.deleted)
                continue; // drop stale watch
            // Make sure the false literal (~p) sits at position 1.
            Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == false_lit);

            Lit first = c.lits[0];
            if (value(first) == LBool::True) {
                ws[keep++] = cref;
                continue;
            }
            // Search for a replacement watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); k++) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches[(~c.lits[1]).index()].push_back(cref);
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            // Clause is unit or conflicting; the watch stays.
            ws[keep++] = cref;
            if (value(first) == LBool::False) {
                confl = cref;
                qhead = trail.size();
                // Preserve the remaining watches.
                for (i++; i < ws.size(); i++)
                    ws[keep++] = ws[i];
                break;
            }
            uncheckedEnqueue(first, cref);
        }
        ws.resize(keep);
        if (confl != kNoReason)
            break;
    }
    return confl;
}

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

void
Solver::analyze(ClauseRef confl, std::vector<Lit> &out_learnt, int &out_btlevel,
                int &out_lbd)
{
    out_learnt.clear();
    out_learnt.push_back(Lit()); // placeholder for the asserting literal

    int path_count = 0;
    Lit p; // invalid
    int index = static_cast<int>(trail.size()) - 1;

    do {
        assert(confl != kNoReason);
        auto &c = clauses[confl];
        if (c.learned)
            claBumpActivity(c);

        for (size_t j = p.valid() ? 1 : 0; j < c.lits.size(); j++) {
            Lit q = c.lits[j];
            Var v = q.var();
            if (!seen[v] && levels[v] > 0) {
                seen[v] = 1;
                varBumpActivity(v);
                if (levels[v] >= decisionLevel())
                    path_count++;
                else
                    out_learnt.push_back(q);
            }
        }
        // Select the next node on the current decision level to expand.
        while (!seen[trail[index].var()])
            index--;
        p = trail[index];
        index--;
        confl = reasons[p.var()];
        seen[p.var()] = 0;
        path_count--;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Recursive minimization of the learnt clause.
    analyzeToClear = out_learnt;
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < out_learnt.size(); i++)
        abstract_levels |= uint32_t(1) << (levels[out_learnt[i].var()] & 31);

    size_t keep = 1;
    for (size_t i = 1; i < out_learnt.size(); i++) {
        if (reasons[out_learnt[i].var()] == kNoReason ||
            !litRedundant(out_learnt[i], abstract_levels)) {
            out_learnt[keep++] = out_learnt[i];
        } else {
            statsData.minimizedLits++;
        }
    }
    out_learnt.resize(keep);

    // Literal block distance: number of distinct decision levels in the
    // minimized clause (the "glue" metric of Glucose). Low-LBD clauses
    // bridge few decision blocks and stay useful across restarts and
    // incremental queries, so reduceDB retains them preferentially.
    lbdLevels.clear();
    for (Lit l : out_learnt) {
        int lev = levels[l.var()];
        if (std::find(lbdLevels.begin(), lbdLevels.end(), lev) ==
            lbdLevels.end())
            lbdLevels.push_back(lev);
    }
    out_lbd = static_cast<int>(lbdLevels.size());

    // Find the backtrack level (second-highest level in the clause).
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learnt.size(); i++) {
            if (levels[out_learnt[i].var()] > levels[out_learnt[max_i].var()])
                max_i = i;
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = levels[out_learnt[1].var()];
    }

    for (Lit l : analyzeToClear)
        seen[l.var()] = 0;
    analyzeToClear.clear();
}

bool
Solver::litRedundant(Lit l, uint32_t abstract_levels)
{
    analyzeStack.clear();
    analyzeStack.push_back(l);
    size_t top = analyzeToClear.size();
    while (!analyzeStack.empty()) {
        Lit cur = analyzeStack.back();
        analyzeStack.pop_back();
        assert(reasons[cur.var()] != kNoReason);
        const auto &c = clauses[reasons[cur.var()]];
        for (size_t i = 1; i < c.lits.size(); i++) {
            Lit q = c.lits[i];
            Var v = q.var();
            if (seen[v] || levels[v] == 0)
                continue;
            bool level_ok =
                (uint32_t(1) << (levels[v] & 31)) & abstract_levels;
            if (reasons[v] != kNoReason && level_ok) {
                seen[v] = 1;
                analyzeStack.push_back(q);
                analyzeToClear.push_back(q);
            } else {
                // Not provably redundant: undo the marks we made here.
                for (size_t j = top; j < analyzeToClear.size(); j++)
                    seen[analyzeToClear[j].var()] = 0;
                analyzeToClear.resize(top);
                return false;
            }
        }
    }
    return true;
}

void
Solver::analyzeFinal(Lit p)
{
    conflict.clear();
    conflict.push_back(p);
    if (decisionLevel() == 0)
        return;

    seen[p.var()] = 1;
    for (size_t i = trail.size(); i > trailLims[0]; i--) {
        Var v = trail[i - 1].var();
        if (!seen[v])
            continue;
        if (reasons[v] == kNoReason) {
            assert(levels[v] > 0);
            conflict.push_back(~trail[i - 1]);
        } else {
            const auto &c = clauses[reasons[v]];
            for (size_t j = 1; j < c.lits.size(); j++) {
                if (levels[c.lits[j].var()] > 0)
                    seen[c.lits[j].var()] = 1;
            }
        }
        seen[v] = 0;
    }
    seen[p.var()] = 0;
}

// ---------------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------------

void
Solver::varBumpActivity(Var v)
{
    activity[v] += varInc;
    if (activity[v] > 1e100) {
        for (auto &a : activity)
            a *= 1e-100;
        varInc *= 1e-100;
    }
    if (heapContains(v))
        heapUpdate(v);
}

void
Solver::claBumpActivity(InternalClause &c)
{
    c.activity += claInc;
    if (c.activity > 1e20) {
        for (ClauseRef cref : learnts) {
            if (!clauses[cref].deleted)
                clauses[cref].activity *= 1e-20;
        }
        claInc *= 1e-20;
    }
}

Lit
Solver::pickBranchLit()
{
    while (!heap.empty()) {
        Var v = heapRemoveMax();
        // Eliminated variables occur in no live clause; deciding them
        // would only pad the trail. They stay Undef until model
        // reconstruction assigns them.
        if (value(v) == LBool::Undef && !elimFlags[v])
            return Lit(v, polarity[v]);
    }
    return Lit();
}

bool
Solver::satisfiedAtRoot(const InternalClause &c) const
{
    for (Lit l : c.lits) {
        if (value(l) == LBool::True && levels[l.var()] == 0)
            return true;
    }
    return false;
}

void
Solver::reduceDB()
{
    statsData.reduceCalls++;

    // LBD-aware retention (Glucose-style): "glue" clauses (LBD <= 2) and
    // binary clauses are kept unconditionally — they are what makes
    // learning pay off across incremental queries. The rest are ranked
    // worst-first by (high LBD, low activity) and the worst half is
    // dropped. Clauses satisfied at the root are dead weight regardless
    // of quality and go immediately.
    std::vector<ClauseRef> cands;
    size_t keep = 0;
    for (ClauseRef cref : learnts) {
        auto &c = clauses[cref];
        if (c.deleted)
            continue;
        bool locked = reasons[c.lits[0].var()] == cref &&
                      value(c.lits[0]) == LBool::True;
        if (!locked && satisfiedAtRoot(c)) {
            removeClause(cref);
            continue;
        }
        learnts[keep++] = cref;
        if (!locked && c.lits.size() > 2 && c.lbd > 2)
            cands.push_back(cref);
    }
    learnts.resize(keep);

    std::sort(cands.begin(), cands.end(), [&](ClauseRef a, ClauseRef b) {
        const auto &ca = clauses[a];
        const auto &cb = clauses[b];
        if (ca.lbd != cb.lbd)
            return ca.lbd > cb.lbd;
        return ca.activity < cb.activity;
    });
    for (size_t i = 0; i < cands.size() / 2; i++)
        removeClause(cands[i]);

    learnts.erase(std::remove_if(learnts.begin(), learnts.end(),
                                 [&](ClauseRef cref) {
                                     return clauses[cref].deleted;
                                 }),
                  learnts.end());
}

void
Solver::reduceLearnedClauses()
{
    assert(decisionLevel() == 0);
    reduceDB();
}

double
Solver::luby(double y, int i)
{
    // Find the finite subsequence that contains index i, and the index of
    // i within that subsequence.
    int size = 1;
    int seq = 0;
    while (size < i + 1) {
        seq++;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        seq--;
        i = i % size;
    }
    return std::pow(y, seq);
}

// ---------------------------------------------------------------------------
// Main search
// ---------------------------------------------------------------------------

LBool
Solver::search(int64_t max_conflicts)
{
    int64_t conflicts_here = 0;
    std::vector<Lit> learnt;

    for (;;) {
        ClauseRef confl = propagate();
        if (confl != kNoReason) {
            statsData.conflicts++;
            conflicts_here++;
            if (decisionLevel() == 0) {
                ok = false;
                return LBool::False;
            }
            int bt_level = 0;
            int lbd = 0;
            analyze(confl, learnt, bt_level, lbd);
            maybeExportLearnt(learnt, lbd);
            // First-UIP clauses (minimization included) are derivable by
            // trivial resolution from the conflict's reason cone, hence
            // RUP against the clauses live right now.
            if (proof)
                proof->addDerived(learnt);
            cancelUntil(bt_level);
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], kNoReason);
            } else {
                ClauseRef cref = allocClause(learnt, true);
                clauses[cref].lbd = lbd;
                learnts.push_back(cref);
                attachClause(cref);
                claBumpActivity(clauses[cref]);
                uncheckedEnqueue(learnt[0], cref);
            }
            varDecayActivity();
            claDecayActivity();
            if (conflictBudget &&
                statsData.conflicts - budgetBase >= conflictBudget) {
                hitBudget = true;
                cancelUntil(0);
                return LBool::Undef;
            }
        } else {
            if (conflicts_here >= max_conflicts) {
                statsData.restarts++;
                cancelUntil(0);
                return LBool::Undef;
            }
            if (numLearnedClauses - static_cast<int>(trail.size()) >=
                maxLearnts) {
                reduceDB();
            }

            // Respect assumptions before free decisions.
            Lit next;
            while (decisionLevel() < static_cast<int>(assumptionsVec.size())) {
                Lit p = assumptionsVec[decisionLevel()];
                if (value(p) == LBool::True) {
                    newDecisionLevel(); // dummy level; already satisfied
                } else if (value(p) == LBool::False) {
                    analyzeFinal(~p);
                    return LBool::False;
                } else {
                    next = p;
                    break;
                }
            }
            if (!next.valid()) {
                next = pickBranchLit();
                if (!next.valid()) {
                    model = assigns;
                    return LBool::True;
                }
                statsData.decisions++;
            }
            newDecisionLevel();
            uncheckedEnqueue(next, kNoReason);
        }
    }
}

SolveResult
Solver::solve()
{
    return solve({});
}

SolveResult
Solver::solve(const std::vector<Lit> &assumptions)
{
    conflict.clear();
    hitBudget = false;
    if (!ok) {
        lastResult = SolveResult::Unsat;
        return lastResult;
    }
    assumptionsVec = assumptions;
    maxLearnts = std::max(static_cast<double>(numProblemClauses) / 3.0,
                          2000.0);

    LBool status = LBool::Undef;
    int curr_restarts = 0;
    while (status == LBool::Undef && !hitBudget) {
        // Restart boundary (and first descent): adopt sibling shards'
        // learnt clauses while at decision level 0, where attaching is
        // trivially safe. Imports can expose a root conflict.
        if (!importSharedClauses()) {
            status = LBool::False;
            conflict.clear();
            break;
        }
        double base = luby(2.0, curr_restarts) * 100.0;
        status = search(static_cast<int64_t>(base));
        curr_restarts++;
    }
    cancelUntil(0);
    assumptionsVec.clear();
    if (status == LBool::True) {
        lastResult = SolveResult::Sat;
        haveModel = true;
        reconstructModel();
        assert(checkModel() && "model violates a problem clause");
    } else if (status == LBool::False) {
        lastResult = SolveResult::Unsat;
    } else {
        lastResult = SolveResult::BudgetExhausted;
    }
    return lastResult;
}

void
Solver::reconstructModel()
{
    // Replay the elimination stack in reverse: a record's clauses never
    // mention variables eliminated before it (elimination removed those
    // clauses from the formula first), so by the time a record is
    // replayed every other variable in its clauses has a model value.
    for (size_t r = elimStack.size(); r-- > 0;) {
        const ElimRecord &rec = elimStack[r];
        // Default false; flip only when some removed clause needs the
        // variable to satisfy it. The full resolvent set added at
        // elimination time guarantees all such clauses agree on the
        // required polarity, so the first unsatisfied one decides.
        LBool val = LBool::False;
        for (const auto &cls : rec.clauses) {
            bool satisfied = false;
            Lit own;
            for (Lit l : cls) {
                if (l.var() == rec.v) {
                    own = l;
                    continue;
                }
                if (modelValue(l)) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied) {
                assert(own.valid());
                val = own.sign() ? LBool::False : LBool::True;
                break;
            }
        }
        model[rec.v] = val;
    }
}

void
Solver::connectBank(ClauseBank &shared, int family, Var shared_var_limit)
{
    assert(decisionLevel() == 0);
    assert(shared_var_limit >= 0 && shared_var_limit <= numVars());
    bank = &shared;
    bankFamily = family;
    bankProducer = shared.registerProducer(family);
    bankVarLimit = shared_var_limit;
    bankCursor = 0;
    bankExportPoisoned = false;
}

void
Solver::maybeExportLearnt(const std::vector<Lit> &lits, int lbd)
{
    if (!bank || bankExportPoisoned)
        return;
    if (lits.empty() || lits.size() > bank->limits().maxLits ||
        lbd > bank->limits().maxLbd)
        return;
    for (Lit l : lits) {
        Var v = l.var();
        if (v >= bankVarLimit || selectorFlags[v] || elimFlags[v])
            return;
    }
    if (bank->publish(bankFamily, bankProducer, lits, lbd))
        statsData.exportedClauses++;
}

bool
Solver::importSharedClauses()
{
    if (!bank)
        return ok;
    assert(decisionLevel() == 0);
    std::vector<ClauseBank::Entry> fresh;
    bank->fetch(bankFamily, bankProducer, bankCursor, fresh);
    for (const ClauseBank::Entry &entry : fresh) {
        // Root-normalize like addClauseInternal, but attach as a *learnt*
        // clause: imports are implied, so reduceDB may drop them and
        // checkModel must not require them.
        std::vector<Lit> out;
        bool satisfied = false;
        for (Lit l : entry.lits) {
            assert(l.var() < bankVarLimit);
            if (elimFlags[l.var()] || value(l) == LBool::True) {
                satisfied = true;
                break;
            }
            if (value(l) != LBool::False)
                out.push_back(l);
        }
        if (satisfied)
            continue;
        // Under a proof, an import must be re-justified locally — the
        // trace has to stand on its own. Clauses this solver cannot
        // re-derive by root unit propagation are skipped; they are
        // sound (the family contract guarantees it) but unprovable
        // here, and dropping them only costs heuristic strength.
        if (proof && !rupImpliedAtRoot(out))
            continue;
        statsData.importedClauses++;
        if (out.empty()) {
            ok = false;
            return false;
        }
        if (proof)
            proof->addDerived(out);
        if (out.size() == 1) {
            uncheckedEnqueue(out[0], kNoReason);
            if (propagate() != kNoReason) {
                ok = false;
                return false;
            }
            continue;
        }
        ClauseRef cref = allocClause(std::move(out), true);
        clauses[cref].lbd = std::min(entry.lbd,
                                     static_cast<int>(clauses[cref].lits.size()));
        learnts.push_back(cref);
        attachClause(cref);
    }
    return true;
}

void
Solver::setProof(DratWriter *writer)
{
    assert(decisionLevel() == 0);
    proof = writer;
    if (!proof)
        return;
    // Snapshot what is already here as input lines so attachment is
    // sound at any point. Learnt clauses cannot be re-justified after
    // the fact, so the solver must not have any yet.
    assert(numLearnedClauses == 0 &&
           "attach the proof writer before any solving");
    for (const Clause &c : liveClauses(false))
        proof->addInput(c);
}

void
Solver::proofConcludeUnsat()
{
    if (!proof)
        return;
    assert(lastResult == SolveResult::Unsat &&
           "proofConcludeUnsat() is only meaningful after Unsat");
    // The final conflict clause (negated failed assumptions) is RUP:
    // asserting the assumptions back and propagating replays the
    // reason cone analyzeFinal walked. An assumption-free refutation
    // concludes with the empty clause.
    proof->addConclusion(conflict);
}

void
Solver::proofAdd(const std::vector<Lit> &lits)
{
    if (proof)
        proof->addDerived(lits);
}

void
Solver::proofAddUnit(Lit l)
{
    if (proof)
        proof->addDerived({l});
}

bool
Solver::rupImpliedAtRoot(const std::vector<Lit> &lits)
{
    assert(decisionLevel() == 0);
    // Trial level: assert the clause's negation, propagate, and expect
    // a conflict. The trail is rolled back either way; only phase
    // saving and watch order are perturbed, neither of which affects
    // answers.
    newDecisionLevel();
    for (Lit l : lits) {
        if (value(l) == LBool::Undef)
            uncheckedEnqueue(~l, kNoReason);
    }
    bool conflicted = propagate() != kNoReason;
    cancelUntil(0);
    return conflicted;
}

std::vector<Clause>
Solver::liveClauses(bool include_learned) const
{
    std::vector<Clause> out;
    // Unit facts live on the root trail, not in the clause vector.
    size_t root_end = trailLims.empty() ? trail.size() : trailLims[0];
    for (size_t i = 0; i < root_end; i++) {
        if (reasons[trail[i].var()] == kNoReason)
            out.push_back({trail[i]});
    }
    for (const auto &c : clauses) {
        if (c.deleted || (c.learned && !include_learned))
            continue;
        out.push_back(c.lits);
    }
    return out;
}

bool
Solver::checkModel() const
{
    // lastResult defaults to Sat, so an untouched solver would report
    // vacuous success; haveModel distinguishes "never solved" from that.
    if (lastResult != SolveResult::Sat || !haveModel)
        return false;
    for (const auto &c : clauses) {
        if (c.deleted || c.learned)
            continue;
        bool satisfied = false;
        for (Lit l : c.lits) {
            if (l.var() < static_cast<Var>(model.size()) && modelValue(l)) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied)
            return false;
    }
    // The clauses removed by variable elimination must hold too: the
    // reconstructed values of eliminated variables stand in for them.
    for (const ElimRecord &rec : elimStack) {
        for (const auto &cls : rec.clauses) {
            bool satisfied = false;
            for (Lit l : cls) {
                if (modelValue(l)) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied)
                return false;
        }
    }
    return true;
}

const std::vector<Lit> &
Solver::conflictAssumptions() const
{
    assert(lastResult == SolveResult::Unsat &&
           "conflictAssumptions() is only meaningful after Unsat");
    return conflict;
}

void
Solver::setConflictBudget(uint64_t budget)
{
    conflictBudget = budget;
    budgetBase = statsData.conflicts;
}

// ---------------------------------------------------------------------------
// Activity-ordered variable heap
// ---------------------------------------------------------------------------

void
Solver::heapInsert(Var v)
{
    assert(!heapContains(v));
    heapIndex[v] = static_cast<int>(heap.size());
    heap.push_back(v);
    heapPercolateUp(heapIndex[v]);
}

void
Solver::heapUpdate(Var v)
{
    heapPercolateUp(heapIndex[v]);
}

Var
Solver::heapRemoveMax()
{
    Var v = heap[0];
    heap[0] = heap.back();
    heapIndex[heap[0]] = 0;
    heap.pop_back();
    heapIndex[v] = -1;
    if (!heap.empty())
        heapPercolateDown(0);
    return v;
}

void
Solver::heapPercolateUp(int i)
{
    Var v = heap[i];
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (activity[heap[parent]] >= activity[v])
            break;
        heap[i] = heap[parent];
        heapIndex[heap[i]] = i;
        i = parent;
    }
    heap[i] = v;
    heapIndex[v] = i;
}

void
Solver::heapPercolateDown(int i)
{
    Var v = heap[i];
    int n = static_cast<int>(heap.size());
    for (;;) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && activity[heap[child + 1]] > activity[heap[child]])
            child++;
        if (activity[heap[child]] <= activity[v])
            break;
        heap[i] = heap[child];
        heapIndex[heap[i]] = i;
        i = child;
    }
    heap[i] = v;
    heapIndex[v] = i;
}

} // namespace lts::sat
