#include "sat/clausebank.hh"

#include <algorithm>
#include <cassert>

namespace lts::sat
{

namespace
{

/** Order-independent-free hash: lits are sorted first, so equal clause
 *  sets collide deliberately and duplicates are dropped. A hash
 *  collision between different clauses only suppresses an exchange —
 *  never a soundness problem. */
uint64_t
clauseHash(std::vector<Lit> lits)
{
    std::sort(lits.begin(), lits.end());
    uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    for (Lit l : lits) {
        h ^= static_cast<uint64_t>(l.index()) + 1;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

int
ClauseBank::openFamily(const std::string &key)
{
    std::lock_guard<std::mutex> lock(tableMutex);
    auto it = familyIds.find(key);
    if (it != familyIds.end())
        return it->second;
    int id = static_cast<int>(families.size());
    families.push_back(std::make_unique<Family>());
    familyIds.emplace(key, id);
    return id;
}

ClauseBank::Family &
ClauseBank::family(int id) const
{
    std::lock_guard<std::mutex> lock(tableMutex);
    assert(id >= 0 && id < static_cast<int>(families.size()));
    return *families[static_cast<size_t>(id)];
}

int
ClauseBank::registerProducer(int family_id)
{
    Family &f = family(family_id);
    std::lock_guard<std::mutex> lock(f.mutex);
    return f.producers++;
}

bool
ClauseBank::publish(int family_id, int producer,
                    const std::vector<Lit> &lits, int lbd)
{
    if (lits.empty() || lits.size() > limits_.maxLits || lbd > limits_.maxLbd)
        return false;
    uint64_t h = clauseHash(lits);
    Family &f = family(family_id);
    std::lock_guard<std::mutex> lock(f.mutex);
    if (!f.seen.insert(h).second)
        return false;
    f.entries.push_back(Entry{lits, lbd, producer});
    return true;
}

void
ClauseBank::fetch(int family_id, int producer, size_t &cursor,
                  std::vector<Entry> &out) const
{
    Family &f = family(family_id);
    std::lock_guard<std::mutex> lock(f.mutex);
    for (size_t i = cursor; i < f.entries.size(); i++) {
        if (f.entries[i].producer != producer)
            out.push_back(f.entries[i]);
    }
    cursor = f.entries.size();
}

uint64_t
ClauseBank::published() const
{
    std::lock_guard<std::mutex> lock(tableMutex);
    uint64_t total = 0;
    for (const auto &f : families) {
        std::lock_guard<std::mutex> flock(f->mutex);
        total += f->entries.size();
    }
    return total;
}

} // namespace lts::sat
