/**
 * @file
 * DRAT-style proof logging and independent checking.
 *
 * Every Unsat answer the solver gives can be emitted as a proof trace
 * and re-verified by code that shares nothing with the solver: the
 * checker here never looks at watch lists, activities, or any other
 * solver state — it replays the trace with its own unit propagation.
 * This gives Unsat the trust story Solver::checkModel gives Sat.
 *
 * The trace format is self-contained DRAT with four record kinds:
 *
 *   i <lits> 0   input clause — part of the problem, taken on faith
 *                (cross-check against --dump-dimacs output if needed)
 *   a <lits> 0   derived clause — must pass RUP, or RAT on its first
 *                literal, against the clauses live at this point
 *   d <lits> 0   deletion — the clause leaves the database
 *   u <lits> 0   conclusion — a verification target: the negated failed
 *                assumptions of an Unsat answer ("u 0" for an
 *                assumption-free refutation). Must be RUP.
 *
 * Unlike bare DRAT, inputs ride inside the trace ('i' lines), so a
 * proof file checks on its own, and one trace may carry several 'u'
 * conclusions (the incremental engine concludes once per swept axiom
 * on a shared solver).
 *
 * Two encodings share the record model: a text form ("c ltsdrat v1
 * text" header, DIMACS-style signed literals) and a compact binary
 * form ("LDRATB1\0" magic, tag byte + varint literals). The checker
 * auto-detects which one it is reading.
 *
 * Checking is backward from the conclusions: the final database is
 * reconstructed, steps are undone last-to-first, and only steps marked
 * as antecedents of a conclusion are verified (verify_all checks every
 * derivation). Antecedent marking doubles as unsat-core extraction;
 * the result reports how many steps and inputs the core touches.
 */

#ifndef LTS_SAT_DRAT_HH
#define LTS_SAT_DRAT_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sat/types.hh"

namespace lts::sat
{

/** Proof trace encodings (see file comment). */
enum class DratFormat
{
    Text,   ///< "c ltsdrat v1 text" header, one record per line
    Binary, ///< "LDRATB1\0" magic, tag byte + varint literals
};

/**
 * Streaming proof writer. One writer per solver; the solver calls the
 * add/delete hooks as its clause database changes and conclude() when
 * it answers Unsat. Writes are buffered; the file is flushed on
 * destruction (or flush()). Not thread-safe — parallel shards each own
 * a private solver and a private writer.
 */
class DratWriter
{
  public:
    DratWriter(const std::string &path,
               DratFormat format = DratFormat::Binary);
    ~DratWriter();
    DratWriter(const DratWriter &) = delete;
    DratWriter &operator=(const DratWriter &) = delete;

    /** Did the file open and all writes so far succeed? */
    bool good() const { return file != nullptr && !failed; }

    const std::string &path() const { return filePath; }
    DratFormat format() const { return fmt; }

    /** Log an input clause ('i'): part of the problem, not checked. */
    void addInput(const std::vector<Lit> &lits) { put('i', lits); }

    /** Log a derived clause ('a'): must be RUP/RAT at this point. */
    void addDerived(const std::vector<Lit> &lits) { put('a', lits); }

    /** Log a conclusion ('u'): a clause the checker must verify. */
    void addConclusion(const std::vector<Lit> &lits) { put('u', lits); }

    /** Log a deletion ('d') of a clause previously added. */
    void deleteClause(const std::vector<Lit> &lits) { put('d', lits); }

    void flush();

  private:
    void put(char tag, const std::vector<Lit> &lits);

    std::string filePath;
    DratFormat fmt;
    std::FILE *file = nullptr;
    bool failed = false;
    std::vector<char> buf;
};

/** One parsed proof record. */
struct DratStep
{
    enum class Kind : uint8_t
    {
        Input,      ///< 'i'
        Derived,    ///< 'a'
        Conclusion, ///< 'u'
        Delete,     ///< 'd'
    };

    Kind kind;
    std::vector<Lit> lits; ///< original order (first literal = RAT pivot)
};

/** Outcome of checking one proof trace. */
struct DratCheckResult
{
    bool ok = false;
    std::string error;    ///< diagnostic when !ok
    size_t errorStep = 0; ///< 0-based step index of the failure (when
                          ///< the error is tied to a step)

    size_t steps = 0;       ///< total records
    size_t inputs = 0;      ///< 'i' records
    size_t derived = 0;     ///< 'a' records
    size_t conclusions = 0; ///< 'u' records
    size_t deletions = 0;   ///< 'd' records

    size_t verified = 0;   ///< derivations actually RUP/RAT-checked
    size_t ratSteps = 0;   ///< verified steps that needed the RAT fallback
    size_t coreSteps = 0;  ///< add-steps in the conclusions' antecedent
                           ///< cone (the extracted core)
    size_t coreInputs = 0; ///< input clauses in that core
};

/**
 * Parse a proof file into records, auto-detecting text vs binary.
 * Returns false with a diagnostic in @p error on malformed input
 * (unrecognized header, bad literal, truncated binary record, ...).
 */
bool parseDratFile(const std::string &path, std::vector<DratStep> &steps,
                   std::string &error);

/**
 * Verify a parsed trace backward from its conclusions (see file
 * comment). With @p verify_all every 'a' step is checked, not only the
 * conclusions' antecedent cone. A trace with no 'u' record fails (there
 * is nothing it claims); every 'u' must be RUP — the RAT fallback is
 * reserved for 'a' steps, since RAT preserves satisfiability but not
 * entailment, and a conclusion asserts entailment.
 */
DratCheckResult checkDrat(const std::vector<DratStep> &steps,
                          bool verify_all = false);

/** parseDratFile + checkDrat in one call. */
DratCheckResult checkDratFile(const std::string &path,
                              bool verify_all = false);

} // namespace lts::sat

#endif // LTS_SAT_DRAT_HH
