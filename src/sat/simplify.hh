/**
 * @file
 * Configuration for the solver's SatELite-style preprocessing pass
 * (Solver::simplify, implemented in simplify.cc).
 *
 * The pass runs three classic CNF simplifications over an occurrence-list
 * index of the live problem clauses:
 *
 *  - backward subsumption: a clause C deletes every clause D with C ⊆ D;
 *  - self-subsuming resolution: when C subsumes D except for one literal
 *    that appears flipped, that literal is removed from D (strengthening);
 *  - bounded variable elimination (BVE): a variable v whose full
 *    resolvent set is no larger than the clauses it replaces is
 *    eliminated by distribution (Davis-Putnam), and its clauses move to
 *    an extension stack used to reconstruct v's value in later models.
 *
 * The pass is guarded by the solver's *frozen-variable protocol*:
 * variables the outside world refers to — relation-tuple cell variables,
 * activation-group selectors, anything the caller may later assume, pin,
 * or read back — must be frozen (Solver::setFrozen) and are never
 * eliminated. Pure Tseitin internals stay eliminable; after a Sat answer
 * the solver replays the extension stack so modelValue() is total and
 * checkModel() also verifies the eliminated clauses. Everything is
 * processed in deterministic (index) order, so identical solvers
 * simplify identically — the property cross-shard clause sharing and the
 * suite byte-identity contract both rely on.
 */

#ifndef LTS_SAT_SIMPLIFY_HH
#define LTS_SAT_SIMPLIFY_HH

#include <cstddef>

namespace lts::sat
{

/** Knobs for Solver::simplify; defaults follow MiniSat/SatELite. */
struct SimplifyConfig
{
    /** Enable backward subsumption + self-subsuming resolution. */
    bool subsumption = true;

    /** Enable bounded variable elimination. */
    bool varElim = true;

    /**
     * Skip eliminating a variable with more than this many occurrences —
     * the resolvent check alone would be quadratic in the list lengths.
     */
    size_t maxOccurrences = 30;

    /** Never create a resolvent longer than this many literals. */
    size_t maxResolventLits = 20;

    /**
     * Allowed clause-count growth per elimination: a variable is
     * eliminated when #resolvents <= #original clauses + grow.
     */
    int grow = 0;
};

} // namespace lts::sat

#endif // LTS_SAT_SIMPLIFY_HH
