/**
 * @file
 * Shared learnt-clause bank for sharded synthesis workers.
 *
 * Shard jobs that solve structurally identical problems — the from-scratch
 * engine's per-(axiom, size) solvers all assert the same base encoding at
 * a given size — waste work re-deriving each other's learnt clauses. The
 * bank lets them exchange the good ones: a solver connected via
 * Solver::connectBank *exports* learnt clauses that pass an LBD/size
 * quality filter and whose literals all fall inside the family's shared
 * variable prefix, and *imports* every sibling's exports at restart
 * boundaries (decision level 0), where attaching foreign clauses is
 * trivially safe.
 *
 * Soundness contract: a family groups solvers whose variable prefixes
 * [0, sharedVarLimit) were created by an identical deterministic
 * construction (same base formula, same simplification), so a clause over
 * prefix variables means the same thing in every member. Exported clauses
 * are learnt, hence implied by the exporter's clause set; the guard-literal
 * discipline of activation groups (a derivation through a grouped clause
 * always carries the group's selector literal, and selectors live outside
 * the prefix) plus the definitional nature of Tseitin extensions make any
 * guard-free prefix clause implied by the shared base alone — see
 * DESIGN.md. Imports are therefore sound in every member, and since they
 * are implied clauses, enumeration results are byte-identical with
 * sharing on or off; only the search effort changes.
 *
 * Thread safety: every method may be called concurrently; each family is
 * guarded by its own mutex, and readers track their position with a
 * caller-owned cursor so fetching is wait-free with respect to other
 * families.
 */

#ifndef LTS_SAT_CLAUSEBANK_HH
#define LTS_SAT_CLAUSEBANK_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sat/types.hh"

namespace lts::sat
{

/** Shared pool of exchanged learnt clauses, partitioned into families. */
class ClauseBank
{
  public:
    /** Quality filter: only clauses at or below both bounds are kept. */
    struct Limits
    {
        int maxLbd = 4;
        size_t maxLits = 10;
    };

    /** One exchanged clause. */
    struct Entry
    {
        std::vector<Lit> lits;
        int lbd = 0;
        int producer = -1;
    };

    ClauseBank() = default;
    explicit ClauseBank(Limits limits) : limits_(limits) {}

    const Limits &limits() const { return limits_; }

    /**
     * Get-or-create the family for @p key (e.g. the universe size of a
     * shard group). Families are cheap; keys only need to agree across
     * the solvers that may soundly exchange clauses.
     */
    int openFamily(const std::string &key);

    /** Register a producer in a family; returns its id within the family. */
    int registerProducer(int family);

    /**
     * Publish a clause if it passes the quality filter and is not already
     * present (clauses are deduplicated by a literal-set hash). Returns
     * whether the clause was newly added.
     */
    bool publish(int family, int producer, const std::vector<Lit> &lits,
                 int lbd);

    /**
     * Append every clause published after @p cursor by a *different*
     * producer to @p out and advance the cursor past the end.
     */
    void fetch(int family, int producer, size_t &cursor,
               std::vector<Entry> &out) const;

    /** Clauses accepted across all families (for stats/tests). */
    uint64_t published() const;

  private:
    struct Family
    {
        mutable std::mutex mutex;
        std::vector<Entry> entries;
        std::unordered_set<uint64_t> seen;
        int producers = 0;
    };

    Family &family(int id) const;

    Limits limits_;
    mutable std::mutex tableMutex;
    std::unordered_map<std::string, int> familyIds;
    std::vector<std::unique_ptr<Family>> families;
};

} // namespace lts::sat

#endif // LTS_SAT_CLAUSEBANK_HH
