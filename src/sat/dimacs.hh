/**
 * @file
 * DIMACS CNF reader/writer.
 *
 * Lets the solver be exercised against standard CNF benchmarks, and lets
 * the relational encoder dump the formulas it builds for offline
 * inspection with external tools.
 */

#ifndef LTS_SAT_DIMACS_HH
#define LTS_SAT_DIMACS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hh"

namespace lts::sat
{

/** An in-memory CNF: variable count plus clause list. */
struct Cnf
{
    int numVars = 0;
    std::vector<Clause> clauses;
};

/**
 * Parse DIMACS text from @p in. Throws std::runtime_error on malformed
 * input. Comment lines and the problem line are handled per the format.
 */
Cnf parseDimacs(std::istream &in);

/** Parse DIMACS from a string (convenience for tests). */
Cnf parseDimacsString(const std::string &text);

/** Serialize @p cnf in DIMACS format. */
void writeDimacs(std::ostream &out, const Cnf &cnf);

} // namespace lts::sat

#endif // LTS_SAT_DIMACS_HH
