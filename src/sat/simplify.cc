/**
 * @file
 * SatELite-style preprocessing: backward subsumption, self-subsuming
 * resolution, and bounded variable elimination (see simplify.hh for the
 * contract and knobs). Implemented as a friend class so the pass can
 * manipulate the solver's clause store and watches directly.
 *
 * Scope rules:
 *  - learnt clauses are purged up front (they are re-derivable, and
 *    keeping them would let an elimination candidate linger in a clause
 *    the pass does not rewrite);
 *  - grouped clauses are left completely untouched and every variable
 *    occurring in one is exempt from elimination, so retractable layers
 *    survive the pass bit-for-bit;
 *  - frozen variables (relation cells, group selectors, anything the
 *    caller assumes or reads back) are never eliminated.
 *
 * Determinism: clauses are visited in index order, variables in
 * ascending order, occurrence lists in registration order, and no
 * unordered container is ever iterated — two solvers holding the same
 * clauses simplify into bit-identical clause stores. Cross-shard clause
 * sharing and the suite byte-identity guarantee both depend on this.
 */

#include <algorithm>
#include <cassert>

#include "sat/solver.hh"

namespace lts::sat
{

class Simplifier
{
  public:
    Simplifier(Solver &solver, const SimplifyConfig &config)
        : s(solver), cfg(config)
    {
    }

    bool run();

  private:
    using ClauseRef = Solver::ClauseRef;

    /** Outcome of a pairwise subsumption check. */
    enum class SubsumeResult
    {
        No,
        Subsumes,   ///< C ⊆ D: D is redundant
        Strengthens ///< C ⊆ D except one flipped literal: remove it from D
    };

    void purgeLearnts();
    void collectGroupScope();
    void buildIndex();
    void registerClause(ClauseRef cref);
    void enqueueSubsumption(ClauseRef cref);
    int addOrEnqueue(std::vector<Lit> lits, bool log_add = true);
    void processTrail();
    void drainSubsumption();
    void backwardSubsume(ClauseRef cref);
    SubsumeResult subsumeCheck(const std::vector<Lit> &c,
                               const std::vector<Lit> &d, Lit &flip) const;
    void strengthenClause(ClauseRef cref, Lit drop);
    bool bveSweep();
    bool tryEliminate(Var v);

    static uint64_t
    signature(const std::vector<Lit> &lits)
    {
        uint64_t sig = 0;
        for (Lit l : lits)
            sig |= uint64_t(1) << (l.var() & 63);
        return sig;
    }

    Solver &s;
    const SimplifyConfig &cfg;

    std::vector<std::vector<ClauseRef>> occ; ///< per Lit::index()
    std::vector<uint64_t> sigs;              ///< per clause, 0 if unindexed
    std::vector<uint8_t> noElim;             ///< var occurs in a grouped clause
    std::vector<ClauseRef> subQueue;
    std::vector<uint8_t> queued;         ///< per clause: in subQueue
    mutable std::vector<uint8_t> marks;  ///< per Lit::index() scratch
    size_t trailSeen = 0;                ///< root trail prefix already handled
    size_t proofTrailSeen = 0;           ///< root trail prefix proof-logged
};

bool
Solver::simplify(const SimplifyConfig &cfg)
{
    assert(decisionLevel() == 0);
    // Simplification rewrites the shared variable prefix; it must happen
    // before the solver joins a clause-bank family, where the prefix is
    // contractually identical across members.
    assert(bank == nullptr && "simplify() must run before connectBank()");
    if (!ok)
        return false;
    Simplifier pass(*this, cfg);
    return pass.run();
}

bool
Simplifier::run()
{
    // Proof logging: the pass deletes clauses that may be the unit-
    // propagation reasons of root assignments (purged learnts,
    // satisfied clauses), which would strand those units' derivations.
    // Re-derive every root unit up front — in trail order each is RUP
    // while its reason is still live — so later proof steps can lean on
    // them regardless of what the pass removes.
    if (s.proof) {
        for (Lit l : s.trail)
            s.proofAddUnit(l);
    }
    proofTrailSeen = s.trail.size();

    purgeLearnts();
    collectGroupScope();
    buildIndex();
    if (!s.ok)
        return false;

    // Alternate subsumption fixpoints and elimination sweeps until the
    // formula stops shrinking. Resolvents re-enter the subsumption queue
    // when registered, so each round starts from a clean fixpoint.
    for (;;) {
        if (cfg.subsumption)
            drainSubsumption();
        if (!s.ok)
            return false;
        if (!cfg.varElim || !bveSweep())
            break;
        if (!s.ok)
            return false;
    }
    return s.ok;
}

void
Simplifier::purgeLearnts()
{
    for (ClauseRef cref : s.learnts) {
        if (!s.clauses[cref].deleted)
            s.removeClause(cref);
    }
    s.learnts.clear();
}

void
Simplifier::collectGroupScope()
{
    noElim.assign(static_cast<size_t>(s.numVars()), 0);
    for (const auto &g : s.groups) {
        for (ClauseRef cref : g.clauseRefs) {
            const auto &c = s.clauses[cref];
            if (c.deleted)
                continue;
            for (Lit l : c.lits)
                noElim[l.var()] = 1;
        }
    }
}

void
Simplifier::buildIndex()
{
    occ.assign(static_cast<size_t>(s.numVars()) * 2, {});
    sigs.assign(s.clauses.size(), 0);
    queued.assign(s.clauses.size(), 0);
    marks.assign(static_cast<size_t>(s.numVars()) * 2, 0);
    trailSeen = s.trail.size();

    // Grouped clauses never enter the index: collectGroupScope() already
    // exempted their variables, and the clauses themselves are neither
    // subsumed, strengthened, nor used as subsumers.
    std::vector<uint8_t> grouped(s.clauses.size(), 0);
    for (const auto &g : s.groups) {
        for (ClauseRef cref : g.clauseRefs)
            grouped[cref] = 1;
    }

    size_t initial = s.clauses.size();
    for (ClauseRef i = 0; i < static_cast<ClauseRef>(initial); i++) {
        const auto &c = s.clauses[i];
        if (c.deleted || grouped[i])
            continue;
        assert(!c.learned);
        bool satisfied = false;
        bool shrinks = false;
        for (Lit l : c.lits) {
            if (s.value(l) == LBool::True)
                satisfied = true;
            else if (s.value(l) == LBool::False)
                shrinks = true;
        }
        if (satisfied) {
            s.removeClause(i);
        } else if (shrinks) {
            // Root-falsified literals are dropped by rebuilding the
            // clause: an in-place edit could leave a false literal in a
            // watch position, making the clause invisible to propagation.
            // Add before delete — the proof justifies the residue from
            // the original, so the original must still be in the
            // database when the residue's 'a' line appears. (The add
            // can reallocate the clause store and, via propagation,
            // even delete the original itself; hence the re-checks.)
            std::vector<Lit> lits = c.lits;
            addOrEnqueue(std::move(lits));
            if (!s.ok)
                return;
            if (!s.clauses[i].deleted)
                s.removeClause(i);
        } else {
            registerClause(i);
        }
    }
    processTrail();
}

void
Simplifier::registerClause(ClauseRef cref)
{
    const auto &c = s.clauses[cref];
    assert(c.lits.size() >= 2);
    if (sigs.size() <= static_cast<size_t>(cref)) {
        sigs.resize(s.clauses.size(), 0);
        queued.resize(s.clauses.size(), 0);
    }
    sigs[cref] = signature(c.lits);
    for (Lit l : c.lits)
        occ[l.index()].push_back(cref);
    enqueueSubsumption(cref);
}

void
Simplifier::enqueueSubsumption(ClauseRef cref)
{
    if (!cfg.subsumption || queued[cref])
        return;
    queued[cref] = 1;
    subQueue.push_back(cref);
}

/**
 * Normalize @p lits at the root and insert the result: tautologies and
 * satisfied clauses vanish, units are enqueued and propagated (newly
 * implied root facts then flow back through processTrail), and real
 * clauses are allocated, attached, and registered in the index. Returns
 * the new clause ref, or kNoReason when no clause was stored.
 *
 * With @p log_add the stored (or enqueued) clause is proof-logged
 * unconditionally; without it only an actual normalization is logged —
 * callers that already logged the raw clause (BVE resolvents) pass
 * false to avoid duplicate lines.
 */
int
Simplifier::addOrEnqueue(std::vector<Lit> lits, bool log_add)
{
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev;
    for (Lit l : lits) {
        assert(!s.elimFlags[l.var()]);
        if (s.value(l) == LBool::True || (prev.valid() && l == ~prev))
            return Solver::kNoReason;
        if (s.value(l) != LBool::False && l != prev)
            out.push_back(l);
        prev = l;
    }
    if (out.empty()) {
        // No 'a' line for the empty clause: the caller keeps the parent
        // clause in the database on this path, and its literals are all
        // root-false, so the checker reaches the conflict by itself.
        s.ok = false;
        return Solver::kNoReason;
    }
    if (s.proof && (log_add || out.size() != lits.size()))
        s.proofAdd(out);
    if (out.size() == 1) {
        s.uncheckedEnqueue(out[0], Solver::kNoReason);
        // out[0]'s add line is already in the trace (just above, or the
        // caller's raw line when !log_add and nothing normalized away).
        proofTrailSeen++;
        if (s.propagate() != Solver::kNoReason) {
            s.ok = false;
            return Solver::kNoReason;
        }
        // Log propagation-derived units now, while their reason clauses
        // are still live — processTrail below starts deleting clauses.
        if (s.proof) {
            while (proofTrailSeen < s.trail.size())
                s.proofAddUnit(s.trail[proofTrailSeen++]);
        }
        processTrail();
        return Solver::kNoReason;
    }
    ClauseRef cref = s.allocClause(std::move(out), false);
    s.attachClause(cref);
    registerClause(cref);
    return cref;
}

/**
 * Fold freshly derived root assignments back into the index: clauses
 * containing a now-true literal die, clauses containing a now-false
 * literal are rebuilt without it. Re-entrant (rebuilding can enqueue
 * further units); the trailSeen cursor makes each literal processed once.
 */
void
Simplifier::processTrail()
{
    while (trailSeen < s.trail.size()) {
        Lit p = s.trail[trailSeen++];
        for (size_t i = 0; i < occ[p.index()].size(); i++) {
            ClauseRef cref = occ[p.index()][i];
            if (!s.clauses[cref].deleted)
                s.removeClause(cref);
        }
        occ[p.index()].clear();
        for (size_t i = 0; i < occ[(~p).index()].size(); i++) {
            ClauseRef cref = occ[(~p).index()][i];
            if (s.clauses[cref].deleted)
                continue;
            // Add before delete: the residue's proof line needs the
            // original live. The add can reallocate s.clauses and even
            // delete the original via re-entrant trail processing.
            std::vector<Lit> lits = s.clauses[cref].lits;
            addOrEnqueue(std::move(lits));
            if (!s.ok)
                return;
            if (!s.clauses[cref].deleted)
                s.removeClause(cref);
        }
        occ[(~p).index()].clear();
    }
}

void
Simplifier::drainSubsumption()
{
    for (size_t qi = 0; qi < subQueue.size(); qi++) {
        ClauseRef cref = subQueue[qi];
        queued[cref] = 0;
        if (s.clauses[cref].deleted)
            continue;
        backwardSubsume(cref);
        if (!s.ok)
            return;
    }
    subQueue.clear();
}

/**
 * Use clause @p cref as a subsumer: delete every indexed clause it
 * subsumes and strengthen every clause it self-subsumes. Candidates are
 * found through the occurrence lists of the clause's rarest literal —
 * any subsumed clause contains every literal of C, and a self-subsumed
 * one contains every literal but one flipped, so scanning occ[best] and
 * occ[~best] together is exhaustive.
 */
void
Simplifier::backwardSubsume(ClauseRef cref)
{
    Lit best;
    size_t best_occ = 0;
    {
        const auto &c = s.clauses[cref];
        for (Lit l : c.lits) {
            size_t n = occ[l.index()].size() + occ[(~l).index()].size();
            if (!best.valid() || n < best_occ) {
                best = l;
                best_occ = n;
            }
        }
    }
    assert(best.valid());
    for (int side = 0; side < 2; side++) {
        Lit probe = side == 0 ? best : ~best;
        auto &list = occ[probe.index()];
        for (size_t i = 0; i < list.size(); i++) {
            ClauseRef dref = list[i];
            if (dref == cref || s.clauses[dref].deleted)
                continue;
            if (s.clauses[cref].deleted)
                return; // strengthening cascaded back onto the subsumer
            const auto &c = s.clauses[cref];
            const auto &d = s.clauses[dref];
            if (c.lits.size() > d.lits.size() ||
                (sigs[cref] & ~sigs[dref]) != 0)
                continue;
            Lit flip;
            SubsumeResult res = subsumeCheck(c.lits, d.lits, flip);
            if (res == SubsumeResult::Subsumes) {
                s.statsData.subsumedClauses++;
                s.removeClause(dref);
            } else if (res == SubsumeResult::Strengthens) {
                strengthenClause(dref, ~flip);
                if (!s.ok)
                    return;
            }
        }
    }
}

Simplifier::SubsumeResult
Simplifier::subsumeCheck(const std::vector<Lit> &c, const std::vector<Lit> &d,
                         Lit &flip) const
{
    for (Lit l : d)
        marks[l.index()] = 1;
    SubsumeResult res = SubsumeResult::Subsumes;
    for (Lit l : c) {
        if (marks[l.index()])
            continue;
        if (res == SubsumeResult::Subsumes && marks[(~l).index()]) {
            res = SubsumeResult::Strengthens;
            flip = l;
            continue;
        }
        res = SubsumeResult::No;
        break;
    }
    for (Lit l : d)
        marks[l.index()] = 0;
    return res;
}

/** Self-subsuming resolution: rebuild @p cref without literal @p drop. */
void
Simplifier::strengthenClause(ClauseRef cref, Lit drop)
{
    std::vector<Lit> lits;
    {
        const auto &c = s.clauses[cref];
        lits.reserve(c.lits.size() - 1);
        for (Lit l : c.lits) {
            if (l != drop)
                lits.push_back(l);
        }
        assert(lits.size() + 1 == c.lits.size());
    }
    s.statsData.strengthenedLits++;
    // Add before delete: the strengthened clause is RUP from the
    // subsumer plus the original, so the original must still be present
    // when its 'a' line is emitted. The add can reallocate s.clauses
    // (hence the scoped reference above) and can delete the original
    // itself through re-entrant trail processing.
    addOrEnqueue(std::move(lits));
    if (!s.ok)
        return;
    if (!s.clauses[cref].deleted)
        s.removeClause(cref);
}

bool
Simplifier::bveSweep()
{
    bool changed = false;
    int vars = s.numVars();
    for (Var v = 0; v < vars; v++) {
        if (s.frozenFlags[v] || s.elimFlags[v] || noElim[v] ||
            s.value(v) != LBool::Undef)
            continue;
        if (tryEliminate(v))
            changed = true;
        if (!s.ok)
            return changed;
    }
    return changed;
}

/**
 * Bounded variable elimination by distribution (Davis-Putnam): replace
 * the clauses containing v with their full pairwise resolvent set when
 * that set is no larger (modulo cfg.grow) and no resolvent is too long.
 * Keeping *all* non-tautological resolvents makes the elimination an
 * exact existential projection: the remaining formula has identical
 * models over the other variables, which is what lets eliminated Tseitin
 * outputs be re-used as inputs of later-lowered cones.
 */
bool
Simplifier::tryEliminate(Var v)
{
    auto compact = [&](std::vector<ClauseRef> &list) {
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](ClauseRef cref) {
                                      return s.clauses[cref].deleted;
                                  }),
                   list.end());
    };
    std::vector<ClauseRef> &pos = occ[Lit::pos(v).index()];
    std::vector<ClauseRef> &neg = occ[Lit::neg(v).index()];
    compact(pos);
    compact(neg);

    size_t before = pos.size() + neg.size();
    if (before > cfg.maxOccurrences)
        return false;

    // Build the full resolvent set, bailing out the moment it exceeds
    // the growth budget or a resolvent exceeds the length cap.
    size_t budget = before + static_cast<size_t>(std::max(cfg.grow, 0));
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> resolvent;
    for (ClauseRef pref : pos) {
        const auto &pc = s.clauses[pref];
        for (ClauseRef nref : neg) {
            const auto &nc = s.clauses[nref];
            resolvent.clear();
            bool tautology = false;
            for (Lit l : pc.lits) {
                if (l.var() != v)
                    resolvent.push_back(l);
            }
            for (Lit l : nc.lits) {
                if (l.var() == v)
                    continue;
                if (std::find(resolvent.begin(), resolvent.end(), ~l) !=
                    resolvent.end()) {
                    tautology = true;
                    break;
                }
                if (std::find(resolvent.begin(), resolvent.end(), l) ==
                    resolvent.end())
                    resolvent.push_back(l);
            }
            if (tautology)
                continue;
            if (resolvent.size() > cfg.maxResolventLits ||
                resolvents.size() + 1 > budget)
                return false;
            resolvents.push_back(resolvent);
        }
    }

    // Commit: archive the originals for model reconstruction, then swap
    // them for the resolvents.
    Solver::ElimRecord record;
    record.v = v;
    record.clauses.reserve(before);
    for (ClauseRef cref : pos)
        record.clauses.push_back(s.clauses[cref].lits);
    for (ClauseRef cref : neg)
        record.clauses.push_back(s.clauses[cref].lits);
    s.elimStack.push_back(std::move(record));
    s.elimFlags[v] = 1;
    s.statsData.eliminatedVars++;

    // Proof: every resolvent is RUP while both parents are live, so log
    // the whole raw set before deleting the originals. addOrEnqueue is
    // then told not to re-log; it only adds a line if normalization
    // changes the clause.
    if (s.proof) {
        for (const auto &lits : resolvents)
            s.proofAdd(lits);
    }

    std::vector<ClauseRef> originals;
    originals.reserve(before);
    originals.insert(originals.end(), pos.begin(), pos.end());
    originals.insert(originals.end(), neg.begin(), neg.end());
    for (ClauseRef cref : originals) {
        if (!s.clauses[cref].deleted)
            s.removeClause(cref);
    }
    pos.clear();
    neg.clear();
    for (auto &lits : resolvents) {
        addOrEnqueue(std::move(lits), /*log_add=*/false);
        if (!s.ok)
            return true;
    }
    return true;
}

} // namespace lts::sat
