/**
 * @file
 * Core SAT types: variables, literals, and ternary truth values.
 *
 * Variables are dense non-negative integers. A literal packs a variable
 * and a sign into one integer (2 * var + sign) so literals index arrays
 * directly, MiniSAT-style.
 */

#ifndef LTS_SAT_TYPES_HH
#define LTS_SAT_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lts::sat
{

/** A propositional variable, numbered from 0. */
using Var = int32_t;

/**
 * A literal: variable @c v with polarity. Positive literal of v is
 * 2v, negative is 2v+1. The default-constructed literal is invalid.
 */
class Lit
{
  public:
    Lit() : code(-2) {}

    /** Make a literal for @p v, negated when @p negated is true. */
    Lit(Var v, bool negated) : code(2 * v + (negated ? 1 : 0)) {}

    /** The positive literal of @p v. */
    static Lit pos(Var v) { return Lit(v, false); }

    /** The negative literal of @p v. */
    static Lit neg(Var v) { return Lit(v, true); }

    /** Rebuild a literal from its integer code. */
    static Lit
    fromCode(int32_t code)
    {
        Lit l;
        l.code = code;
        return l;
    }

    Var var() const { return code >> 1; }
    bool sign() const { return code & 1; }
    int32_t index() const { return code; }
    bool valid() const { return code >= 0; }

    Lit operator~() const { return fromCode(code ^ 1); }
    bool operator==(const Lit &o) const { return code == o.code; }
    bool operator!=(const Lit &o) const { return code != o.code; }
    bool operator<(const Lit &o) const { return code < o.code; }

    /** Render as e.g. "x3" or "~x3" for debugging. */
    std::string
    toString() const
    {
        if (!valid())
            return "<invalid>";
        return (sign() ? "~x" : "x") + std::to_string(var());
    }

  private:
    int32_t code;
};

/** Ternary truth value. */
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/** Negate a ternary value, leaving Undef untouched. */
inline LBool
operator~(LBool b)
{
    if (b == LBool::Undef)
        return b;
    return b == LBool::True ? LBool::False : LBool::True;
}

/** A clause as a plain literal vector (used at the API boundary). */
using Clause = std::vector<Lit>;

} // namespace lts::sat

#endif // LTS_SAT_TYPES_HH
