/**
 * @file
 * Operational simulator tests: outcome sets for the classic tests under
 * the SC interleaving machine and the x86-TSO store-buffer machine.
 */

#include <gtest/gtest.h>

#include "sim/opsim.hh"

namespace lts::sim
{
namespace
{

using litmus::LitmusTest;
using litmus::MemOrder;
using litmus::TestBuilder;

LitmusTest
sb(bool fences)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    if (fences)
        b.fence(t0, MemOrder::Plain);
    b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    if (fences)
        b.fence(t1, MemOrder::Plain);
    b.read(t1, "x");
    return b.build("SB");
}

/** Value of read event @p id in signature @p sig. */
int
readValue(const Signature &sig, int id)
{
    return sig[id];
}

TEST(ScSimTest, SbForbidsBothZero)
{
    LitmusTest t = sb(false);
    auto outcomes = scOutcomes(t);
    // Under SC, 0/0 is impossible; at least one read sees a store.
    for (const auto &sig : outcomes)
        EXPECT_FALSE(readValue(sig, 1) == 0 && readValue(sig, 3) == 0);
    // SC admits exactly 3 observable outcomes for SB.
    EXPECT_EQ(outcomes.size(), 3u);
}

TEST(TsoSimTest, SbAllowsBothZero)
{
    LitmusTest t = sb(false);
    auto outcomes = tsoOutcomes(t);
    bool both_zero = false;
    for (const auto &sig : outcomes) {
        if (readValue(sig, 1) == 0 && readValue(sig, 3) == 0)
            both_zero = true;
    }
    EXPECT_TRUE(both_zero);
    EXPECT_EQ(outcomes.size(), 4u);
}

TEST(TsoSimTest, FencedSbForbidsBothZero)
{
    LitmusTest t = sb(true);
    auto outcomes = tsoOutcomes(t);
    for (const auto &sig : outcomes)
        EXPECT_FALSE(readValue(sig, 2) == 0 && readValue(sig, 5) == 0);
    EXPECT_EQ(outcomes.size(), 3u);
}

TEST(TsoSimTest, MpForbidsStaleData)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    b.write(t0, "y");
    int t1 = b.newThread();
    int r_flag = b.read(t1, "y");
    int r_data = b.read(t1, "x");
    LitmusTest mp = b.build("MP");
    auto outcomes = tsoOutcomes(mp);
    // (flag observed, data stale) must be absent; the other 3 present.
    EXPECT_EQ(outcomes.size(), 3u);
    for (const auto &sig : outcomes)
        EXPECT_FALSE(sig[r_flag] != 0 && sig[r_data] == 0);
}

TEST(TsoSimTest, StoreForwardingIsVisible)
{
    // n6-style: a thread reads its own buffered store before it reaches
    // memory, while the other thread's store lands co-later.
    TestBuilder b;
    int t0 = b.newThread();
    int wx1 = b.write(t0, "x");
    int rx = b.read(t0, "x");
    int ry = b.read(t0, "y");
    int t1 = b.newThread();
    b.write(t1, "y");
    int wx2 = b.write(t1, "x");
    LitmusTest n6 = b.build("n6");
    auto outcomes = tsoOutcomes(n6);
    bool forwarding_outcome = false;
    for (const auto &sig : outcomes) {
        // rx sees own store, ry sees 0, final x is thread 0's store
        // (wx2 hit memory while wx1 sat in the buffer).
        if (sig[rx] == wx1 + 1 && sig[ry] == 0 &&
            sig[static_cast<int>(n6.size())] == wx1 + 1) {
            forwarding_outcome = true;
        }
    }
    EXPECT_TRUE(forwarding_outcome);
    (void)wx2;
}

TEST(TsoSimTest, RmwPairsAreAtomic)
{
    // Two competing RMWs on x: both-read-zero is impossible.
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    int w0 = b.write(t0, "x");
    b.pairRmw(r0, w0);
    int t1 = b.newThread();
    int r1 = b.read(t1, "x");
    int w1 = b.write(t1, "x");
    b.pairRmw(r1, w1);
    LitmusTest t = b.build("rmw-rmw");
    for (const auto &sig : tsoOutcomes(t))
        EXPECT_FALSE(sig[r0] == 0 && sig[r1] == 0);
}

TEST(TsoSimTest, UnpairedReadWriteIsNotAtomic)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r0 = b.read(t0, "x");
    b.write(t0, "x");
    int t1 = b.newThread();
    int r1 = b.read(t1, "x");
    b.write(t1, "x");
    LitmusTest t = b.build("lds-sts");
    bool both_zero = false;
    for (const auto &sig : tsoOutcomes(t)) {
        if (sig[r0] == 0 && sig[r1] == 0)
            both_zero = true;
    }
    EXPECT_TRUE(both_zero);
}

TEST(TsoSimTest, RmwActsAsFence)
{
    // SB with the second thread's store replaced by an RMW: the locked
    // operation drains the buffer, but thread 0 is unfenced, so the
    // relaxed outcome survives through thread 0's buffer.
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r0 = b.read(t0, "y");
    int t1 = b.newThread();
    int rr = b.read(t1, "y");
    int ww = b.write(t1, "y");
    b.pairRmw(rr, ww);
    int r1 = b.read(t1, "x");
    LitmusTest t = b.build("sb-rmw");
    bool relaxed = false;
    for (const auto &sig : tsoOutcomes(t)) {
        if (sig[r0] == 0 && sig[r1] == 0)
            relaxed = true;
    }
    EXPECT_TRUE(relaxed);
}

TEST(SimTest, ScOutcomesAreSubsetOfTso)
{
    for (LitmusTest t : {sb(false), sb(true)}) {
        auto sc = scOutcomes(t);
        auto tso = tsoOutcomes(t);
        for (const auto &sig : sc)
            EXPECT_TRUE(tso.count(sig));
    }
}

TEST(SimTest, SignatureProjectionMatchesValues)
{
    TestBuilder b;
    int t0 = b.newThread();
    int w = b.write(t0, "x");
    int t1 = b.newThread();
    int r = b.read(t1, "x");
    b.readsFrom(w, r);
    LitmusTest t = b.build("wr");
    Signature sig = observableSignature(t, t.forbidden);
    EXPECT_EQ(sig[r], w + 1);
    EXPECT_EQ(sig[static_cast<int>(t.size())], w + 1); // final x
    EXPECT_EQ(sig[w], -1); // writes have no register
}

TEST(SimTest, DependenciesRejected)
{
    TestBuilder b;
    int t0 = b.newThread();
    int r = b.read(t0, "x");
    int w = b.write(t0, "y");
    b.dataDepend(r, w);
    LitmusTest t = b.build("dep");
    EXPECT_THROW(tsoOutcomes(t), std::invalid_argument);
}

TEST(SimTest, SingleThreadProgramHasOneOutcome)
{
    TestBuilder b;
    int t0 = b.newThread();
    b.write(t0, "x");
    int r = b.read(t0, "x");
    LitmusTest t = b.build("w-then-r");
    auto sc = scOutcomes(t);
    auto tso = tsoOutcomes(t);
    ASSERT_EQ(sc.size(), 1u);
    EXPECT_EQ(tso, sc);
    EXPECT_EQ(sc.begin()->at(r), 1); // reads its own store
}

} // namespace
} // namespace lts::sim
